//! Cross-crate integration tests: simulated datasets through the full MDZ
//! pipeline and every baseline, with bound verification and physics checks.

use mdz::analysis::rdf::{rdf, rdf_distance, RdfConfig};
use mdz::analysis::ErrorStats;
use mdz::core::traj::TrajectoryDecompressor;
use mdz::core::Codec;
use mdz::core::{
    Compressor, Decompressor, ErrorBound, Frame, MdzConfig, Method, TrajectoryCompressor,
};
use mdz::sim::{datasets, DatasetKind, Scale};

fn axis_eps(series: &[Vec<f64>], rel: f64) -> f64 {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for s in series {
        for &v in s {
            min = min.min(v);
            max = max.max(v);
        }
    }
    rel * (max - min)
}

#[test]
fn every_dataset_round_trips_with_every_mdz_method() {
    for kind in DatasetKind::MD {
        let d = datasets::generate(kind, Scale::Test, 1);
        for method in [Method::Vq, Method::Vqt, Method::Mt, Method::Adaptive] {
            for axis in 0..3 {
                let series = d.axis_series(axis);
                let eps = axis_eps(&series, 1e-3);
                let cfg = MdzConfig::new(ErrorBound::Absolute(eps)).with_method(method);
                let mut c = Compressor::new(cfg);
                let mut dec = Decompressor::new();
                for chunk in series.chunks(4) {
                    let blob = c.compress_buffer(chunk).unwrap();
                    let out = dec.decompress_block(&blob).unwrap();
                    for (s, o) in chunk.iter().zip(out.iter()) {
                        for (a, b) in s.iter().zip(o.iter()) {
                            assert!(
                                (a - b).abs() <= eps * (1.0 + 1e-9),
                                "{} {method:?} axis {axis}: |{a}-{b}| > {eps}",
                                kind.name()
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn every_dataset_round_trips_with_every_baseline() {
    for kind in [DatasetKind::CopperB, DatasetKind::Adk, DatasetKind::Lj] {
        let d = datasets::generate(kind, Scale::Test, 2);
        let series = d.axis_series(0);
        let eps = axis_eps(&series, 1e-3);
        for codec in mdz::baselines::all_baselines().iter_mut() {
            for chunk in series.chunks(4) {
                let blob = codec.compress_buffer(chunk, ErrorBound::Absolute(eps)).unwrap();
                let out = codec.decompress_buffer(&blob).unwrap();
                for (s, o) in chunk.iter().zip(out.iter()) {
                    for (a, b) in s.iter().zip(o.iter()) {
                        assert!(
                            (a - b).abs() <= eps * (1.0 + 1e-9),
                            "{} {}: |{a}-{b}| > {eps}",
                            kind.name(),
                            codec.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn trajectory_container_streams_frames() {
    let d = datasets::generate(DatasetKind::HeliumB, Scale::Test, 3);
    let frames: Vec<Frame> =
        d.snapshots.iter().map(|s| Frame::new(s.x.clone(), s.y.clone(), s.z.clone())).collect();
    let cfg = MdzConfig::new(ErrorBound::ValueRangeRelative(1e-3));
    let mut c = TrajectoryCompressor::new(cfg);
    let mut dec = TrajectoryDecompressor::new();
    for chunk in frames.chunks(4) {
        let blob = c.compress_buffer(chunk).unwrap();
        let out = dec.decompress_buffer(&blob).unwrap();
        assert_eq!(out.len(), chunk.len());
        for (f, g) in chunk.iter().zip(out.iter()) {
            assert_eq!(f.len(), g.len());
        }
    }
}

#[test]
fn tight_bound_preserves_rdf() {
    let d = datasets::generate(DatasetKind::CopperB, Scale::Test, 4);
    let box_len = d.box_len.unwrap();
    let cfg_rdf = RdfConfig { box_len, r_max: (box_len / 2.0).min(6.0), bins: 32 };
    let s0 = &d.snapshots[0];
    let (_, g_orig) = rdf(&s0.x, &s0.y, &s0.z, &cfg_rdf);

    let mut axes_out: Vec<Vec<f64>> = Vec::new();
    for axis in 0..3 {
        let series = d.axis_series(axis);
        let eps = axis_eps(&series, 1e-4);
        let cfg = MdzConfig::new(ErrorBound::Absolute(eps));
        let mut c = Compressor::new(cfg);
        let blob = c.compress_buffer(&series[..4.min(series.len())]).unwrap();
        let out = Decompressor::new().decompress_block(&blob).unwrap();
        axes_out.push(out[0].clone());
    }
    let (_, g_dec) = rdf(&axes_out[0], &axes_out[1], &axes_out[2], &cfg_rdf);
    let dist = rdf_distance(&g_orig, &g_dec);
    assert!(dist < 0.1, "RDF distorted: {dist}");
}

#[test]
fn mdz_beats_raw_storage_substantially_on_crystals() {
    let d = datasets::generate(DatasetKind::CopperB, Scale::Test, 5);
    let series = d.axis_series(0);
    let eps = axis_eps(&series, 1e-3);
    let cfg = MdzConfig::new(ErrorBound::Absolute(eps));
    let mut c = Compressor::new(cfg);
    let mut total = 0usize;
    for chunk in series.chunks(4) {
        total += c.compress_buffer(chunk).unwrap().len();
    }
    let raw = series.len() * d.atoms() * 8;
    assert!(total * 4 < raw, "expected ≥4x compression on crystalline data: {raw} → {total}");
}

#[test]
fn error_stats_match_bound_after_round_trip() {
    let d = datasets::generate(DatasetKind::Adk, Scale::Test, 6);
    let series = d.axis_series(1);
    let eps = axis_eps(&series, 1e-3);
    let cfg = MdzConfig::new(ErrorBound::Absolute(eps)).with_method(Method::Vqt);
    let mut c = Compressor::new(cfg);
    let blob = c.compress_buffer(&series).unwrap();
    let out = Decompressor::new().decompress_block(&blob).unwrap();
    let flat_o: Vec<f64> = series.iter().flatten().copied().collect();
    let flat_d: Vec<f64> = out.iter().flatten().copied().collect();
    let stats = ErrorStats::compute(&flat_o, &flat_d);
    assert!(stats.max_error <= eps * (1.0 + 1e-9));
    assert!(stats.nrmse <= 1e-3);
    assert!(stats.psnr > 50.0);
}

#[test]
fn decompressors_reject_cross_format_blobs() {
    // Blobs from one format must not decode as another.
    let d = datasets::generate(DatasetKind::HeliumB, Scale::Test, 7);
    let series = d.axis_series(0);
    let eps = axis_eps(&series, 1e-3);
    let cfg = MdzConfig::new(ErrorBound::Absolute(eps));
    let mdz_blob = Compressor::new(cfg).compress_buffer(&series).unwrap();
    for codec in mdz::baselines::all_baselines().iter_mut() {
        assert!(
            codec.decompress_buffer(&mdz_blob).is_err(),
            "{} accepted an MDZ block",
            codec.name()
        );
    }
    let mut sz2 = mdz::baselines::sz2::Sz2::new(mdz::baselines::sz2::Sz2Mode::TwoD);
    let sz2_blob = sz2.compress_buffer(&series, ErrorBound::Absolute(eps)).unwrap();
    assert!(Decompressor::new().decompress_block(&sz2_blob).is_err());
}

#[test]
fn lossless_codecs_are_bit_exact_on_simulation_output() {
    let d = datasets::generate(DatasetKind::Lj, Scale::Test, 8);
    let values: Vec<f64> = d.snapshots[0].x.clone();
    let g = mdz::lossless::gorilla::compress(&values);
    assert_eq!(mdz::lossless::gorilla::decompress(&g).unwrap(), values);
    let f = mdz::lossless::fpc::compress(&values);
    assert_eq!(mdz::lossless::fpc::decompress(&f).unwrap(), values);
    let z = mdz::lossless::fpzip_like::compress(&values);
    assert_eq!(mdz::lossless::fpzip_like::decompress(&z).unwrap(), values);
    let bytes = mdz::lossless::f64s_to_bytes(&values);
    let l = mdz::lossless::lz77::compress(&bytes, mdz::lossless::Level::Default);
    assert_eq!(mdz::lossless::lz77::decompress(&l).unwrap(), bytes);
}

#[test]
fn kmeans_detects_crystal_spacing_from_simulation() {
    let d = datasets::generate(DatasetKind::CopperB, Scale::Test, 9);
    let grid = mdz::kmeans::detect_levels(&d.snapshots[0].x, &mdz::kmeans::SelectConfig::default())
        .expect("copper is level-structured");
    // FCC copper: planes every a/2 = 1.8075 along each axis.
    let expected = 3.615 / 2.0;
    let steps = grid.lambda / expected;
    let near_multiple = (steps - steps.round()).abs() < 0.1 && steps.round() >= 1.0;
    assert!(near_multiple, "λ = {} not commensurate with {expected}", grid.lambda);
}
