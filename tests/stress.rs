//! Stress tests: long streams, atom-count changes mid-stream, escape-heavy
//! data, extreme bounds, and mixed entropy stages — the interactions unit
//! tests don't reach.

use mdz::core::{Compressor, Decompressor, EntropyStage, ErrorBound, MdzConfig, Method};

fn check(buf: &[Vec<f64>], out: &[Vec<f64>], eps: f64, tag: &str) {
    assert_eq!(buf.len(), out.len(), "{tag}");
    for (s, o) in buf.iter().zip(out.iter()) {
        for (a, b) in s.iter().zip(o.iter()) {
            if a.is_finite() {
                assert!((a - b).abs() <= eps * (1.0 + 1e-9), "{tag}: |{a}-{b}| > {eps}");
            } else {
                assert_eq!(a.to_bits(), b.to_bits(), "{tag}");
            }
        }
    }
}

fn xorshift(seed: u64) -> impl FnMut() -> f64 {
    let mut s = seed | 1;
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[test]
fn hundred_buffer_stream_all_methods() {
    // Long stream: exercises ADP re-trials (interval 50) and reference reuse.
    let eps = 1e-3;
    for method in [Method::Vq, Method::Vqt, Method::Mt, Method::Mt2, Method::Adaptive] {
        let cfg = MdzConfig::new(ErrorBound::Absolute(eps)).with_method(method);
        let mut c = Compressor::new(cfg);
        let mut d = Decompressor::new();
        let mut rng = xorshift(0xABCDEF);
        for t in 0..110 {
            let buf: Vec<Vec<f64>> = (0..3)
                .map(|k| {
                    (0..50)
                        .map(|i| {
                            (i % 5) as f64 * 2.0 + (rng() - 0.5) * 0.01 + (t * 3 + k) as f64 * 1e-5
                        })
                        .collect()
                })
                .collect();
            let block = c.compress_buffer(&buf).unwrap();
            let out = d.decompress_block(&block).unwrap();
            check(&buf, &out, eps, &format!("{method:?} buffer {t}"));
        }
    }
}

#[test]
fn atom_count_changes_mid_stream() {
    // Growing systems (e.g. helium insertion) change N between buffers; the
    // reference-snapshot logic must reset cleanly on both sides.
    let eps = 1e-3;
    for method in [Method::Mt, Method::Mt2, Method::Adaptive] {
        let cfg = MdzConfig::new(ErrorBound::Absolute(eps)).with_method(method);
        let mut c = Compressor::new(cfg);
        let mut d = Decompressor::new();
        for (t, n) in [40usize, 40, 55, 55, 30, 70].into_iter().enumerate() {
            let buf: Vec<Vec<f64>> = (0..4)
                .map(|k| (0..n).map(|i| i as f64 + (t * 4 + k) as f64 * 1e-4).collect())
                .collect();
            let block = c.compress_buffer(&buf).unwrap();
            let out = d.decompress_block(&block).unwrap();
            check(&buf, &out, eps, &format!("{method:?} N={n}"));
        }
    }
}

#[test]
fn escape_heavy_data() {
    // Values spanning 20 orders of magnitude force most points out of the
    // quantizer range → heavy escape traffic.
    let mut rng = xorshift(7);
    let buf: Vec<Vec<f64>> = (0..5)
        .map(|_| {
            (0..200)
                .map(|i| {
                    let mag = 10f64.powi((i % 20) - 10);
                    (rng() - 0.5) * mag
                })
                .collect()
        })
        .collect();
    let eps = 1e-12;
    for method in [Method::Vq, Method::Vqt, Method::Mt] {
        let cfg = MdzConfig::new(ErrorBound::Absolute(eps)).with_method(method);
        let mut c = Compressor::new(cfg);
        let block = c.compress_buffer(&buf).unwrap();
        let out = Decompressor::new().decompress_block(&block).unwrap();
        check(&buf, &out, eps, &format!("{method:?} escapes"));
    }
}

#[test]
fn extreme_bounds() {
    let buf: Vec<Vec<f64>> =
        (0..3).map(|t| (0..60).map(|i| i as f64 + t as f64).collect()).collect();
    for eps in [1e-15, 1e-9, 1.0, 1e6] {
        let cfg = MdzConfig::new(ErrorBound::Absolute(eps));
        let mut c = Compressor::new(cfg);
        let block = c.compress_buffer(&buf).unwrap();
        let out = Decompressor::new().decompress_block(&block).unwrap();
        check(&buf, &out, eps, &format!("eps {eps}"));
    }
}

#[test]
fn single_value_buffers() {
    for method in [Method::Vq, Method::Vqt, Method::Mt, Method::Mt2] {
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-6)).with_method(method);
        let mut c = Compressor::new(cfg);
        let mut d = Decompressor::new();
        for t in 0..5 {
            let buf = vec![vec![42.0 + t as f64 * 1e-7]];
            let block = c.compress_buffer(&buf).unwrap();
            let out = d.decompress_block(&block).unwrap();
            check(&buf, &out, 1e-6, &format!("{method:?} single"));
        }
    }
}

#[test]
fn entropy_stage_mixing_across_streams() {
    // Huffman-coded and range-coded blocks from independent streams decode
    // independently of which compressor produced neighbours.
    let eps = 1e-4;
    let buf: Vec<Vec<f64>> =
        (0..6).map(|t| (0..150).map(|i| (i % 9) as f64 + t as f64 * 1e-5).collect()).collect();
    let mk = |stage| {
        let cfg = MdzConfig::new(ErrorBound::Absolute(eps)).with_entropy(stage);
        Compressor::new(cfg).compress_buffer(&buf).unwrap()
    };
    let huff = mk(EntropyStage::Huffman);
    let range = mk(EntropyStage::Range);
    for block in [&huff, &range] {
        let out = Decompressor::new().decompress_block(block).unwrap();
        check(&buf, &out, eps, "mixed stages");
    }
    // The decoders dispatch on the block flag, not ambient state.
    let mut d = Decompressor::new();
    d.decompress_block(&huff).unwrap();
    d.decompress_block(&range).unwrap();
}

#[test]
fn denormals_and_tiny_magnitudes() {
    let buf: Vec<Vec<f64>> = (0..3)
        .map(|_| vec![f64::MIN_POSITIVE, 5e-324, 1e-300, -1e-300, 0.0, -0.0, 1e-308])
        .collect();
    let eps = 1e-310;
    let cfg = MdzConfig::new(ErrorBound::Absolute(eps));
    let mut c = Compressor::new(cfg);
    let block = c.compress_buffer(&buf).unwrap();
    let out = Decompressor::new().decompress_block(&block).unwrap();
    check(&buf, &out, eps, "denormals");
}

#[test]
fn adversarial_lattice_plus_outliers() {
    // Mostly-crystal data with rare wild outliers: the grid must survive
    // detection and the outliers must escape.
    let mut rng = xorshift(99);
    let buf: Vec<Vec<f64>> = (0..8)
        .map(|_| {
            (0..300)
                .map(|i| {
                    if i % 97 == 0 {
                        (rng() - 0.5) * 1e9
                    } else {
                        (i % 15) as f64 * 1.5 + (rng() - 0.5) * 0.02
                    }
                })
                .collect()
        })
        .collect();
    let eps = 1e-3;
    for method in [Method::Vq, Method::Adaptive] {
        let cfg = MdzConfig::new(ErrorBound::Absolute(eps)).with_method(method);
        let mut c = Compressor::new(cfg);
        let block = c.compress_buffer(&buf).unwrap();
        let out = Decompressor::new().decompress_block(&block).unwrap();
        check(&buf, &out, eps, &format!("{method:?} outliers"));
    }
}
