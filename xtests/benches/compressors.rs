//! Criterion benchmarks for whole-buffer compression: MDZ's three methods
//! plus every baseline, on a Helium-B-like buffer (the paper's Fig. 9/15
//! performance subject).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mdz_bench::harness::{mdz_codec, standard_codecs};
use mdz_core::Method;
use mdz_sim::{datasets, DatasetKind, Scale};

fn helium_buffer() -> (Vec<Vec<f64>>, f64) {
    let d = datasets::generate(DatasetKind::HeliumB, Scale::Small, 1);
    let series = d.axis_series(0);
    let buf: Vec<Vec<f64>> = series.into_iter().take(10).collect();
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for s in &buf {
        for &v in s {
            min = min.min(v);
            max = max.max(v);
        }
    }
    (buf, 1e-3 * (max - min))
}

fn bench_mdz_methods(c: &mut Criterion) {
    let (buf, eps) = helium_buffer();
    let bytes = (buf.len() * buf[0].len() * 8) as u64;
    let mut g = c.benchmark_group("mdz_compress");
    g.throughput(Throughput::Bytes(bytes));
    for method in [Method::Vq, Method::Vqt, Method::Mt] {
        let mut codec = mdz_codec(method);
        // Warm the stream state (grid detection happens once per stream).
        let _ = codec.compress(&buf, eps);
        g.bench_function(format!("{method:?}"), |b| {
            b.iter(|| codec.compress(black_box(&buf), eps))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("mdz_decompress");
    g.throughput(Throughput::Bytes(bytes));
    for method in [Method::Vq, Method::Vqt, Method::Mt] {
        let mut codec = mdz_codec(method);
        let blob = codec.compress(&buf, eps);
        g.bench_function(format!("{method:?}"), |b| {
            b.iter(|| codec.decompress(black_box(&blob)).unwrap())
        });
    }
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let (buf, eps) = helium_buffer();
    let bytes = (buf.len() * buf[0].len() * 8) as u64;
    let mut g = c.benchmark_group("baseline_compress");
    g.throughput(Throughput::Bytes(bytes));
    for codec in standard_codecs().iter_mut().skip(1) {
        g.bench_function(codec.name(), |b| b.iter(|| codec.compress(black_box(&buf), eps)));
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mdz_methods, bench_baselines
}
criterion_main!(benches);
