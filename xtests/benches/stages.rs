//! Criterion microbenchmarks for the pipeline stages MDZ is built from:
//! Huffman coding, LZ77, 1-D k-means level detection, and quantization.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mdz_core::quant::LinearQuantizer;
use mdz_entropy::{huffman_decode, huffman_encode, range_decode, range_encode};
use mdz_kmeans::{detect_levels, SelectConfig};
use mdz_lossless::lz77;

fn quantization_codes(n: usize) -> Vec<u32> {
    // SZ-like geometric distribution centred at 512.
    let mut s = 0x9E3779B97F4A7C15u64;
    (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = (s >> 40) as f64 / (1u64 << 24) as f64;
            let mag = (-r.max(1e-9).ln() * 2.0) as i64;
            let sign = if s & 1 == 0 { 1 } else { -1 };
            (512 + sign * mag) as u32
        })
        .collect()
}

fn lattice_values(n: usize) -> Vec<f64> {
    let mut s = 7u64;
    (0..n)
        .map(|i| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            (i % 24) as f64 * 1.8 + u * 0.05
        })
        .collect()
}

fn bench_huffman(c: &mut Criterion) {
    let symbols = quantization_codes(100_000);
    let encoded = huffman_encode(&symbols);
    let mut g = c.benchmark_group("huffman");
    g.throughput(Throughput::Elements(symbols.len() as u64));
    g.bench_function("encode_100k", |b| b.iter(|| huffman_encode(black_box(&symbols))));
    g.bench_function("decode_100k", |b| b.iter(|| huffman_decode(black_box(&encoded)).unwrap()));
    g.finish();
}

fn bench_range_coder(c: &mut Criterion) {
    let symbols = quantization_codes(100_000);
    let encoded = range_encode(&symbols);
    let mut g = c.benchmark_group("range_coder");
    g.throughput(Throughput::Elements(symbols.len() as u64));
    g.bench_function("encode_100k", |b| b.iter(|| range_encode(black_box(&symbols))));
    g.bench_function("decode_100k", |b| b.iter(|| range_decode(black_box(&encoded)).unwrap()));
    g.finish();
}

fn bench_float_codecs(c: &mut Criterion) {
    let values = lattice_values(50_000);
    let mut g = c.benchmark_group("lossless_float");
    g.throughput(Throughput::Bytes((values.len() * 8) as u64));
    g.bench_function("gorilla_compress", |b| {
        b.iter(|| mdz_lossless::gorilla::compress(black_box(&values)))
    });
    g.bench_function("fpc_compress", |b| {
        b.iter(|| mdz_lossless::fpc::compress(black_box(&values)))
    });
    g.bench_function("fpzip_like_compress", |b| {
        b.iter(|| mdz_lossless::fpzip_like::compress(black_box(&values)))
    });
    g.finish();
}

fn bench_lz77(c: &mut Criterion) {
    // Seq-2-like byte stream: long runs with occasional changes.
    let mut data = Vec::with_capacity(200_000);
    for i in 0..200_000u32 {
        data.push((i / 977 % 7) as u8);
    }
    let mut g = c.benchmark_group("lz77");
    g.throughput(Throughput::Bytes(data.len() as u64));
    for level in [lz77::Level::Fast, lz77::Level::Default, lz77::Level::High] {
        g.bench_function(format!("compress_{level:?}"), |b| {
            b.iter(|| lz77::compress(black_box(&data), level))
        });
    }
    let compressed = lz77::compress(&data, lz77::Level::Default);
    g.bench_function("decompress", |b| {
        b.iter(|| lz77::decompress(black_box(&compressed)).unwrap())
    });
    g.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let values = lattice_values(50_000);
    let cfg = SelectConfig::default();
    c.bench_function("kmeans_detect_levels_50k", |b| {
        b.iter(|| detect_levels(black_box(&values), &cfg))
    });
}

fn bench_quantizer(c: &mut Criterion) {
    let values = lattice_values(100_000);
    let quant = LinearQuantizer::new(1e-3, 512);
    let mut g = c.benchmark_group("quantizer");
    g.throughput(Throughput::Elements(values.len() as u64));
    g.bench_function("quantize_100k", |b| {
        b.iter(|| {
            let mut recon = 0.0;
            let mut acc = 0u64;
            for &v in &values {
                match quant.quantize(v, (v * 1000.0).round() / 1000.0, &mut recon) {
                    mdz_core::quant::Quantized::Code(code) => acc += u64::from(code),
                    mdz_core::quant::Quantized::Escape => acc += 1,
                }
            }
            acc
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_huffman, bench_range_coder, bench_float_codecs, bench_lz77, bench_kmeans, bench_quantizer
}
criterion_main!(benches);
