//! Empty library target: this package only carries the opt-in test and
//! bench targets declared in `Cargo.toml`. See the manifest header for why
//! it lives outside the workspace.
