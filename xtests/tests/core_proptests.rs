//! Property tests for the MDZ core invariants: the error bound holds for
//! every method × bound × data shape, non-finite values survive bit-exactly,
//! and decoders never panic on malformed blocks.

use mdz_core::{Compressor, Decompressor, EntropyStage, ErrorBound, MdzConfig, Method};
use proptest::prelude::*;

/// Buffers spanning the paper's regimes: lattice-like, smooth-in-time,
/// random, and mixed.
fn buffer_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    let m = 1usize..6;
    let n = 1usize..120;
    (m, n, 0usize..4, any::<u64>()).prop_map(|(m, n, kind, seed)| {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..m)
            .map(|t| {
                (0..n)
                    .map(|i| match kind {
                        0 => (i % 7) as f64 * 3.0 + (next() - 0.5) * 0.05, // lattice
                        1 => i as f64 * 0.01 + t as f64 * 1e-5,            // smooth
                        2 => next() * 200.0 - 100.0,                       // random
                        _ => {
                            // mixed magnitudes
                            let base = if i % 2 == 0 { 1e6 } else { 1e-6 };
                            base * (next() - 0.5)
                        }
                    })
                    .collect()
            })
            .collect()
    })
}

fn methods() -> impl Strategy<Value = Method> {
    prop_oneof![
        Just(Method::Vq),
        Just(Method::Vqt),
        Just(Method::Mt),
        Just(Method::Mt2),
        Just(Method::Adaptive),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn error_bound_always_holds(
        snaps in buffer_strategy(),
        method in methods(),
        eps_exp in -6i32..-1,
        seq2 in any::<bool>(),
        range_coded in any::<bool>(),
    ) {
        let eps = 10f64.powi(eps_exp);
        let entropy = if range_coded { EntropyStage::Range } else { EntropyStage::Huffman };
        let cfg = MdzConfig::new(ErrorBound::Absolute(eps))
            .with_method(method)
            .with_seq2(seq2)
            .with_entropy(entropy);
        let mut c = Compressor::new(cfg);
        let block = c.compress_buffer(&snaps).unwrap();
        let mut d = Decompressor::new();
        let out = d.decompress_block(&block).unwrap();
        prop_assert_eq!(out.len(), snaps.len());
        for (s, o) in snaps.iter().zip(out.iter()) {
            for (a, b) in s.iter().zip(o.iter()) {
                prop_assert!((a - b).abs() <= eps, "{} vs {} (eps {})", a, b, eps);
            }
        }
    }

    #[test]
    fn relative_bound_holds(
        snaps in buffer_strategy(),
        method in methods(),
    ) {
        let rel = 1e-3;
        let flat: Vec<f64> = snaps.iter().flatten().copied().collect();
        let eps = ErrorBound::ValueRangeRelative(rel).absolute_for(&flat);
        let cfg = MdzConfig::new(ErrorBound::ValueRangeRelative(rel)).with_method(method);
        let mut c = Compressor::new(cfg);
        let block = c.compress_buffer(&snaps).unwrap();
        let out = Decompressor::new().decompress_block(&block).unwrap();
        for (s, o) in snaps.iter().zip(out.iter()) {
            for (a, b) in s.iter().zip(o.iter()) {
                prop_assert!((a - b).abs() <= eps * (1.0 + 1e-12));
            }
        }
    }

    #[test]
    fn multi_buffer_streams_stay_bounded(
        buffers in prop::collection::vec(buffer_strategy(), 1..4),
        method in methods(),
    ) {
        // Force all buffers to a common width so time prediction engages.
        let n = buffers.iter().flat_map(|b| b.iter()).map(Vec::len).min().unwrap_or(1);
        let buffers: Vec<Vec<Vec<f64>>> = buffers
            .into_iter()
            .map(|b| b.into_iter().map(|s| s.into_iter().take(n).collect()).collect())
            .collect();
        let eps = 1e-3;
        let cfg = MdzConfig::new(ErrorBound::Absolute(eps)).with_method(method);
        let mut c = Compressor::new(cfg);
        let mut d = Decompressor::new();
        for buf in &buffers {
            let block = c.compress_buffer(buf).unwrap();
            let out = d.decompress_block(&block).unwrap();
            for (s, o) in buf.iter().zip(out.iter()) {
                for (a, b) in s.iter().zip(o.iter()) {
                    prop_assert!((a - b).abs() <= eps);
                }
            }
        }
    }

    #[test]
    fn decompressor_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..400)) {
        let mut d = Decompressor::new();
        let _ = d.decompress_block(&data);
    }

    #[test]
    fn decompressor_never_panics_on_bit_flips(
        snaps in buffer_strategy(),
        flip_byte in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3));
        let mut c = Compressor::new(cfg);
        let mut block = c.compress_buffer(&snaps).unwrap();
        let i = flip_byte.index(block.len());
        block[i] ^= 1 << flip_bit;
        let mut d = Decompressor::new();
        let _ = d.decompress_block(&block);
    }

    #[test]
    fn non_finite_values_bit_exact(
        mut snaps in buffer_strategy(),
        method in methods(),
        which in any::<prop::sample::Index>(),
    ) {
        let m = snaps.len();
        let n = snaps[0].len();
        let flat = which.index(m * n);
        snaps[flat / n][flat % n] = f64::NAN;
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(method);
        let mut c = Compressor::new(cfg);
        let block = c.compress_buffer(&snaps).unwrap();
        let out = Decompressor::new().decompress_block(&block).unwrap();
        prop_assert!(out[flat / n][flat % n].is_nan());
    }
}
