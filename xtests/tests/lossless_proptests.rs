//! Property-based round-trip and robustness tests for all lossless codecs.

use mdz_lossless::{fpc, fpzip_like, gorilla, lz77, rle};
use proptest::prelude::*;

/// Arbitrary but finite-heavy f64 streams: mixes smooth, constant, and noisy.
fn f64_stream() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            4 => -1e6f64..1e6,
            1 => Just(0.0f64),
            1 => any::<f64>().prop_filter("finite", |v| v.is_finite()),
        ],
        0..400,
    )
}

proptest! {
    #[test]
    fn lz77_round_trip_random(data in prop::collection::vec(any::<u8>(), 0..4000)) {
        for level in [lz77::Level::Fast, lz77::Level::Default, lz77::Level::High] {
            let c = lz77::compress(&data, level);
            prop_assert_eq!(lz77::decompress(&c).unwrap(), data.clone());
        }
    }

    #[test]
    fn lz77_round_trip_repetitive(
        phrase in prop::collection::vec(any::<u8>(), 1..50),
        reps in 1usize..200,
    ) {
        let mut data = Vec::new();
        for _ in 0..reps {
            data.extend_from_slice(&phrase);
        }
        let c = lz77::compress(&data, lz77::Level::Default);
        prop_assert_eq!(lz77::decompress(&c).unwrap(), data);
    }

    #[test]
    fn lz77_decompress_never_panics(garbage in prop::collection::vec(any::<u8>(), 0..500)) {
        let _ = lz77::decompress(&garbage);
    }

    #[test]
    fn gorilla_bit_exact(data in f64_stream()) {
        let c = gorilla::compress(&data);
        let d = gorilla::decompress(&c).unwrap();
        prop_assert_eq!(d.len(), data.len());
        for (a, b) in data.iter().zip(d.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn fpc_bit_exact(data in f64_stream()) {
        let c = fpc::compress(&data);
        let d = fpc::decompress(&c).unwrap();
        prop_assert_eq!(d.len(), data.len());
        for (a, b) in data.iter().zip(d.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn fpzip_like_bit_exact(data in f64_stream()) {
        let c = fpzip_like::compress(&data);
        let d = fpzip_like::decompress(&c).unwrap();
        prop_assert_eq!(d.len(), data.len());
        for (a, b) in data.iter().zip(d.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn rle_round_trip(data in prop::collection::vec(0u8..4, 0..2000)) {
        prop_assert_eq!(rle::decompress(&rle::compress(&data)).unwrap(), data);
    }

    #[test]
    fn float_decoders_never_panic(garbage in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = gorilla::decompress(&garbage);
        let _ = fpc::decompress(&garbage);
        let _ = fpzip_like::decompress(&garbage);
        let _ = rle::decompress(&garbage);
    }
}
