//! Property-based tests for the exact 1-D k-means DP and level-grid fitting.

use mdz_kmeans::{detect_levels, kmeans_1d, LevelGrid, SelectConfig};
use proptest::prelude::*;

/// Brute-force optimal SSE over contiguous partitions (exponential; small N).
fn brute_force(sorted: &[f64], k: usize) -> f64 {
    fn sse(pts: &[f64]) -> f64 {
        let m = pts.iter().sum::<f64>() / pts.len() as f64;
        pts.iter().map(|v| (v - m) * (v - m)).sum()
    }
    fn rec(pts: &[f64], k: usize) -> f64 {
        if k == 1 {
            return sse(pts);
        }
        if pts.len() <= k {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        for split in 1..pts.len() {
            best = best.min(rec(&pts[..split], k - 1) + sse(&pts[split..]));
        }
        best
    }
    rec(sorted, k)
}

fn distinct(sorted: &[f64]) -> usize {
    1 + sorted.windows(2).filter(|w| w[0] < w[1]).count()
}

proptest! {
    #[test]
    fn dp_is_optimal_vs_brute_force(
        mut data in prop::collection::vec(-100.0f64..100.0, 1..12),
        k in 1usize..5,
    ) {
        data.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let c = kmeans_1d(&data, k);
        let bf = brute_force(&data, k.min(distinct(&data)));
        prop_assert!((c.cost - bf).abs() < 1e-6 * (1.0 + bf), "dp {} bf {}", c.cost, bf);
    }

    #[test]
    fn dp_cost_never_negative_and_boundaries_valid(
        mut data in prop::collection::vec(-1e6f64..1e6, 1..200),
        k in 1usize..20,
    ) {
        data.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let c = kmeans_1d(&data, k);
        prop_assert!(c.cost >= 0.0);
        prop_assert_eq!(c.starts[0], 0);
        for w in c.starts.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        prop_assert!(*c.starts.last().unwrap() < data.len());
        // Centroids ascend.
        for w in c.centroids.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-9);
        }
    }

    #[test]
    fn more_clusters_never_cost_more(
        mut data in prop::collection::vec(-1e3f64..1e3, 2..100),
    ) {
        data.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = f64::INFINITY;
        for k in 1..=6usize {
            let c = kmeans_1d(&data, k);
            prop_assert!(c.cost <= prev + 1e-9 * (1.0 + prev.abs()));
            prev = c.cost;
        }
    }

    #[test]
    fn grid_fit_recovers_planted_lattice(
        lambda in 0.1f64..10.0,
        mu in -100.0f64..100.0,
        k in 3usize..20,
    ) {
        let centroids: Vec<f64> = (0..k).map(|i| mu + lambda * i as f64).collect();
        let g = LevelGrid::fit(&centroids).unwrap();
        prop_assert!((g.lambda - lambda).abs() < 1e-6 * lambda, "λ {} vs {}", g.lambda, lambda);
        prop_assert!(g.fit_error < 1e-6);
        // μ may differ from the planted one by an integer multiple of λ.
        let phase = ((g.mu - mu) / lambda - ((g.mu - mu) / lambda).round()).abs();
        prop_assert!(phase < 1e-6, "phase {}", phase);
    }

    #[test]
    fn detect_levels_never_panics(data in prop::collection::vec(any::<f64>(), 0..300)) {
        let _ = detect_levels(&data, &SelectConfig::default());
    }

    #[test]
    fn detect_levels_finds_planted_levels(
        levels in 2usize..15,
        spacing in 0.5f64..5.0,
        per in 40usize..80,
    ) {
        let mut s = 7u64;
        let data: Vec<f64> = (0..levels * per)
            .map(|i| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let u = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                (i % levels) as f64 * spacing + u * spacing * 0.02
            })
            .collect();
        let cfg = SelectConfig { min_samples: 512, ..Default::default() };
        let g = detect_levels(&data, &cfg).expect("grid");
        prop_assert!((g.lambda - spacing).abs() < 0.05 * spacing,
            "λ {} vs {}", g.lambda, spacing);
    }
}
