//! Property tests: every baseline honours the error bound on arbitrary
//! buffers and rejects malformed input without panicking.

use mdz_baselines::all_baselines;
use proptest::prelude::*;

fn buffer_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..6, 1usize..80, 0usize..3, any::<u64>()).prop_map(|(m, n, kind, seed)| {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..m)
            .map(|t| {
                (0..n)
                    .map(|i| match kind {
                        0 => (i % 9) as f64 * 2.5 + (next() - 0.5) * 0.03,
                        1 => i as f64 * 0.05 + t as f64 * 1e-4,
                        _ => next() * 100.0 - 50.0,
                    })
                    .collect()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_baselines_respect_bound(
        snaps in buffer_strategy(),
        eps_exp in -5i32..-1,
    ) {
        let eps = 10f64.powi(eps_exp);
        for c in all_baselines().iter_mut() {
            let blob = c.compress(&snaps, eps);
            let out = c.decompress(&blob).unwrap();
            prop_assert_eq!(out.len(), snaps.len());
            for (s, o) in snaps.iter().zip(out.iter()) {
                for (a, b) in s.iter().zip(o.iter()) {
                    prop_assert!(
                        (a - b).abs() <= eps * (1.0 + 1e-9),
                        "{}: |{} - {}| > {}", c.name(), a, b, eps
                    );
                }
            }
        }
    }

    #[test]
    fn all_baselines_reject_garbage(data in prop::collection::vec(any::<u8>(), 0..200)) {
        for c in all_baselines().iter_mut() {
            let _ = c.decompress(&data); // must not panic
        }
    }

    #[test]
    fn all_baselines_survive_truncation(
        snaps in buffer_strategy(),
        frac in 0.0f64..1.0,
    ) {
        for c in all_baselines().iter_mut() {
            let blob = c.compress(&snaps, 1e-3);
            let cut = (blob.len() as f64 * frac) as usize;
            let _ = c.decompress(&blob[..cut]); // must not panic
        }
    }
}
