//! Property-based tests for bit I/O, varints, and Huffman coding.

use mdz_entropy::{
    huffman_decode, huffman_encode, read_ivarint, read_uvarint, write_ivarint, write_uvarint,
    zigzag_decode, zigzag_encode, BitReader, BitWriter,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn bitio_round_trip(ops in prop::collection::vec((any::<u64>(), 0u32..=64), 0..200)) {
        let mut w = BitWriter::new();
        for &(v, n) in &ops {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &ops {
            let masked = if n == 64 { v } else { v & ((1u64 << n) - 1) };
            prop_assert_eq!(r.read_bits(n).unwrap(), masked);
        }
    }

    #[test]
    fn uvarint_round_trip(values in prop::collection::vec(any::<u64>(), 0..100)) {
        let mut buf = Vec::new();
        for &v in &values {
            write_uvarint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            prop_assert_eq!(read_uvarint(&buf, &mut pos).unwrap(), v);
        }
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn ivarint_round_trip(values in prop::collection::vec(any::<i64>(), 0..100)) {
        let mut buf = Vec::new();
        for &v in &values {
            write_ivarint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            prop_assert_eq!(read_ivarint(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_is_bijective(v in any::<i64>()) {
        prop_assert_eq!(zigzag_decode(zigzag_encode(v)), v);
    }

    #[test]
    fn zigzag_preserves_magnitude_order(a in -1000i64..1000, b in -1000i64..1000) {
        // Smaller |v| never gets a larger code class (within a factor of 2).
        if a.unsigned_abs() < b.unsigned_abs() {
            prop_assert!(zigzag_encode(a) < 2 * zigzag_encode(b).max(1));
        }
    }

    #[test]
    fn huffman_round_trip_small_alphabet(
        symbols in prop::collection::vec(0u32..16, 0..2000)
    ) {
        let enc = huffman_encode(&symbols);
        prop_assert_eq!(huffman_decode(&enc).unwrap(), symbols);
    }

    #[test]
    fn huffman_round_trip_arbitrary_symbols(
        symbols in prop::collection::vec(any::<u32>(), 0..500)
    ) {
        let enc = huffman_encode(&symbols);
        prop_assert_eq!(huffman_decode(&enc).unwrap(), symbols);
    }

    #[test]
    fn huffman_decode_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = huffman_decode(&data);
    }

    #[test]
    fn huffman_truncation_never_panics(
        symbols in prop::collection::vec(0u32..64, 1..500),
        frac in 0.0f64..1.0,
    ) {
        let enc = huffman_encode(&symbols);
        let cut = ((enc.len() as f64) * frac) as usize;
        let _ = huffman_decode(&enc[..cut]);
    }
}
