//! Property tests for the MD substrate: physical invariants of the engine
//! and statistical invariants of the dataset generators.

use mdz_sim::cells::CellList;
use mdz_sim::crystal::{CosmoCloud, RandomWalkCloud, VibratingCrystal};
use mdz_sim::lattice::{self, Structure};
use mdz_sim::vec3::Vec3;
use mdz_sim::{LjSimulation, SimConfig};
use proptest::prelude::*;
use std::collections::HashSet;

fn pseudo_positions(n: usize, box_len: f64, seed: u64) -> Vec<Vec3> {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n).map(|_| Vec3::new(next(), next(), next()) * box_len).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cell_list_always_matches_brute_force(
        n in 2usize..120,
        box_len in 4.0f64..20.0,
        r_cut in 1.0f64..4.0,
        seed in any::<u64>(),
    ) {
        let pts = pseudo_positions(n, box_len, seed);
        let mut brute = HashSet::new();
        for i in 0..n {
            for j in i + 1..n {
                let d = (pts[i] - pts[j]).min_image(box_len);
                if d.norm_sq() <= r_cut * r_cut {
                    brute.insert((i, j));
                }
            }
        }
        let mut cl = CellList::new(box_len, r_cut);
        cl.rebuild(&pts);
        let mut fast = HashSet::new();
        let mut duplicate = false;
        cl.for_each_pair(&pts, |i, j, d| {
            if d.norm_sq() <= r_cut * r_cut {
                let key = if i < j { (i, j) } else { (j, i) };
                duplicate |= !fast.insert(key);
            }
        });
        prop_assert!(!duplicate, "a pair was visited twice");
        prop_assert_eq!(fast, brute);
    }

    #[test]
    fn lattice_sites_fill_requested_count(
        n in 1usize..600,
        structure in prop_oneof![Just(Structure::Sc), Just(Structure::Bcc), Just(Structure::Fcc)],
    ) {
        let (nx, ny, nz) = lattice::cells_for(structure, n);
        let sites = lattice::build(structure, nx, ny, nz, 2.0);
        prop_assert!(sites.len() >= n);
        // Capacity is not wildly overshooting (within one shell of cells).
        prop_assert!(sites.len() <= (n + structure.sites_per_cell() * (nx * ny + ny * nz + nx * nz + nx + ny + nz + 1)) * 2);
    }

    #[test]
    fn vibrating_crystal_stays_near_sites(
        sigma in 0.001f64..0.2,
        corr in 0.0f64..0.999,
        steps in 1usize..30,
        seed in any::<u64>(),
    ) {
        let sites = lattice::build(Structure::Sc, 3, 3, 3, 2.0);
        let mut c = VibratingCrystal::new(sites.clone(), sigma, corr, seed);
        for _ in 0..steps {
            c.advance();
        }
        let s = c.snapshot();
        // Displacements are OU-stationary: almost surely within 6σ.
        for (i, site) in sites.iter().enumerate() {
            let d = Vec3::new(s.x[i], s.y[i], s.z[i]) - *site;
            prop_assert!(d.norm() < 6.0 * sigma + 1e-12, "excursion {}", d.norm());
        }
    }

    #[test]
    fn random_walk_cloud_is_finite_and_deterministic(
        n in 1usize..200,
        steps in 0usize..10,
        seed in any::<u64>(),
    ) {
        let mut a = RandomWalkCloud::new(n, 0.5, 0.1, 0.5, seed);
        let mut b = RandomWalkCloud::new(n, 0.5, 0.1, 0.5, seed);
        for _ in 0..steps {
            a.advance();
            b.advance();
        }
        let (sa, sb) = (a.snapshot(), b.snapshot());
        prop_assert_eq!(&sa, &sb);
        for &v in sa.x.iter().chain(sa.y.iter()).chain(sa.z.iter()) {
            prop_assert!(v.is_finite());
        }
    }

    #[test]
    fn cosmo_cloud_positions_finite(
        n in 1usize..300,
        clusters in 1usize..10,
        steps in 0usize..8,
        seed in any::<u64>(),
    ) {
        let mut c = CosmoCloud::new(n, clusters, 3.0, 100.0, 0.05, seed);
        for _ in 0..steps {
            c.advance();
        }
        let s = c.snapshot();
        prop_assert_eq!(s.len(), n);
        for &v in s.x.iter().chain(s.y.iter()).chain(s.z.iter()) {
            prop_assert!(v.is_finite());
        }
    }
}

#[test]
fn lj_energy_conservation_over_seeds() {
    for seed in [1u64, 2, 3] {
        let cfg = SimConfig { n_target: 108, gamma: 0.0, dt: 0.002, seed, ..Default::default() };
        let mut sim = LjSimulation::new(cfg);
        sim.run(20);
        let e0 = sim.total_energy();
        sim.run(150);
        let drift = (sim.total_energy() - e0).abs() / sim.len() as f64;
        assert!(drift < 0.02, "seed {seed}: drift {drift}");
    }
}

#[test]
fn lj_rdf_has_liquid_structure() {
    // The melted LJ system must show the canonical first coordination peak
    // near r ≈ 1.1 σ and g(r) → 1 at large r.
    let mut sim = LjSimulation::new(SimConfig { n_target: 500, ..Default::default() });
    sim.run(400);
    let s = sim.snapshot();
    let cfg = mdz_analysis::rdf::RdfConfig {
        box_len: sim.box_len,
        r_max: (sim.box_len / 2.0).min(3.5),
        bins: 70,
    };
    let (centers, g) = mdz_analysis::rdf::rdf(&s.x, &s.y, &s.z, &cfg);
    let (peak_r, peak_g) = centers
        .iter()
        .zip(g.iter())
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(c, v)| (*c, *v))
        .unwrap();
    assert!((0.95..1.35).contains(&peak_r), "first peak at {peak_r}");
    assert!(peak_g > 1.8, "peak height {peak_g}");
    // Tail approaches the ideal-gas value.
    let tail: f64 = g.iter().rev().take(8).sum::<f64>() / 8.0;
    assert!((tail - 1.0).abs() < 0.35, "tail {tail}");
}
