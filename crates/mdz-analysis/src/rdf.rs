//! Radial distribution function `g(r)` under periodic boundaries.
//!
//! The paper's Fig. 14 validates physics fidelity: a good lossy compressor
//! must leave `g(r)` — the probability of finding a neighbour at distance
//! `r`, normalized by the ideal-gas density — unchanged. We bin pair
//! distances with a cell grid so the computation is O(N) at fixed cutoff.

/// RDF computation parameters.
#[derive(Debug, Clone, Copy)]
pub struct RdfConfig {
    /// Cubic box side length (positions are wrapped into it).
    pub box_len: f64,
    /// Maximum distance; must be ≤ `box_len / 2`.
    pub r_max: f64,
    /// Number of histogram bins.
    pub bins: usize,
}

/// Computes `g(r)` for one snapshot given per-axis coordinates.
///
/// Returns `(r_centers, g)` of length `cfg.bins`.
///
/// # Panics
/// Panics on empty/ragged input or invalid configuration.
pub fn rdf(x: &[f64], y: &[f64], z: &[f64], cfg: &RdfConfig) -> (Vec<f64>, Vec<f64>) {
    let n = x.len();
    assert!(n >= 2, "need at least two particles");
    assert!(y.len() == n && z.len() == n, "ragged axes");
    assert!(cfg.box_len > 0.0 && cfg.bins > 0);
    assert!(
        cfg.r_max > 0.0 && cfg.r_max <= cfg.box_len / 2.0 + 1e-12,
        "r_max must be within half the box"
    );
    let l = cfg.box_len;
    let dr = cfg.r_max / cfg.bins as f64;
    let mut hist = vec![0u64; cfg.bins];

    // Cell grid with side ≥ r_max.
    let n_cells = ((l / cfg.r_max).floor() as usize).max(1);
    let cell_len = l / n_cells as f64;
    let cell_of = |v: f64| -> usize {
        let c = (v.rem_euclid(l) / cell_len) as usize;
        c.min(n_cells - 1)
    };
    let mut heads = vec![usize::MAX; n_cells * n_cells * n_cells];
    let mut next = vec![usize::MAX; n];
    for i in 0..n {
        let c = (cell_of(x[i]) * n_cells + cell_of(y[i])) * n_cells + cell_of(z[i]);
        next[i] = heads[c];
        heads[c] = i;
    }

    let min_image = |mut d: f64| -> f64 {
        if d > l / 2.0 {
            d -= l;
        } else if d < -l / 2.0 {
            d += l;
        }
        d
    };
    let r_max_sq = cfg.r_max * cfg.r_max;
    let mut record = |i: usize, j: usize| {
        let dx = min_image(x[i] - x[j]);
        let dy = min_image(y[i] - y[j]);
        let dz = min_image(z[i] - z[j]);
        let r2 = dx * dx + dy * dy + dz * dz;
        if r2 < r_max_sq && r2 > 0.0 {
            let bin = (r2.sqrt() / dr) as usize;
            if bin < hist.len() {
                hist[bin] += 2; // both i→j and j→i
            }
        }
    };

    if n_cells < 3 {
        for i in 0..n {
            for j in i + 1..n {
                record(i, j);
            }
        }
    } else {
        let nc = n_cells as isize;
        for cx in 0..nc {
            for cy in 0..nc {
                for cz in 0..nc {
                    let c = ((cx * nc + cy) * nc + cz) as usize;
                    // Self-cell pairs.
                    let mut i = heads[c];
                    while i != usize::MAX {
                        let mut j = next[i];
                        while j != usize::MAX {
                            record(i, j);
                            j = next[j];
                        }
                        i = next[i];
                    }
                    // Half shell of neighbour cells.
                    for &(dx, dy, dz) in HALF_SHELL {
                        let ox = (cx + dx).rem_euclid(nc);
                        let oy = (cy + dy).rem_euclid(nc);
                        let oz = (cz + dz).rem_euclid(nc);
                        let o = ((ox * nc + oy) * nc + oz) as usize;
                        let mut i = heads[c];
                        while i != usize::MAX {
                            let mut j = heads[o];
                            while j != usize::MAX {
                                record(i, j);
                                j = next[j];
                            }
                            i = next[i];
                        }
                    }
                }
            }
        }
    }

    // Normalize by the ideal-gas expectation ρ·V_shell per particle.
    let rho = n as f64 / (l * l * l);
    let mut centers = Vec::with_capacity(cfg.bins);
    let mut g = Vec::with_capacity(cfg.bins);
    for (b, &count) in hist.iter().enumerate() {
        let r_lo = b as f64 * dr;
        let r_hi = r_lo + dr;
        let shell = 4.0 / 3.0 * std::f64::consts::PI * (r_hi.powi(3) - r_lo.powi(3));
        let ideal = rho * shell * n as f64;
        centers.push(r_lo + dr / 2.0);
        g.push(count as f64 / ideal);
    }
    (centers, g)
}

const HALF_SHELL: &[(isize, isize, isize)] = &[
    (1, 0, 0),
    (0, 1, 0),
    (0, 0, 1),
    (1, 1, 0),
    (1, -1, 0),
    (1, 0, 1),
    (1, 0, -1),
    (0, 1, 1),
    (0, 1, -1),
    (1, 1, 1),
    (1, 1, -1),
    (1, -1, 1),
    (1, -1, -1),
];

/// L1 distance between two RDF curves (Fig. 14's "does the RDF match").
pub fn rdf_distance(g1: &[f64], g2: &[f64]) -> f64 {
    assert_eq!(g1.len(), g2.len());
    g1.iter().zip(g2.iter()).map(|(a, b)| (a - b).abs()).sum::<f64>() / g1.len() as f64
}

/// The center of the first bin where `g` rises above `threshold` — the
/// location of the RDF's first coordination shell.
///
/// Returns `None` when no bin exceeds the threshold (a flat or empty
/// curve), rather than treating "no structure" as a programming error:
/// heavily compressed or gas-like data legitimately has no peak. The
/// global argmax is deliberately not used — in a crystal the second shell
/// can out-count the first (12 neighbours at `a·√2` versus 6 at `a`).
pub fn first_peak(centers: &[f64], g: &[f64], threshold: f64) -> Option<f64> {
    centers.iter().zip(g.iter()).find(|&(_, &v)| v > threshold).map(|(c, _)| *c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_gas(n: usize, l: f64, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut z = Vec::new();
        for _ in 0..n {
            x.push(next() * l);
            y.push(next() * l);
            z.push(next() * l);
        }
        (x, y, z)
    }

    #[test]
    fn ideal_gas_g_is_one() {
        let l = 20.0;
        let (x, y, z) = uniform_gas(4000, l, 3);
        let (_, g) = rdf(&x, &y, &z, &RdfConfig { box_len: l, r_max: 5.0, bins: 25 });
        // Skip the first bins (tiny shells → noisy).
        for (b, &v) in g.iter().enumerate().skip(5) {
            assert!((v - 1.0).abs() < 0.25, "bin {b}: g = {v}");
        }
    }

    #[test]
    fn crystal_peaks_at_lattice_spacing() {
        // Simple cubic lattice, a = 2: first peak at r = 2.
        let l = 16.0;
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut z = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                for k in 0..8 {
                    x.push(i as f64 * 2.0);
                    y.push(j as f64 * 2.0);
                    z.push(k as f64 * 2.0);
                }
            }
        }
        let (centers, g) = rdf(&x, &y, &z, &RdfConfig { box_len: l, r_max: 4.0, bins: 40 });
        // First peak: the first bin where g rises well above the gas level.
        let peak = first_peak(&centers, &g, 3.0).expect("crystal RDF must have a first shell");
        assert!((peak - 2.0).abs() < 0.15, "first peak at {peak}");
        // No pairs below the lattice spacing.
        for (c, &v) in centers.iter().zip(g.iter()) {
            if *c < 1.8 {
                assert_eq!(v, 0.0, "unexpected pair at r = {c}");
            }
        }
    }

    #[test]
    fn cell_grid_matches_brute_force() {
        let l = 12.0;
        let (x, y, z) = uniform_gas(300, l, 9);
        let cfg = RdfConfig { box_len: l, r_max: 3.0, bins: 15 };
        let (_, fast) = rdf(&x, &y, &z, &cfg);
        // Brute force with a box too small for ≥3 cells: force fallback by
        // using r_max just over l/4 in a helper call.
        let cfg_fallback = RdfConfig { box_len: l, r_max: 6.0, bins: 30 };
        let (_, slow) = rdf(&x, &y, &z, &cfg_fallback);
        // Compare the overlapping radial range.
        for b in 0..15 {
            assert!((fast[b] - slow[b]).abs() < 1e-9, "bin {b}");
        }
    }

    #[test]
    fn rdf_distance_zero_for_identical() {
        let g = vec![0.5, 1.0, 1.5];
        assert_eq!(rdf_distance(&g, &g), 0.0);
        assert!((rdf_distance(&g, &[0.5, 1.0, 2.5]) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn first_peak_is_none_for_flat_or_empty_curves() {
        // A flat ideal-gas curve never crosses a threshold above 1.
        let centers: Vec<f64> = (0..10).map(|b| b as f64 * 0.5 + 0.25).collect();
        let flat = vec![1.0; 10];
        assert_eq!(first_peak(&centers, &flat, 3.0), None);
        // Empty histograms have no peak either.
        assert_eq!(first_peak(&[], &[], 0.0), None);
        // The first crossing wins even when a later bin is taller.
        let bumpy = vec![0.0, 4.0, 1.0, 9.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        assert_eq!(first_peak(&centers, &bumpy, 3.0), Some(centers[1]));
    }

    #[test]
    #[should_panic(expected = "r_max must be within half the box")]
    fn r_max_beyond_half_box_panics() {
        let (x, y, z) = uniform_gas(10, 10.0, 1);
        rdf(&x, &y, &z, &RdfConfig { box_len: 10.0, r_max: 6.0, bins: 10 });
    }
}
