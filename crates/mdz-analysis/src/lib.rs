//! Compression-quality and physics-fidelity metrics for the MDZ evaluation.
//!
//! Everything the paper's evaluation section measures lives here:
//!
//! * [`error`] — MaxError, NRMSE, PSNR, bit rate, compression ratio
//!   (Tables IV–VI, Figs. 12–13),
//! * [`mod@rdf`] — the radial distribution function `g(r)` under periodic
//!   boundaries (Fig. 14's physics-fidelity check),
//! * [`mod@similarity`] — the paper's Eq. 2 snapshot-similarity measure
//!   (Fig. 8),
//! * [`histogram`] — value distributions (Fig. 4),
//! * [`series`] — spatial/temporal series extraction helpers (Figs. 3, 5),
//! * [`dynamics`] — mean squared displacement and velocity autocorrelation
//!   (dynamics-preservation checks beyond the paper's static RDF).
//!
//! All functions are pure and operate on plain slices, so they apply to
//! original and decompressed data alike.

pub mod dynamics;
pub mod error;
pub mod histogram;
pub mod rdf;
pub mod series;
pub mod similarity;

pub use dynamics::{msd_axis, msd_curve, vacf};
pub use error::{bit_rate, compression_ratio, max_error, nrmse, psnr, ErrorStats};
pub use histogram::Histogram;
pub use rdf::{first_peak, rdf, rdf_distance, RdfConfig};
pub use similarity::similarity;
