//! Dynamical observables: mean squared displacement and velocity
//! autocorrelation.
//!
//! Fig. 14's RDF checks *static* structure; these two observables check
//! that lossy compression also preserves *dynamics* — and the velocity
//! autocorrelation time is precisely the quantity behind the paper's §I
//! claim that MD velocities stop predicting positions within a fraction of
//! a vibrational period.

/// Mean squared displacement between two snapshots of one axis,
/// `⟨(x_t − x_0)²⟩`, with minimum-image unwrapping for a periodic box of
/// side `box_len` (pass `None` for open boundaries).
pub fn msd_axis(x0: &[f64], xt: &[f64], box_len: Option<f64>) -> f64 {
    assert_eq!(x0.len(), xt.len(), "length mismatch");
    assert!(!x0.is_empty(), "empty input");
    let mut acc = 0.0;
    for (&a, &b) in x0.iter().zip(xt.iter()) {
        let mut d = b - a;
        if let Some(l) = box_len {
            if d > l / 2.0 {
                d -= l;
            } else if d < -l / 2.0 {
                d += l;
            }
        }
        acc += d * d;
    }
    acc / x0.len() as f64
}

/// Full 3-D MSD curve over a trajectory: `msd[k] = ⟨|r_k − r_0|²⟩`.
pub fn msd_curve(
    xs: &[Vec<f64>],
    ys: &[Vec<f64>],
    zs: &[Vec<f64>],
    box_len: Option<f64>,
) -> Vec<f64> {
    assert!(!xs.is_empty() && xs.len() == ys.len() && ys.len() == zs.len());
    (0..xs.len())
        .map(|k| {
            msd_axis(&xs[0], &xs[k], box_len)
                + msd_axis(&ys[0], &ys[k], box_len)
                + msd_axis(&zs[0], &zs[k], box_len)
        })
        .collect()
}

/// Normalized velocity autocorrelation `⟨v_0 · v_t⟩ / ⟨v_0 · v_0⟩` from
/// per-axis velocity snapshots.
pub fn vacf(vx: &[Vec<f64>], vy: &[Vec<f64>], vz: &[Vec<f64>]) -> Vec<f64> {
    assert!(!vx.is_empty() && vx.len() == vy.len() && vy.len() == vz.len());
    let n = vx[0].len();
    assert!(n > 0);
    let dot = |t: usize| -> f64 {
        let mut acc = 0.0;
        for i in 0..n {
            acc += vx[0][i] * vx[t][i] + vy[0][i] * vy[t][i] + vz[0][i] * vz[t][i];
        }
        acc / n as f64
    };
    let c0 = dot(0);
    if c0 == 0.0 {
        return vec![0.0; vx.len()];
    }
    (0..vx.len()).map(|t| dot(t) / c0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_particles_have_zero_msd() {
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(msd_axis(&x, &x, None), 0.0);
    }

    #[test]
    fn uniform_shift_msd() {
        let x0 = vec![0.0, 1.0, 2.0];
        let xt: Vec<f64> = x0.iter().map(|v| v + 0.5).collect();
        assert!((msd_axis(&x0, &xt, None) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn periodic_unwrapping() {
        // A particle at 9.9 moving to 0.1 in a box of 10 moved 0.2, not 9.8.
        let m = msd_axis(&[9.9], &[0.1], Some(10.0));
        assert!((m - 0.04).abs() < 1e-12, "{m}");
    }

    #[test]
    fn msd_curve_is_zero_at_origin_and_grows_for_diffusion() {
        // Deterministic pseudo-random walk.
        let mut s = 5u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let n = 200;
        let mut x = vec![vec![0.0; n]];
        let mut y = vec![vec![0.0; n]];
        let mut z = vec![vec![0.0; n]];
        for _ in 0..20 {
            let step = |prev: &Vec<f64>, rng: &mut dyn FnMut() -> f64| {
                prev.iter().map(|v| v + rng()).collect::<Vec<f64>>()
            };
            x.push(step(x.last().unwrap(), &mut next));
            y.push(step(y.last().unwrap(), &mut next));
            z.push(step(z.last().unwrap(), &mut next));
        }
        let curve = msd_curve(&x, &y, &z, None);
        assert_eq!(curve[0], 0.0);
        // Diffusive: MSD at t=20 ≫ MSD at t=2.
        assert!(curve[20] > curve[2] * 3.0, "{curve:?}");
    }

    #[test]
    fn vacf_starts_at_one_and_decays_for_noise() {
        let mut s = 11u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let n = 500;
        // Fresh random velocities every step → VACF ≈ δ(t).
        let mk = |rng: &mut dyn FnMut() -> f64| -> Vec<Vec<f64>> {
            (0..10).map(|_| (0..n).map(|_| rng()).collect()).collect()
        };
        let vx = mk(&mut next);
        let vy = mk(&mut next);
        let vz = mk(&mut next);
        let c = vacf(&vx, &vy, &vz);
        assert!((c[0] - 1.0).abs() < 1e-12);
        for &v in &c[1..] {
            assert!(v.abs() < 0.2, "{c:?}");
        }
    }

    #[test]
    fn vacf_constant_velocity_is_one() {
        let v = vec![vec![1.0, -2.0, 0.5]; 6];
        let c = vacf(&v, &v, &v);
        for &x in &c {
            assert!((x - 1.0).abs() < 1e-12);
        }
    }
}
