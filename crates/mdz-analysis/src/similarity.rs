//! Snapshot similarity (paper Eq. 2, Fig. 8).
//!
//! `Similarity(τ, i)` is the fraction of data points whose relative change
//! from snapshot 0 is below τ — the measurement that motivates MT's
//! snapshot-0 prediction: on quiescent datasets (Copper-A, Pt) nearly all
//! atoms remain within τ of their initial positions for the entire run.

/// Fraction of points `j` with `|(s_i[j] − s_0[j]) / s_i[j]| < tau`.
///
/// Points where `s_i[j] == 0` count as unchanged only when `s_0[j]` is also
/// zero (the relative measure is undefined otherwise, mirroring the paper's
/// formula which divides by `S_i[j]`).
pub fn similarity(s0: &[f64], si: &[f64], tau: f64) -> f64 {
    assert_eq!(s0.len(), si.len(), "length mismatch");
    assert!(!s0.is_empty(), "empty input");
    let mut unchanged = 0usize;
    for (&a, &b) in s0.iter().zip(si.iter()) {
        let ok = if b != 0.0 { ((b - a) / b).abs() < tau } else { a == 0.0 };
        if ok {
            unchanged += 1;
        }
    }
    unchanged as f64 / s0.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_snapshots_are_fully_similar() {
        let s = [1.0, -2.0, 3.5];
        assert_eq!(similarity(&s, &s, 1e-6), 1.0);
    }

    #[test]
    fn threshold_splits_changed_points() {
        let s0 = [1.0, 1.0, 1.0, 1.0];
        let si = [1.0005, 1.2, 1.0001, 0.5];
        // τ = 1e-3: points 0 and 2 unchanged.
        assert_eq!(similarity(&s0, &si, 1e-3), 0.5);
        // τ large: everything unchanged.
        assert_eq!(similarity(&s0, &si, 10.0), 1.0);
    }

    #[test]
    fn zero_handling() {
        assert_eq!(similarity(&[0.0], &[0.0], 1e-3), 1.0);
        assert_eq!(similarity(&[1.0], &[0.0], 1e-3), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ragged_input_panics() {
        similarity(&[1.0], &[1.0, 2.0], 0.1);
    }
}
