//! Series-extraction helpers for the characterization figures.
//!
//! Fig. 3 plots a window of one snapshot against particle index (spatial
//! pattern); Fig. 5 plots selected particles against time (temporal
//! pattern). These helpers slice and summarize trajectories accordingly.

/// A window of `snapshot[start..start+len]` — the Fig. 3 spatial series.
pub fn spatial_window(snapshot: &[f64], start: usize, len: usize) -> &[f64] {
    let end = (start + len).min(snapshot.len());
    &snapshot[start.min(snapshot.len())..end]
}

/// Particle `p`'s value over all snapshots — the Fig. 5 temporal series.
pub fn temporal_series(snapshots: &[Vec<f64>], p: usize) -> Vec<f64> {
    snapshots.iter().map(|s| s[p]).collect()
}

/// Mean absolute snapshot-to-snapshot change per particle — the scalar
/// behind the paper's "changes largely" vs "changes slightly" split.
pub fn temporal_roughness(snapshots: &[Vec<f64>]) -> f64 {
    if snapshots.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for w in snapshots.windows(2) {
        for (&a, &b) in w[0].iter().zip(w[1].iter()) {
            if a.is_finite() && b.is_finite() {
                total += (b - a).abs();
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Mean absolute neighbour-to-neighbour change within one snapshot — the
/// spatial-smoothness counterpart used to classify Fig. 3 patterns.
pub fn spatial_roughness(snapshot: &[f64]) -> f64 {
    if snapshot.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for w in snapshot.windows(2) {
        if w[0].is_finite() && w[1].is_finite() {
            total += (w[1] - w[0]).abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_and_series() {
        let snaps = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        assert_eq!(spatial_window(&snaps[0], 1, 2), &[2.0, 3.0]);
        assert_eq!(spatial_window(&snaps[0], 2, 10), &[3.0]);
        assert_eq!(temporal_series(&snaps, 1), vec![2.0, 5.0]);
    }

    #[test]
    fn roughness_measures() {
        let smooth = vec![vec![1.0, 1.0], vec![1.001, 1.001]];
        let rough = vec![vec![1.0, 1.0], vec![5.0, -3.0]];
        assert!(temporal_roughness(&smooth) < temporal_roughness(&rough));
        assert_eq!(temporal_roughness(&[vec![1.0]]), 0.0);
        assert!(spatial_roughness(&[0.0, 10.0, 0.0]) > spatial_roughness(&[0.0, 0.1, 0.2]));
        assert_eq!(spatial_roughness(&[1.0]), 0.0);
    }

    #[test]
    fn roughness_skips_non_finite() {
        let snaps = vec![vec![1.0, f64::NAN], vec![2.0, 3.0]];
        assert_eq!(temporal_roughness(&snaps), 1.0);
    }
}
