//! Value histograms (paper Fig. 4).
//!
//! The paper splits MD datasets into multi-peak-dominated distributions
//! (strong level clustering) and near-uniform ones. [`Histogram`] builds the
//! distribution; [`Histogram::peakedness`] quantifies which regime a dataset
//! falls into.

/// A fixed-bin histogram over a data range.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Left edge of the first bin.
    pub min: f64,
    /// Right edge of the last bin.
    pub max: f64,
    /// Bin counts.
    pub counts: Vec<u64>,
    /// Number of non-finite values skipped.
    pub skipped: usize,
}

impl Histogram {
    /// Builds a histogram with `bins` equal-width bins over the data's own
    /// range.
    pub fn build(data: &[f64], bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut skipped = 0usize;
        for &v in data {
            if !v.is_finite() {
                skipped += 1;
                continue;
            }
            if v < min {
                min = v;
            }
            if v > max {
                max = v;
            }
        }
        if min > max {
            // No finite data: empty histogram over [0, 1).
            return Self { min: 0.0, max: 1.0, counts: vec![0; bins], skipped };
        }
        let width = (max - min).max(f64::MIN_POSITIVE);
        let mut counts = vec![0u64; bins];
        for &v in data {
            if !v.is_finite() {
                continue;
            }
            let b = (((v - min) / width) * bins as f64) as usize;
            counts[b.min(bins - 1)] += 1;
        }
        Self { min, max, counts, skipped }
    }

    /// Total counted values.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Centre of bin `b`.
    pub fn center(&self, b: usize) -> f64 {
        let w = (self.max - self.min) / self.counts.len() as f64;
        self.min + (b as f64 + 0.5) * w
    }

    /// Peak-to-uniform mass ratio: `max_bin / (total / bins)`.
    ///
    /// ≈ 1 for uniform data; ≫ 1 for multi-peak (level-clustered) data.
    pub fn peakedness(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let expected = total as f64 / self.counts.len() as f64;
        let max = *self.counts.iter().max().unwrap() as f64;
        max / expected
    }

    /// Number of local maxima above `threshold × uniform mass` — a crude
    /// peak count for Fig. 4-style classification.
    pub fn peak_count(&self, threshold: f64) -> usize {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let expected = total as f64 / self.counts.len() as f64;
        let floor = expected * threshold;
        let c = &self.counts;
        (0..c.len())
            .filter(|&i| {
                let v = c[i] as f64;
                v > floor && (i == 0 || c[i - 1] < c[i]) && (i + 1 == c.len() || c[i + 1] <= c[i])
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_data_low_peakedness() {
        let data: Vec<f64> = (0..10_000).map(|i| i as f64 / 100.0).collect();
        let h = Histogram::build(&data, 50);
        assert_eq!(h.total(), 10_000);
        assert!(h.peakedness() < 1.2, "{}", h.peakedness());
    }

    #[test]
    fn clustered_data_high_peakedness() {
        let mut data = Vec::new();
        for i in 0..1000 {
            data.push((i % 5) as f64 * 10.0 + (i % 7) as f64 * 0.01);
        }
        let h = Histogram::build(&data, 50);
        assert!(h.peakedness() > 5.0, "{}", h.peakedness());
        assert!(h.peak_count(2.0) >= 4, "{}", h.peak_count(2.0));
    }

    #[test]
    fn non_finite_values_skipped() {
        let data = [1.0, f64::NAN, 2.0, f64::INFINITY];
        let h = Histogram::build(&data, 4);
        assert_eq!(h.total(), 2);
        assert_eq!(h.skipped, 2);
    }

    #[test]
    fn all_non_finite_is_empty() {
        let h = Histogram::build(&[f64::NAN, f64::NAN], 4);
        assert_eq!(h.total(), 0);
        assert_eq!(h.peakedness(), 0.0);
    }

    #[test]
    fn bin_centers_span_range() {
        let h = Histogram::build(&[0.0, 10.0], 10);
        assert!((h.center(0) - 0.5).abs() < 1e-12);
        assert!((h.center(9) - 9.5).abs() < 1e-12);
    }

    #[test]
    fn constant_data_single_bin() {
        let h = Histogram::build(&[3.0; 100], 10);
        assert_eq!(h.total(), 100);
        assert_eq!(*h.counts.iter().max().unwrap(), 100);
    }
}
