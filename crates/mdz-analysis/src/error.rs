//! Pointwise error metrics between original and decompressed data.
//!
//! Definitions follow the lossy-compression literature the paper uses:
//! `NRMSE = RMSE / (max − min)` and `PSNR = −20·log10(NRMSE)`, both over
//! the *original* data's value range. Bit rate is compressed bits per data
//! point; compression ratio is raw bytes over compressed bytes.

/// Summary statistics of a reconstruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Largest absolute pointwise error.
    pub max_error: f64,
    /// Root-mean-square error.
    pub rmse: f64,
    /// RMSE normalized by the original value range.
    pub nrmse: f64,
    /// Peak signal-to-noise ratio in dB (∞ for exact reconstructions).
    pub psnr: f64,
    /// Original value range (max − min).
    pub range: f64,
}

impl ErrorStats {
    /// Computes all statistics in one pass.
    ///
    /// # Panics
    /// Panics if lengths differ or the input is empty.
    pub fn compute(original: &[f64], decompressed: &[f64]) -> Self {
        assert_eq!(original.len(), decompressed.len(), "length mismatch");
        assert!(!original.is_empty(), "empty input");
        let mut max_err = 0.0f64;
        let mut sq_sum = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for (&a, &b) in original.iter().zip(decompressed.iter()) {
            let e = (a - b).abs();
            if e > max_err {
                max_err = e;
            }
            sq_sum += (a - b) * (a - b);
            if a < min {
                min = a;
            }
            if a > max {
                max = a;
            }
        }
        let rmse = (sq_sum / original.len() as f64).sqrt();
        let range = max - min;
        let nrmse = if range > 0.0 { rmse / range } else { rmse };
        let psnr = if nrmse > 0.0 { -20.0 * nrmse.log10() } else { f64::INFINITY };
        Self { max_error: max_err, rmse, nrmse, psnr, range }
    }
}

/// Largest absolute pointwise error.
pub fn max_error(original: &[f64], decompressed: &[f64]) -> f64 {
    ErrorStats::compute(original, decompressed).max_error
}

/// Value-range-normalized RMSE.
pub fn nrmse(original: &[f64], decompressed: &[f64]) -> f64 {
    ErrorStats::compute(original, decompressed).nrmse
}

/// Peak signal-to-noise ratio in dB.
pub fn psnr(original: &[f64], decompressed: &[f64]) -> f64 {
    ErrorStats::compute(original, decompressed).psnr
}

/// Average compressed bits per data point (`f64` inputs → 64 is "raw").
pub fn bit_rate(compressed_bytes: usize, n_values: usize) -> f64 {
    assert!(n_values > 0);
    compressed_bytes as f64 * 8.0 / n_values as f64
}

/// Raw size over compressed size.
pub fn compression_ratio(raw_bytes: usize, compressed_bytes: usize) -> f64 {
    assert!(compressed_bytes > 0);
    raw_bytes as f64 / compressed_bytes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_reconstruction() {
        let a = [1.0, 2.0, 3.0];
        let s = ErrorStats::compute(&a, &a);
        assert_eq!(s.max_error, 0.0);
        assert_eq!(s.rmse, 0.0);
        assert_eq!(s.nrmse, 0.0);
        assert!(s.psnr.is_infinite());
    }

    #[test]
    fn known_errors() {
        let a = [0.0, 10.0];
        let b = [0.1, 9.9];
        let s = ErrorStats::compute(&a, &b);
        assert!((s.max_error - 0.1).abs() < 1e-12);
        assert!((s.rmse - 0.1).abs() < 1e-12);
        assert!((s.nrmse - 0.01).abs() < 1e-12);
        assert!((s.psnr - 40.0).abs() < 1e-9);
    }

    #[test]
    fn constant_data_range_zero() {
        let a = [5.0, 5.0];
        let b = [5.1, 4.9];
        let s = ErrorStats::compute(&a, &b);
        assert!((s.nrmse - s.rmse).abs() < 1e-15); // falls back to un-normalized
    }

    #[test]
    fn rates_and_ratios() {
        assert_eq!(bit_rate(1000, 1000), 8.0);
        assert_eq!(compression_ratio(8000, 1000), 8.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        ErrorStats::compute(&[1.0], &[1.0, 2.0]);
    }
}
