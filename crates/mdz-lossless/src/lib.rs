//! From-scratch lossless codecs used by (and compared against) MDZ.
//!
//! The final stage of the SZ/MDZ pipeline is a dictionary coder (the paper
//! uses Zstd). This crate provides a deflate-class [`lz77`] codec built from
//! first principles (hash-chain matching, canonical Huffman token coding) as
//! the in-tree stand-in, plus the floating-point lossless baselines the
//! paper's Table V evaluates:
//!
//! * [`lz77`] — LZ77 + Huffman general-purpose byte compressor, three effort
//!   levels standing in for Zstd / Zlib / Brotli,
//! * [`gorilla`] — Facebook Gorilla XOR compression for `f64` streams,
//! * [`fpc`] — Burtscher & Ratanaworabhan's FCM/DFCM predictor codec,
//! * [`fpzip_like`] — difference-predicted, leading-zero-coded float codec in
//!   the spirit of fpzip,
//! * [`rle`] — byte run-length coding (used in tests and as a reference).
//!
//! All decoders return [`mdz_entropy::EntropyError`] on malformed input.

#![deny(missing_docs)]

pub mod fpc;
pub mod fpzip_like;
pub mod gorilla;
pub mod lz77;
pub mod rle;

pub use lz77::{compress as lz_compress, decompress as lz_decompress, Level};
pub use mdz_entropy::StreamLimits;

/// Result alias shared with the entropy crate.
pub type Result<T> = mdz_entropy::Result<T>;

/// Reinterprets an `f64` slice as little-endian bytes.
pub fn f64s_to_bytes(data: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 8);
    for &v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Parses little-endian bytes back into `f64`s.
pub fn bytes_to_f64s(data: &[u8]) -> Result<Vec<f64>> {
    if !data.len().is_multiple_of(8) {
        return Err(mdz_entropy::EntropyError::Corrupt("byte length not a multiple of 8"));
    }
    Ok(data.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_byte_round_trip() {
        let v = vec![0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, std::f64::consts::PI];
        assert_eq!(bytes_to_f64s(&f64s_to_bytes(&v)).unwrap(), v);
    }

    #[test]
    fn misaligned_bytes_error() {
        assert!(bytes_to_f64s(&[1, 2, 3]).is_err());
    }
}
