//! fpzip-style lossless float coding: monotone integer mapping, previous-value
//! prediction, and entropy-coded residual magnitudes.
//!
//! fpzip (Lindstrom & Isenburg) predicts each value with a Lorenzo stencil
//! and range-codes the residual of a sign-magnitude integer mapping. For the
//! 1-D streams this workspace feeds it, the Lorenzo stencil degenerates to
//! previous-value prediction; we keep the two distinctive ingredients — the
//! order-preserving integer mapping of IEEE doubles and entropy coding of
//! residual bit lengths — and emit residual payload bits raw.

use mdz_entropy::{
    huffman::huffman_decode_at, read_uvarint, write_uvarint, BitReader, BitWriter, EntropyError,
    HuffmanEncoder, Result,
};

/// Order-preserving map from IEEE-754 double bits to `u64`.
///
/// Negative floats reverse-order their payload; flipping produces a map where
/// `a < b ⇔ map(a) < map(b)` (for non-NaN), so numerically close values have
/// close integers and small deltas.
#[inline]
fn f64_to_ordered(v: f64) -> u64 {
    let bits = v.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Inverse of [`f64_to_ordered`].
#[inline]
fn ordered_to_f64(m: u64) -> f64 {
    let bits = if m >> 63 == 1 { m & !(1 << 63) } else { !m };
    f64::from_bits(bits)
}

/// Compresses `f64` values losslessly.
///
/// Layout: `uvarint(count)` · `8 bytes first value` · huffman(bit-length
/// symbols: `sign·64 + nbits`) · `uvarint(payload len)` · payload bits.
pub fn compress(data: &[f64]) -> Vec<u8> {
    let mut out = Vec::new();
    write_uvarint(&mut out, data.len() as u64);
    if data.is_empty() {
        return out;
    }
    out.extend_from_slice(&data[0].to_le_bytes());
    let mut symbols = Vec::with_capacity(data.len() - 1);
    let mut payload = BitWriter::new();
    let mut prev = f64_to_ordered(data[0]);
    for &v in &data[1..] {
        let cur = f64_to_ordered(v);
        let (sign, mag) = if cur >= prev { (0u32, cur - prev) } else { (1u32, prev - cur) };
        prev = cur;
        let nbits = if mag == 0 { 0 } else { 64 - mag.leading_zeros() };
        symbols.push(sign * 65 + nbits);
        if nbits > 1 {
            // The leading 1 bit is implied by nbits.
            payload.write_bits(mag & !(1u64 << (nbits - 1)), nbits - 1);
        }
    }
    out.extend(HuffmanEncoder::from_symbols(&symbols).encode(&symbols));
    let bits = payload.finish();
    write_uvarint(&mut out, bits.len() as u64);
    out.extend_from_slice(&bits);
    out
}

/// Decompresses a stream produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<f64>> {
    let mut pos = 0;
    let count = read_uvarint(data, &mut pos)? as usize;
    if count == 0 {
        return Ok(Vec::new());
    }
    if count > (1 << 32) {
        return Err(EntropyError::Corrupt("implausible value count"));
    }
    let first_bytes = data.get(pos..pos + 8).ok_or(EntropyError::UnexpectedEof)?;
    pos += 8;
    let first = f64::from_le_bytes(first_bytes.try_into().unwrap());
    let symbols = huffman_decode_at(data, &mut pos)?;
    if symbols.len() != count - 1 {
        return Err(EntropyError::Corrupt("symbol count mismatch"));
    }
    let payload_len = read_uvarint(data, &mut pos)? as usize;
    let end = pos
        .checked_add(payload_len)
        .filter(|&e| e <= data.len())
        .ok_or(EntropyError::UnexpectedEof)?;
    let mut bits = BitReader::new(&data[pos..end]);
    // Untrusted count: cap the eager allocation.
    let mut out = Vec::with_capacity(count.min(1 << 20));
    out.push(first);
    let mut prev = f64_to_ordered(first);
    for &sym in &symbols {
        let sign = sym / 65;
        let nbits = sym % 65;
        if sign > 1 || nbits > 64 {
            return Err(EntropyError::Corrupt("invalid delta symbol"));
        }
        let mag = match nbits {
            0 => 0,
            1 => 1,
            n => (1u64 << (n - 1)) | bits.read_bits(n - 1)?,
        };
        let cur = if sign == 0 {
            prev.checked_add(mag).ok_or(EntropyError::Corrupt("delta overflows"))?
        } else {
            prev.checked_sub(mag).ok_or(EntropyError::Corrupt("delta underflows"))?
        };
        prev = cur;
        out.push(ordered_to_f64(cur));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[f64]) -> usize {
        let c = compress(data);
        let d = decompress(&c).unwrap();
        assert_eq!(d.len(), data.len());
        for (a, b) in data.iter().zip(d.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
        c.len()
    }

    #[test]
    fn ordered_map_is_monotone() {
        let values = [-1e300, -2.5, -1.0, -1e-300, 0.0, 1e-300, 0.5, 1.0, 1e300];
        for w in values.windows(2) {
            assert!(f64_to_ordered(w[0]) < f64_to_ordered(w[1]), "{} !< {}", w[0], w[1]);
        }
        for &v in &values {
            assert_eq!(ordered_to_f64(f64_to_ordered(v)).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn negative_zero_round_trips() {
        round_trip(&[-0.0, 0.0, -0.0]);
    }

    #[test]
    fn empty_single_constant() {
        round_trip(&[]);
        round_trip(&[std::f64::consts::PI]);
        let size = round_trip(&vec![7.5; 10_000]);
        assert!(size < 200, "constant stream should be tiny, got {size}");
    }

    #[test]
    fn smooth_trajectory_beats_raw() {
        let data: Vec<f64> = (0..20_000).map(|i| 50.0 + (i as f64 * 0.0001).sin()).collect();
        let size = round_trip(&data);
        assert!(size < data.len() * 8, "got {size}");
    }

    #[test]
    fn sign_crossing_deltas() {
        let data: Vec<f64> = (0..1000).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        round_trip(&data);
    }

    #[test]
    fn extreme_magnitudes() {
        round_trip(&[f64::MAX, f64::MIN, 0.0, f64::MIN_POSITIVE, -f64::MIN_POSITIVE]);
    }

    #[test]
    fn truncation_errors() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64).cos()).collect();
        let c = compress(&data);
        for cut in [0, 5, c.len() / 2, c.len() - 1] {
            assert!(decompress(&c[..cut]).is_err(), "cut {cut}");
        }
    }
}
