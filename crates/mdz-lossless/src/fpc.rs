//! FPC: lossless `f64` compression with FCM/DFCM hash predictors.
//!
//! Reimplementation of Burtscher & Ratanaworabhan's FPC, one of the
//! floating-point lossless baselines in the MDZ paper's Table V. Two
//! context predictors — a finite-context-method (FCM) table and a
//! differential FCM table — each guess the next word; the better guess is
//! XOR-ed against the actual value and the result is coded as a 4-bit
//! leading-zero-byte count plus the residual bytes.

use mdz_entropy::{read_uvarint, write_uvarint, EntropyError, Result};

/// log2 of the predictor table sizes.
const TABLE_BITS: u32 = 16;
const TABLE_SIZE: usize = 1 << TABLE_BITS;

struct Predictors {
    fcm: Vec<u64>,
    dfcm: Vec<u64>,
    fcm_hash: usize,
    dfcm_hash: usize,
    last: u64,
}

impl Predictors {
    fn new() -> Self {
        Self {
            fcm: vec![0; TABLE_SIZE],
            dfcm: vec![0; TABLE_SIZE],
            fcm_hash: 0,
            dfcm_hash: 0,
            last: 0,
        }
    }

    /// Returns `(fcm_prediction, dfcm_prediction)` for the next value.
    #[inline]
    fn predict(&self) -> (u64, u64) {
        (self.fcm[self.fcm_hash], self.dfcm[self.dfcm_hash].wrapping_add(self.last))
    }

    /// Folds the actual value into both predictor tables.
    #[inline]
    fn update(&mut self, actual: u64) {
        self.fcm[self.fcm_hash] = actual;
        self.fcm_hash =
            (((self.fcm_hash << 6) as u64 ^ (actual >> 48)) as usize) & (TABLE_SIZE - 1);
        let delta = actual.wrapping_sub(self.last);
        self.dfcm[self.dfcm_hash] = delta;
        self.dfcm_hash =
            (((self.dfcm_hash << 2) as u64 ^ (delta >> 40)) as usize) & (TABLE_SIZE - 1);
        self.last = actual;
    }
}

/// Compresses `f64` values with FCM/DFCM prediction.
///
/// Layout: `uvarint(count)` · header nibbles (1 selector bit + 3-bit
/// leading-zero-byte count per value, two values per byte) · residual bytes.
pub fn compress(data: &[f64]) -> Vec<u8> {
    let mut out = Vec::new();
    write_uvarint(&mut out, data.len() as u64);
    let mut headers = Vec::with_capacity(data.len() / 2 + 1);
    let mut residuals = Vec::with_capacity(data.len() * 4);
    let mut pred = Predictors::new();
    let mut nibble_buf = 0u8;
    let mut have_nibble = false;
    for &v in data {
        let actual = v.to_bits();
        let (f, d) = pred.predict();
        let xf = actual ^ f;
        let xd = actual ^ d;
        let (sel, xor) = if xf <= xd { (0u8, xf) } else { (1u8, xd) };
        pred.update(actual);
        let mut lzb = (xor.leading_zeros() / 8) as u8; // 0..=8
        if lzb == 4 {
            // FPC quirk: 3-bit field can't express 4, demote to 3.
            lzb = 3;
        }
        let coded = if lzb >= 5 { lzb - 1 } else { lzb }; // 0..=7
        let nibble = (sel << 3) | coded;
        if have_nibble {
            headers.push(nibble_buf | nibble);
            have_nibble = false;
        } else {
            nibble_buf = nibble << 4;
            have_nibble = true;
        }
        let nbytes = 8 - lzb as usize;
        residuals.extend_from_slice(&xor.to_be_bytes()[8 - nbytes..]);
    }
    if have_nibble {
        headers.push(nibble_buf);
    }
    write_uvarint(&mut out, headers.len() as u64);
    out.extend_from_slice(&headers);
    out.extend_from_slice(&residuals);
    out
}

/// Decompresses a stream produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<f64>> {
    let mut pos = 0;
    let count = read_uvarint(data, &mut pos)? as usize;
    if count > (1 << 32) {
        return Err(EntropyError::Corrupt("implausible value count"));
    }
    let header_len = read_uvarint(data, &mut pos)? as usize;
    let headers_end = pos
        .checked_add(header_len)
        .filter(|&e| e <= data.len())
        .ok_or(EntropyError::UnexpectedEof)?;
    if header_len < count.div_ceil(2) {
        return Err(EntropyError::Corrupt("header block too short"));
    }
    let headers = &data[pos..headers_end];
    let mut rpos = headers_end;
    // Untrusted count: cap the eager allocation (the header-length check
    // above already bounds count by the input size, but stay defensive).
    let mut out = Vec::with_capacity(count.min(1 << 20));
    let mut pred = Predictors::new();
    for i in 0..count {
        let byte = headers[i / 2];
        let nibble = if i % 2 == 0 { byte >> 4 } else { byte & 0x0F };
        let sel = nibble >> 3;
        let coded = nibble & 0x07;
        // Inverse of the encode mapping: coded 0..=3 ↔ lzb 0..=3,
        // coded 4..=7 ↔ lzb 5..=8 (lzb 4 is never produced).
        let lzb = if coded >= 4 { coded + 1 } else { coded } as usize;
        let nbytes = 8 - lzb;
        let chunk = data.get(rpos..rpos + nbytes).ok_or(EntropyError::UnexpectedEof)?;
        rpos += nbytes;
        let mut be = [0u8; 8];
        be[8 - nbytes..].copy_from_slice(chunk);
        let xor = u64::from_be_bytes(be);
        let (f, d) = pred.predict();
        let actual = xor ^ if sel == 0 { f } else { d };
        pred.update(actual);
        out.push(f64::from_bits(actual));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[f64]) -> usize {
        let c = compress(data);
        let d = decompress(&c).unwrap();
        assert_eq!(d.len(), data.len());
        for (a, b) in data.iter().zip(d.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        c.len()
    }

    #[test]
    fn empty_and_degenerate() {
        round_trip(&[]);
        round_trip(&[0.0]);
        round_trip(&[1.0, 1.0, 1.0]);
    }

    #[test]
    fn linear_sequence_predicts_well() {
        let data: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let size = round_trip(&data);
        assert!(size < data.len() * 8, "got {size}");
    }

    #[test]
    fn special_values_round_trip() {
        round_trip(&[f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, f64::MIN_POSITIVE]);
    }

    #[test]
    fn noisy_data_round_trips() {
        let mut s = 88172645463325252u64;
        let data: Vec<f64> = (0..5000)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                f64::from_bits((s >> 2) | 0x3FF0000000000000)
            })
            .collect();
        round_trip(&data);
    }

    #[test]
    fn lzb_edge_cases() {
        // Values engineered so XOR residuals hit every leading-zero-byte class.
        let mut data = vec![0.0f64];
        for k in 0..8 {
            data.push(f64::from_bits(1u64 << (8 * k)));
            data.push(0.0);
        }
        round_trip(&data);
    }

    #[test]
    fn truncated_stream_errors() {
        let data: Vec<f64> = (0..200).map(|i| (i as f64).sqrt()).collect();
        let c = compress(&data);
        for cut in [0, 1, c.len() / 2, c.len() - 1] {
            assert!(decompress(&c[..cut]).is_err(), "cut {cut}");
        }
    }
}
