//! Gorilla-style XOR compression for `f64` streams.
//!
//! Implements the value-compression scheme of Facebook's Gorilla time-series
//! database (Pelkonen et al., VLDB 2015), one of the lossless baselines the
//! MDZ paper cites for time-series systems: each value is XOR-ed with its
//! predecessor; a zero XOR costs one bit, otherwise the meaningful bit block
//! is emitted, reusing the previous block bounds when possible.

use mdz_entropy::{read_uvarint, write_uvarint, BitReader, BitWriter, EntropyError, Result};

/// Compresses a sequence of `f64` values losslessly.
pub fn compress(data: &[f64]) -> Vec<u8> {
    let mut out = Vec::new();
    write_uvarint(&mut out, data.len() as u64);
    if data.is_empty() {
        return out;
    }
    let mut bits = BitWriter::with_capacity(data.len());
    let mut prev = data[0].to_bits();
    bits.write_bits(prev, 64);
    // Previous meaningful block: [lead, 64 - trail).
    let mut prev_lead = 65u32; // sentinel: no block yet
    let mut prev_trail = 0u32;
    for &v in &data[1..] {
        let cur = v.to_bits();
        let xor = cur ^ prev;
        prev = cur;
        if xor == 0 {
            bits.write_bit(false);
            continue;
        }
        bits.write_bit(true);
        let lead = xor.leading_zeros().min(31); // 5-bit field
        let trail = xor.trailing_zeros();
        if prev_lead <= lead && prev_trail <= trail {
            // Fits inside the previous block: control bit 0.
            bits.write_bit(false);
            let blk = 64 - prev_lead - prev_trail;
            bits.write_bits(xor >> prev_trail, blk);
        } else {
            // New block: control bit 1, 5-bit leading count, 6-bit length.
            bits.write_bit(true);
            let blk = 64 - lead - trail;
            bits.write_bits(u64::from(lead), 5);
            // blk ∈ [1, 64]; store blk-1 in 6 bits.
            bits.write_bits(u64::from(blk - 1), 6);
            bits.write_bits(xor >> trail, blk);
            prev_lead = lead;
            prev_trail = trail;
        }
    }
    let payload = bits.finish();
    write_uvarint(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Decompresses a stream produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<f64>> {
    let mut pos = 0;
    let count = read_uvarint(data, &mut pos)? as usize;
    if count == 0 {
        return Ok(Vec::new());
    }
    if count > (1 << 32) {
        return Err(EntropyError::Corrupt("implausible value count"));
    }
    let payload_len = read_uvarint(data, &mut pos)? as usize;
    let end = pos
        .checked_add(payload_len)
        .filter(|&e| e <= data.len())
        .ok_or(EntropyError::UnexpectedEof)?;
    let mut bits = BitReader::new(&data[pos..end]);
    // Untrusted count: cap the eager allocation.
    let mut out = Vec::with_capacity(count.min(1 << 20));
    let mut prev = bits.read_bits(64)?;
    out.push(f64::from_bits(prev));
    let mut lead = 0u32;
    let mut trail = 0u32;
    let mut have_block = false;
    for _ in 1..count {
        if !bits.read_bit()? {
            out.push(f64::from_bits(prev));
            continue;
        }
        if bits.read_bit()? {
            lead = bits.read_bits(5)? as u32;
            let blk = bits.read_bits(6)? as u32 + 1;
            if lead + blk > 64 {
                return Err(EntropyError::Corrupt("block exceeds 64 bits"));
            }
            trail = 64 - lead - blk;
            have_block = true;
        } else if !have_block {
            return Err(EntropyError::Corrupt("reused block before any block"));
        }
        let blk = 64 - lead - trail;
        let xor = bits.read_bits(blk)? << trail;
        prev ^= xor;
        out.push(f64::from_bits(prev));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[f64]) -> usize {
        let c = compress(data);
        let d = decompress(&c).unwrap();
        assert_eq!(d.len(), data.len());
        for (a, b) in data.iter().zip(d.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        c.len()
    }

    #[test]
    fn empty_and_single() {
        round_trip(&[]);
        round_trip(&[42.0]);
        round_trip(&[f64::NAN]); // bit-exact round trip includes NaN
    }

    #[test]
    fn constant_series_is_one_bit_per_value() {
        let data = vec![3.25; 10_000];
        let size = round_trip(&data);
        assert!(size < 10_000 / 8 + 64, "got {size}");
    }

    #[test]
    fn slowly_varying_series_compresses() {
        let data: Vec<f64> = (0..5000).map(|i| 100.0 + (i as f64) * 0.5).collect();
        let size = round_trip(&data);
        assert!(size < data.len() * 8, "got {size}");
    }

    #[test]
    fn special_values() {
        round_trip(&[0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY, f64::MIN, f64::MAX, 1e-300]);
    }

    #[test]
    fn random_mantissas_round_trip() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let data: Vec<f64> = (0..3000)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (i as f64) + (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        round_trip(&data);
    }

    #[test]
    fn truncated_stream_errors() {
        let data: Vec<f64> = (0..100).map(|i| i as f64 * 1.5).collect();
        let c = compress(&data);
        for cut in [0, 3, c.len() / 2] {
            assert!(decompress(&c[..cut]).is_err());
        }
    }
}
