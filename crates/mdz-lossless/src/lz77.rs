//! LZ77 dictionary compression with canonical-Huffman token coding.
//!
//! This is the workspace's stand-in for Zstd (the final stage of the MDZ
//! pipeline) and, at different effort [`Level`]s, for the Zlib and Brotli
//! baselines of the paper's Table V. It is a deflate-class design:
//!
//! * 64 KiB sliding window, hash-chain match finder over 4-byte prefixes,
//!   optional lazy (one-step-deferred) matching,
//! * tokens are either literal bytes or `(length, distance)` matches,
//! * literal/length symbols and distance-bucket symbols each get their own
//!   canonical Huffman code; bucket extra bits go to a shared bit stream.
//!
//! What MDZ relies on from this stage is exactly what any LZ family member
//! provides: repeated byte patterns — in particular the long runs produced by
//! Seq-2 interleaving of temporally stable quantization codes — collapse to
//! short match tokens.

use mdz_entropy::{
    huffman::{huffman_decode_at_limited, huffman_encode_into},
    kernel::{self, SimdLevel},
    read_uvarint, write_uvarint, BitReader, BitWriter, EntropyError, HuffmanScratch, Result,
    StreamLimits,
};

/// Minimum match length worth emitting.
const MIN_MATCH: usize = 4;
/// Maximum match length (keeps length buckets small).
const MAX_MATCH: usize = 1 << 10;
/// Sliding-window size; distances never exceed this.
const WINDOW: usize = 1 << 16;
/// Hash table size (15-bit).
const HASH_BITS: u32 = 15;
/// First literal/length symbol that denotes a match bucket.
const MATCH_BASE: u32 = 256;

/// Compression effort, controlling match-finder depth and lazy matching.
///
/// `Fast` ≈ Zstd's default posture (shallow chains, greedy), `Default` ≈
/// Zlib (moderate chains, lazy), `High` ≈ Brotli (deep chains, lazy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Level {
    /// Shallow search, greedy parse.
    Fast,
    /// Moderate search, lazy parse.
    #[default]
    Default,
    /// Deep search, lazy parse.
    High,
}

impl Level {
    fn chain_depth(self) -> usize {
        match self {
            Level::Fast => 8,
            Level::Default => 48,
            Level::High => 256,
        }
    }

    fn lazy(self) -> bool {
        !matches!(self, Level::Fast)
    }
}

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Exponential bucket of a non-negative value: bucket 0 holds 0, bucket k≥1
/// holds values with bit length k (i.e. `[2^(k-1), 2^k)`), encoded with
/// `k-1` extra bits.
#[inline]
fn bucket_of(v: u64) -> (u32, u32, u64) {
    if v == 0 {
        return (0, 0, 0);
    }
    let k = 64 - v.leading_zeros();
    let extra_bits = k - 1;
    let extra = v - (1u64 << extra_bits);
    (k, extra_bits, extra)
}

/// Inverse of [`bucket_of`]: reconstructs the value from its bucket and the
/// extra bits read from the stream.
#[inline]
fn unbucket(k: u32, bits: &mut BitReader<'_>) -> Result<u64> {
    if k == 0 {
        return Ok(0);
    }
    if k > 63 {
        return Err(EntropyError::Corrupt("bucket exponent too large"));
    }
    let extra_bits = k - 1;
    let extra = bits.read_bits(extra_bits)?;
    Ok((1u64 << extra_bits) + extra)
}

/// Reusable workspace for [`compress_into`]: match-finder tables, the parsed
/// token streams, and the Huffman encoder's scratch.
#[derive(Debug, Clone, Default)]
pub struct Lz77Scratch {
    /// Hash-chain heads, indexed by 4-byte-prefix hash.
    head: Vec<i64>,
    /// Previous chain entry per window slot.
    prev: Vec<i64>,
    /// Literal bytes (0..=255) or `MATCH_BASE + length_bucket`.
    litlen: Vec<u32>,
    /// Distance buckets, one per match, in token order.
    dist: Vec<u32>,
    /// Length extras then distance extras, per match, in token order.
    extra: BitWriter,
    huffman: HuffmanScratch,
}

/// First-mismatch index between `a` and `b`, scanning at most `limit` bytes.
///
/// Every variant returns exactly the scalar answer; `level` only selects how
/// many bytes are compared per step. Callers guarantee both slices hold at
/// least `limit` bytes.
#[inline]
fn match_len(a: &[u8], b: &[u8], limit: usize, level: SimdLevel) -> usize {
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatched only when runtime detection reported AVX2.
        SimdLevel::Avx2 => unsafe { match_len_avx2(a, b, limit) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse41 => match_len_sse(a, b, limit),
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => match_len_neon(a, b, limit),
        _ => match_len_scalar(a, b, limit),
    }
}

/// The scalar oracle: one byte per step.
#[inline]
fn match_len_scalar(a: &[u8], b: &[u8], limit: usize) -> usize {
    let mut len = 0;
    while len < limit && a[len] == b[len] {
        len += 1;
    }
    len
}

/// Sub-vector tail: 8 bytes per step via XOR, then bytewise.
#[inline]
fn match_len_tail(a: &[u8], b: &[u8], limit: usize) -> usize {
    let mut i = 0;
    while i + 8 <= limit {
        let x = u64::from_le_bytes(a[i..i + 8].try_into().expect("8-byte window"));
        let y = u64::from_le_bytes(b[i..i + 8].try_into().expect("8-byte window"));
        let diff = x ^ y;
        if diff != 0 {
            // Little-endian: the lowest set bit marks the first unequal byte.
            return i + (diff.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    i + match_len_scalar(&a[i..], &b[i..], limit - i)
}

/// 32 bytes per step.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn match_len_avx2(a: &[u8], b: &[u8], limit: usize) -> usize {
    use std::arch::x86_64::*;
    let mut i = 0;
    while i + 32 <= limit {
        // SAFETY: `i + 32 <= limit <= a.len(), b.len()` keeps both unaligned
        // loads in bounds.
        let mask = unsafe {
            let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let vb = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)) as u32
        };
        if mask != u32::MAX {
            return i + (!mask).trailing_zeros() as usize;
        }
        i += 32;
    }
    i + match_len_tail(&a[i..], &b[i..], limit - i)
}

/// 16 bytes per step. Uses only SSE2 intrinsics (x86_64 baseline), so no
/// feature gate is needed; dispatch still routes here via `Sse41` so the
/// scalar oracle stays pure.
#[cfg(target_arch = "x86_64")]
#[inline]
fn match_len_sse(a: &[u8], b: &[u8], limit: usize) -> usize {
    use std::arch::x86_64::*;
    let mut i = 0;
    while i + 16 <= limit {
        // SAFETY: `i + 16 <= limit <= a.len(), b.len()` keeps both unaligned
        // loads in bounds; SSE2 is part of the x86_64 baseline.
        let mask = unsafe {
            let va = _mm_loadu_si128(a.as_ptr().add(i).cast());
            let vb = _mm_loadu_si128(b.as_ptr().add(i).cast());
            _mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)) as u32
        };
        if mask != 0xFFFF {
            return i + (!mask).trailing_zeros() as usize;
        }
        i += 16;
    }
    i + match_len_tail(&a[i..], &b[i..], limit - i)
}

/// 16 bytes per step via `vceqq_u8`, inspecting the two 64-bit halves.
#[cfg(target_arch = "aarch64")]
#[inline]
fn match_len_neon(a: &[u8], b: &[u8], limit: usize) -> usize {
    use std::arch::aarch64::*;
    let mut i = 0;
    while i + 16 <= limit {
        // SAFETY: `i + 16 <= limit <= a.len(), b.len()` keeps both loads in
        // bounds; NEON is part of the aarch64 baseline.
        let (lo, hi) = unsafe {
            let eq = vreinterpretq_u64_u8(vceqq_u8(
                vld1q_u8(a.as_ptr().add(i)),
                vld1q_u8(b.as_ptr().add(i)),
            ));
            (vgetq_lane_u64::<0>(eq), vgetq_lane_u64::<1>(eq))
        };
        if lo != u64::MAX {
            return i + ((!lo).trailing_zeros() / 8) as usize;
        }
        if hi != u64::MAX {
            return i + 8 + ((!hi).trailing_zeros() / 8) as usize;
        }
        i += 16;
    }
    i + match_len_tail(&a[i..], &b[i..], limit - i)
}

/// Finds the longest match for `pos` among the hash chain, at most `depth`
/// candidates, within the window. Returns `(length, distance)`.
fn best_match(
    data: &[u8],
    pos: usize,
    head: &[i64],
    prev: &[i64],
    depth: usize,
    simd: SimdLevel,
) -> (usize, usize) {
    let max_len = (data.len() - pos).min(MAX_MATCH);
    if max_len < MIN_MATCH {
        return (0, 0);
    }
    let mut best_len = 0;
    let mut best_dist = 0;
    let mut cand = head[hash4(data, pos)];
    let window_floor = pos.saturating_sub(WINDOW - 1) as i64;
    let mut steps = 0;
    while cand >= window_floor && steps < depth {
        let c = cand as usize;
        debug_assert!(c < pos);
        // Quick reject: candidate must beat the current best at its end byte.
        if best_len == 0 || data[c + best_len] == data[pos + best_len] {
            let len = match_len(&data[c..], &data[pos..], max_len, simd);
            if len > best_len {
                best_len = len;
                best_dist = pos - c;
                if len == max_len {
                    break;
                }
            }
        }
        cand = prev[c % WINDOW];
        steps += 1;
    }
    if best_len >= MIN_MATCH {
        (best_len, best_dist)
    } else {
        (0, 0)
    }
}

/// Greedy/lazy LZ77 parse writing the token streams into `scratch`.
fn parse_into(data: &[u8], level: Level, scratch: &mut Lz77Scratch) {
    let Lz77Scratch { head, prev, litlen, dist: dists, extra, .. } = scratch;
    let n = data.len();
    head.clear();
    head.resize(1 << HASH_BITS, i64::MIN);
    prev.clear();
    prev.resize(WINDOW, i64::MIN);
    litlen.clear();
    dists.clear();
    extra.clear();
    let depth = level.chain_depth();
    let lazy = level.lazy();
    // Read once: a concurrent force-scalar toggle must not split one parse
    // across kernel strategies (all strategies agree anyway, but the oracle
    // rule is that a forced-scalar run never touches a vector path).
    let simd = kernel::active_level();

    let insert = |head: &mut [i64], prev: &mut [i64], data: &[u8], i: usize| {
        if i + MIN_MATCH <= data.len() {
            let h = hash4(data, i);
            prev[i % WINDOW] = head[h];
            head[h] = i as i64;
        }
    };

    let mut i = 0;
    while i < n {
        let (mut len, mut dist) = best_match(data, i, head, prev, depth, simd);
        if lazy && (MIN_MATCH..MAX_MATCH).contains(&len) && i + 1 < n {
            // Peek one position ahead; if it has a strictly longer match,
            // emit a literal now and take the later match.
            insert(head, prev, data, i);
            let (len2, dist2) = best_match(data, i + 1, head, prev, depth, simd);
            if len2 > len + 1 {
                litlen.push(u32::from(data[i]));
                i += 1;
                len = len2;
                dist = dist2;
            }
        } else if len >= MIN_MATCH {
            insert(head, prev, data, i);
        }
        if len >= MIN_MATCH {
            let (lb, _, lextra) = bucket_of((len - MIN_MATCH) as u64);
            let (db, _, dextra) = bucket_of((dist - 1) as u64);
            litlen.push(MATCH_BASE + lb);
            dists.push(db);
            if lb > 0 {
                extra.write_bits(lextra, lb - 1);
            }
            if db > 0 {
                extra.write_bits(dextra, db - 1);
            }
            // Insert hash entries for the matched region (sparsely for speed).
            let start = i + 1;
            let end = i + len;
            let stride = if len > 64 { 4 } else { 1 };
            let mut j = start;
            while j < end {
                insert(head, prev, data, j);
                j += stride;
            }
            i = end;
        } else {
            insert(head, prev, data, i);
            litlen.push(u32::from(data[i]));
            i += 1;
        }
    }
}

/// Compresses `data` at the given effort level.
///
/// Output layout: `uvarint(raw_len)` · huffman(litlen) · huffman(dist) ·
/// `uvarint(extra_len)` · extra-bit bytes.
pub fn compress(data: &[u8], level: Level) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    compress_into(data, level, &mut out, &mut Lz77Scratch::default());
    out
}

/// Appends the stream [`compress`] produces for `data` to `out`, reusing
/// `scratch` for the match finder, token streams, and Huffman workspace —
/// allocation-free once the scratch has grown to the working-set size.
pub fn compress_into(data: &[u8], level: Level, out: &mut Vec<u8>, scratch: &mut Lz77Scratch) {
    parse_into(data, level, scratch);
    write_uvarint(out, data.len() as u64);
    huffman_encode_into(&scratch.litlen, out, &mut scratch.huffman);
    huffman_encode_into(&scratch.dist, out, &mut scratch.huffman);
    let extra = scratch.extra.flush();
    write_uvarint(out, extra.len() as u64);
    out.extend_from_slice(extra);
}

/// Decompresses a stream produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    decompress_into(data, &mut out)?;
    Ok(out)
}

/// [`decompress`] writing into a caller-owned vector (cleared first).
pub fn decompress_into(data: &[u8], out: &mut Vec<u8>) -> Result<()> {
    decompress_into_limited(data, out, &StreamLimits::default())
}

/// [`decompress_into`] with a caller-supplied decode budget.
///
/// `limits.max_items` bounds the declared raw (decompressed) length; the
/// token streams are in turn bounded by that length (every token produces at
/// least one output byte), so a forged header cannot drive any allocation
/// past the budget.
pub fn decompress_into_limited(
    data: &[u8],
    out: &mut Vec<u8>,
    limits: &StreamLimits,
) -> Result<()> {
    out.clear();
    let mut pos = 0;
    let raw_len = read_uvarint(data, &mut pos)? as usize;
    limits.check_items(raw_len, "lz77 raw length")?;
    // Each litlen token emits ≥ 1 output byte and there are at most as many
    // distance symbols as match tokens, so both streams are bounded by the
    // declared output size.
    let token_limits = StreamLimits::with_max_items(raw_len);
    let litlen = huffman_decode_at_limited(data, &mut pos, &token_limits)?;
    if raw_len > litlen.len().saturating_mul(MAX_MATCH) {
        // Even if every token were a maximal match, the stream could not
        // reach the declared length — a forged header, caught before the
        // output buffer grows.
        return Err(EntropyError::Corrupt("declared length exceeds token capacity"));
    }
    let dist_syms = huffman_decode_at_limited(data, &mut pos, &token_limits)?;
    let extra_len = read_uvarint(data, &mut pos)? as usize;
    let end = pos
        .checked_add(extra_len)
        .filter(|&e| e <= data.len())
        .ok_or(EntropyError::UnexpectedEof)?;
    let mut bits = BitReader::new(&data[pos..end]);

    // Cap eager allocation: `raw_len` is untrusted until the token stream
    // actually produces that many bytes.
    out.reserve(raw_len.min(1 << 20));
    let mut next_dist = 0usize;
    for &sym in &litlen {
        if sym < MATCH_BASE {
            out.push(sym as u8);
        } else {
            let lb = sym - MATCH_BASE;
            let len = MIN_MATCH + unbucket(lb, &mut bits)? as usize;
            let db = *dist_syms
                .get(next_dist)
                .ok_or(EntropyError::Corrupt("missing distance symbol"))?;
            next_dist += 1;
            let dist = 1 + unbucket(db, &mut bits)? as usize;
            if dist > out.len() {
                return Err(EntropyError::Corrupt("match distance exceeds output"));
            }
            if len > MAX_MATCH {
                return Err(EntropyError::Corrupt("match length exceeds maximum"));
            }
            let start = out.len() - dist;
            // Byte-by-byte copy: overlapping matches (dist < len) are legal.
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
        if out.len() > raw_len {
            return Err(EntropyError::Corrupt("output exceeds declared length"));
        }
    }
    if out.len() != raw_len {
        return Err(EntropyError::Corrupt("output shorter than declared length"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8], level: Level) -> usize {
        let c = compress(data, level);
        assert_eq!(decompress(&c).unwrap(), data, "level {level:?}");
        c.len()
    }

    fn all_levels(data: &[u8]) {
        for level in [Level::Fast, Level::Default, Level::High] {
            round_trip(data, level);
        }
    }

    #[test]
    fn empty_input() {
        all_levels(&[]);
    }

    #[test]
    fn match_len_kernels_agree_with_scalar() {
        // Every level the host can actually run, plus the oracle itself.
        let mut levels = vec![SimdLevel::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            levels.push(SimdLevel::Sse41); // SSE2-baseline impl, always runnable
            if kernel::detected_level() == SimdLevel::Avx2 {
                levels.push(SimdLevel::Avx2);
            }
        }
        #[cfg(target_arch = "aarch64")]
        levels.push(SimdLevel::Neon);

        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        let n = 300;
        let a: Vec<u8> = (0..n).map(|_| (rng() >> 56) as u8).collect();
        // Plant the first mismatch at every offset, including none at all,
        // to cross every vector-width boundary (8/16/32) and both tails.
        for mismatch in (0..n).chain([n]) {
            let mut b = a.clone();
            if mismatch < n {
                b[mismatch] ^= 0x80;
            }
            for limit in [0, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 100, n] {
                let expect = match_len_scalar(&a, &b, limit);
                for &lv in &levels {
                    assert_eq!(
                        match_len(&a, &b, limit, lv),
                        expect,
                        "level {lv:?} mismatch at {mismatch} limit {limit}"
                    );
                }
            }
        }
    }

    #[test]
    fn forced_scalar_parse_is_byte_identical() {
        // The parse itself must not depend on which match kernel ran.
        let mut data = Vec::new();
        for i in 0..20_000u64 {
            data.push((i % 251) as u8);
            if i % 17 == 0 {
                data.push(0xAB);
            }
        }
        for level in [Level::Fast, Level::Default, Level::High] {
            let auto = compress(&data, level);
            kernel::set_force_scalar(true);
            let scalar = compress(&data, level);
            kernel::set_force_scalar(false);
            assert_eq!(auto, scalar, "level {level:?}");
            assert_eq!(decompress(&auto).unwrap(), data);
        }
    }

    #[test]
    fn short_inputs_below_min_match() {
        all_levels(b"a");
        all_levels(b"abc");
        all_levels(b"abcd");
    }

    #[test]
    fn repetitive_text_compresses_well() {
        let data = b"the quick brown fox jumps over the lazy dog. ".repeat(200);
        let size = round_trip(&data, Level::Default);
        assert!(size < data.len() / 10, "{size} vs {}", data.len());
    }

    #[test]
    fn all_same_byte() {
        let data = vec![7u8; 100_000];
        let size = round_trip(&data, Level::Default);
        assert!(size < 600, "run of identical bytes should collapse, got {size}");
    }

    #[test]
    fn overlapping_match_rle_style() {
        // "abab..." forces dist=2 matches with len >> dist.
        let mut data = Vec::new();
        for _ in 0..5000 {
            data.extend_from_slice(b"ab");
        }
        all_levels(&data);
    }

    #[test]
    fn incompressible_random_bytes_round_trip() {
        let mut state = 0x243F6A8885A308D3u64;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect();
        let size = round_trip(&data, Level::Default);
        // Random bytes should not blow up by more than a few percent.
        assert!(size < data.len() + data.len() / 8 + 1024);
    }

    #[test]
    fn long_range_matches_within_window() {
        let mut data = vec![0u8; 0];
        let phrase: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        data.extend_from_slice(&phrase);
        data.extend(std::iter::repeat_n(0xEE, WINDOW - 2000));
        data.extend_from_slice(&phrase); // still inside the window
        all_levels(&data);
    }

    #[test]
    fn matches_beyond_window_are_not_taken() {
        let phrase: Vec<u8> = (0..500u32).map(|i| (i * 7 % 256) as u8).collect();
        let mut data = phrase.clone();
        data.extend(std::iter::repeat_n(1u8, WINDOW + 100));
        data.extend_from_slice(&phrase);
        all_levels(&data);
    }

    #[test]
    fn max_match_length_boundary() {
        let data = vec![5u8; MAX_MATCH * 3 + 17];
        all_levels(&data);
    }

    #[test]
    fn binary_f64_like_data() {
        let floats: Vec<f64> = (0..10_000).map(|i| (i as f64 * 0.001).sin() * 12.5).collect();
        let bytes = crate::f64s_to_bytes(&floats);
        all_levels(&bytes);
    }

    #[test]
    fn higher_level_never_much_worse() {
        let data = b"abcabcabcdefdefdefxyzxyz".repeat(500);
        let fast = compress(&data, Level::Fast).len();
        let high = compress(&data, Level::High).len();
        assert!(high <= fast + fast / 4, "high={high} fast={fast}");
    }

    #[test]
    fn truncated_and_corrupt_streams_error() {
        let data = b"hello world hello world hello world".repeat(100);
        let c = compress(&data, Level::Default);
        for cut in [0, 1, c.len() / 3, c.len() - 1] {
            assert!(decompress(&c[..cut]).is_err(), "cut {cut}");
        }
        let mut bad = c.clone();
        for i in (0..bad.len()).step_by(7) {
            bad[i] ^= 0x55;
            let _ = decompress(&bad); // must not panic
            bad[i] ^= 0x55;
        }
    }

    #[test]
    fn forged_giant_raw_len_does_not_allocate() {
        // Regression: a stream claiming a 2^33 output with a tiny token
        // stream must error cheaply rather than pre-allocate gigabytes.
        let real = compress(b"abcabcabc", Level::Default);
        let mut forged = Vec::new();
        mdz_entropy::write_uvarint(&mut forged, 1 << 33);
        // Append the rest of a real stream (skipping its own length varint).
        let mut pos = 0;
        mdz_entropy::read_uvarint(&real, &mut pos).unwrap();
        forged.extend_from_slice(&real[pos..]);
        assert!(decompress(&forged).is_err());
    }

    #[test]
    fn compress_into_with_reused_scratch_is_byte_identical() {
        let inputs: Vec<Vec<u8>> = vec![
            vec![],
            b"abcd".to_vec(),
            b"the quick brown fox jumps over the lazy dog. ".repeat(50),
            vec![7u8; 20_000],
            (0..30_000u32).map(|i| (i * 7 % 256) as u8).collect(),
        ];
        let mut scratch = Lz77Scratch::default();
        let mut out = Vec::new();
        for data in &inputs {
            for level in [Level::Fast, Level::Default, Level::High] {
                out.clear();
                compress_into(data, level, &mut out, &mut scratch);
                // Fresh-scratch compression must agree byte for byte: no
                // match-finder or token state may leak between calls.
                assert_eq!(out, compress(data, level), "{} bytes, {level:?}", data.len());
                let mut rec = Vec::new();
                decompress_into(&out, &mut rec).unwrap();
                assert_eq!(&rec, data);
            }
        }
    }

    #[test]
    fn bucket_round_trip() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 255, 256, 65535, 1 << 20] {
            let (k, nbits, extra) = bucket_of(v);
            let mut w = BitWriter::new();
            w.write_bits(extra, nbits);
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            assert_eq!(unbucket(k, &mut r).unwrap(), v);
        }
    }
}
