//! Byte-oriented run-length coding.
//!
//! Not a paper baseline by itself, but a useful reference point in tests and
//! ablations: when Seq-2 interleaving works as intended, long runs of equal
//! quantization-code bytes appear, and RLE quantifies how much of the LZ
//! stage's win comes from plain runs versus general repeats.

use mdz_entropy::{read_uvarint, write_uvarint, EntropyError, Result, StreamLimits};

/// Compresses `data` as `(uvarint run_len, byte)` pairs.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    write_uvarint(&mut out, data.len() as u64);
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        let mut j = i + 1;
        while j < data.len() && data[j] == b {
            j += 1;
        }
        write_uvarint(&mut out, (j - i) as u64);
        out.push(b);
        i = j;
    }
    out
}

/// Decompresses a stream produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>> {
    decompress_limited(data, &StreamLimits::default())
}

/// [`decompress`] with a caller-supplied decode budget.
///
/// RLE legitimately expands (one `(run, byte)` pair can declare a
/// million-byte run), so the declared total can only be bounded by the
/// caller's budget, not by the input size.
pub fn decompress_limited(data: &[u8], limits: &StreamLimits) -> Result<Vec<u8>> {
    let mut pos = 0;
    let total = read_uvarint(data, &mut pos)? as usize;
    limits.check_items(total, "rle output length")?;
    // Cap eager allocation: `total` is untrusted (a forged 16 GiB length
    // must not OOM the decoder before the runs fail to materialize).
    let mut out = Vec::with_capacity(total.min(1 << 20));
    while out.len() < total {
        let run = read_uvarint(data, &mut pos)? as usize;
        let byte = *data.get(pos).ok_or(EntropyError::UnexpectedEof)?;
        pos += 1;
        // `total - out.len()` cannot underflow (loop condition); comparing
        // against it instead of `out.len() + run` avoids overflow on a
        // forged run length near u64::MAX.
        if run == 0 || run > total - out.len() {
            return Err(EntropyError::Corrupt("invalid run length"));
        }
        out.extend(std::iter::repeat_n(byte, run));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for data in [
            vec![],
            vec![1u8],
            vec![0u8; 1000],
            b"aaabbbcccd".to_vec(),
            (0..=255u8).collect::<Vec<_>>(),
        ] {
            assert_eq!(decompress(&compress(&data)).unwrap(), data);
        }
    }

    #[test]
    fn long_runs_collapse() {
        let data = vec![9u8; 1_000_000];
        let c = compress(&data);
        assert!(c.len() < 16);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn forged_giant_length_does_not_allocate() {
        // Regression: a header claiming 2^34 bytes with a 3-byte payload
        // must fail with EOF, not abort on a 16 GiB pre-allocation.
        let mut data = Vec::new();
        mdz_entropy::write_uvarint(&mut data, 1 << 34);
        data.extend_from_slice(&[1, 2]);
        assert!(decompress(&data).is_err());
    }

    #[test]
    fn truncation_errors() {
        let c = compress(&[1, 1, 2, 2, 2, 3]);
        for cut in 0..c.len() {
            assert!(decompress(&c[..cut]).is_err(), "cut {cut}");
        }
    }
}
