//! Optimal 1-D k-means clustering and level-grid detection for the MDZ VQ
//! predictor.
//!
//! MDZ's key spatial observation (paper §V-B) is that crystalline MD data
//! clusters at roughly *equally spaced* discrete coordinate levels. The VQ
//! predictor therefore needs two parameters per axis: the level distance `λ`
//! and the initial level value `μ`. The paper finds them with a
//! sampling-based optimal 1-D k-means (`F(n,k)` dynamic program, Grønlund et
//! al.), computed once on 10 % of the first snapshot, with the cluster count
//! `κ` chosen by watching the cost ratio `G(k) = F(N,k)/F(N,k−1)` and capped
//! at 150.
//!
//! This crate implements:
//!
//! * [`kmeans_1d`] — exact DP over sorted points; each layer is solved with
//!   divide-and-conquer over the monotone argmin (O(N log N) per layer,
//!   matching the practical behaviour of the paper's O(KN) reference),
//! * [`select_k`] — the `G(k)` elbow rule,
//! * [`LevelGrid::fit`] — least-squares fit of `(λ, μ)` to the centroids,
//! * [`detect_levels`] — the end-to-end sampled pipeline used by MDZ.

pub mod dp;
pub mod grid;
pub mod select;

pub use dp::{kmeans_1d, Clustering};
pub use grid::LevelGrid;
pub use select::{select_k, SelectConfig};

/// Deterministically samples about `fraction` of `data` (at least
/// `min_samples` when possible). MDZ samples 10 % of the first snapshot.
///
/// One element is taken from each of `want` equal windows, at a
/// pseudo-random (but seed-free, reproducible) offset. Plain strided
/// sampling would alias against the periodic orderings crystalline MD data
/// exhibits (atoms laid out plane by plane), silently skipping levels; the
/// per-window jitter breaks that resonance.
pub fn sample(data: &[f64], fraction: f64, min_samples: usize) -> Vec<f64> {
    assert!(fraction > 0.0 && fraction <= 1.0);
    let n = data.len();
    let want = ((n as f64 * fraction).ceil() as usize).max(min_samples.min(n)).max(1);
    if want >= n {
        return data.to_vec();
    }
    let stride = n / want;
    let mut out = Vec::with_capacity(want);
    for j in 0..want {
        // splitmix64 finalizer as a stateless hash of the window index.
        let mut h = j as u64 ^ 0x9E3779B97F4A7C15;
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D049BB133111EB);
        h ^= h >> 31;
        let idx = j * stride + (h as usize % stride);
        if idx < n {
            out.push(data[idx]);
        }
    }
    out
}

/// End-to-end level detection: sample, sort, run the DP with `G(k)`
/// selection, and fit an equally spaced grid.
///
/// Returns `None` when the data has too few distinct values to define a grid
/// (fewer than two clusters) — callers fall back to plain prediction.
pub fn detect_levels(data: &[f64], cfg: &SelectConfig) -> Option<LevelGrid> {
    let mut sampled = sample(data, cfg.sample_fraction, cfg.min_samples);
    sampled.retain(|v| v.is_finite());
    if sampled.len() < 2 {
        return None;
    }
    sampled.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    let clustering = select_k(&sampled, cfg);
    if clustering.k < 2 {
        return None;
    }
    LevelGrid::fit(&clustering.centroids)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_respects_fraction() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let s = sample(&data, 0.1, 1);
        assert!(s.len() >= 100 && s.len() <= 200, "{}", s.len());
    }

    #[test]
    fn sample_small_input_returns_all() {
        let data = [1.0, 2.0, 3.0];
        assert_eq!(sample(&data, 0.1, 64), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn detect_levels_on_synthetic_lattice() {
        // 20 levels at spacing 2.5 starting at 10.0, ±0.05 vibration.
        let mut data = Vec::new();
        let mut s = 1234567u64;
        for i in 0..5000 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let level = (i % 20) as f64;
            let noise = ((s >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.1;
            data.push(10.0 + level * 2.5 + noise);
        }
        let grid = detect_levels(&data, &SelectConfig::default()).expect("grid");
        assert!((grid.lambda - 2.5).abs() < 0.05, "λ = {}", grid.lambda);
        // μ should land on the level lattice (any level is a valid phase).
        let phase = ((grid.mu - 10.0) / 2.5).rem_euclid(1.0);
        assert!(!(0.05..=0.95).contains(&phase), "μ = {} phase {}", grid.mu, phase);
    }

    #[test]
    fn detect_levels_rejects_constant_data() {
        let data = vec![5.0; 100];
        assert!(detect_levels(&data, &SelectConfig::default()).is_none());
    }

    #[test]
    fn detect_levels_handles_nan_noise() {
        let mut data: Vec<f64> = (0..500).map(|i| (i % 4) as f64).collect();
        data.push(f64::NAN);
        let _ = detect_levels(&data, &SelectConfig::default());
    }
}
