//! Fitting an equally spaced level grid `(λ, μ)` to cluster centroids.
//!
//! The VQ predictor does not use the clusters directly; it needs the level
//! distance `λ` and initial level value `μ` such that level `ℓ` sits at
//! `μ + ℓ·λ`. Centroids may skip lattice sites (unoccupied levels in the
//! sampled snapshot), so the fit must infer the fundamental spacing rather
//! than just average consecutive differences.

/// An equally spaced level grid: level `ℓ` is at `mu + lambda * ℓ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelGrid {
    /// Value of level 0 (the paper's initial level value `μ`).
    pub mu: f64,
    /// Distance between adjacent levels (the paper's `λ`).
    pub lambda: f64,
    /// Number of clusters the fit was derived from.
    pub k: usize,
    /// RMS residual of centroids about their nearest lattice site, as a
    /// fraction of `λ`. Near zero means strongly crystalline data.
    pub fit_error: f64,
}

impl LevelGrid {
    /// Fits `(λ, μ)` to ascending centroids. Returns `None` for fewer than
    /// two centroids or a degenerate (near-zero) spacing.
    pub fn fit(centroids: &[f64]) -> Option<Self> {
        if centroids.len() < 2 {
            return None;
        }
        let diffs: Vec<f64> = centroids.windows(2).map(|w| w[1] - w[0]).collect();
        // Initial guess: the smallest inter-centroid gap is one lattice step
        // unless levels were skipped everywhere; guard with the median too.
        let mut sorted = diffs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min_gap = sorted[0];
        if !min_gap.is_finite() || min_gap <= 0.0 {
            return None;
        }
        // Refine: interpret each diff as `round(diff/λ0)` lattice steps and
        // re-estimate λ as total span / total steps (least squares for equal
        // per-diff noise).
        let mut lambda = min_gap;
        for _ in 0..4 {
            let mut steps_total = 0.0;
            let mut span_total = 0.0;
            for &d in &diffs {
                let steps = (d / lambda).round().max(1.0);
                steps_total += steps;
                span_total += d;
            }
            let next = span_total / steps_total;
            if (next - lambda).abs() < 1e-12 * lambda.abs() {
                lambda = next;
                break;
            }
            lambda = next;
        }
        if lambda <= 0.0 || !lambda.is_finite() {
            return None;
        }
        // Phase: average the residuals of all centroids about the lattice
        // anchored at the first centroid.
        let base = centroids[0];
        let mut resid_sum = 0.0;
        for &c in centroids {
            let steps = ((c - base) / lambda).round();
            resid_sum += c - (base + steps * lambda);
        }
        let mu = base + resid_sum / centroids.len() as f64;
        // Fit quality.
        let mut sq = 0.0;
        for &c in centroids {
            let steps = ((c - mu) / lambda).round();
            let r = c - (mu + steps * lambda);
            sq += r * r;
        }
        let fit_error = (sq / centroids.len() as f64).sqrt() / lambda;
        Some(Self { mu, lambda, k: centroids.len(), fit_error })
    }

    /// Index of the lattice level nearest to `value`.
    #[inline]
    pub fn level_of(&self, value: f64) -> i64 {
        ((value - self.mu) / self.lambda).round() as i64
    }

    /// Value of lattice level `level`.
    #[inline]
    pub fn value_of(&self, level: i64) -> f64 {
        self.mu + self.lambda * level as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_lattice_fits_perfectly() {
        let centroids: Vec<f64> = (0..10).map(|i| 3.0 + i as f64 * 0.7).collect();
        let g = LevelGrid::fit(&centroids).unwrap();
        assert!((g.lambda - 0.7).abs() < 1e-12);
        assert!(g.fit_error < 1e-9);
        assert_eq!(g.level_of(3.0 + 4.0 * 0.7), g.level_of(g.value_of(g.level_of(5.8))));
    }

    #[test]
    fn skipped_levels_recover_fundamental_spacing() {
        // Levels 0,1,2,5,6,9 of a λ=2 lattice starting at 1.0.
        let centroids = vec![1.0, 3.0, 5.0, 11.0, 13.0, 19.0];
        let g = LevelGrid::fit(&centroids).unwrap();
        assert!((g.lambda - 2.0).abs() < 1e-9, "λ = {}", g.lambda);
    }

    #[test]
    fn noisy_lattice_fit_is_close() {
        let noise = [0.01, -0.02, 0.015, -0.005, 0.02, -0.01, 0.0];
        let centroids: Vec<f64> =
            (0..7).map(|i| 10.0 + i as f64 * 1.5 + noise[i as usize]).collect();
        let g = LevelGrid::fit(&centroids).unwrap();
        assert!((g.lambda - 1.5).abs() < 0.02, "λ = {}", g.lambda);
        assert!(g.fit_error < 0.05);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(LevelGrid::fit(&[]).is_none());
        assert!(LevelGrid::fit(&[1.0]).is_none());
        assert!(LevelGrid::fit(&[1.0, 1.0]).is_none());
    }

    #[test]
    fn level_round_trip() {
        let g = LevelGrid { mu: -4.2, lambda: 0.31, k: 5, fit_error: 0.0 };
        for lvl in -100..100 {
            assert_eq!(g.level_of(g.value_of(lvl)), lvl);
        }
    }

    #[test]
    fn irregular_centroids_report_large_fit_error() {
        // Golden-ratio gaps are incommensurate with any lattice. (Note that
        // powers of two would NOT work here: they form a perfect integer
        // sub-lattice and legitimately fit with λ = 1.)
        let phi = 1.618_033_988_749_895;
        let centroids = vec![0.0, 1.0, 1.0 + phi, 2.0 + phi, 2.0 + 2.0 * phi];
        let g = LevelGrid::fit(&centroids).unwrap();
        assert!(g.fit_error > 0.05, "fit_error = {}", g.fit_error);
    }

    #[test]
    fn power_of_two_centroids_fit_an_integer_lattice() {
        let centroids = vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
        let g = LevelGrid::fit(&centroids).unwrap();
        assert!((g.lambda - 1.0).abs() < 1e-9);
        assert!(g.fit_error < 1e-9);
    }
}
