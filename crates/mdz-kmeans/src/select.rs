//! Cluster-count selection via the paper's `G(k)` cost-ratio rule.
//!
//! While computing `F(N,K)` the DP produces `F(N,1), …, F(N,K)` in order.
//! With `G(k) = F(N,k)/F(N,k−1)`, the paper stops at `κ` when `G(κ)`
//! "decreases significantly" relative to `G(κ−1)`: at the true level count
//! the cost collapses from inter-level scale (λ²) to vibration scale (σ²),
//! so `G(κ)` plummets while neighbouring ratios stay moderate. `K` is capped
//! at 150 because more clusters inflate the level-index alphabet and hurt
//! the Huffman stage.

use crate::dp::{Clustering, DpSolution};

/// Tuning knobs for sampled level detection.
#[derive(Debug, Clone)]
pub struct SelectConfig {
    /// Maximum clusters to consider (paper: 150).
    pub max_k: usize,
    /// Fraction of the input to sample (paper: 0.10).
    pub sample_fraction: f64,
    /// Lower bound on the sample size for tiny inputs.
    pub min_samples: usize,
    /// A drop `G(κ) < drop_ratio · G(κ−1)` marks `κ` as the level count.
    pub drop_ratio: f64,
}

impl Default for SelectConfig {
    fn default() -> Self {
        Self { max_k: 150, sample_fraction: 0.10, min_samples: 256, drop_ratio: 0.5 }
    }
}

/// Runs the DP with incremental `G(k)` inspection (early-stopped a few
/// layers past the cost collapse) and returns the clustering at the
/// selected `κ` — one DP pass, no re-solve.
pub fn select_k(sorted: &[f64], cfg: &SelectConfig) -> Clustering {
    let dp = DpSolution::solve(sorted, cfg.max_k, true);
    let kappa = choose_kappa(&dp.costs, cfg.drop_ratio);
    dp.clustering_at(kappa)
}

/// Applies the `G(k)` rule to a cost curve `costs[j] = F(N, j+1)`.
///
/// Returns the chosen cluster count `κ ∈ [1, costs.len()]`: the *first* `k`
/// where the cost ratio both falls below `drop_ratio` and collapses relative
/// to its predecessor (`G(k) ≤ 0.2·G(k−1)`). "First" matters: once the cost
/// reaches the vibration noise floor, ever-finer splits keep shaving cost
/// (all the way to an exact zero at `k = #distinct`), and a global-minimum
/// rule would chase that meaningless tail.
pub fn choose_kappa(costs: &[f64], drop_ratio: f64) -> usize {
    /// A collapse must shrink `G` at least this much versus `G(k−1)`.
    const ELBOW_FACTOR: f64 = 0.2;
    if costs.len() <= 1 {
        return costs.len().max(1);
    }
    let mut g_prev = 1.0; // define G(1) = 1
    for k in 2..=costs.len() {
        let (num, den) = (costs[k - 1], costs[k - 2]);
        if den <= 0.0 {
            // Cost already hit zero at k−1; further ratios are meaningless.
            break;
        }
        let gk = num / den;
        // A genuine level collapse leaves only vibration variance, which is
        // far below the inter-level variance F(1); requiring it filters out
        // ordinary "good splits" early in the curve.
        if gk < drop_ratio && gk <= ELBOW_FACTOR * g_prev && num <= 0.1 * costs[0] {
            return k;
        }
        g_prev = gk;
    }
    // No collapse: data is not level-structured. Take the single most
    // helpful split only if it is strongly beneficial, else one cluster.
    let mut best = (1usize, f64::INFINITY);
    for k in 2..=costs.len() {
        if costs[k - 2] <= 0.0 {
            break;
        }
        let gk = costs[k - 1] / costs[k - 2];
        if gk < best.1 {
            best = (k, gk);
        }
    }
    if best.1 < 0.25 {
        best.0
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lattice_data(levels: usize, per_level: usize, spacing: f64, noise: f64) -> Vec<f64> {
        let mut s = 42u64;
        let mut data = Vec::new();
        for i in 0..levels * per_level {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            data.push((i % levels) as f64 * spacing + u * noise);
        }
        data.sort_by(|a, b| a.partial_cmp(b).unwrap());
        data
    }

    #[test]
    fn finds_true_level_count() {
        for levels in [3usize, 8, 20] {
            let data = lattice_data(levels, 200, 2.0, 0.05);
            let c = select_k(&data, &SelectConfig::default());
            assert_eq!(c.k, levels, "levels {levels}");
        }
    }

    #[test]
    fn uniform_data_selects_few_clusters() {
        // No level structure: strided uniform values.
        let data: Vec<f64> = (0..2000).map(|i| i as f64 * 0.001).collect();
        let c = select_k(&data, &SelectConfig::default());
        assert!(c.k <= 4, "k = {}", c.k);
    }

    #[test]
    fn perfect_lattice_stops_at_exact_k() {
        let data = lattice_data(12, 100, 1.0, 0.0);
        let c = select_k(&data, &SelectConfig::default());
        assert_eq!(c.k, 12);
        assert!(c.cost < 1e-12);
    }

    #[test]
    fn respects_max_k_cap() {
        let data = lattice_data(60, 30, 1.0, 0.01);
        let cfg = SelectConfig { max_k: 10, ..Default::default() };
        let c = select_k(&data, &cfg);
        assert!(c.k <= 10);
    }

    #[test]
    fn choose_kappa_on_synthetic_curves() {
        // Cost collapses at k=4.
        let costs = [100.0, 60.0, 35.0, 0.5, 0.4, 0.35];
        assert_eq!(choose_kappa(&costs, 0.5), 4);
        // Monotone gentle decline: no elbow.
        let costs = [100.0, 90.0, 82.0, 75.0, 70.0];
        assert_eq!(choose_kappa(&costs, 0.5), 1);
        // Zero tail → first perfect k.
        let costs = [10.0, 2.0, 0.0, 0.0];
        assert_eq!(choose_kappa(&costs, 0.5), 3);
        // Single entry.
        assert_eq!(choose_kappa(&[5.0], 0.5), 1);
    }

    #[test]
    fn two_level_data() {
        let mut data = vec![0.0; 100];
        data.extend(vec![10.0; 100]);
        let c = select_k(&data, &SelectConfig::default());
        assert_eq!(c.k, 2);
    }
}
