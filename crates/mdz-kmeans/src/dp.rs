//! Exact 1-D k-means by dynamic programming.
//!
//! For sorted points `d_1 ≤ … ≤ d_N`, every optimal k-clustering consists of
//! contiguous runs, so `F(n,k) = min_i F(i−1, k−1) + Cost(i, n)` (paper
//! Formula 1) is exact. `Cost` is the within-cluster sum of squared errors,
//! O(1) from prefix sums. The argmin of each layer is monotone in `n`
//! (the SSE cost satisfies the concave Monge condition), so each layer is
//! solved by divide-and-conquer in O(N log N) — the same practical regime as
//! the paper's cited O(KN) SMAWK solution, and exact for the sample sizes
//! MDZ feeds it (10 % of one snapshot).

/// Result of clustering `n` sorted points into `k` groups.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Number of clusters actually produced (≤ requested `k`).
    pub k: usize,
    /// `start[j]` = index of the first point of cluster `j`; `start[0] == 0`.
    pub starts: Vec<usize>,
    /// Mean of each cluster, ascending.
    pub centroids: Vec<f64>,
    /// Total within-cluster sum of squared errors.
    pub cost: f64,
}

/// Prefix sums enabling O(1) SSE of any range.
struct Prefix {
    sum: Vec<f64>,
    sumsq: Vec<f64>,
}

impl Prefix {
    fn new(sorted: &[f64]) -> Self {
        let mut sum = Vec::with_capacity(sorted.len() + 1);
        let mut sumsq = Vec::with_capacity(sorted.len() + 1);
        sum.push(0.0);
        sumsq.push(0.0);
        for &v in sorted {
            sum.push(sum.last().unwrap() + v);
            sumsq.push(sumsq.last().unwrap() + v * v);
        }
        Self { sum, sumsq }
    }

    /// SSE of points `l..r` (half-open, 0-based) about their mean.
    #[inline]
    fn cost(&self, l: usize, r: usize) -> f64 {
        if r <= l + 1 {
            return 0.0;
        }
        let n = (r - l) as f64;
        let s = self.sum[r] - self.sum[l];
        let sq = self.sumsq[r] - self.sumsq[l];
        // Guard tiny negative values from floating-point cancellation.
        (sq - s * s / n).max(0.0)
    }

    #[inline]
    fn mean(&self, l: usize, r: usize) -> f64 {
        (self.sum[r] - self.sum[l]) / (r - l) as f64
    }
}

/// Solves one DP layer for rows `lo..=hi` with the optimal split known to be
/// in `opt_lo..=opt_hi`.
///
/// `f_prev[i]` = optimal cost of the first `i` points in `k−1` clusters;
/// `f_cur[n]` = optimal cost of the first `n` points in `k` clusters, with
/// the last cluster being `split..n` recorded in `arg[n]`.
#[allow(clippy::too_many_arguments)]
#[allow(clippy::needless_range_loop)] // i is a DP split index, not a plain iteration
fn solve_layer(
    pref: &Prefix,
    f_prev: &[f64],
    f_cur: &mut [f64],
    arg: &mut [usize],
    lo: usize,
    hi: usize,
    opt_lo: usize,
    opt_hi: usize,
) {
    if lo > hi {
        return;
    }
    let mid = (lo + hi) / 2;
    let mut best = f64::INFINITY;
    let mut best_i = opt_lo;
    // Last cluster is i..mid (so i ranges over [opt_lo, min(mid, opt_hi)]),
    // and i ≥ 1 because the previous layer must cover at least... zero points
    // is fine (empty prefix has cost 0 only for k−1 == 0, encoded in f_prev).
    let upper = opt_hi.min(mid);
    for i in opt_lo..=upper {
        let c = f_prev[i] + pref.cost(i, mid);
        if c < best {
            best = c;
            best_i = i;
        }
    }
    f_cur[mid] = best;
    arg[mid] = best_i;
    if mid > lo {
        solve_layer(pref, f_prev, f_cur, arg, lo, mid - 1, opt_lo, best_i);
    }
    if mid < hi {
        solve_layer(pref, f_prev, f_cur, arg, mid + 1, hi, best_i, opt_hi);
    }
}

/// Exact k-means of `sorted` (ascending) into at most `k` clusters.
///
/// Also returns the full cost curve `F(N, 1..=k)` so callers can run the
/// paper's `G(k)` selection without re-clustering; see [`kmeans_path`].
///
/// # Panics
/// Panics if `sorted` is empty, `k == 0`, or the input is not sorted
/// (debug builds only for the sort check).
pub fn kmeans_1d(sorted: &[f64], k: usize) -> Clustering {
    let (clusterings, _) = kmeans_path(sorted, k);
    clusterings
}

/// Like [`kmeans_1d`] but also returns `costs[j] = F(N, j+1)` for
/// `j+1 = 1..=k_used`.
pub fn kmeans_path(sorted: &[f64], k: usize) -> (Clustering, Vec<f64>) {
    let dp = DpSolution::solve(sorted, k, false);
    let clustering = dp.clustering_at(dp.costs.len());
    let costs = dp.costs;
    (clustering, costs)
}

/// The full DP state: cost curve plus per-layer backtracking tables, so a
/// clustering at *any* computed `k` can be extracted without re-solving.
pub struct DpSolution {
    /// `costs[j] = F(N, j+1)`.
    pub costs: Vec<f64>,
    arg_layers: Vec<Vec<usize>>,
    prefix: Prefix,
    n: usize,
}

impl DpSolution {
    /// Solves layers `1..=k` (clamped to the distinct-value count).
    ///
    /// With `early_stop`, computation ends a few layers after the cost curve
    /// collapses — the paper's "stop computing F at κ when G(κ) drops"
    /// optimization — so level-structured data costs O(K·N log N) rather
    /// than O(max_k·N log N).
    pub fn solve(sorted: &[f64], k: usize, early_stop: bool) -> Self {
        assert!(!sorted.is_empty(), "empty input");
        assert!(k > 0, "k must be positive");
        debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
        let n = sorted.len();
        let distinct = count_distinct(sorted);
        let k = k.min(distinct);
        let pref = Prefix::new(sorted);

        let mut f_prev: Vec<f64> = (0..=n).map(|i| pref.cost(0, i)).collect();
        let mut costs = vec![f_prev[n]];
        let mut arg_layers: Vec<Vec<usize>> = vec![vec![0; n + 1]];
        // Layers remaining after a detected collapse (to confirm it).
        let mut confirm: Option<usize> = None;
        for _layer in 2..=k {
            let mut f_cur = vec![0.0; n + 1];
            let mut arg = vec![0; n + 1];
            solve_layer(&pref, &f_prev, &mut f_cur, &mut arg, 1, n, 1, n);
            f_cur[0] = 0.0;
            costs.push(f_cur[n]);
            arg_layers.push(arg);
            f_prev = f_cur;
            if *costs.last().unwrap() <= 1e-12 {
                break; // perfect fit; more clusters cannot help
            }
            if early_stop {
                if let Some(rem) = &mut confirm {
                    if *rem == 0 {
                        break;
                    }
                    *rem -= 1;
                } else if collapsed(&costs) {
                    confirm = Some(3);
                }
            }
        }
        Self { costs, arg_layers, prefix: pref, n }
    }

    /// Extracts the optimal clustering for `k ≤ self.costs.len()` clusters.
    pub fn clustering_at(&self, k: usize) -> Clustering {
        let k = k.clamp(1, self.costs.len());
        let mut starts = Vec::with_capacity(k);
        let mut end = self.n;
        for layer in (1..k).rev() {
            let s = self.arg_layers[layer][end];
            starts.push(s);
            end = s;
        }
        starts.push(0);
        starts.reverse();
        // Drop duplicate starts produced by empty clusters (possible when
        // the DP found a perfect fit with fewer groups).
        starts.dedup();
        let mut centroids = Vec::with_capacity(starts.len());
        for (j, &s) in starts.iter().enumerate() {
            let e = starts.get(j + 1).copied().unwrap_or(self.n);
            centroids.push(self.prefix.mean(s, e));
        }
        Clustering { k: starts.len(), starts, centroids, cost: self.costs[k - 1] }
    }
}

/// The cost-collapse signal used for early stopping (mirrors
/// `select::choose_kappa`'s main rule).
fn collapsed(costs: &[f64]) -> bool {
    let k = costs.len();
    if k < 2 {
        return false;
    }
    let gk = costs[k - 1] / costs[k - 2];
    let g_prev = if k >= 3 { costs[k - 2] / costs[k - 3] } else { 1.0 };
    gk < 0.5 && gk <= 0.2 * g_prev && costs[k - 1] <= 0.1 * costs[0]
}

fn count_distinct(sorted: &[f64]) -> usize {
    if sorted.is_empty() {
        return 0;
    }
    1 + sorted.windows(2).filter(|w| w[0] < w[1]).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force optimal SSE over all contiguous partitions.
    fn brute_force(sorted: &[f64], k: usize) -> f64 {
        fn sse(pts: &[f64]) -> f64 {
            let m = pts.iter().sum::<f64>() / pts.len() as f64;
            pts.iter().map(|v| (v - m) * (v - m)).sum()
        }
        fn rec(pts: &[f64], k: usize) -> f64 {
            if k == 1 {
                return sse(pts);
            }
            if pts.len() <= k {
                return 0.0;
            }
            let mut best = f64::INFINITY;
            for split in 1..pts.len() {
                let left = rec(&pts[..split], k - 1);
                let right = sse(&pts[split..]);
                best = best.min(left + right);
            }
            best
        }
        rec(sorted, k)
    }

    #[test]
    fn matches_brute_force_exhaustively() {
        let datasets: Vec<Vec<f64>> = vec![
            vec![1.0, 2.0, 3.0, 10.0, 11.0, 12.0],
            vec![0.0, 0.1, 0.2, 5.0, 5.1, 9.9, 10.0, 10.1],
            vec![1.0, 1.0, 1.0, 2.0],
            vec![-3.0, -1.0, 0.0, 2.0, 7.0, 7.5, 8.0, 20.0, 21.0],
            vec![1.5],
            vec![2.0, 2.0],
        ];
        for data in &datasets {
            for k in 1..=data.len().min(5) {
                let c = kmeans_1d(data, k);
                let bf = brute_force(data, k.min(count_distinct(data)));
                assert!(
                    (c.cost - bf).abs() < 1e-9,
                    "data {data:?} k {k}: dp {} vs bf {bf}",
                    c.cost
                );
            }
        }
    }

    #[test]
    fn perfect_clusters_have_zero_cost() {
        let data = vec![1.0, 1.0, 5.0, 5.0, 9.0, 9.0];
        let c = kmeans_1d(&data, 3);
        assert!(c.cost < 1e-12);
        assert_eq!(c.centroids, vec![1.0, 5.0, 9.0]);
    }

    #[test]
    fn k_larger_than_distinct_is_clamped() {
        let data = vec![1.0, 1.0, 2.0, 2.0];
        let c = kmeans_1d(&data, 10);
        assert!(c.k <= 2);
        assert!(c.cost < 1e-12);
    }

    #[test]
    fn single_cluster_is_global_mean() {
        let data = vec![2.0, 4.0, 6.0];
        let c = kmeans_1d(&data, 1);
        assert_eq!(c.k, 1);
        assert!((c.centroids[0] - 4.0).abs() < 1e-12);
        assert!((c.cost - 8.0).abs() < 1e-12);
    }

    #[test]
    fn cost_curve_is_monotone_nonincreasing() {
        let data: Vec<f64> = (0..200).map(|i| ((i * 37) % 100) as f64).collect();
        let mut sorted = data;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (_, costs) = kmeans_path(&sorted, 20);
        for w in costs.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "{costs:?}");
        }
    }

    #[test]
    fn boundaries_partition_the_input() {
        let mut data: Vec<f64> =
            (0..500).map(|i| ((i % 7) * 10) as f64 + (i % 3) as f64 * 0.01).collect();
        data.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let c = kmeans_1d(&data, 7);
        assert_eq!(c.starts[0], 0);
        for w in c.starts.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(*c.starts.last().unwrap() < data.len());
        assert_eq!(c.centroids.len(), c.starts.len());
    }

    #[test]
    fn large_input_is_fast_and_exact_on_lattice() {
        // 50k points on 30 exact levels — cost must be ~0 at k=30.
        let mut data: Vec<f64> = (0..50_000).map(|i| ((i % 30) as f64) * 1.5).collect();
        data.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let c = kmeans_1d(&data, 30);
        assert!(c.cost < 1e-9);
        assert_eq!(c.k, 30);
    }
}
