//! Minimal 3-vector math for the MD engine.

use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A 3-D vector of `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Component constructor.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Splat constructor.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Self { x: v, y: v, z: v }
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Applies the minimum-image convention for a cubic box of side `l`.
    #[inline]
    pub fn min_image(mut self, l: f64) -> Self {
        let half = l * 0.5;
        for c in [&mut self.x, &mut self.y, &mut self.z] {
            if *c > half {
                *c -= l;
            } else if *c < -half {
                *c += l;
            }
        }
        self
    }

    /// Wraps a position into `[0, l)` on each axis.
    #[inline]
    pub fn wrap(mut self, l: f64) -> Self {
        for c in [&mut self.x, &mut self.y, &mut self.z] {
            *c = c.rem_euclid(l);
        }
        self
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, -3.0, 9.0));
        assert_eq!(a - b, Vec3::new(-3.0, 7.0, -3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a.dot(b), 1.0 * 4.0 - 2.0 * 5.0 + 3.0 * 6.0);
    }

    #[test]
    fn norms() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(v.norm(), 5.0);
    }

    #[test]
    fn min_image_folds_into_half_box() {
        let l = 10.0;
        let v = Vec3::new(6.0, -6.0, 4.9).min_image(l);
        assert_eq!(v, Vec3::new(-4.0, 4.0, 4.9));
    }

    #[test]
    fn wrap_into_box() {
        let l = 10.0;
        let v = Vec3::new(12.5, -0.5, 10.0).wrap(l);
        assert!((v.x - 2.5).abs() < 1e-12);
        assert!((v.y - 9.5).abs() < 1e-12);
        assert!(v.z.abs() < 1e-12);
    }
}
