//! Small deterministic PRNG for the simulation substrate.
//!
//! The generators in this crate only need reproducible, statistically decent
//! randomness — not cryptographic strength and not the external `rand` crate
//! (the workspace builds offline, see DESIGN.md). This is xoshiro256++ with
//! SplitMix64 state expansion, the standard pairing recommended by the
//! xoshiro authors: SplitMix64 decorrelates arbitrary u64 seeds (including 0
//! and small integers) into full 256-bit state.
//!
//! Determinism is part of the contract: a given seed produces the same
//! stream on every platform and every run, so datasets and experiments are
//! reproducible byte-for-byte.

/// Deterministic xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed (any value, including 0).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// Next raw 64-bit output (xoshiro256++ scrambler).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let s2 = s2 ^ s0;
        let s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        self.s = [s0, s1, s2 ^ t, s3.rotate_left(45)];
        result
    }

    /// Uniform `f64` in `[0, 1)` from the high 53 bits.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + self.f64() * (hi - lo)
    }

    /// Uniform index in `[0, n)` via Lemire's widening-multiply reduction.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }

    /// Fair coin flip.
    #[inline]
    pub fn bool(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// Standard-normal sample (Box–Muller; one of the pair is discarded for
    /// simplicity — the generators here are not throughput-bound).
    #[inline]
    pub fn gauss(&mut self) -> f64 {
        let u1 = self.f64_range(1e-12, 1.0);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = Rng::seed_from_u64(0);
        let vals: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
        assert_eq!(vals.iter().collect::<std::collections::HashSet<_>>().len(), 16);
    }

    #[test]
    fn f64_in_unit_interval_and_well_spread() {
        let mut r = Rng::seed_from_u64(7);
        let n = 20_000;
        let mut acc = 0.0;
        for _ in 0..n {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            acc += v;
        }
        let mean = acc / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn index_covers_range_uniformly() {
        let mut r = Rng::seed_from_u64(9);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[r.index(5)] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 800, "counts {counts:?}");
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut r = Rng::seed_from_u64(11);
        let heads = (0..20_000).filter(|_| r.bool()).count();
        assert!((heads as i64 - 10_000).abs() < 500, "heads {heads}");
    }

    #[test]
    fn gauss_moments() {
        let mut r = Rng::seed_from_u64(13);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gauss()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
