//! Cell-list neighbour search for short-range potentials under periodic
//! boundary conditions.
//!
//! The box is divided into cubic cells at least `r_cut` wide; interacting
//! pairs are then found by scanning the 27-cell neighbourhood, making force
//! evaluation O(N) at liquid densities.

use crate::vec3::Vec3;

/// A rebuildable cell list over a cubic periodic box.
#[derive(Debug, Clone)]
pub struct CellList {
    /// Box side length.
    box_len: f64,
    /// Cells per axis (≥ 1).
    n_cells: usize,
    /// Cell side length.
    cell_len: f64,
    /// Head-of-chain particle index per cell, `usize::MAX` = empty.
    heads: Vec<usize>,
    /// Next particle in the same cell, `usize::MAX` = end.
    next: Vec<usize>,
}

const NONE: usize = usize::MAX;

impl CellList {
    /// Creates a cell list for a box of side `box_len` and cutoff `r_cut`.
    pub fn new(box_len: f64, r_cut: f64) -> Self {
        assert!(box_len > 0.0 && r_cut > 0.0);
        let n_cells = ((box_len / r_cut).floor() as usize).max(1);
        let cell_len = box_len / n_cells as f64;
        Self {
            box_len,
            n_cells,
            cell_len,
            heads: vec![NONE; n_cells * n_cells * n_cells],
            next: Vec::new(),
        }
    }

    /// Number of cells per axis.
    pub fn cells_per_axis(&self) -> usize {
        self.n_cells
    }

    #[inline]
    fn cell_index(&self, p: Vec3) -> usize {
        let f = |c: f64| -> usize {
            let i = (c.rem_euclid(self.box_len) / self.cell_len) as usize;
            i.min(self.n_cells - 1)
        };
        (f(p.x) * self.n_cells + f(p.y)) * self.n_cells + f(p.z)
    }

    /// Rebuilds the list from current positions.
    pub fn rebuild(&mut self, positions: &[Vec3]) {
        self.heads.iter_mut().for_each(|h| *h = NONE);
        self.next.clear();
        self.next.resize(positions.len(), NONE);
        for (i, &p) in positions.iter().enumerate() {
            let c = self.cell_index(p);
            self.next[i] = self.heads[c];
            self.heads[c] = i;
        }
    }

    /// Visits every unordered pair within the cutoff neighbourhood.
    ///
    /// `f(i, j, r_ij)` receives `i < j` style unique pairs (by construction
    /// each pair is visited once) and the minimum-image displacement
    /// `r_i − r_j`. Pairs beyond the cutoff may be visited — callers apply
    /// the cutoff test themselves (the list is a broad phase).
    pub fn for_each_pair<F: FnMut(usize, usize, Vec3)>(&self, positions: &[Vec3], mut f: F) {
        let n = self.n_cells as isize;
        // When fewer than 3 cells per axis, neighbour offsets alias; fall
        // back to the all-pairs loop, which is correct at any size.
        if self.n_cells < 3 {
            for i in 0..positions.len() {
                for j in i + 1..positions.len() {
                    let d = (positions[i] - positions[j]).min_image(self.box_len);
                    f(i, j, d);
                }
            }
            return;
        }
        for cx in 0..n {
            for cy in 0..n {
                for cz in 0..n {
                    let c = ((cx * n + cy) * n + cz) as usize;
                    // Half-shell of 13 neighbour offsets + self-cell.
                    self.pairs_within_cell(c, positions, &mut f);
                    for &(dx, dy, dz) in HALF_SHELL {
                        let ox = (cx + dx).rem_euclid(n);
                        let oy = (cy + dy).rem_euclid(n);
                        let oz = (cz + dz).rem_euclid(n);
                        let o = ((ox * n + oy) * n + oz) as usize;
                        self.pairs_between_cells(c, o, positions, &mut f);
                    }
                }
            }
        }
    }

    fn pairs_within_cell<F: FnMut(usize, usize, Vec3)>(
        &self,
        c: usize,
        positions: &[Vec3],
        f: &mut F,
    ) {
        let mut i = self.heads[c];
        while i != NONE {
            let mut j = self.next[i];
            while j != NONE {
                let d = (positions[i] - positions[j]).min_image(self.box_len);
                f(i, j, d);
                j = self.next[j];
            }
            i = self.next[i];
        }
    }

    fn pairs_between_cells<F: FnMut(usize, usize, Vec3)>(
        &self,
        a: usize,
        b: usize,
        positions: &[Vec3],
        f: &mut F,
    ) {
        let mut i = self.heads[a];
        while i != NONE {
            let mut j = self.heads[b];
            while j != NONE {
                let d = (positions[i] - positions[j]).min_image(self.box_len);
                f(i, j, d);
                j = self.next[j];
            }
            i = self.next[i];
        }
    }
}

/// 13 offsets forming a half shell of the 26 neighbours, so each cell pair
/// is enumerated exactly once.
const HALF_SHELL: &[(isize, isize, isize)] = &[
    (1, 0, 0),
    (0, 1, 0),
    (0, 0, 1),
    (1, 1, 0),
    (1, -1, 0),
    (1, 0, 1),
    (1, 0, -1),
    (0, 1, 1),
    (0, 1, -1),
    (1, 1, 1),
    (1, 1, -1),
    (1, -1, 1),
    (1, -1, -1),
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn brute_pairs(positions: &[Vec3], box_len: f64, r_cut: f64) -> HashSet<(usize, usize)> {
        let mut set = HashSet::new();
        for i in 0..positions.len() {
            for j in i + 1..positions.len() {
                let d = (positions[i] - positions[j]).min_image(box_len);
                if d.norm_sq() <= r_cut * r_cut {
                    set.insert((i, j));
                }
            }
        }
        set
    }

    fn cell_pairs(positions: &[Vec3], box_len: f64, r_cut: f64) -> HashSet<(usize, usize)> {
        let mut cl = CellList::new(box_len, r_cut);
        cl.rebuild(positions);
        let mut set = HashSet::new();
        cl.for_each_pair(positions, |i, j, d| {
            if d.norm_sq() <= r_cut * r_cut {
                let key = if i < j { (i, j) } else { (j, i) };
                assert!(set.insert(key), "pair {key:?} visited twice");
            }
        });
        set
    }

    fn pseudo_positions(n: usize, box_len: f64, seed: u64) -> Vec<Vec3> {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| Vec3::new(next(), next(), next()) * box_len).collect()
    }

    #[test]
    fn matches_brute_force_large_box() {
        let box_len = 12.0;
        let pts = pseudo_positions(150, box_len, 99);
        assert_eq!(cell_pairs(&pts, box_len, 2.5), brute_pairs(&pts, box_len, 2.5));
    }

    #[test]
    fn matches_brute_force_small_box_fallback() {
        // Box barely over 2 cutoffs: exercises the all-pairs fallback.
        let box_len = 4.0;
        let pts = pseudo_positions(40, box_len, 7);
        assert_eq!(cell_pairs(&pts, box_len, 2.0), brute_pairs(&pts, box_len, 2.0));
    }

    #[test]
    fn matches_brute_force_exactly_three_cells() {
        let box_len = 7.5;
        let pts = pseudo_positions(80, box_len, 1234);
        assert_eq!(cell_pairs(&pts, box_len, 2.5), brute_pairs(&pts, box_len, 2.5));
    }

    #[test]
    fn periodic_pair_across_boundary_found() {
        let box_len = 10.0;
        let pts = vec![Vec3::new(0.1, 5.0, 5.0), Vec3::new(9.9, 5.0, 5.0)];
        let pairs = cell_pairs(&pts, box_len, 1.0);
        assert!(pairs.contains(&(0, 1)));
    }

    #[test]
    fn empty_and_single_particle() {
        let mut cl = CellList::new(10.0, 2.0);
        cl.rebuild(&[]);
        cl.for_each_pair(&[], |_, _, _| panic!("no pairs expected"));
        let one = [Vec3::new(1.0, 1.0, 1.0)];
        cl.rebuild(&one);
        cl.for_each_pair(&one, |_, _, _| panic!("no pairs expected"));
    }

    #[test]
    fn positions_outside_box_are_wrapped_into_cells() {
        let box_len = 9.0;
        let pts = vec![Vec3::new(-0.5, 10.0, 4.0), Vec3::new(8.6, 0.9, 4.1)];
        let pairs = cell_pairs(&pts, box_len, 1.5);
        assert_eq!(pairs, brute_pairs(&pts, box_len, 1.5));
    }
}
