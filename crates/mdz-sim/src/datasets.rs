//! Generators mirroring the paper's evaluation datasets (Table I + HACC).
//!
//! Each generator reproduces the spatial pattern (Fig. 3), value
//! distribution (Fig. 4), and temporal regime (Fig. 5) the paper attributes
//! to its dataset, at a configurable [`Scale`]:
//!
//! | Dataset  | Spatial (Fig. 3)    | Temporal (Fig. 5)      | Model |
//! |----------|---------------------|------------------------|-------|
//! | Copper-A | stable zigzag levels| small changes          | FCC crystal, high OU correlation |
//! | Copper-B | stable zigzag levels| large frequent changes | FCC crystal, low OU correlation |
//! | Helium-A | erratic zigzag      | small changes          | BCC matrix + mobile bubble atoms |
//! | Helium-B | stable zigzag levels| large changes          | BCC crystal, low correlation, rare hops |
//! | ADK      | random              | large changes          | random-walk chain, low correlation |
//! | IFABP    | random              | moderate changes       | random-walk chain, medium correlation |
//! | Pt       | stair-wise levels   | tiny changes           | large FCC surface, very high correlation, rare adatom hops |
//! | LJ       | erratic / uniform   | tiny changes           | real Lennard-Jones engine, closely spaced dumps |
//! | HACC-1/2 | clustered           | coherent drift         | Gaussian-blob cloud with bulk velocities |

use crate::crystal::{CosmoCloud, RandomWalkCloud, VibratingCrystal};
use crate::engine::{LjSimulation, SimConfig};
use crate::lattice::{self, Structure};
use crate::rng::Rng;
use crate::Snapshot;

/// The datasets of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Copper under strong electric fields, mode A (large cell).
    CopperA,
    /// Copper, mode B (small cell, long trajectory).
    CopperB,
    /// Helium bubbles in tungsten, mode A.
    HeliumA,
    /// Vacancy/helium clusters in tungsten, mode B.
    HeliumB,
    /// Adenylate kinase protein in water.
    Adk,
    /// Intestinal fatty acid-binding protein in water.
    Ifabp,
    /// Platinum surface diffusion (local hyperdynamics).
    Pt,
    /// Lennard-Jones liquid benchmark.
    Lj,
    /// Cosmological particle field #1.
    Hacc1,
    /// Cosmological particle field #2.
    Hacc2,
    /// Non-crystal stress scenario (not in the paper): free gas particles
    /// whose per-particle step sizes span several orders of magnitude, so
    /// no single quantization scale fits the whole population. Exercises
    /// bit-adaptive quantization; deliberately excluded from
    /// [`DatasetKind::MD`]/[`DatasetKind::HACC`].
    Gas,
}

impl DatasetKind {
    /// The eight MD datasets of Table I.
    pub const MD: [DatasetKind; 8] = [
        DatasetKind::CopperA,
        DatasetKind::CopperB,
        DatasetKind::HeliumA,
        DatasetKind::HeliumB,
        DatasetKind::Adk,
        DatasetKind::Ifabp,
        DatasetKind::Pt,
        DatasetKind::Lj,
    ];

    /// The HACC generalizability datasets (Fig. 16).
    pub const HACC: [DatasetKind; 2] = [DatasetKind::Hacc1, DatasetKind::Hacc2];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::CopperA => "Copper-A",
            DatasetKind::CopperB => "Copper-B",
            DatasetKind::HeliumA => "Helium-A",
            DatasetKind::HeliumB => "Helium-B",
            DatasetKind::Adk => "ADK",
            DatasetKind::Ifabp => "IFABP",
            DatasetKind::Pt => "Pt",
            DatasetKind::Lj => "LJ",
            DatasetKind::Hacc1 => "HACC-1",
            DatasetKind::Hacc2 => "HACC-2",
            DatasetKind::Gas => "Gas",
        }
    }

    /// Table I metadata: `(state, code, snapshots, atoms)` at paper scale.
    pub fn paper_row(self) -> (&'static str, &'static str, usize, usize) {
        match self {
            DatasetKind::CopperA => ("Solid", "LAMMPS", 83, 1_077_290),
            DatasetKind::CopperB => ("Solid", "LAMMPS", 5423, 3137),
            DatasetKind::HeliumA => ("Plasma", "LAMMPS", 2338, 106_711),
            DatasetKind::HeliumB => ("Plasma", "EXAALT", 7852, 1037),
            DatasetKind::Adk => ("Protein", "CHARMM", 4187, 3341),
            DatasetKind::Ifabp => ("Protein", "CHARMM", 500, 12_445),
            DatasetKind::Pt => ("Solid", "LAMMPS", 300, 2_371_092),
            DatasetKind::Lj => ("Liquid", "LAMMPS", 50, 6_912_000),
            DatasetKind::Hacc1 => ("Cosmology", "HACC", 30, 15_767_098),
            DatasetKind::Hacc2 => ("Cosmology", "HACC", 80, 13_131_491),
            // Synthetic stress scenario, not a Table I row.
            DatasetKind::Gas => ("Gas", "synthetic", 100, 20_000),
        }
    }
}

/// Generation scale: trades fidelity against runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny, for unit tests (hundreds of atoms, ~8 snapshots).
    Test,
    /// Default experiment scale (thousands of atoms, tens–hundreds of
    /// snapshots) — large enough for the paper's ratio *shapes* to emerge.
    Small,
    /// Larger runs for final benchmark numbers.
    Full,
}

impl Scale {
    /// `(snapshots, atoms)` for a dataset at this scale, preserving each
    /// dataset's mode-A/mode-B aspect ratio from Table I.
    pub fn dims(self, kind: DatasetKind) -> (usize, usize) {
        let (test, small, full): ((usize, usize), (usize, usize), (usize, usize)) = match kind {
            DatasetKind::CopperA => ((4, 500), (20, 8000), (40, 64000)),
            DatasetKind::CopperB => ((12, 300), (300, 1000), (1200, 3137)),
            DatasetKind::HeliumA => ((4, 500), (40, 6000), (120, 27000)),
            DatasetKind::HeliumB => ((12, 300), (200, 1037), (800, 1037)),
            DatasetKind::Adk => ((8, 300), (150, 1200), (600, 3341)),
            DatasetKind::Ifabp => ((6, 400), (40, 4000), (120, 12445)),
            DatasetKind::Pt => ((4, 500), (20, 10000), (60, 40000)),
            DatasetKind::Lj => ((4, 256), (10, 4000), (20, 16384)),
            DatasetKind::Hacc1 => ((4, 600), (10, 20000), (30, 100000)),
            DatasetKind::Hacc2 => ((6, 500), (20, 15000), (80, 65536)),
            DatasetKind::Gas => ((6, 400), (40, 4000), (100, 20000)),
        };
        match self {
            Scale::Test => test,
            Scale::Small => small,
            Scale::Full => full,
        }
    }
}

/// A generated dataset: named snapshots plus provenance.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Which Table I dataset this mimics.
    pub kind: DatasetKind,
    /// The generated trajectory.
    pub snapshots: Vec<Snapshot>,
    /// Simulation box side, when the model is periodic (used by RDF).
    pub box_len: Option<f64>,
}

impl Dataset {
    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether the dataset has no snapshots.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Atoms per snapshot.
    pub fn atoms(&self) -> usize {
        self.snapshots.first().map_or(0, Snapshot::len)
    }

    /// Extracts one axis as buffer-of-snapshots (the compressor's input).
    pub fn axis_series(&self, axis: usize) -> Vec<Vec<f64>> {
        self.snapshots.iter().map(|s| s.axis(axis).to_vec()).collect()
    }
}

/// Generates a dataset deterministically.
pub fn generate(kind: DatasetKind, scale: Scale, seed: u64) -> Dataset {
    let (m, n) = scale.dims(kind);
    match kind {
        DatasetKind::CopperA => {
            crystal_dataset(kind, m, n, Structure::Fcc, 3.615, 0.05, 0.99, 0.0, seed)
        }
        DatasetKind::CopperB => {
            crystal_dataset(kind, m, n, Structure::Fcc, 3.615, 0.08, 0.15, 0.0, seed)
        }
        DatasetKind::HeliumB => {
            crystal_dataset(kind, m, n, Structure::Bcc, 3.165, 0.07, 0.30, 2e-4, seed)
        }
        DatasetKind::Pt => {
            crystal_dataset(kind, m, n, Structure::Fcc, 3.92, 0.04, 0.995, 5e-5, seed)
        }
        DatasetKind::HeliumA => helium_bubble(kind, m, n, seed),
        DatasetKind::Adk => protein(kind, m, n, 0.8, 0.35, 0.25, seed),
        DatasetKind::Ifabp => protein(kind, m, n, 0.6, 0.25, 0.55, seed),
        DatasetKind::Lj => lj_engine(kind, m, n, seed),
        DatasetKind::Hacc1 => cosmo(kind, m, n, 40, seed),
        DatasetKind::Hacc2 => cosmo(kind, m, n, 60, seed),
        DatasetKind::Gas => gas(kind, m, n, seed),
    }
}

#[allow(clippy::too_many_arguments)]
fn crystal_dataset(
    kind: DatasetKind,
    m: usize,
    n: usize,
    structure: Structure,
    a: f64,
    sigma: f64,
    correlation: f64,
    hop_p: f64,
    seed: u64,
) -> Dataset {
    let (nx, ny, nz) = lattice::cells_for(structure, n);
    let mut sites = lattice::build(structure, nx, ny, nz, a);
    sites.truncate(n);
    let box_len = nx.max(ny).max(nz) as f64 * a;
    let mut model = VibratingCrystal::new(sites, sigma, correlation, seed);
    if hop_p > 0.0 {
        model = model.with_hops(hop_p, a / 2.0);
    }
    let mut snapshots = Vec::with_capacity(m);
    for _ in 0..m {
        snapshots.push(model.snapshot());
        model.advance();
    }
    Dataset { kind, snapshots, box_len: Some(box_len) }
}

/// Helium-A: a BCC tungsten matrix plus a growing cluster of mobile helium
/// atoms — mostly crystalline but with an erratic sub-population, and very
/// smooth in time.
fn helium_bubble(kind: DatasetKind, m: usize, n: usize, seed: u64) -> Dataset {
    let n_matrix = n * 9 / 10;
    let n_mobile = n - n_matrix;
    let a = 3.165;
    let (nx, ny, nz) = lattice::cells_for(Structure::Bcc, n_matrix);
    let mut sites = lattice::build(Structure::Bcc, nx, ny, nz, a);
    sites.truncate(n_matrix);
    let box_len = nx.max(ny).max(nz) as f64 * a;
    let mut matrix = VibratingCrystal::new(sites, 0.05, 0.9, seed);
    // Mobile helium: clustered random walkers near the box centre.
    let mut bubble =
        RandomWalkCloud::new(n_mobile, 0.4, 0.08, 0.9, seed ^ 0xB0BB1E).with_anchor_diffusion(0.01);
    let mut snapshots = Vec::with_capacity(m);
    for _ in 0..m {
        let ms = matrix.snapshot();
        let bs = bubble.snapshot();
        let center = box_len / 2.0;
        let mut s = ms;
        s.x.extend(bs.x.iter().map(|v| v + center));
        s.y.extend(bs.y.iter().map(|v| v + center));
        s.z.extend(bs.z.iter().map(|v| v + center));
        snapshots.push(s);
        matrix.advance();
        bubble.advance();
    }
    Dataset { kind, snapshots, box_len: Some(box_len) }
}

fn protein(
    kind: DatasetKind,
    m: usize,
    n: usize,
    chain_step: f64,
    sigma: f64,
    correlation: f64,
    seed: u64,
) -> Dataset {
    let mut model =
        RandomWalkCloud::new(n, chain_step, sigma, correlation, seed).with_anchor_diffusion(0.002);
    let mut snapshots = Vec::with_capacity(m);
    for _ in 0..m {
        snapshots.push(model.snapshot());
        model.advance();
    }
    Dataset { kind, snapshots, box_len: None }
}

/// LJ: a real simulation. Snapshots are taken every few steps, matching the
/// high-frequency dumping regime in which the paper observes extreme
/// temporal smoothness.
fn lj_engine(kind: DatasetKind, m: usize, n: usize, seed: u64) -> Dataset {
    let cfg = SimConfig { n_target: n, seed, ..Default::default() };
    let mut sim = LjSimulation::new(cfg);
    // Equilibrate off the perfect lattice.
    sim.run(50);
    let mut snapshots = Vec::with_capacity(m);
    for _ in 0..m {
        snapshots.push(sim.snapshot());
        sim.run(5);
    }
    let box_len = sim.box_len;
    Dataset { kind, snapshots, box_len: Some(box_len) }
}

fn cosmo(kind: DatasetKind, m: usize, n: usize, clusters: usize, seed: u64) -> Dataset {
    let box_len = 256.0;
    let mut model = CosmoCloud::new(n, clusters, 6.0, box_len, 0.08, seed);
    // Mix in a diffuse background component like real N-body fields.
    let mut rng = Rng::seed_from_u64(seed ^ 0xC05);
    let diffuse = n / 5;
    for i in 0..diffuse.min(model.len()) {
        // Re-scatter a fifth of the particles uniformly.
        let p =
            crate::vec3::Vec3::new(rng.f64() * box_len, rng.f64() * box_len, rng.f64() * box_len);
        // Safe: indices in range by construction.
        model_scatter(&mut model, i, p);
    }
    let mut snapshots = Vec::with_capacity(m);
    for _ in 0..m {
        snapshots.push(model.snapshot());
        model.advance();
    }
    Dataset { kind, snapshots, box_len: Some(box_len) }
}

/// Places particle `i` of a [`CosmoCloud`] at `p` (helper kept free-standing
/// so `CosmoCloud` stays a clean public model).
fn model_scatter(model: &mut CosmoCloud, i: usize, p: crate::vec3::Vec3) {
    model.scatter(i, p);
}

/// Gas: uncorrelated free flight with per-particle step sizes spread
/// log-uniformly over ~3.5 decades (10⁻³ … ~3 Å per snapshot).
///
/// Slow particles need fine quantization steps while fast ones overflow any
/// fixed `[1, 2·radius)` scale and fall back to 9-byte escapes — the regime
/// bit-adaptive quantization is built for. Step sizes vary smoothly with
/// particle index, so after Seq-2 (particle-major) interleaving,
/// neighbouring codes share magnitude and per-chunk widths stay coherent.
fn gas(kind: DatasetKind, m: usize, n: usize, seed: u64) -> Dataset {
    let box_len = 200.0;
    let mut rng = Rng::seed_from_u64(seed ^ 0x6A50_6A50);
    let mut x: Vec<f64> = (0..n).map(|_| rng.f64() * box_len).collect();
    let mut y: Vec<f64> = (0..n).map(|_| rng.f64() * box_len).collect();
    let mut z: Vec<f64> = (0..n).map(|_| rng.f64() * box_len).collect();
    let sigma: Vec<f64> =
        (0..n).map(|i| 10f64.powf(-3.0 + 3.5 * i as f64 / n.max(1) as f64)).collect();
    let mut snapshots = Vec::with_capacity(m);
    for _ in 0..m {
        snapshots.push(Snapshot { x: x.clone(), y: y.clone(), z: z.clone() });
        for i in 0..n {
            x[i] += rng.gauss() * sigma[i];
            y[i] += rng.gauss() * sigma[i];
            z[i] += rng.gauss() * sigma[i];
        }
    }
    Dataset { kind, snapshots, box_len: Some(box_len) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate_at_test_scale() {
        for kind in DatasetKind::MD.into_iter().chain(DatasetKind::HACC) {
            let d = generate(kind, Scale::Test, 1);
            let (m, n) = Scale::Test.dims(kind);
            assert_eq!(d.len(), m, "{}", kind.name());
            assert!(d.atoms() >= n.min(100), "{}: {} atoms", kind.name(), d.atoms());
            for s in &d.snapshots {
                assert_eq!(s.len(), d.atoms());
                for &v in s.x.iter().chain(s.y.iter()).chain(s.z.iter()) {
                    assert!(v.is_finite());
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for kind in [DatasetKind::CopperB, DatasetKind::Adk, DatasetKind::Lj] {
            let a = generate(kind, Scale::Test, 7);
            let b = generate(kind, Scale::Test, 7);
            assert_eq!(a.snapshots, b.snapshots, "{}", kind.name());
        }
    }

    #[test]
    fn seeds_differ() {
        let a = generate(DatasetKind::CopperB, Scale::Test, 1);
        let b = generate(DatasetKind::CopperB, Scale::Test, 2);
        assert_ne!(a.snapshots, b.snapshots);
    }

    #[test]
    fn crystal_datasets_have_level_structure() {
        let d = generate(DatasetKind::CopperB, Scale::Test, 3);
        // x-coordinates should cluster near multiples of a/2 = 1.8075.
        let step = 3.615 / 2.0;
        let mut near = 0;
        let xs = &d.snapshots[0].x;
        for &v in xs {
            let r = (v / step - (v / step).round()).abs();
            if r < 0.15 {
                near += 1;
            }
        }
        assert!(near as f64 > xs.len() as f64 * 0.8, "{near}/{}", xs.len());
    }

    #[test]
    fn temporal_regimes_are_ordered() {
        // Pt changes far less per snapshot than Copper-B.
        let pt = generate(DatasetKind::Pt, Scale::Test, 4);
        let cu = generate(DatasetKind::CopperB, Scale::Test, 4);
        let change = |d: &Dataset| -> f64 {
            let a = &d.snapshots[0].x;
            let b = &d.snapshots[1].x;
            a.iter().zip(b.iter()).map(|(p, q)| (p - q).abs()).sum::<f64>() / a.len() as f64
        };
        assert!(change(&pt) < change(&cu) * 0.3, "{} vs {}", change(&pt), change(&cu));
    }

    #[test]
    fn axis_series_shape() {
        let d = generate(DatasetKind::Adk, Scale::Test, 5);
        let xs = d.axis_series(0);
        assert_eq!(xs.len(), d.len());
        assert_eq!(xs[0].len(), d.atoms());
    }

    #[test]
    fn gas_step_sizes_span_decades() {
        let d = generate(DatasetKind::Gas, Scale::Test, 9);
        assert_eq!(d.len(), Scale::Test.dims(DatasetKind::Gas).0);
        let a = &d.snapshots[0].x;
        let b = &d.snapshots[1].x;
        let n = a.len();
        // Per-particle displacement magnitude grows with index: the slow
        // decile moves orders of magnitude less than the fast decile.
        let mean_abs = |range: std::ops::Range<usize>| -> f64 {
            range.clone().map(|i| (a[i] - b[i]).abs()).sum::<f64>() / range.len() as f64
        };
        let slow = mean_abs(0..n / 10);
        let fast = mean_abs(n - n / 10..n);
        assert!(fast > slow * 100.0, "fast {fast} vs slow {slow}");
        // Determinism and same-shape snapshots, like every other dataset.
        let again = generate(DatasetKind::Gas, Scale::Test, 9);
        assert_eq!(d.snapshots, again.snapshots);
    }

    #[test]
    fn paper_rows_cover_all() {
        for kind in DatasetKind::MD.into_iter().chain(DatasetKind::HACC) {
            let (state, code, m, n) = kind.paper_row();
            assert!(!state.is_empty() && !code.is_empty() && m > 0 && n > 0);
        }
    }
}
