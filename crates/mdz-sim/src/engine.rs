//! A small but real molecular-dynamics engine (Lennard-Jones fluid).
//!
//! Implements the LAMMPS "LJ melt" benchmark the paper uses for its LJ
//! dataset and Table VII: reduced units, truncated LJ potential, FCC initial
//! condition, velocity-Verlet integration with cell lists and periodic
//! boundaries, and an optional Langevin thermostat. Big enough to produce
//! physically meaningful trajectories (RDF with the canonical LJ-liquid
//! shape), small enough to run in tests.

use crate::cells::CellList;
use crate::lattice::{self, Structure};
use crate::rng::Rng;
use crate::vec3::Vec3;
use crate::Snapshot;

/// Configuration for an LJ simulation in reduced units.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of particles (rounded up to fill FCC cells).
    pub n_target: usize,
    /// Reduced density ρ* (LAMMPS melt benchmark: 0.8442).
    pub density: f64,
    /// Reduced temperature T* (benchmark: 0.72 after melt; 1.44 initial).
    pub temperature: f64,
    /// Integration timestep (benchmark: 0.005 τ).
    pub dt: f64,
    /// Potential cutoff (benchmark: 2.5 σ).
    pub r_cut: f64,
    /// Langevin friction γ; 0 disables the thermostat (NVE).
    pub gamma: f64,
    /// RNG seed for initial velocities and the thermostat.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            n_target: 500,
            density: 0.8442,
            temperature: 0.72,
            dt: 0.005,
            r_cut: 2.5,
            gamma: 0.1,
            seed: 20220707,
        }
    }
}

/// A running Lennard-Jones simulation.
#[derive(Debug, Clone)]
pub struct LjSimulation {
    cfg: SimConfig,
    /// Box side length.
    pub box_len: f64,
    positions: Vec<Vec3>,
    velocities: Vec<Vec3>,
    forces: Vec<Vec3>,
    cells: CellList,
    rng: Rng,
    /// Potential energy of the last force evaluation.
    pub potential_energy: f64,
}

impl LjSimulation {
    /// Initializes particles on an FCC lattice at the configured density
    /// with Maxwell-Boltzmann velocities.
    pub fn new(cfg: SimConfig) -> Self {
        assert!(cfg.n_target > 0 && cfg.density > 0.0 && cfg.r_cut > 0.0);
        let (nx, ny, nz) = lattice::cells_for(Structure::Fcc, cfg.n_target);
        let cells_total = nx * ny * nz;
        let n = cells_total * 4;
        // ρ = N / V with V = (n_cells_x·a)·… → a = (4/ρ)^(1/3).
        let a = (4.0 / cfg.density).cbrt();
        // Use a cubic box of the largest axis to keep PBC simple; pad the
        // lattice into it (slight vacuum on short axes is fine for a melt).
        let max_cells = nx.max(ny).max(nz);
        let box_len = (max_cells as f64 * a).max(2.0 * cfg.r_cut + 1e-9);
        let positions: Vec<Vec3> = lattice::build(Structure::Fcc, nx, ny, nz, a)
            .into_iter()
            .map(|p| p.wrap(box_len))
            .collect();
        let mut rng = Rng::seed_from_u64(cfg.seed);
        let mut velocities: Vec<Vec3> = (0..n)
            .map(|_| Vec3::new(rng.gauss(), rng.gauss(), rng.gauss()) * cfg.temperature.sqrt())
            .collect();
        // Remove centre-of-mass drift.
        let com: Vec3 = velocities.iter().fold(Vec3::ZERO, |acc, &v| acc + v) * (1.0 / n as f64);
        for v in &mut velocities {
            *v -= com;
        }
        let cells = CellList::new(box_len, cfg.r_cut);
        let mut sim = Self {
            cfg,
            box_len,
            positions,
            velocities,
            forces: vec![Vec3::ZERO; n],
            cells,
            rng,
            potential_energy: 0.0,
        };
        sim.compute_forces();
        sim
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the simulation is empty (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Current positions.
    pub fn positions(&self) -> &[Vec3] {
        &self.positions
    }

    /// Current velocities.
    pub fn velocities(&self) -> &[Vec3] {
        &self.velocities
    }

    /// The integration timestep.
    pub fn dt(&self) -> f64 {
        self.cfg.dt
    }

    /// Instantaneous kinetic temperature `T* = 2·KE / (3N)`.
    pub fn temperature(&self) -> f64 {
        let ke: f64 = self.velocities.iter().map(|v| 0.5 * v.norm_sq()).sum();
        2.0 * ke / (3.0 * self.len() as f64)
    }

    /// Total energy (potential + kinetic); conserved in NVE.
    pub fn total_energy(&self) -> f64 {
        let ke: f64 = self.velocities.iter().map(|v| 0.5 * v.norm_sq()).sum();
        self.potential_energy + ke
    }

    /// Truncated-LJ forces and potential via the cell list.
    fn compute_forces(&mut self) {
        let rc2 = self.cfg.r_cut * self.cfg.r_cut;
        // Energy shift so U(r_cut) = 0.
        let inv_rc6 = 1.0 / (rc2 * rc2 * rc2);
        let u_shift = 4.0 * (inv_rc6 * inv_rc6 - inv_rc6);
        self.forces.iter_mut().for_each(|f| *f = Vec3::ZERO);
        self.cells.rebuild(&self.positions);
        let mut pe = 0.0;
        let forces = &mut self.forces;
        self.cells.for_each_pair(&self.positions, |i, j, d| {
            let r2 = d.norm_sq();
            if r2 >= rc2 || r2 == 0.0 {
                return;
            }
            let inv_r2 = 1.0 / r2;
            let inv_r6 = inv_r2 * inv_r2 * inv_r2;
            // F = 24ε/r² · (2·(σ/r)¹² − (σ/r)⁶) · r⃗
            let fmag = 24.0 * inv_r2 * (2.0 * inv_r6 * inv_r6 - inv_r6);
            let fij = d * fmag;
            forces[i] += fij;
            forces[j] -= fij;
            pe += 4.0 * (inv_r6 * inv_r6 - inv_r6) - u_shift;
        });
        self.potential_energy = pe;
    }

    /// Advances one velocity-Verlet step (with Langevin kicks when
    /// `gamma > 0`).
    pub fn step(&mut self) {
        let dt = self.cfg.dt;
        let half = 0.5 * dt;
        for (v, f) in self.velocities.iter_mut().zip(self.forces.iter()) {
            *v += *f * half;
        }
        let box_len = self.box_len;
        for (p, v) in self.positions.iter_mut().zip(self.velocities.iter()) {
            *p = (*p + *v * dt).wrap(box_len);
        }
        self.compute_forces();
        for (v, f) in self.velocities.iter_mut().zip(self.forces.iter()) {
            *v += *f * half;
        }
        if self.cfg.gamma > 0.0 {
            // BAOAB-style weak Langevin coupling applied after the step.
            let c1 = (-self.cfg.gamma * dt).exp();
            let c2 = ((1.0 - c1 * c1) * self.cfg.temperature).sqrt();
            for v in &mut self.velocities {
                let g = Vec3::new(self.rng.gauss(), self.rng.gauss(), self.rng.gauss());
                *v = *v * c1 + g * c2;
            }
        }
    }

    /// Runs `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Captures the current positions as an axis-separated snapshot.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::from_points(&self.positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initializes_on_fcc_at_density() {
        let sim = LjSimulation::new(SimConfig { n_target: 256, ..Default::default() });
        assert!(sim.len() >= 256);
        // All positions inside the box.
        for p in sim.positions() {
            for c in [p.x, p.y, p.z] {
                assert!((0.0..sim.box_len).contains(&c), "{c} vs {}", sim.box_len);
            }
        }
    }

    #[test]
    fn nve_conserves_energy() {
        let cfg = SimConfig { n_target: 108, gamma: 0.0, dt: 0.002, ..Default::default() };
        let mut sim = LjSimulation::new(cfg);
        sim.run(20); // settle the lattice start
        let e0 = sim.total_energy();
        sim.run(200);
        let e1 = sim.total_energy();
        let drift = (e1 - e0).abs() / sim.len() as f64;
        assert!(drift < 0.01, "energy drift {drift} per particle");
    }

    #[test]
    fn thermostat_reaches_target_temperature() {
        let cfg = SimConfig { n_target: 108, temperature: 0.9, gamma: 1.0, ..Default::default() };
        let mut sim = LjSimulation::new(cfg);
        sim.run(500);
        // Average over a window to beat fluctuation noise.
        let mut acc = 0.0;
        let samples = 50;
        for _ in 0..samples {
            sim.run(5);
            acc += sim.temperature();
        }
        let t = acc / samples as f64;
        assert!((t - 0.9).abs() < 0.15, "T = {t}");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SimConfig { n_target: 64, ..Default::default() };
        let mut a = LjSimulation::new(cfg.clone());
        let mut b = LjSimulation::new(cfg);
        a.run(50);
        b.run(50);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn particles_move_but_stay_bounded() {
        let mut sim = LjSimulation::new(SimConfig { n_target: 108, ..Default::default() });
        let before = sim.snapshot();
        sim.run(100);
        let after = sim.snapshot();
        assert_ne!(before, after);
        for &v in after.x.iter().chain(after.y.iter()).chain(after.z.iter()) {
            assert!(v.is_finite() && (0.0..sim.box_len).contains(&v));
        }
    }
}
