//! Stochastic trajectory models that reproduce the paper's dataset
//! characteristics at laptop scale.
//!
//! Full MD runs of a million-atom copper cell are out of scope, but the MDZ
//! compressor only sees coordinate *statistics*. Three processes cover all
//! eight datasets' regimes from §V:
//!
//! * [`VibratingCrystal`] — an Einstein-crystal model: atoms vibrate about
//!   fixed lattice sites with an Ornstein–Uhlenbeck displacement process.
//!   Reproduces the equally spaced discrete levels + zigzag ordering of
//!   Fig. 3 (a)(d)(e) and both temporal regimes of Fig. 5 via the
//!   snapshot-to-snapshot correlation parameter. Optional rare site *hops*
//!   model diffusion events (Pt adatoms, helium-cluster mobility).
//! * [`RandomWalkCloud`] — a polymer-like chain of positions (3-D random
//!   walk) under OU dynamics: spatially unstructured (Fig. 3 (b)), with
//!   tunable temporal roughness. Models the protein datasets (ADK, IFABP).
//! * [`CosmoCloud`] — Gaussian-blob clustered particles with coherent drift,
//!   the HACC-like regime of Fig. 16.
//!
//! All models are deterministic given their seed.

use crate::rng::Rng;
use crate::vec3::Vec3;
use crate::Snapshot;

fn gauss3(rng: &mut Rng) -> Vec3 {
    Vec3::new(rng.gauss(), rng.gauss(), rng.gauss())
}

/// Einstein crystal with OU thermal displacement and optional rare hops.
#[derive(Debug, Clone)]
pub struct VibratingCrystal {
    sites: Vec<Vec3>,
    displacement: Vec<Vec3>,
    /// Stationary standard deviation of the displacement per axis.
    pub sigma: f64,
    /// Snapshot-to-snapshot displacement correlation in `[0, 1)`:
    /// near 1 = temporally smooth (Pt/LJ regime), near 0 = fresh thermal
    /// noise every snapshot (Copper-B regime).
    pub correlation: f64,
    /// Per-atom probability of hopping one lattice step per snapshot.
    pub hop_probability: f64,
    /// Lattice step used for hops.
    pub hop_step: f64,
    rng: Rng,
}

impl VibratingCrystal {
    /// Creates the model over fixed `sites`.
    pub fn new(sites: Vec<Vec3>, sigma: f64, correlation: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&correlation));
        assert!(sigma >= 0.0);
        let mut rng = Rng::seed_from_u64(seed);
        // Start from the stationary distribution.
        let displacement = (0..sites.len()).map(|_| gauss3(&mut rng) * sigma).collect();
        Self { sites, displacement, sigma, correlation, hop_probability: 0.0, hop_step: 0.0, rng }
    }

    /// Enables rare lattice hops.
    pub fn with_hops(mut self, probability: f64, step: f64) -> Self {
        self.hop_probability = probability;
        self.hop_step = step;
        self
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the crystal has no atoms.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Advances one snapshot interval.
    pub fn advance(&mut self) {
        let c = self.correlation;
        let kick = self.sigma * (1.0 - c * c).sqrt();
        for d in &mut self.displacement {
            *d = *d * c + gauss3(&mut self.rng) * kick;
        }
        if self.hop_probability > 0.0 {
            for s in &mut self.sites {
                if self.rng.f64() < self.hop_probability {
                    let axis = self.rng.index(3);
                    let dir = if self.rng.bool() { 1.0 } else { -1.0 };
                    let step = self.hop_step * dir;
                    match axis {
                        0 => s.x += step,
                        1 => s.y += step,
                        _ => s.z += step,
                    }
                }
            }
        }
    }

    /// Current positions.
    pub fn snapshot(&self) -> Snapshot {
        let pts: Vec<Vec3> =
            self.sites.iter().zip(self.displacement.iter()).map(|(&s, &d)| s + d).collect();
        Snapshot::from_points(&pts)
    }
}

/// Spatially unstructured cloud (random-walk chain) under OU dynamics.
#[derive(Debug, Clone)]
pub struct RandomWalkCloud {
    anchor: Vec<Vec3>,
    displacement: Vec<Vec3>,
    /// OU stationary σ of the displacement.
    pub sigma: f64,
    /// Snapshot-to-snapshot correlation.
    pub correlation: f64,
    /// Slow anchor diffusion per snapshot (conformational drift).
    pub anchor_diffusion: f64,
    rng: Rng,
}

impl RandomWalkCloud {
    /// Builds a chain of `n` positions with step σ `chain_step`, then
    /// attaches OU fluctuations of size `sigma`.
    pub fn new(n: usize, chain_step: f64, sigma: f64, correlation: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&correlation));
        let mut rng = Rng::seed_from_u64(seed);
        let mut anchor = Vec::with_capacity(n);
        let mut p = Vec3::ZERO;
        for _ in 0..n {
            p += gauss3(&mut rng) * chain_step;
            anchor.push(p);
        }
        let displacement = (0..n).map(|_| gauss3(&mut rng) * sigma).collect();
        Self { anchor, displacement, sigma, correlation, anchor_diffusion: 0.0, rng }
    }

    /// Enables slow anchor drift.
    pub fn with_anchor_diffusion(mut self, d: f64) -> Self {
        self.anchor_diffusion = d;
        self
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.anchor.len()
    }

    /// Whether the cloud is empty.
    pub fn is_empty(&self) -> bool {
        self.anchor.is_empty()
    }

    /// Advances one snapshot interval.
    pub fn advance(&mut self) {
        let c = self.correlation;
        let kick = self.sigma * (1.0 - c * c).sqrt();
        for d in &mut self.displacement {
            *d = *d * c + gauss3(&mut self.rng) * kick;
        }
        if self.anchor_diffusion > 0.0 {
            for a in &mut self.anchor {
                *a += gauss3(&mut self.rng) * self.anchor_diffusion;
            }
        }
    }

    /// Current positions.
    pub fn snapshot(&self) -> Snapshot {
        let pts: Vec<Vec3> =
            self.anchor.iter().zip(self.displacement.iter()).map(|(&a, &d)| a + d).collect();
        Snapshot::from_points(&pts)
    }
}

/// Clustered particles with coherent bulk drift (cosmology-like).
#[derive(Debug, Clone)]
pub struct CosmoCloud {
    positions: Vec<Vec3>,
    velocities: Vec<Vec3>,
    /// Per-snapshot random velocity perturbation.
    pub velocity_noise: f64,
    rng: Rng,
}

impl CosmoCloud {
    /// `n` particles distributed over `clusters` Gaussian blobs of size
    /// `cluster_sigma` inside a box of side `box_len`, with bulk velocities
    /// of magnitude ~`drift`.
    pub fn new(
        n: usize,
        clusters: usize,
        cluster_sigma: f64,
        box_len: f64,
        drift: f64,
        seed: u64,
    ) -> Self {
        assert!(clusters > 0);
        let mut rng = Rng::seed_from_u64(seed);
        let centers: Vec<Vec3> =
            (0..clusters).map(|_| Vec3::new(rng.f64(), rng.f64(), rng.f64()) * box_len).collect();
        let cluster_v: Vec<Vec3> = (0..clusters).map(|_| gauss3(&mut rng) * drift).collect();
        let mut positions = Vec::with_capacity(n);
        let mut velocities = Vec::with_capacity(n);
        for _ in 0..n {
            let c = rng.index(clusters);
            positions.push(centers[c] + gauss3(&mut rng) * cluster_sigma);
            velocities.push(cluster_v[c] + gauss3(&mut rng) * (drift * 0.2));
        }
        Self { positions, velocities, velocity_noise: drift * 0.3, rng }
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the cloud is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Repositions particle `i` (used to mix a diffuse background into the
    /// clustered field).
    pub fn scatter(&mut self, i: usize, p: Vec3) {
        self.positions[i] = p;
    }

    /// Advances one snapshot interval.
    pub fn advance(&mut self) {
        for (p, v) in self.positions.iter_mut().zip(self.velocities.iter_mut()) {
            *p += *v;
            *v += gauss3(&mut self.rng) * self.velocity_noise;
        }
    }

    /// Current positions.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::from_points(&self.positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{self, Structure};

    #[test]
    fn crystal_levels_are_preserved() {
        let sites = lattice::build(Structure::Sc, 4, 4, 4, 2.0);
        let mut c = VibratingCrystal::new(sites, 0.02, 0.5, 1);
        for _ in 0..5 {
            c.advance();
        }
        let s = c.snapshot();
        // Every coordinate is within a few σ of an integer multiple of 2.0.
        for &v in s.x.iter().chain(s.y.iter()).chain(s.z.iter()) {
            let r = (v / 2.0 - (v / 2.0).round()).abs() * 2.0;
            assert!(r < 0.2, "residual {r}");
        }
    }

    #[test]
    fn high_correlation_means_small_temporal_change() {
        let sites = lattice::build(Structure::Sc, 4, 4, 4, 2.0);
        let mut smooth = VibratingCrystal::new(sites.clone(), 0.05, 0.99, 2);
        let mut rough = VibratingCrystal::new(sites, 0.05, 0.0, 2);
        let diff = |a: &Snapshot, b: &Snapshot| -> f64 {
            a.x.iter().zip(b.x.iter()).map(|(p, q)| (p - q).abs()).sum::<f64>() / a.len() as f64
        };
        let s0 = smooth.snapshot();
        smooth.advance();
        let s1 = smooth.snapshot();
        let r0 = rough.snapshot();
        rough.advance();
        let r1 = rough.snapshot();
        assert!(diff(&s0, &s1) < diff(&r0, &r1) * 0.5);
    }

    #[test]
    fn hops_move_sites_by_lattice_steps() {
        let sites = lattice::build(Structure::Sc, 3, 3, 3, 1.5);
        let mut c = VibratingCrystal::new(sites, 0.0, 0.5, 3).with_hops(1.0, 1.5);
        let before = c.snapshot();
        c.advance();
        let after = c.snapshot();
        // With p=1 every atom hopped exactly one step on one axis.
        for i in 0..before.len() {
            let d = (before.x[i] - after.x[i]).abs()
                + (before.y[i] - after.y[i]).abs()
                + (before.z[i] - after.z[i]).abs();
            assert!((d - 1.5).abs() < 1e-9, "d = {d}");
        }
    }

    #[test]
    fn random_walk_cloud_is_spatially_unstructured() {
        let c = RandomWalkCloud::new(2000, 0.5, 0.05, 0.5, 4);
        let s = c.snapshot();
        // Successive-value deltas should rarely repeat: count distinct signs.
        let mut flips = 0;
        for w in s.x.windows(2) {
            if (w[1] - w[0]).abs() > 1e-6 {
                flips += 1;
            }
        }
        assert!(flips > 1900);
    }

    #[test]
    fn cosmo_cloud_drifts_coherently() {
        let mut c = CosmoCloud::new(500, 8, 2.0, 100.0, 0.05, 5);
        let s0 = c.snapshot();
        for _ in 0..10 {
            c.advance();
        }
        let s1 = c.snapshot();
        let mean_disp: f64 =
            s0.x.iter().zip(s1.x.iter()).map(|(a, b)| (b - a).abs()).sum::<f64>() / s0.len() as f64;
        assert!(mean_disp > 0.1, "drift too small: {mean_disp}");
    }

    #[test]
    fn models_are_deterministic() {
        let sites = lattice::build(Structure::Fcc, 2, 2, 2, 3.6);
        let mut a = VibratingCrystal::new(sites.clone(), 0.03, 0.8, 42);
        let mut b = VibratingCrystal::new(sites, 0.03, 0.8, 42);
        for _ in 0..7 {
            a.advance();
            b.advance();
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }
}
