//! Crystal lattice builders.
//!
//! The solid-state datasets (Copper, Pt, the tungsten matrix of Helium) are
//! crystals: FCC for copper/platinum, BCC for tungsten. Lattice sites are
//! what give MD coordinate streams their equally-spaced-level structure.

use crate::vec3::Vec3;

/// Cubic crystal structures supported by [`build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Structure {
    /// Simple cubic: 1 site per unit cell.
    Sc,
    /// Body-centred cubic: 2 sites per unit cell.
    Bcc,
    /// Face-centred cubic: 4 sites per unit cell.
    Fcc,
}

impl Structure {
    /// Fractional basis positions within the unit cell.
    pub fn basis(self) -> &'static [Vec3] {
        const SC: [Vec3; 1] = [Vec3::new(0.0, 0.0, 0.0)];
        const BCC: [Vec3; 2] = [Vec3::new(0.0, 0.0, 0.0), Vec3::new(0.5, 0.5, 0.5)];
        const FCC: [Vec3; 4] = [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(0.5, 0.5, 0.0),
            Vec3::new(0.5, 0.0, 0.5),
            Vec3::new(0.0, 0.5, 0.5),
        ];
        match self {
            Structure::Sc => &SC,
            Structure::Bcc => &BCC,
            Structure::Fcc => &FCC,
        }
    }

    /// Sites per unit cell.
    pub fn sites_per_cell(self) -> usize {
        self.basis().len()
    }
}

/// Builds `nx × ny × nz` unit cells of the given structure with lattice
/// constant `a`, ordered cell-by-cell (z fastest) — the plane-by-plane
/// ordering that produces the paper's zigzag spatial patterns.
pub fn build(structure: Structure, nx: usize, ny: usize, nz: usize, a: f64) -> Vec<Vec3> {
    let mut sites = Vec::with_capacity(nx * ny * nz * structure.sites_per_cell());
    for ix in 0..nx {
        for iy in 0..ny {
            for iz in 0..nz {
                let cell = Vec3::new(ix as f64, iy as f64, iz as f64);
                for &b in structure.basis() {
                    sites.push((cell + b) * a);
                }
            }
        }
    }
    sites
}

/// Smallest cell grid of `structure` holding at least `n` sites, as
/// `(nx, ny, nz)` with near-cubic aspect.
pub fn cells_for(structure: Structure, n: usize) -> (usize, usize, usize) {
    let per = structure.sites_per_cell();
    let cells = n.div_ceil(per);
    let side = (cells as f64).cbrt().ceil() as usize;
    let side = side.max(1);
    // Shrink one axis at a time while capacity still suffices.
    let mut dims = [side, side, side];
    for i in 0..3 {
        while dims[i] > 1 && (dims[0] * dims[1] * dims[2] / dims[i]) * (dims[i] - 1) >= cells {
            dims[i] -= 1;
        }
    }
    (dims[0], dims[1], dims[2])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_counts() {
        assert_eq!(build(Structure::Sc, 2, 2, 2, 1.0).len(), 8);
        assert_eq!(build(Structure::Bcc, 2, 2, 2, 1.0).len(), 16);
        assert_eq!(build(Structure::Fcc, 3, 2, 1, 1.0).len(), 24);
    }

    #[test]
    fn fcc_coordinates_are_half_integer_multiples() {
        let a = 3.6;
        for p in build(Structure::Fcc, 2, 2, 2, a) {
            for c in [p.x, p.y, p.z] {
                let steps = c / (a / 2.0);
                assert!((steps - steps.round()).abs() < 1e-12, "{c}");
            }
        }
    }

    #[test]
    fn sites_are_distinct() {
        let sites = build(Structure::Bcc, 3, 3, 3, 2.0);
        for i in 0..sites.len() {
            for j in i + 1..sites.len() {
                assert!((sites[i] - sites[j]).norm() > 1e-9);
            }
        }
    }

    #[test]
    fn cells_for_capacity() {
        for (s, n) in [(Structure::Fcc, 100), (Structure::Bcc, 1037), (Structure::Sc, 7)] {
            let (nx, ny, nz) = cells_for(s, n);
            assert!(nx * ny * nz * s.sites_per_cell() >= n, "{s:?} {n}");
        }
    }

    #[test]
    fn z_fastest_ordering_produces_zigzag_planes() {
        // Consecutive sites sweep z before y before x.
        let sites = build(Structure::Sc, 2, 2, 4, 1.0);
        let zs: Vec<f64> = sites.iter().take(4).map(|p| p.z).collect();
        assert_eq!(zs, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(sites[4].y, 1.0); // next y-plane
    }
}
