//! Molecular-dynamics substrate and dataset generators for the MDZ
//! reproduction.
//!
//! The paper evaluates on eight real MD datasets (Table I) produced by
//! LAMMPS/EXAALT/CHARMM runs on LANL and ANL machines, plus two HACC
//! cosmology datasets. Those traces are not redistributable, so this crate
//! rebuilds the *generating processes* at laptop scale:
//!
//! * [`engine`] — a real (small) MD engine: Lennard-Jones potential,
//!   velocity-Verlet integration, cell-list neighbour search, periodic
//!   boundaries, and a Langevin thermostat. Used for the LJ dataset and the
//!   paper's Table VII inline-compression experiment.
//! * [`lattice`] — FCC/BCC crystal builders.
//! * [`crystal`] — Einstein-crystal / Ornstein–Uhlenbeck models of thermal
//!   vibration about lattice sites, which reproduce the paper's key spatial
//!   observation (coordinates clustering at equally spaced discrete levels,
//!   Fig. 3/4) and its two temporal regimes (Fig. 5) without hour-long
//!   simulations.
//! * [`datasets`] — one generator per paper dataset (Copper-A/B,
//!   Helium-A/B, ADK, IFABP, Pt, LJ, HACC-1/2), each tuned to the
//!   spatial/temporal characteristics §V attributes to it.
//!
//! Determinism: every generator takes a seed and produces identical output
//! across runs, so experiments are reproducible.

pub mod cells;
pub mod crystal;
pub mod datasets;
pub mod engine;
pub mod lattice;
pub mod rng;
pub mod vec3;

pub use datasets::{Dataset, DatasetKind, Scale};
pub use engine::{LjSimulation, SimConfig};
pub use vec3::Vec3;

/// One snapshot of particle positions, axis-separated (the layout every
/// compressor in this workspace consumes).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Per-particle x coordinates.
    pub x: Vec<f64>,
    /// Per-particle y coordinates.
    pub y: Vec<f64>,
    /// Per-particle z coordinates.
    pub z: Vec<f64>,
}

impl Snapshot {
    /// Builds a snapshot from a point list.
    pub fn from_points(points: &[Vec3]) -> Self {
        let mut s = Snapshot {
            x: Vec::with_capacity(points.len()),
            y: Vec::with_capacity(points.len()),
            z: Vec::with_capacity(points.len()),
        };
        for p in points {
            s.x.push(p.x);
            s.y.push(p.y);
            s.z.push(p.z);
        }
        s
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Borrow an axis by index (0 = x, 1 = y, 2 = z).
    pub fn axis(&self, a: usize) -> &[f64] {
        match a {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("axis out of range"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_from_points() {
        let pts = vec![Vec3::new(1.0, 2.0, 3.0), Vec3::new(4.0, 5.0, 6.0)];
        let s = Snapshot::from_points(&pts);
        assert_eq!(s.len(), 2);
        assert_eq!(s.x, vec![1.0, 4.0]);
        assert_eq!(s.axis(2), &[3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "axis out of range")]
    fn bad_axis_panics() {
        Snapshot::default().axis(3);
    }
}
