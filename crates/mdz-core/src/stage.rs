//! Composable pipeline stage traits: quantizer, entropy coder, lossless coder.
//!
//! MDZ is one point in the SZ-family design space, whose compressors are best
//! engineered as a composition of predictor × quantizer × entropy coder ×
//! lossless coder. The predictor side of that product has been a trait from
//! the start (`Predictor` in the pipeline); this module supplies the other
//! three axes so the block encoder and decoder are compositions over trait
//! parameters instead of hard-wired calls:
//!
//! ```text
//! snapshots ─predict─▶ residuals ─[Quantizer]─▶ codes
//!     codes ─[EntropyStage]─▶ bytes ─┐
//!  escapes ─────────────────────────┼─▶ inner ─[LosslessStage]─▶ payload
//! ```
//!
//! [`Quantizer`] owns the whole code-space contract — step size, escape code
//! 0, the wire `radius` field, and the alphabet bound [`Quantizer::code_space`]
//! — so no other stage re-derives `2·radius` locally. [`EntropyStage`] (the
//! trait; the [`crate::EntropyStage`] enum at the crate root remains the
//! *configuration* selector between its two implementations) turns `u32` code
//! streams into bytes and back. [`LosslessStage`] is the final dictionary
//! coder over the assembled inner payload.
//!
//! Implementations provided here wrap the existing mdz-entropy / mdz-lossless
//! primitives and their reusable scratch buffers: [`HuffmanStage`],
//! [`RangeStage`], and [`Lz77Stage`]. The two quantizers live in
//! [`crate::quant`]: [`crate::LinearQuantizer`] (the classic fixed `[1, 2R)`
//! alphabet) and [`crate::BitAdaptiveQuantizer`] (per-chunk bit widths behind
//! the version-2 block flag).

use mdz_entropy::{huffman, range, StreamLimits};
use mdz_lossless::lz77;

use crate::quant::Quantized;
use crate::Result;

/// Maps a residual to an integer code and back, owning the code-space
/// contract shared by the encoder, the decoder, and the entropy stage.
///
/// The contract generalizes [`crate::LinearQuantizer`]:
///
/// * code `0` is the escape symbol — the value is stored verbatim in the
///   block's escape list and [`Quantizer::reconstruct`] is never called on it;
/// * non-escape codes lie in `[1, code_space())`;
/// * every non-escaped value satisfies `|reconstruct(code, p) − value| ≤ eps`.
pub trait Quantizer {
    /// The absolute error bound one code is allowed to deviate by.
    fn eps(&self) -> f64;

    /// The `radius` field serialized into the block header.
    ///
    /// Decoders rebuild the quantizer from this value, so it must round-trip
    /// the full reconstruction contract together with the header flags.
    fn wire_radius(&self) -> u32;

    /// Exclusive upper bound of the code alphabet: valid codes are
    /// `0 <= code < code_space()`, with 0 reserved for escapes.
    ///
    /// This is the single source of truth the entropy/decode stages use to
    /// validate code streams — no stage re-derives `2·radius` on its own.
    fn code_space(&self) -> u64 {
        2 * u64::from(self.wire_radius())
    }

    /// Header flag bits this quantizer requires on its blocks.
    fn wire_flags(&self) -> u8 {
        0
    }

    /// Quantizes `value` against `prediction`, storing the decoder-visible
    /// reconstruction in `reconstructed` (the original value on escape).
    fn quantize(&self, value: f64, prediction: f64, reconstructed: &mut f64) -> Quantized;

    /// The plain [`crate::LinearQuantizer`] whose `quantize` this quantizer
    /// applies per value, if any.
    ///
    /// This is the hook the SIMD kernels dispatch on: a quantizer that is
    /// per-value linear (the classic fixed-radius one, and the bit-adaptive
    /// wrapper whose adaptivity lives entirely in `encode_codes`) exposes
    /// its inner linear parameters here and gets the vectorized fused
    /// predict/quantize sweep; anything else returns `None` and keeps the
    /// scalar path.
    fn as_linear(&self) -> Option<crate::LinearQuantizer> {
        None
    }

    /// Inverts a non-escape code back to the reconstructed value.
    fn reconstruct(&self, code: u32, prediction: f64) -> f64;

    /// Serializes a code stream into `out` (appending), using `entropy` for
    /// quantizers that keep the classic entropy-coded representation.
    fn encode_codes(&self, codes: &[u32], entropy: &mut dyn EntropyStage, out: &mut Vec<u8>) {
        entropy.encode_into(codes, out);
    }

    /// Parses a code stream written by [`Quantizer::encode_codes`] from
    /// `data` at `*pos`, replacing the contents of `out`.
    fn decode_codes(
        &self,
        data: &[u8],
        pos: &mut usize,
        entropy: &mut dyn EntropyStage,
        out: &mut Vec<u32>,
        limits: &StreamLimits,
    ) -> Result<()> {
        entropy.decode_at_into(data, pos, out, limits)
    }
}

/// Entropy coding over `u32` symbol streams: codes in, bytes out, and back.
///
/// Implementations carry their own scratch buffers, so a `&mut` receiver
/// keeps the steady state allocation-free.
pub trait EntropyStage {
    /// Appends the encoded form of `symbols` to `out`.
    fn encode_into(&mut self, symbols: &[u32], out: &mut Vec<u8>);

    /// Decodes one stream from `data` at `*pos` (advancing it), replacing
    /// the contents of `out`. Declared counts are checked against `limits`
    /// before any proportional allocation.
    fn decode_at_into(
        &mut self,
        data: &[u8],
        pos: &mut usize,
        out: &mut Vec<u32>,
        limits: &StreamLimits,
    ) -> Result<()>;
}

/// Canonical length-limited Huffman coding ([`crate::EntropyStage::Huffman`]).
#[derive(Debug, Clone, Default)]
pub struct HuffmanStage {
    scratch: mdz_entropy::HuffmanScratch,
}

impl EntropyStage for HuffmanStage {
    fn encode_into(&mut self, symbols: &[u32], out: &mut Vec<u8>) {
        mdz_entropy::huffman_encode_into(symbols, out, &mut self.scratch);
    }

    fn decode_at_into(
        &mut self,
        data: &[u8],
        pos: &mut usize,
        out: &mut Vec<u32>,
        limits: &StreamLimits,
    ) -> Result<()> {
        huffman::huffman_decode_at_into_limited(data, pos, out, limits)?;
        Ok(())
    }
}

/// Adaptive binary range coding ([`crate::EntropyStage::Range`]).
#[derive(Debug, Clone, Default)]
pub struct RangeStage {
    scratch: mdz_entropy::RangeScratch,
}

impl EntropyStage for RangeStage {
    fn encode_into(&mut self, symbols: &[u32], out: &mut Vec<u8>) {
        range::range_encode_into(symbols, out, &mut self.scratch);
    }

    fn decode_at_into(
        &mut self,
        data: &[u8],
        pos: &mut usize,
        out: &mut Vec<u32>,
        limits: &StreamLimits,
    ) -> Result<()> {
        range::range_decode_at_into_limited(data, pos, out, limits)?;
        Ok(())
    }
}

/// Final dictionary-coder stage over the assembled inner payload.
pub trait LosslessStage {
    /// Appends the compressed form of `data` to `out`.
    fn compress_into(&mut self, data: &[u8], out: &mut Vec<u8>);

    /// Decompresses `data`, replacing the contents of `out`; the declared
    /// raw length is checked against `limits` before allocation.
    fn decompress_into_limited(
        &mut self,
        data: &[u8],
        out: &mut Vec<u8>,
        limits: &StreamLimits,
    ) -> Result<()>;
}

/// The workspace LZ77 coder at its default effort level.
#[derive(Debug, Clone, Default)]
pub struct Lz77Stage {
    scratch: lz77::Lz77Scratch,
}

impl LosslessStage for Lz77Stage {
    fn compress_into(&mut self, data: &[u8], out: &mut Vec<u8>) {
        lz77::compress_into(data, lz77::Level::Default, out, &mut self.scratch);
    }

    fn decompress_into_limited(
        &mut self,
        data: &[u8],
        out: &mut Vec<u8>,
        limits: &StreamLimits,
    ) -> Result<()> {
        lz77::decompress_into_limited(data, out, limits)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(stage: &mut dyn EntropyStage, symbols: &[u32]) {
        let mut bytes = Vec::new();
        stage.encode_into(symbols, &mut bytes);
        let mut pos = 0;
        let mut back = Vec::new();
        stage
            .decode_at_into(&bytes, &mut pos, &mut back, &StreamLimits::default())
            .expect("round trip");
        assert_eq!(back, symbols);
        assert_eq!(pos, bytes.len());
    }

    #[test]
    fn entropy_stages_round_trip() {
        let symbols: Vec<u32> = (0..512).map(|i| (i * 7) % 40).collect();
        round_trip(&mut HuffmanStage::default(), &symbols);
        round_trip(&mut RangeStage::default(), &symbols);
        round_trip(&mut HuffmanStage::default(), &[]);
    }

    #[test]
    fn entropy_stage_matches_free_function_bytes() {
        // The stage wrapper must be a pure refactor of the free functions:
        // byte-identical output keeps the golden fixtures stable.
        let symbols: Vec<u32> = (0..300).map(|i| (i * 13) % 60).collect();
        let mut via_stage = Vec::new();
        HuffmanStage::default().encode_into(&symbols, &mut via_stage);
        let mut scratch = mdz_entropy::HuffmanScratch::default();
        let mut via_free = Vec::new();
        mdz_entropy::huffman_encode_into(&symbols, &mut via_free, &mut scratch);
        assert_eq!(via_stage, via_free);
    }

    #[test]
    fn lossless_stage_round_trips() {
        let data: Vec<u8> = (0..4000).map(|i| b"molecular dynamics "[i % 19]).collect();
        let mut stage = Lz77Stage::default();
        let mut packed = Vec::new();
        stage.compress_into(&data, &mut packed);
        let mut back = Vec::new();
        stage
            .decompress_into_limited(&packed, &mut back, &StreamLimits::default())
            .expect("round trip");
        assert_eq!(back, data);
    }

    #[test]
    fn lossless_stage_rejects_oversized_declarations() {
        let mut stage = Lz77Stage::default();
        let data = vec![0u8; 4096];
        let mut packed = Vec::new();
        stage.compress_into(&data, &mut packed);
        let mut back = Vec::new();
        let err = stage
            .decompress_into_limited(&packed, &mut back, &StreamLimits::with_max_items(16))
            .unwrap_err();
        assert!(matches!(err, crate::MdzError::LimitExceeded { .. }));
    }
}
