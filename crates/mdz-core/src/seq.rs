//! Quantization-sequence interleaving (the paper's Seq-1 / Seq-2, §VI-C2).
//!
//! Before entropy coding, the per-snapshot quantization codes of a buffer
//! form an `M × N` matrix (M snapshots, N particles). Seq-1 stores it
//! row-major (snapshot by snapshot); Seq-2 stores it column-major (each
//! particle's codes across all snapshots contiguously). When data is stable
//! in time, Seq-2 lines up long runs of identical codes, which the
//! dictionary stage compresses far better — the paper measures ~38 % higher
//! compression ratio on Helium-B.

/// Transposes a row-major `rows × cols` matrix into column-major order.
///
/// Returns the input unchanged (as a copy) when either dimension is ≤ 1.
pub fn to_seq2(codes: &[u32], rows: usize, cols: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(codes.len());
    to_seq2_into(codes, rows, cols, &mut out);
    out
}

/// [`to_seq2`] writing into a caller-owned vector (cleared first).
pub fn to_seq2_into(codes: &[u32], rows: usize, cols: usize, out: &mut Vec<u32>) {
    assert_eq!(codes.len(), rows * cols, "shape mismatch");
    out.clear();
    if rows <= 1 || cols <= 1 {
        out.extend_from_slice(codes);
        return;
    }
    out.reserve(codes.len());
    for c in 0..cols {
        for r in 0..rows {
            out.push(codes[r * cols + c]);
        }
    }
}

/// Inverse of [`to_seq2`]: column-major back to row-major.
pub fn from_seq2(codes: &[u32], rows: usize, cols: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(codes.len());
    from_seq2_into(codes, rows, cols, &mut out);
    out
}

/// [`from_seq2`] writing into a caller-owned vector (cleared first).
pub fn from_seq2_into(codes: &[u32], rows: usize, cols: usize, out: &mut Vec<u32>) {
    assert_eq!(codes.len(), rows * cols, "shape mismatch");
    out.clear();
    if rows <= 1 || cols <= 1 {
        out.extend_from_slice(codes);
        return;
    }
    out.resize(codes.len(), 0);
    let mut idx = 0;
    for c in 0..cols {
        for r in 0..rows {
            out[r * cols + c] = codes[idx];
            idx += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_round_trip() {
        let codes: Vec<u32> = (0..24).collect();
        for (rows, cols) in [(4, 6), (6, 4), (1, 24), (24, 1), (2, 12)] {
            let t = to_seq2(&codes, rows, cols);
            assert_eq!(from_seq2(&t, rows, cols), codes, "{rows}x{cols}");
        }
    }

    #[test]
    fn seq2_groups_particles() {
        // 2 snapshots × 3 particles; Seq-2 = particle-major.
        let codes = vec![10, 11, 12, 20, 21, 22];
        assert_eq!(to_seq2(&codes, 2, 3), vec![10, 20, 11, 21, 12, 22]);
    }

    #[test]
    fn stable_time_series_forms_runs() {
        // Each particle keeps its code across snapshots → Seq-2 yields runs.
        let (rows, cols) = (5, 4);
        let codes: Vec<u32> = (0..rows).flat_map(|_| (0..cols as u32).map(|p| 100 + p)).collect();
        let t = to_seq2(&codes, rows, cols);
        for chunk in t.chunks(rows) {
            assert!(chunk.iter().all(|&c| c == chunk[0]));
        }
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        assert!(to_seq2(&[], 0, 0).is_empty());
        assert_eq!(to_seq2(&[5], 1, 1), vec![5]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        to_seq2(&[1, 2, 3], 2, 2);
    }
}
