//! Buffer-level compression: the stable public path to the MDZ pipeline.
//!
//! The implementation lives in the stage-oriented `pipeline` module tree
//! (`pipeline::predict` / `pipeline::encode` / `pipeline::decode`); this
//! module re-exports its public surface under the historical
//! `mdz_core::buffer` path.

pub use crate::pipeline::{BlockInfo, Compressor, DecodeLimits, Decompressor};
