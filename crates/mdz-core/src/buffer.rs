//! Buffer-level compression: the MDZ pipeline end to end.
//!
//! A *buffer* is `M` snapshots × `N` values of one coordinate axis. The
//! compressor is stateful across buffers (level grid computed once; the
//! stream's initial snapshot retained as the MT reference), mirroring the
//! paper's execution model where an MD code compresses every `BS` snapshots
//! during the run. The [`Decompressor`] maintains the same state, so blocks
//! must be decompressed in stream order — except pure-VQ blocks, which are
//! fully self-contained (the paper's random-access property).
//!
//! ## Prediction-parity invariant
//!
//! Every prediction on the encoder side uses *reconstructed* values (what
//! the decoder will have), never originals. This is what makes the error
//! bound compose across time prediction chains.

use crate::adaptive::AdaptiveState;
use crate::format::{BlockHeader, Method, FLAG_F32, FLAG_FIRST_LORENZO, FLAG_GRID, FLAG_RANGE_CODED, FLAG_SEQ2};
use crate::quant::{LinearQuantizer, Quantized};
use crate::seq::{from_seq2, to_seq2};
use crate::{MdzConfig, MdzError, Result};
use crate::EntropyStage;
use mdz_entropy::{
    huffman::huffman_decode_at, huffman_encode, range::range_decode_at, range_encode,
    read_uvarint, write_uvarint, zigzag_decode, zigzag_encode,
};
use mdz_kmeans::{detect_levels, LevelGrid, SelectConfig};
use mdz_lossless::lz77;
use std::collections::HashMap;

/// Level indices beyond this magnitude escape (guards λ → 0 blowups).
const MAX_LEVEL_MAG: f64 = (1u64 << 40) as f64;

/// How each snapshot within a buffer is predicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SnapshotMode {
    /// Level-centroid prediction via the grid; emits J codes.
    VqGrid,
    /// In-snapshot previous-value prediction (first value predicted as 0).
    Lorenzo,
    /// Same index in the previous snapshot's reconstruction.
    TimePrev,
    /// Linear extrapolation from the two previous reconstructions.
    TimePrev2,
    /// Same index in the stream's reference (initial) snapshot.
    TimeRef,
}

/// Cross-buffer state shared (by construction) between both endpoints.
#[derive(Debug, Clone, Default)]
struct CoreState {
    /// Level grid: `None` = not yet attempted, `Some(None)` = attempted and
    /// absent (data not level-structured), `Some(Some(g))` = detected.
    grid: Option<Option<LevelGrid>>,
    /// Reconstruction of the stream's first snapshot (the MT reference).
    reference: Option<Vec<f64>>,
}

/// Stateful MDZ compressor for one axis stream.
#[derive(Debug, Clone)]
pub struct Compressor {
    cfg: MdzConfig,
    state: CoreState,
    adaptive: AdaptiveState,
}

impl Compressor {
    /// Creates a compressor; the configuration is validated on first use.
    pub fn new(cfg: MdzConfig) -> Self {
        Self { cfg, state: CoreState::default(), adaptive: AdaptiveState::new() }
    }

    /// The configured method (possibly [`Method::Adaptive`]).
    pub fn method(&self) -> Method {
        self.cfg.method
    }

    /// The concrete method the adaptive selector is currently using, if any
    /// trial has run yet.
    pub fn current_adaptive_choice(&self) -> Option<Method> {
        self.adaptive.current()
    }

    /// Compresses one buffer of snapshots into a self-describing block.
    ///
    /// All snapshots must be non-empty and equally sized.
    pub fn compress_buffer(&mut self, snapshots: &[Vec<f64>]) -> Result<Vec<u8>> {
        self.cfg.validate()?;
        validate_shape(snapshots)?;
        match self.cfg.method {
            Method::Adaptive => self.compress_adaptive(snapshots),
            m => {
                let (bytes, new_state) = encode_buffer(&self.cfg, &self.state, m, snapshots)?;
                self.state = new_state;
                Ok(bytes)
            }
        }
    }

    /// Compresses a buffer of single-precision snapshots.
    ///
    /// MD trajectory formats commonly store `f32`; values are widened
    /// losslessly, compressed as usual, and the block is tagged so
    /// [`Decompressor::decompress_block_f32`] can narrow the output again.
    ///
    /// The error bound is guaranteed in `f64` space; narrowing the
    /// reconstruction back to `f32` adds at most half an `f32` ULP
    /// (≈ 6e-8·|value|), which is far below any practical MD bound.
    pub fn compress_buffer_f32(&mut self, snapshots: &[Vec<f32>]) -> Result<Vec<u8>> {
        let widened: Vec<Vec<f64>> =
            snapshots.iter().map(|s| s.iter().map(|&v| f64::from(v)).collect()).collect();
        let mut block = self.compress_buffer(&widened)?;
        // Tag the block: the flags byte sits right after magic + version + method.
        let flags_at = crate::format::MAGIC.len() + 2;
        block[flags_at] |= FLAG_F32;
        Ok(block)
    }

    /// ADP: every `adapt_interval` buffers, compress with all three methods
    /// and keep the smallest; in between, reuse the last winner.
    fn compress_adaptive(&mut self, snapshots: &[Vec<f64>]) -> Result<Vec<u8>> {
        if self.adaptive.trial_due(self.cfg.adapt_interval) {
            let candidates: &[Method] =
                if self.cfg.extended_candidates { &Method::EXTENDED } else { &Method::CONCRETE };
            let mut best: Option<(Vec<u8>, CoreState, Method)> = None;
            for &m in candidates {
                let (bytes, state) = encode_buffer(&self.cfg, &self.state, m, snapshots)?;
                let better = best.as_ref().is_none_or(|(b, _, _)| bytes.len() < b.len());
                if better {
                    best = Some((bytes, state, m));
                }
            }
            let (bytes, state, method) = best.expect("three candidates evaluated");
            self.state = state;
            self.adaptive.record_winner(method);
            Ok(bytes)
        } else {
            let m = self.adaptive.current().expect("winner recorded at first trial");
            self.adaptive.tick();
            let (bytes, state) = encode_buffer(&self.cfg, &self.state, m, snapshots)?;
            self.state = state;
            Ok(bytes)
        }
    }
}

/// Stateful MDZ decompressor (mirror of [`Compressor`] state).
#[derive(Debug, Clone, Default)]
pub struct Decompressor {
    reference: Option<Vec<f64>>,
}

/// Parsed block metadata returned by [`Decompressor::inspect`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockInfo {
    /// Concrete method that produced the block.
    pub method: Method,
    /// Snapshots in the block.
    pub n_snapshots: usize,
    /// Values per snapshot.
    pub n_values: usize,
    /// Absolute error bound the block was coded under.
    pub eps: f64,
    /// Quantization radius (half the quantization scale).
    pub radius: u32,
    /// Level grid `(μ, λ)` when the VQ predictor was grid-backed.
    pub grid: Option<(f64, f64)>,
    /// Whether codes are Seq-2 (particle-major) interleaved.
    pub seq2: bool,
    /// Whether the entropy stage was the range coder.
    pub range_coded: bool,
    /// Whether the source data was `f32` (decompress with
    /// [`Decompressor::decompress_block_f32`]).
    pub source_f32: bool,
    /// Compressed payload size in bytes (excluding the header).
    pub payload_bytes: usize,
}

impl Decompressor {
    /// Creates a decompressor with empty stream state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decompresses a single snapshot from a pure-VQ block without
    /// reconstructing the others — the paper's random-access property
    /// (§VI: "any snapshot data can be decompressed very quickly without a
    /// need in decompressing other snapshots").
    ///
    /// Works on blocks whose snapshots are all independently coded (method
    /// VQ, with or without a detected grid). Errors on VQT/MT blocks, whose
    /// snapshots form prediction chains, and on out-of-range indices.
    pub fn decompress_snapshot(block: &[u8], index: usize) -> Result<Vec<f64>> {
        let mut pos = 0;
        let header = BlockHeader::read(block, &mut pos)?;
        if header.method != Method::Vq {
            return Err(MdzError::BadInput("random access requires a VQ block"));
        }
        if index >= header.n_snapshots {
            return Err(MdzError::BadInput("snapshot index out of range"));
        }
        let payload_len = read_uvarint(block, &mut pos)? as usize;
        let end = pos
            .checked_add(payload_len)
            .filter(|&e| e <= block.len())
            .ok_or(MdzError::BadHeader("truncated payload"))?;
        let inner = lz77::decompress(&block[pos..end])?;
        let all = decode_inner_one(&header, &inner, index)?;
        Ok(all)
    }

    /// Parses a block's header without decompressing it — cheap
    /// observability for tooling (`mdz info`, debuggers).
    pub fn inspect(block: &[u8]) -> Result<BlockInfo> {
        let mut pos = 0;
        let header = BlockHeader::read(block, &mut pos)?;
        let payload_len = read_uvarint(block, &mut pos)? as usize;
        Ok(BlockInfo {
            method: header.method,
            n_snapshots: header.n_snapshots,
            n_values: header.n_values,
            eps: header.eps,
            radius: header.radius,
            grid: header.grid,
            seq2: header.flags & FLAG_SEQ2 != 0,
            range_coded: header.flags & FLAG_RANGE_CODED != 0,
            source_f32: header.flags & FLAG_F32 != 0,
            payload_bytes: payload_len,
        })
    }

    /// Decompresses a block produced by [`Compressor::compress_buffer_f32`]
    /// back into single-precision snapshots.
    ///
    /// Errors if the block was not tagged as `f32`-sourced.
    pub fn decompress_block_f32(&mut self, block: &[u8]) -> Result<Vec<Vec<f32>>> {
        let info = Self::inspect(block)?;
        if !info.source_f32 {
            return Err(MdzError::BadInput("block does not carry f32-source data"));
        }
        let wide = self.decompress_block(block)?;
        // Clamp finite reconstructions into f32 range before narrowing: a
        // huge error bound could push a reconstruction past f32::MAX, and
        // saturating to infinity would break the bound. Clamping moves the
        // value strictly closer to the (f32-representable) original.
        let narrow = |v: f64| -> f32 {
            if v.is_finite() {
                v.clamp(f64::from(f32::MIN), f64::from(f32::MAX)) as f32
            } else {
                v as f32
            }
        };
        Ok(wide.into_iter().map(|s| s.into_iter().map(narrow).collect()).collect())
    }

    /// Decompresses one block into its snapshots.
    pub fn decompress_block(&mut self, block: &[u8]) -> Result<Vec<Vec<f64>>> {
        let mut pos = 0;
        let header = BlockHeader::read(block, &mut pos)?;
        let payload_len = read_uvarint(block, &mut pos)? as usize;
        let end = pos
            .checked_add(payload_len)
            .filter(|&e| e <= block.len())
            .ok_or(MdzError::BadHeader("truncated payload"))?;
        let inner = lz77::decompress(&block[pos..end])?;
        let snapshots = decode_inner(&header, &inner, self.reference.as_deref())?;
        // Mirror the compressor's reference-update rule.
        if self.reference.as_ref().is_none_or(|r| r.len() != header.n_values) {
            self.reference = Some(snapshots[0].clone());
        }
        Ok(snapshots)
    }
}

fn validate_shape(snapshots: &[Vec<f64>]) -> Result<()> {
    if snapshots.is_empty() {
        return Err(MdzError::BadInput("buffer has no snapshots"));
    }
    let n = snapshots[0].len();
    if n == 0 {
        return Err(MdzError::BadInput("snapshots are empty"));
    }
    if snapshots.iter().any(|s| s.len() != n) {
        return Err(MdzError::BadInput("ragged snapshots in buffer"));
    }
    Ok(())
}

/// Resolves the per-snapshot prediction modes for a buffer.
fn snapshot_modes(
    method: Method,
    n_snapshots: usize,
    grid: bool,
    have_ref: bool,
) -> Vec<SnapshotMode> {
    let first = match method {
        Method::Vq | Method::Vqt => {
            if grid {
                SnapshotMode::VqGrid
            } else {
                SnapshotMode::Lorenzo
            }
        }
        Method::Mt | Method::Mt2 => {
            if have_ref {
                SnapshotMode::TimeRef
            } else {
                SnapshotMode::Lorenzo
            }
        }
        Method::Adaptive => unreachable!("resolved before encoding"),
    };
    let mut modes = vec![first];
    match method {
        Method::Vq => modes.extend(std::iter::repeat_n(first, n_snapshots.saturating_sub(1))),
        Method::Mt2 => {
            // Second snapshot has only one predecessor; extrapolate after.
            if n_snapshots > 1 {
                modes.push(SnapshotMode::TimePrev);
            }
            modes.extend(
                std::iter::repeat_n(SnapshotMode::TimePrev2, n_snapshots.saturating_sub(2)),
            );
        }
        _ => modes
            .extend(std::iter::repeat_n(SnapshotMode::TimePrev, n_snapshots.saturating_sub(1))),
    }
    modes
}

/// Encodes one buffer with a concrete method, returning the block bytes and
/// the successor state (committed by the caller — adaptive trials discard).
fn encode_buffer(
    cfg: &MdzConfig,
    state: &CoreState,
    method: Method,
    snapshots: &[Vec<f64>],
) -> Result<(Vec<u8>, CoreState)> {
    let m = snapshots.len();
    let n = snapshots[0].len();
    let mut state = state.clone();

    // Resolve the error bound against the whole buffer.
    let eps = {
        let mut all_min = f64::INFINITY;
        let mut all_max = f64::NEG_INFINITY;
        for s in snapshots {
            for &v in s {
                if v < all_min {
                    all_min = v;
                }
                if v > all_max {
                    all_max = v;
                }
            }
        }
        match cfg.bound {
            crate::ErrorBound::Absolute(e) => e,
            crate::ErrorBound::ValueRangeRelative(r) => {
                let range = all_max - all_min;
                if range > 0.0 && range.is_finite() {
                    r * range
                } else {
                    1e-300
                }
            }
        }
    };
    let quant = LinearQuantizer::new(eps, cfg.radius);

    // Level grid: detect once per stream, from the first snapshot seen by a
    // VQ-family method (the paper computes F once, on the first snapshot).
    if matches!(method, Method::Vq | Method::Vqt) && state.grid.is_none() {
        let sel = SelectConfig {
            max_k: cfg.max_levels,
            sample_fraction: cfg.level_sample_fraction,
            ..Default::default()
        };
        state.grid = Some(detect_levels(&snapshots[0], &sel));
    }
    let grid = state.grid.flatten();
    let have_ref = state.reference.as_ref().is_some_and(|r| r.len() == n);
    let modes = snapshot_modes(method, m, grid.is_some(), have_ref);

    let mut b_codes: Vec<u32> = Vec::with_capacity(m * n);
    let mut j_codes: Vec<u32> = Vec::new();
    let mut escapes: Vec<(usize, f64)> = Vec::new();
    let mut recon_prev: Vec<f64> = vec![0.0; n];
    let mut recon_prev2: Vec<f64> = vec![0.0; n];
    let mut recon_cur: Vec<f64> = vec![0.0; n];
    let mut recon_first: Vec<f64> = Vec::new();
    // Scratch for the extrapolated predictions of TimePrev2.
    let mut extrapolated: Vec<f64> = Vec::new();

    for (s_idx, snap) in snapshots.iter().enumerate() {
        let mode = modes[s_idx];
        match mode {
            SnapshotMode::VqGrid => {
                let g = grid.expect("mode implies grid");
                encode_vq_snapshot(
                    &quant, &g, snap, s_idx * n, &mut b_codes, &mut j_codes, &mut escapes,
                    &mut recon_cur,
                )
            }
            SnapshotMode::Lorenzo => encode_predicted_snapshot(
                &quant,
                snap,
                s_idx * n,
                PredSource::Lorenzo,
                &mut b_codes,
                &mut escapes,
                &mut recon_cur,
            ),
            SnapshotMode::TimePrev => encode_predicted_snapshot(
                &quant,
                snap,
                s_idx * n,
                PredSource::Slice(&recon_prev),
                &mut b_codes,
                &mut escapes,
                &mut recon_cur,
            ),
            SnapshotMode::TimePrev2 => {
                extrapolated.clear();
                extrapolated.extend(
                    recon_prev.iter().zip(recon_prev2.iter()).map(|(&a, &b)| 2.0 * a - b),
                );
                encode_predicted_snapshot(
                    &quant,
                    snap,
                    s_idx * n,
                    PredSource::Slice(&extrapolated),
                    &mut b_codes,
                    &mut escapes,
                    &mut recon_cur,
                )
            }
            SnapshotMode::TimeRef => encode_predicted_snapshot(
                &quant,
                snap,
                s_idx * n,
                PredSource::Slice(state.reference.as_deref().expect("mode implies ref")),
                &mut b_codes,
                &mut escapes,
                &mut recon_cur,
            ),
        }
        if s_idx == 0 {
            recon_first = recon_cur.clone();
        }
        std::mem::swap(&mut recon_prev2, &mut recon_prev);
        std::mem::swap(&mut recon_prev, &mut recon_cur);
    }

    // Reference-update rule (mirrored by the decompressor).
    if state.reference.as_ref().is_none_or(|r| r.len() != n) {
        state.reference = Some(recon_first);
    }

    // Interleave, entropy-code, assemble.
    let seq2 = cfg.seq2 && m > 1;
    let b_ordered = if seq2 { to_seq2(&b_codes, m, n) } else { b_codes };
    let vq_rows = modes.iter().filter(|&&md| md == SnapshotMode::VqGrid).count();
    let j_ordered = if seq2 && vq_rows > 1 { to_seq2(&j_codes, vq_rows, n) } else { j_codes };

    let mut inner = Vec::with_capacity(b_ordered.len() / 2 + 64);
    match cfg.entropy {
        EntropyStage::Huffman => {
            inner.extend(huffman_encode(&b_ordered));
            inner.extend(huffman_encode(&j_ordered));
        }
        EntropyStage::Range => {
            inner.extend(range_encode(&b_ordered));
            inner.extend(range_encode(&j_ordered));
        }
    }
    write_uvarint(&mut inner, escapes.len() as u64);
    let mut prev_idx = 0u64;
    for (i, &(idx, v)) in escapes.iter().enumerate() {
        let delta = if i == 0 { idx as u64 } else { idx as u64 - prev_idx };
        write_uvarint(&mut inner, delta);
        inner.extend_from_slice(&v.to_le_bytes());
        prev_idx = idx as u64;
    }

    let payload = lz77::compress(&inner, lz77::Level::Default);
    let mut flags = 0u8;
    let grid_used = matches!(method, Method::Vq | Method::Vqt) && grid.is_some();
    if grid_used {
        flags |= FLAG_GRID;
    }
    if seq2 {
        flags |= FLAG_SEQ2;
    }
    if modes[0] == SnapshotMode::Lorenzo && matches!(method, Method::Mt | Method::Mt2) {
        flags |= FLAG_FIRST_LORENZO;
    }
    if cfg.entropy == EntropyStage::Range {
        flags |= FLAG_RANGE_CODED;
    }
    let header = BlockHeader {
        method,
        flags,
        n_snapshots: m,
        n_values: n,
        eps,
        radius: cfg.radius,
        grid: grid_used.then(|| {
            let g = grid.expect("grid_used implies grid");
            (g.mu, g.lambda)
        }),
    };
    let mut out = Vec::with_capacity(payload.len() + 64);
    header.write(&mut out);
    write_uvarint(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    Ok((out, state))
}

/// Where a plain (non-VQ) snapshot gets its predictions.
enum PredSource<'a> {
    /// Previous reconstructed value within the same snapshot.
    Lorenzo,
    /// A fixed slice (previous snapshot or stream reference).
    Slice(&'a [f64]),
}

/// Encodes a snapshot under value prediction, writing codes/escapes and the
/// reconstruction.
fn encode_predicted_snapshot(
    quant: &LinearQuantizer,
    snap: &[f64],
    flat_base: usize,
    source: PredSource<'_>,
    b_codes: &mut Vec<u32>,
    escapes: &mut Vec<(usize, f64)>,
    recon: &mut [f64],
) {
    for (i, &d) in snap.iter().enumerate() {
        let pred = match source {
            PredSource::Lorenzo => {
                if i == 0 {
                    0.0
                } else {
                    recon[i - 1]
                }
            }
            PredSource::Slice(s) => s[i],
        };
        match quant.quantize(d, pred, &mut recon[i]) {
            Quantized::Code(c) => b_codes.push(c),
            Quantized::Escape => {
                b_codes.push(0);
                escapes.push((flat_base + i, d));
            }
        }
    }
}

/// Encodes a snapshot with VQ level prediction, emitting level-delta codes.
#[allow(clippy::too_many_arguments)]
fn encode_vq_snapshot(
    quant: &LinearQuantizer,
    grid: &LevelGrid,
    snap: &[f64],
    flat_base: usize,
    b_codes: &mut Vec<u32>,
    j_codes: &mut Vec<u32>,
    escapes: &mut Vec<(usize, f64)>,
    recon: &mut [f64],
) {
    let mut prev_level = 0i64;
    for (i, &d) in snap.iter().enumerate() {
        let mut escape = |recon_slot: &mut f64, b: &mut Vec<u32>, j: &mut Vec<u32>| {
            b.push(0);
            j.push(zigzag_encode(0) as u32);
            escapes.push((flat_base + i, d));
            *recon_slot = d;
        };
        let lf = ((d - grid.mu) / grid.lambda).round();
        if !lf.is_finite() || lf.abs() > MAX_LEVEL_MAG {
            escape(&mut recon[i], b_codes, j_codes);
            continue;
        }
        let level = lf as i64;
        let delta = level - prev_level;
        let zz = zigzag_encode(delta);
        if zz > u64::from(u32::MAX) {
            escape(&mut recon[i], b_codes, j_codes);
            continue;
        }
        let pred = grid.value_of(level);
        match quant.quantize(d, pred, &mut recon[i]) {
            Quantized::Code(c) => {
                b_codes.push(c);
                j_codes.push(zz as u32);
                prev_level = level;
            }
            Quantized::Escape => escape(&mut recon[i], b_codes, j_codes),
        }
    }
}

/// Decodes one entropy-coded integer stream per the header's coder flag.
fn decode_stream(header: &BlockHeader, inner: &[u8], pos: &mut usize) -> Result<Vec<u32>> {
    if header.flags & FLAG_RANGE_CODED != 0 {
        Ok(range_decode_at(inner, pos)?)
    } else {
        Ok(huffman_decode_at(inner, pos)?)
    }
}

/// Decodes exactly one snapshot of a VQ block's inner payload.
///
/// The entropy streams are sequential and must be decoded in full, but only
/// the requested snapshot's values are dequantized and reconstructed.
fn decode_inner_one(header: &BlockHeader, inner: &[u8], index: usize) -> Result<Vec<f64>> {
    let m = header.n_snapshots;
    let n = header.n_values;
    let mut pos = 0;
    let b_ordered = decode_stream(header, inner, &mut pos)?;
    let j_ordered = decode_stream(header, inner, &mut pos)?;
    if b_ordered.len() != m * n {
        return Err(MdzError::Stream(mdz_entropy::EntropyError::Corrupt(
            "quantization code count mismatch",
        )));
    }
    let grid = header.grid.map(|(mu, lambda)| LevelGrid { mu, lambda, k: 0, fit_error: 0.0 });
    let expect_j = if grid.is_some() { m * n } else { 0 };
    if j_ordered.len() != expect_j {
        return Err(MdzError::Stream(mdz_entropy::EntropyError::Corrupt(
            "level code count mismatch",
        )));
    }
    // Escapes for this snapshot only.
    let escape_count = read_uvarint(inner, &mut pos)? as usize;
    if escape_count > m * n {
        return Err(MdzError::Stream(mdz_entropy::EntropyError::Corrupt(
            "escape count exceeds block size",
        )));
    }
    let mut escapes: HashMap<usize, f64> = HashMap::new();
    let mut idx = 0u64;
    let flat_base = index * n;
    for i in 0..escape_count {
        let delta = read_uvarint(inner, &mut pos)?;
        idx = if i == 0 {
            delta
        } else {
            idx.checked_add(delta).ok_or(MdzError::BadHeader("escape index overflow"))?
        };
        let bytes = inner
            .get(pos..pos + 8)
            .ok_or(MdzError::Stream(mdz_entropy::EntropyError::UnexpectedEof))?;
        pos += 8;
        let flat = idx as usize;
        if flat >= flat_base && flat < flat_base + n {
            escapes.insert(flat - flat_base, f64::from_le_bytes(bytes.try_into().unwrap()));
        }
    }
    let seq2 = header.flags & FLAG_SEQ2 != 0;
    // Extract this snapshot's codes straight out of the interleaved layout.
    let pick = |ordered: &[u32], i: usize| -> u32 {
        if seq2 && m > 1 && n > 1 {
            ordered[i * m + index]
        } else {
            ordered[flat_base + i]
        }
    };
    let quant = LinearQuantizer::new(header.eps, header.radius);
    let mut snap = vec![0.0f64; n];
    match &grid {
        Some(g) => {
            let mut level = 0i64;
            for (i, out) in snap.iter_mut().enumerate() {
                level = level.wrapping_add(zigzag_decode(u64::from(pick(&j_ordered, i))));
                let code = pick(&b_ordered, i);
                *out = if code == 0 {
                    *escapes.get(&i).ok_or(MdzError::BadHeader("missing escape value"))?
                } else {
                    quant.reconstruct(code, g.value_of(level))
                };
            }
        }
        None => {
            // Grid-less VQ blocks are Lorenzo-coded per snapshot — still
            // independent of other snapshots.
            for i in 0..n {
                let pred = if i == 0 { 0.0 } else { snap[i - 1] };
                let code = pick(&b_ordered, i);
                snap[i] = if code == 0 {
                    *escapes.get(&i).ok_or(MdzError::BadHeader("missing escape value"))?
                } else {
                    quant.reconstruct(code, pred)
                };
            }
        }
    }
    Ok(snap)
}

/// Decodes the inner payload into snapshots.
fn decode_inner(
    header: &BlockHeader,
    inner: &[u8],
    reference: Option<&[f64]>,
) -> Result<Vec<Vec<f64>>> {
    let m = header.n_snapshots;
    let n = header.n_values;
    let mut pos = 0;
    let b_ordered = decode_stream(header, inner, &mut pos)?;
    let j_ordered = decode_stream(header, inner, &mut pos)?;
    if b_ordered.len() != m * n {
        return Err(MdzError::Stream(mdz_entropy::EntropyError::Corrupt(
            "quantization code count mismatch",
        )));
    }
    let escape_count = read_uvarint(inner, &mut pos)? as usize;
    if escape_count > m * n {
        return Err(MdzError::Stream(mdz_entropy::EntropyError::Corrupt(
            "escape count exceeds block size",
        )));
    }
    // Untrusted count: cap the eager allocation.
    let mut escapes: HashMap<usize, f64> = HashMap::with_capacity(escape_count.min(1 << 20));
    let mut idx = 0u64;
    for i in 0..escape_count {
        let delta = read_uvarint(inner, &mut pos)?;
        idx = if i == 0 { delta } else { idx.checked_add(delta).ok_or(MdzError::BadHeader("escape index overflow"))? };
        let bytes = inner
            .get(pos..pos + 8)
            .ok_or(MdzError::Stream(mdz_entropy::EntropyError::UnexpectedEof))?;
        pos += 8;
        escapes.insert(idx as usize, f64::from_le_bytes(bytes.try_into().unwrap()));
    }

    let seq2 = header.flags & FLAG_SEQ2 != 0;
    let b_codes = if seq2 { from_seq2(&b_ordered, m, n) } else { b_ordered };
    let grid = header.grid.map(|(mu, lambda)| LevelGrid { mu, lambda, k: 0, fit_error: 0.0 });
    let have_ref = reference.is_some_and(|r| r.len() == n);
    let first_lorenzo = header.flags & FLAG_FIRST_LORENZO != 0;
    // Reconstruct per-snapshot modes exactly as the encoder chose them.
    let modes = match header.method {
        Method::Vq | Method::Vqt => snapshot_modes(header.method, m, grid.is_some(), have_ref),
        Method::Mt | Method::Mt2 => {
            if !first_lorenzo && !have_ref {
                return Err(MdzError::BadInput(
                    "MT block requires the stream's earlier blocks (reference snapshot)",
                ));
            }
            snapshot_modes(header.method, m, false, !first_lorenzo)
        }
        Method::Adaptive => unreachable!("wire blocks are concrete"),
    };
    let vq_rows = modes.iter().filter(|&&md| md == SnapshotMode::VqGrid).count();
    if j_ordered.len() != vq_rows * n {
        return Err(MdzError::Stream(mdz_entropy::EntropyError::Corrupt(
            "level code count mismatch",
        )));
    }
    let j_codes = if seq2 && vq_rows > 1 { from_seq2(&j_ordered, vq_rows, n) } else { j_ordered };

    let quant = LinearQuantizer::new(header.eps, header.radius);
    let mut out: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut j_row = 0usize;
    for (s_idx, &mode) in modes.iter().enumerate() {
        let mut snap = vec![0.0f64; n];
        let flat_base = s_idx * n;
        match mode {
            SnapshotMode::VqGrid => {
                let g = grid.as_ref().ok_or(MdzError::BadHeader("VQ block without grid"))?;
                let j = &j_codes[j_row * n..(j_row + 1) * n];
                j_row += 1;
                let mut level = 0i64;
                for i in 0..n {
                    level = level.wrapping_add(zigzag_decode(u64::from(j[i])));
                    let code = b_codes[flat_base + i];
                    snap[i] = if code == 0 {
                        *escapes
                            .get(&(flat_base + i))
                            .ok_or(MdzError::BadHeader("missing escape value"))?
                    } else {
                        quant.reconstruct(code, g.value_of(level))
                    };
                }
            }
            SnapshotMode::Lorenzo => {
                for i in 0..n {
                    let pred = if i == 0 { 0.0 } else { snap[i - 1] };
                    let code = b_codes[flat_base + i];
                    snap[i] = if code == 0 {
                        *escapes
                            .get(&(flat_base + i))
                            .ok_or(MdzError::BadHeader("missing escape value"))?
                    } else {
                        quant.reconstruct(code, pred)
                    };
                }
            }
            SnapshotMode::TimePrev | SnapshotMode::TimeRef | SnapshotMode::TimePrev2 => {
                let prev = out.last();
                let prev2 = out.len().checked_sub(2).map(|i| &out[i]);
                for i in 0..n {
                    let pred = match mode {
                        SnapshotMode::TimePrev => {
                            prev.expect("TimePrev never on first snapshot")[i]
                        }
                        SnapshotMode::TimePrev2 => {
                            let a = prev.expect("TimePrev2 needs two predecessors")[i];
                            let b = prev2.expect("TimePrev2 needs two predecessors")[i];
                            2.0 * a - b
                        }
                        _ => reference.expect("checked above")[i],
                    };
                    let code = b_codes[flat_base + i];
                    snap[i] = if code == 0 {
                        *escapes
                            .get(&(flat_base + i))
                            .ok_or(MdzError::BadHeader("missing escape value"))?
                    } else {
                        quant.reconstruct(code, pred)
                    };
                }
            }
        }
        out.push(snap);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ErrorBound;

    fn check_round_trip(snapshots: &[Vec<f64>], cfg: MdzConfig) -> (usize, Vec<Vec<f64>>) {
        let eps_for = |buf: &[Vec<f64>]| {
            let flat: Vec<f64> = buf.iter().flatten().copied().collect();
            cfg.bound.absolute_for(&flat)
        };
        let eps = eps_for(snapshots);
        let mut c = Compressor::new(cfg);
        let block = c.compress_buffer(snapshots).unwrap();
        let mut d = Decompressor::new();
        let out = d.decompress_block(&block).unwrap();
        assert_eq!(out.len(), snapshots.len());
        for (s, o) in snapshots.iter().zip(out.iter()) {
            assert_eq!(s.len(), o.len());
            for (a, b) in s.iter().zip(o.iter()) {
                if a.is_finite() {
                    assert!((a - b).abs() <= eps, "{a} vs {b}, eps {eps}");
                } else {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
        (block.len(), out)
    }

    fn lattice_buffer(m: usize, n: usize, drift: f64) -> Vec<Vec<f64>> {
        let mut s = 99u64;
        (0..m)
            .map(|t| {
                (0..n)
                    .map(|i| {
                        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let u = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                        (i % 16) as f64 * 3.0 + u * 0.02 + t as f64 * drift
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn vq_round_trip_on_lattice() {
        let snaps = lattice_buffer(5, 400, 0.0);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(Method::Vq);
        let (size, _) = check_round_trip(&snaps, cfg);
        let raw = 5 * 400 * 8;
        assert!(size < raw / 4, "VQ should compress lattice data well: {size} vs {raw}");
    }

    #[test]
    fn vqt_round_trip() {
        let snaps = lattice_buffer(10, 300, 1e-4);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(Method::Vqt);
        check_round_trip(&snaps, cfg);
    }

    #[test]
    fn mt_round_trip() {
        let snaps = lattice_buffer(10, 300, 1e-4);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(Method::Mt);
        check_round_trip(&snaps, cfg);
    }

    #[test]
    fn adaptive_round_trip() {
        let snaps = lattice_buffer(10, 300, 1e-4);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3));
        check_round_trip(&snaps, cfg);
    }

    #[test]
    fn single_snapshot_buffer() {
        let snaps = lattice_buffer(1, 500, 0.0);
        for m in [Method::Vq, Method::Vqt, Method::Mt, Method::Adaptive] {
            let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(m);
            check_round_trip(&snaps, cfg);
        }
    }

    #[test]
    fn random_data_without_levels_falls_back() {
        let mut s = 5u64;
        let snaps: Vec<Vec<f64>> = (0..4)
            .map(|_| {
                (0..500)
                    .map(|_| {
                        s ^= s << 13;
                        s ^= s >> 7;
                        s ^= s << 17;
                        (s >> 11) as f64 / (1u64 << 53) as f64 * 100.0
                    })
                    .collect()
            })
            .collect();
        for m in [Method::Vq, Method::Vqt, Method::Mt] {
            let cfg = MdzConfig::new(ErrorBound::Absolute(1e-2)).with_method(m);
            check_round_trip(&snaps, cfg);
        }
    }

    #[test]
    fn value_range_relative_bound() {
        let snaps = lattice_buffer(5, 200, 0.0);
        let cfg = MdzConfig::new(ErrorBound::ValueRangeRelative(1e-3));
        check_round_trip(&snaps, cfg);
    }

    #[test]
    fn constant_data() {
        let snaps = vec![vec![42.0; 100]; 5];
        for m in [Method::Vq, Method::Vqt, Method::Mt] {
            let cfg = MdzConfig::new(ErrorBound::Absolute(1e-6)).with_method(m);
            let (size, _) = check_round_trip(&snaps, cfg);
            assert!(size < 300, "constant data should compress to almost nothing: {size}");
        }
    }

    #[test]
    fn non_finite_values_survive_bit_exact() {
        let mut snaps = lattice_buffer(3, 50, 0.0);
        snaps[1][7] = f64::NAN;
        snaps[2][9] = f64::INFINITY;
        snaps[0][0] = f64::NEG_INFINITY;
        for m in [Method::Vq, Method::Vqt, Method::Mt] {
            let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(m);
            check_round_trip(&snaps, cfg);
        }
    }

    #[test]
    fn multi_buffer_stream_with_state() {
        // MT's reference comes from buffer 0; later buffers predict from it.
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(Method::Mt);
        let mut c = Compressor::new(cfg);
        let mut d = Decompressor::new();
        let base = lattice_buffer(1, 200, 0.0).pop().unwrap();
        for t in 0..5 {
            let buf: Vec<Vec<f64>> = (0..4)
                .map(|k| base.iter().map(|&v| v + (t * 4 + k) as f64 * 1e-5).collect())
                .collect();
            let block = c.compress_buffer(&buf).unwrap();
            let out = d.decompress_block(&block).unwrap();
            for (s, o) in buf.iter().zip(out.iter()) {
                for (a, b) in s.iter().zip(o.iter()) {
                    assert!((a - b).abs() <= 1e-4);
                }
            }
        }
    }

    #[test]
    fn mt_block_out_of_order_fails_cleanly() {
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(Method::Mt);
        let mut c = Compressor::new(cfg);
        let b0 = c.compress_buffer(&lattice_buffer(3, 100, 0.0)).unwrap();
        let b1 = c.compress_buffer(&lattice_buffer(3, 100, 1e-5)).unwrap();
        // Fresh decompressor given block 1 first: must error, not garble.
        let mut d = Decompressor::new();
        assert!(d.decompress_block(&b1).is_err());
        // In order works.
        let mut d = Decompressor::new();
        d.decompress_block(&b0).unwrap();
        d.decompress_block(&b1).unwrap();
    }

    #[test]
    fn vq_blocks_are_self_contained() {
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(Method::Vq);
        let mut c = Compressor::new(cfg);
        let _b0 = c.compress_buffer(&lattice_buffer(3, 100, 0.0)).unwrap();
        let b1 = c.compress_buffer(&lattice_buffer(3, 100, 0.1)).unwrap();
        // A fresh decompressor can open block 1 directly.
        let mut d = Decompressor::new();
        d.decompress_block(&b1).unwrap();
    }

    #[test]
    fn seq1_and_seq2_both_round_trip() {
        let snaps = lattice_buffer(8, 100, 1e-5);
        for seq2 in [false, true] {
            let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3))
                .with_method(Method::Vqt)
                .with_seq2(seq2);
            check_round_trip(&snaps, cfg);
        }
    }

    #[test]
    fn quantization_radius_sweep() {
        let snaps = lattice_buffer(4, 200, 1e-4);
        for radius in [32u32, 512, 4096, 32768] {
            let cfg = MdzConfig::new(ErrorBound::Absolute(1e-5))
                .with_method(Method::Vqt)
                .with_radius(radius);
            check_round_trip(&snaps, cfg);
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3));
        let mut c = Compressor::new(cfg.clone());
        assert!(matches!(c.compress_buffer(&[]), Err(MdzError::BadInput(_))));
        assert!(matches!(c.compress_buffer(&[vec![]]), Err(MdzError::BadInput(_))));
        assert!(matches!(
            c.compress_buffer(&[vec![1.0], vec![1.0, 2.0]]),
            Err(MdzError::BadInput(_))
        ));
        let mut c = Compressor::new(MdzConfig::new(ErrorBound::Absolute(-1.0)));
        assert!(matches!(c.compress_buffer(&[vec![1.0]]), Err(MdzError::BadConfig(_))));
    }

    #[test]
    fn corrupted_blocks_error_not_panic() {
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(Method::Vq);
        let mut c = Compressor::new(cfg);
        let block = c.compress_buffer(&lattice_buffer(3, 50, 0.0)).unwrap();
        for cut in [0, 4, block.len() / 2, block.len() - 1] {
            let mut d = Decompressor::new();
            assert!(d.decompress_block(&block[..cut]).is_err(), "cut {cut}");
        }
        let mut bad = block.clone();
        for i in 0..bad.len() {
            bad[i] ^= 0xA5;
            let mut d = Decompressor::new();
            let _ = d.decompress_block(&bad);
            bad[i] ^= 0xA5;
        }
    }

    #[test]
    fn f32_round_trip_within_bound() {
        let snaps_f32: Vec<Vec<f32>> = (0..6)
            .map(|t| (0..200).map(|i| (i % 11) as f32 * 2.5 + t as f32 * 1e-4).collect())
            .collect();
        let eps = 1e-3;
        for m in [Method::Vq, Method::Vqt, Method::Mt, Method::Adaptive] {
            let cfg = MdzConfig::new(ErrorBound::Absolute(eps)).with_method(m);
            let mut c = Compressor::new(cfg);
            let block = c.compress_buffer_f32(&snaps_f32).unwrap();
            let info = Decompressor::inspect(&block).unwrap();
            assert!(info.source_f32);
            let out = Decompressor::new().decompress_block_f32(&block).unwrap();
            for (s, o) in snaps_f32.iter().zip(out.iter()) {
                for (a, b) in s.iter().zip(o.iter()) {
                    // f64 bound + half an f32 ULP of slack.
                    let slack = (a.abs() * 1e-7).max(1e-30) as f64;
                    assert!(
                        (f64::from(*a) - f64::from(*b)).abs() <= eps + slack,
                        "{a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn f32_decoder_rejects_f64_blocks() {
        let snaps = lattice_buffer(3, 50, 0.0);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3));
        let mut c = Compressor::new(cfg);
        let block = c.compress_buffer(&snaps).unwrap();
        assert!(matches!(
            Decompressor::new().decompress_block_f32(&block),
            Err(MdzError::BadInput(_))
        ));
    }

    #[test]
    fn f32_non_finite_round_trip() {
        let mut snaps: Vec<Vec<f32>> = vec![vec![1.0; 20]; 3];
        snaps[1][3] = f32::NAN;
        snaps[2][7] = f32::INFINITY;
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4));
        let mut c = Compressor::new(cfg);
        let block = c.compress_buffer_f32(&snaps).unwrap();
        let out = Decompressor::new().decompress_block_f32(&block).unwrap();
        assert!(out[1][3].is_nan());
        assert!(out[2][7].is_infinite());
    }

    #[test]
    fn inspect_reports_block_metadata() {
        let snaps = lattice_buffer(6, 100, 0.0);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(Method::Vq);
        let mut c = Compressor::new(cfg);
        let block = c.compress_buffer(&snaps).unwrap();
        let info = Decompressor::inspect(&block).unwrap();
        assert_eq!(info.method, Method::Vq);
        assert_eq!(info.n_snapshots, 6);
        assert_eq!(info.n_values, 100);
        assert_eq!(info.eps, 1e-3);
        assert_eq!(info.radius, 512);
        assert!(info.grid.is_some());
        assert!(info.seq2);
        assert!(!info.range_coded);
        assert!(info.payload_bytes > 0 && info.payload_bytes < block.len());
        assert!(Decompressor::inspect(&block[..4]).is_err());
    }

    #[test]
    fn mt2_round_trips_and_wins_on_linear_drift() {
        // Particles moving ballistically: x_t = x_0 + v·t. Second-order
        // prediction is exact; first-order pays |v| per step.
        let mut s = 9u64;
        let n = 400;
        let x0: Vec<f64> = (0..n).map(|i| (i % 10) as f64 * 3.0).collect();
        let v: Vec<f64> = (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.1
            })
            .collect();
        let snaps: Vec<Vec<f64>> = (0..12)
            .map(|t| x0.iter().zip(v.iter()).map(|(&x, &vi)| x + vi * t as f64).collect())
            .collect();
        let size = |method| {
            let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(method);
            check_round_trip(&snaps, cfg).0
        };
        let mt = size(Method::Mt);
        let mt2 = size(Method::Mt2);
        assert!(mt2 < mt / 2, "MT2 {mt2} should crush MT {mt} on ballistic data");
    }

    #[test]
    fn extended_adaptive_picks_mt2_on_ballistic_data() {
        let n = 300;
        let x0: Vec<f64> = (0..n).map(|i| i as f64 * 0.37).collect();
        let snaps: Vec<Vec<f64>> = (0..10)
            .map(|t| {
                x0.iter()
                    .enumerate()
                    .map(|(i, &x)| x + (i % 7) as f64 * 0.02 * t as f64)
                    .collect()
            })
            .collect();
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-5)).with_extended_candidates(true);
        let mut c = Compressor::new(cfg);
        c.compress_buffer(&snaps).unwrap();
        assert_eq!(c.current_adaptive_choice(), Some(Method::Mt2));
    }

    #[test]
    fn mt2_multi_buffer_stream() {
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(Method::Mt2);
        let mut c = Compressor::new(cfg);
        let mut d = Decompressor::new();
        for t in 0..4 {
            let buf: Vec<Vec<f64>> = (0..5)
                .map(|k| (0..100).map(|i| i as f64 + (t * 5 + k) as f64 * 0.01).collect())
                .collect();
            let block = c.compress_buffer(&buf).unwrap();
            let out = d.decompress_block(&block).unwrap();
            for (sn, o) in buf.iter().zip(out.iter()) {
                for (a, b) in sn.iter().zip(o.iter()) {
                    assert!((a - b).abs() <= 1e-4);
                }
            }
        }
    }

    #[test]
    fn range_coded_blocks_round_trip() {
        let snaps = lattice_buffer(8, 200, 1e-4);
        for m in [Method::Vq, Method::Vqt, Method::Mt, Method::Adaptive] {
            let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3))
                .with_method(m)
                .with_entropy(crate::EntropyStage::Range);
            check_round_trip(&snaps, cfg);
        }
    }

    #[test]
    fn range_coding_never_much_worse_than_huffman() {
        let snaps = lattice_buffer(10, 400, 1e-4);
        let size = |entropy| {
            let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3))
                .with_method(Method::Vqt)
                .with_entropy(entropy);
            Compressor::new(cfg).compress_buffer(&snaps).unwrap().len()
        };
        let h = size(crate::EntropyStage::Huffman);
        let r = size(crate::EntropyStage::Range);
        assert!(r <= h + h / 4, "range {r} vs huffman {h}");
    }

    #[test]
    fn random_access_works_with_range_coding() {
        let snaps = lattice_buffer(5, 120, 0.0);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3))
            .with_method(Method::Vq)
            .with_entropy(crate::EntropyStage::Range);
        let mut c = Compressor::new(cfg);
        let block = c.compress_buffer(&snaps).unwrap();
        let full = Decompressor::new().decompress_block(&block).unwrap();
        for (i, want) in full.iter().enumerate() {
            assert_eq!(&Decompressor::decompress_snapshot(&block, i).unwrap(), want);
        }
    }

    #[test]
    fn random_access_matches_full_decompression() {
        let snaps = lattice_buffer(6, 150, 0.0);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(Method::Vq);
        let mut c = Compressor::new(cfg);
        let block = c.compress_buffer(&snaps).unwrap();
        let full = Decompressor::new().decompress_block(&block).unwrap();
        for (i, want) in full.iter().enumerate() {
            let got = Decompressor::decompress_snapshot(&block, i).unwrap();
            assert_eq!(&got, want, "snapshot {i}");
        }
        assert!(Decompressor::decompress_snapshot(&block, 6).is_err());
    }

    #[test]
    fn random_access_on_gridless_vq_block() {
        // Random data → no level grid → Lorenzo fallback, still per-snapshot.
        let mut s = 3u64;
        let snaps: Vec<Vec<f64>> = (0..4)
            .map(|_| {
                (0..100)
                    .map(|_| {
                        s ^= s << 13;
                        s ^= s >> 7;
                        s ^= s << 17;
                        (s >> 11) as f64 / (1u64 << 53) as f64 * 50.0
                    })
                    .collect()
            })
            .collect();
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(Method::Vq);
        let mut c = Compressor::new(cfg);
        let block = c.compress_buffer(&snaps).unwrap();
        let full = Decompressor::new().decompress_block(&block).unwrap();
        let got = Decompressor::decompress_snapshot(&block, 2).unwrap();
        assert_eq!(got, full[2]);
    }

    #[test]
    fn random_access_rejects_time_chained_blocks() {
        let snaps = lattice_buffer(5, 80, 1e-4);
        for m in [Method::Vqt, Method::Mt] {
            let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(m);
            let mut c = Compressor::new(cfg);
            let block = c.compress_buffer(&snaps).unwrap();
            assert!(matches!(
                Decompressor::decompress_snapshot(&block, 0),
                Err(MdzError::BadInput(_))
            ));
        }
    }

    #[test]
    fn adaptive_picks_time_method_on_smooth_data() {
        // Temporally near-constant, spatially random: MT/VQT should win.
        let mut s = 77u64;
        let base: Vec<f64> = (0..400)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 53) as f64 * 50.0
            })
            .collect();
        let snaps: Vec<Vec<f64>> = (0..10)
            .map(|t| base.iter().map(|&v| v + t as f64 * 1e-6).collect())
            .collect();
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4));
        let mut c = Compressor::new(cfg);
        c.compress_buffer(&snaps).unwrap();
        let chosen = c.current_adaptive_choice().unwrap();
        assert!(
            matches!(chosen, Method::Mt | Method::Vqt),
            "expected a time-based method, got {chosen}"
        );
    }

    #[test]
    fn adaptive_picks_vq_on_time_noisy_lattice_data() {
        // Strong levels but large temporal jumps: VQ should win.
        let mut s = 13u64;
        let snaps: Vec<Vec<f64>> = (0..10)
            .map(|_| {
                (0..400)
                    .map(|_| {
                        s ^= s << 13;
                        s ^= s >> 7;
                        s ^= s << 17;
                        let level = (s % 12) as f64;
                        let u = ((s >> 12) % 1000) as f64 / 1000.0 - 0.5;
                        level * 5.0 + u * 0.02
                    })
                    .collect()
            })
            .collect();
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3));
        let mut c = Compressor::new(cfg);
        c.compress_buffer(&snaps).unwrap();
        assert_eq!(c.current_adaptive_choice().unwrap(), Method::Vq);
    }
}
