//! The unified buffer-codec abstraction.
//!
//! Everything that can compress a buffer of snapshots — MDZ itself and the
//! comparison baselines — implements [`Codec`], so harnesses, archives, and
//! CLIs hold a `Box<dyn Codec>` and never special-case MDZ. The error bound
//! is a *per-call* parameter: stateless one-shot callers pass a fixed
//! absolute bound, while streaming callers (the trajectory layer, archives)
//! forward their configured bound buffer by buffer.

use crate::adaptive::Candidate;
use crate::buffer::{Compressor, DecodeLimits, Decompressor};
use crate::format::Method;
use crate::pipeline::parallel::ParallelOptions;
use crate::{ErrorBound, MdzConfig, QuantizerKind, Result};

/// A stateful, error-bounded buffer compressor/decompressor pair.
///
/// Implementations may carry cross-buffer stream state (MDZ's level grid and
/// MT reference snapshot); compressed blocks must then be decompressed in
/// stream order by the same instance. [`Codec::reset`] returns an instance
/// to its freshly-constructed state.
///
/// `Send` is a supertrait so independent streams (e.g. the three axes of a
/// trajectory) can be driven from scoped threads.
pub trait Codec: Send {
    /// Short display name ("VQT", "SZ2", …).
    fn name(&self) -> &'static str;

    /// Drops all cross-buffer stream state.
    fn reset(&mut self);

    /// Compresses one buffer of snapshots under `bound` into a
    /// self-describing block.
    fn compress_buffer(&mut self, snapshots: &[Vec<f64>], bound: ErrorBound) -> Result<Vec<u8>>;

    /// Decompresses one block produced by this codec.
    fn decompress_buffer(&mut self, block: &[u8]) -> Result<Vec<Vec<f64>>>;
}

impl<C: Codec + ?Sized> Codec for Box<C> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn reset(&mut self) {
        (**self).reset();
    }

    fn compress_buffer(&mut self, snapshots: &[Vec<f64>], bound: ErrorBound) -> Result<Vec<u8>> {
        (**self).compress_buffer(snapshots, bound)
    }

    fn decompress_buffer(&mut self, block: &[u8]) -> Result<Vec<Vec<f64>>> {
        (**self).decompress_buffer(block)
    }
}

/// MDZ behind the [`Codec`] interface.
///
/// Owns a [`Compressor`]/[`Decompressor`] pair built from a template
/// configuration. The template's `bound` is a placeholder: every
/// [`Codec::compress_buffer`] call installs its own bound first.
pub struct MdzCodec {
    name: &'static str,
    template: MdzConfig,
    comp: Compressor,
    dec: Decompressor,
    par: ParallelOptions,
}

impl MdzCodec {
    /// Wraps a configuration, deriving the display name from its method and
    /// quantizer stage (a `+BA` tag marks bit-adaptive compositions).
    pub fn from_config(cfg: MdzConfig) -> Self {
        let ba = matches!(cfg.quantizer, QuantizerKind::BitAdaptive { .. })
            || (cfg.method == Method::Adaptive && cfg.bit_adaptive_candidates);
        let name = match (cfg.method, cfg.extended_candidates, ba) {
            (Method::Vq, _, false) => "VQ",
            (Method::Vq, _, true) => "VQ+BA",
            (Method::Vqt, _, false) => "VQT",
            (Method::Vqt, _, true) => "VQT+BA",
            (Method::Mt, _, false) => "MT",
            (Method::Mt, _, true) => "MT+BA",
            (Method::Mt2, _, false) => "MT2",
            (Method::Mt2, _, true) => "MT2+BA",
            (Method::Adaptive, false, false) => "MDZ (Adaptive)",
            (Method::Adaptive, false, true) => "MDZ (Adaptive+BA)",
            (Method::Adaptive, true, false) => "MDZ+ (extended)",
            (Method::Adaptive, true, true) => "MDZ+ (extended+BA)",
        };
        Self::with_name(name, cfg)
    }

    /// Wraps a configuration under an explicit display name.
    pub fn with_name(name: &'static str, cfg: MdzConfig) -> Self {
        Self {
            name,
            comp: Compressor::new(cfg.clone()),
            dec: Decompressor::new(),
            template: cfg,
            par: ParallelOptions::serial(),
        }
    }

    /// The template configuration this codec was built from.
    pub fn config(&self) -> &MdzConfig {
        &self.template
    }

    /// The concrete method the adaptive selector is currently using, if any
    /// trial has run yet.
    pub fn current_adaptive_choice(&self) -> Option<Method> {
        self.comp.current_adaptive_choice()
    }

    /// The full (method, quantizer) composition the adaptive selector is
    /// currently using, if any trial has run yet.
    pub fn current_adaptive_candidate(&self) -> Option<Candidate> {
        self.comp.current_adaptive_candidate()
    }

    /// Installs a decode budget on the decompression side; blocks whose
    /// headers exceed it fail with [`crate::MdzError::LimitExceeded`].
    /// Survives [`Codec::reset`].
    pub fn with_decode_limits(mut self, limits: DecodeLimits) -> Self {
        self.dec.set_limits(limits);
        self
    }

    /// Replaces the decode budget applied to subsequent blocks.
    pub fn set_decode_limits(&mut self, limits: DecodeLimits) {
        self.dec.set_limits(limits);
    }

    /// Installs a worker configuration used by the batch APIs
    /// ([`MdzCodec::compress_buffers`] / [`MdzCodec::decompress_buffers`]).
    /// Output is byte-identical for every worker count; survives
    /// [`Codec::reset`].
    pub fn with_parallelism(mut self, par: ParallelOptions) -> Self {
        self.par = par;
        self
    }

    /// Replaces the worker configuration applied to subsequent batch calls.
    pub fn set_parallelism(&mut self, par: ParallelOptions) {
        self.par = par;
    }

    /// The worker configuration currently in force.
    pub fn parallelism(&self) -> ParallelOptions {
        self.par
    }

    /// Compresses an ordered batch of buffers under `bound`, fanning
    /// independent blocks across the configured workers.
    ///
    /// Blocks are byte-identical to calling [`Codec::compress_buffer`] on
    /// each buffer in order. On error the codec's stream state is
    /// unspecified — [`Codec::reset`] before reuse.
    pub fn compress_buffers(
        &mut self,
        buffers: &[&[Vec<f64>]],
        bound: ErrorBound,
    ) -> Result<Vec<Vec<u8>>> {
        self.comp.set_bound(bound);
        self.comp.compress_buffers_parallel(buffers, &self.par)
    }

    /// Decompresses an ordered batch of blocks, fanning independent blocks
    /// across the configured workers.
    ///
    /// Results match calling [`Codec::decompress_buffer`] on each block in
    /// order. On error the codec's stream state is unspecified —
    /// [`Codec::reset`] before reuse.
    pub fn decompress_buffers(&mut self, blocks: &[&[u8]]) -> Result<Vec<Vec<Vec<f64>>>> {
        self.dec.decompress_blocks_parallel(blocks, &self.par)
    }
}

impl Default for MdzCodec {
    /// A paper-default adaptive codec. The placeholder bound is never used:
    /// compression through [`Codec`] always receives a per-call bound, and
    /// decompression reads the bound from each block header.
    fn default() -> Self {
        Self::from_config(MdzConfig::new(ErrorBound::Absolute(1e-3)))
    }
}

impl Codec for MdzCodec {
    fn name(&self) -> &'static str {
        self.name
    }

    fn reset(&mut self) {
        self.comp = Compressor::new(self.template.clone());
        self.dec = Decompressor::with_limits(self.dec.limits());
    }

    fn compress_buffer(&mut self, snapshots: &[Vec<f64>], bound: ErrorBound) -> Result<Vec<u8>> {
        self.comp.set_bound(bound);
        self.comp.compress_buffer(snapshots)
    }

    fn decompress_buffer(&mut self, block: &[u8]) -> Result<Vec<Vec<f64>>> {
        self.dec.decompress_block(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lattice(m: usize, n: usize) -> Vec<Vec<f64>> {
        (0..m).map(|t| (0..n).map(|i| (i % 8) as f64 * 2.0 + t as f64 * 1e-4).collect()).collect()
    }

    #[test]
    fn codec_matches_direct_compressor_bytes() {
        let snaps = lattice(6, 150);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(Method::Vqt);
        let want = Compressor::new(cfg.clone()).compress_buffer(&snaps).unwrap();
        let mut codec = MdzCodec::from_config(cfg);
        let got = codec.compress_buffer(&snaps, ErrorBound::Absolute(1e-3)).unwrap();
        assert_eq!(got, want);
        let out = codec.decompress_buffer(&got).unwrap();
        assert_eq!(out.len(), snaps.len());
    }

    #[test]
    fn per_call_bound_overrides_template() {
        let snaps = lattice(4, 100);
        let mut codec = MdzCodec::from_config(
            MdzConfig::new(ErrorBound::Absolute(1.0)).with_method(Method::Vq),
        );
        let block = codec.compress_buffer(&snaps, ErrorBound::Absolute(1e-6)).unwrap();
        assert_eq!(Decompressor::inspect(&block).unwrap().eps, 1e-6);
    }

    #[test]
    fn reset_drops_stream_state() {
        let mut codec = MdzCodec::from_config(
            MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(Method::Mt),
        );
        let bound = ErrorBound::Absolute(1e-4);
        let b0 = codec.compress_buffer(&lattice(3, 80), bound).unwrap();
        let _b1 = codec.compress_buffer(&lattice(3, 80), bound).unwrap();
        codec.reset();
        // After reset the codec re-emits a self-starting first block.
        let b0_again = codec.compress_buffer(&lattice(3, 80), bound).unwrap();
        assert_eq!(b0, b0_again);
        assert_eq!(codec.name(), "MT");
    }

    #[test]
    fn names_follow_method() {
        let mk = |cfg: MdzConfig| MdzCodec::from_config(cfg).name;
        let base = MdzConfig::new(ErrorBound::Absolute(1e-3));
        assert_eq!(mk(base.clone().with_method(Method::Vq)), "VQ");
        assert_eq!(mk(base.clone().with_method(Method::Mt2)), "MT2");
        assert_eq!(mk(base.clone()), "MDZ (Adaptive)");
        assert_eq!(mk(base.with_extended_candidates(true)), "MDZ+ (extended)");
    }
}
