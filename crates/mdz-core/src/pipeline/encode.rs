//! Encode stage: prediction, quantization, interleaving, entropy coding,
//! and block assembly, writing into caller-owned buffers.
//!
//! The only entry point is [`encode_buffer_into`], which encodes one buffer
//! with a concrete (method, quantizer) composition and reports the state
//! transition as a [`StateDelta`] for the caller to commit (adaptive trials
//! discard the deltas of losing candidates). The pipeline is assembled from
//! the stage traits in [`crate::stage`] — the quantizer is a generic
//! [`Quantizer`] parameter (monomorphized, so the fixed-scale hot loop costs
//! nothing), and the entropy/lossless stages are the trait objects owned by
//! [`EncodeScratch`]. All intermediate storage lives in [`EncodeScratch`],
//! so a warmed-up compressor re-encoding same-shaped buffers performs no
//! heap allocation here (bit-adaptive width tables excepted).

use crate::format::{
    BlockHeader, Method, FLAG_FIRST_LORENZO, FLAG_GRID, FLAG_RANGE_CODED, FLAG_SEQ2,
};
use crate::quant::{BitAdaptiveQuantizer, LinearQuantizer, Quantized};
use crate::seq::to_seq2_into;
use crate::stage::{HuffmanStage, LosslessStage, Lz77Stage, Quantizer, RangeStage};
use crate::{EntropyStage, MdzConfig, QuantizerKind, Result};
use mdz_entropy::kernel::SimdLevel;
use mdz_entropy::{write_uvarint, zigzag_encode};
use mdz_kmeans::{detect_levels, LevelGrid, SelectConfig};
use mdz_obs::Obs;

use super::predict::{snapshot_modes_into, Predictor, SnapshotMode};
use super::{CoreState, StateDelta};

/// Level indices beyond this magnitude escape (guards λ → 0 blowups).
const MAX_LEVEL_MAG: f64 = (1u64 << 40) as f64;

/// Reusable encode-side working storage, owned by a
/// [`Compressor`](super::Compressor).
///
/// Every vector is cleared (never shrunk) between buffers, so steady-state
/// compression of same-shaped buffers runs allocation-free; the
/// `alloc_free` integration test locks this in. The entropy and lossless
/// stages live here too, carrying their own scratch.
#[derive(Debug, Clone, Default)]
pub(crate) struct EncodeScratch {
    modes: Vec<SnapshotMode>,
    b_codes: Vec<u32>,
    j_codes: Vec<u32>,
    b_ordered: Vec<u32>,
    j_ordered: Vec<u32>,
    escapes: Vec<(usize, f64)>,
    /// Rounded VQ level indices, one per value, for the vectorized sweep.
    lf: Vec<f64>,
    /// VQ level predictions matching `lf`, for the vectorized sweep.
    vq_pred: Vec<f64>,
    recon_prev: Vec<f64>,
    recon_prev2: Vec<f64>,
    recon_cur: Vec<f64>,
    recon_first: Vec<f64>,
    extrapolated: Vec<f64>,
    inner: Vec<u8>,
    payload: Vec<u8>,
    huffman: HuffmanStage,
    range: RangeStage,
    lz77: Lz77Stage,
}

/// Resolves the configured error bound against one buffer's value range.
fn resolve_eps(cfg: &MdzConfig, snapshots: &[Vec<f64>]) -> f64 {
    let mut all_min = f64::INFINITY;
    let mut all_max = f64::NEG_INFINITY;
    for s in snapshots {
        for &v in s {
            if v < all_min {
                all_min = v;
            }
            if v > all_max {
                all_max = v;
            }
        }
    }
    match cfg.bound {
        crate::ErrorBound::Absolute(e) => e,
        crate::ErrorBound::ValueRangeRelative(r) => {
            let range = all_max - all_min;
            if range > 0.0 && range.is_finite() {
                r * range
            } else {
                1e-300
            }
        }
    }
}

/// Encodes one buffer with a concrete (method, quantizer) composition into
/// `out` (cleared first), returning the state transition for the caller to
/// commit.
///
/// `obs` records per-stage timings (`core.encode.*_seconds`) and pipeline
/// counters; pass a no-op handle to skip all measurement.
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode_buffer_into(
    cfg: &MdzConfig,
    state: &CoreState,
    method: Method,
    quantizer: QuantizerKind,
    snapshots: &[Vec<f64>],
    out: &mut Vec<u8>,
    scratch: &mut EncodeScratch,
    obs: &Obs,
) -> Result<StateDelta> {
    let eps = resolve_eps(cfg, snapshots);
    match quantizer {
        QuantizerKind::Linear => {
            let quant = LinearQuantizer::new(eps, cfg.radius);
            encode_with(cfg, state, method, &quant, snapshots, out, scratch, obs)
        }
        QuantizerKind::BitAdaptive { chunk } => {
            let quant = BitAdaptiveQuantizer::new(eps, chunk);
            encode_with(cfg, state, method, &quant, snapshots, out, scratch, obs)
        }
    }
}

/// The composition body, monomorphized per quantizer.
#[allow(clippy::too_many_arguments)]
fn encode_with<Q: Quantizer>(
    cfg: &MdzConfig,
    state: &CoreState,
    method: Method,
    quant: &Q,
    snapshots: &[Vec<f64>],
    out: &mut Vec<u8>,
    scratch: &mut EncodeScratch,
    obs: &Obs,
) -> Result<StateDelta> {
    let m = snapshots.len();
    let n = snapshots[0].len();
    let EncodeScratch {
        modes,
        b_codes,
        j_codes,
        b_ordered,
        j_ordered,
        escapes,
        lf,
        vq_pred,
        recon_prev,
        recon_prev2,
        recon_cur,
        recon_first,
        extrapolated,
        inner,
        payload,
        huffman,
        range,
        lz77: lossless,
    } = scratch;
    let mut delta = StateDelta::default();
    let eps = quant.eps();

    // SIMD dispatch, captured once per buffer so a concurrent force-scalar
    // toggle cannot split one buffer across strategies. The vector kernels
    // need a per-value linear quantizer and a radius the packed i32
    // conversion handles exactly; anything else keeps the scalar oracle.
    let simd = crate::kernel::active_level();
    let lin: Option<LinearQuantizer> = if simd == crate::kernel::SimdLevel::Scalar {
        None
    } else {
        quant.as_linear().filter(crate::simd::eligible)
    };
    obs.incr(
        match (simd, lin.is_some()) {
            (crate::kernel::SimdLevel::Avx2, true) => "core.encode.kernel.avx2",
            (crate::kernel::SimdLevel::Sse41, true) => "core.encode.kernel.sse41",
            (crate::kernel::SimdLevel::Neon, true) => "core.encode.kernel.neon",
            _ => "core.encode.kernel.scalar",
        },
        1,
    );

    // Level grid: detect once per stream, from the first snapshot seen by a
    // VQ-family method (the paper computes F once, on the first snapshot).
    let grid: Option<LevelGrid> =
        if matches!(method, Method::Vq | Method::Vqt) && state.grid.is_none() {
            let sel = SelectConfig {
                max_k: cfg.max_levels,
                sample_fraction: cfg.level_sample_fraction,
                ..Default::default()
            };
            let detected = detect_levels(&snapshots[0], &sel);
            obs.incr("core.grid.detect_runs", 1);
            if detected.is_some() {
                obs.incr("core.grid.detected", 1);
            }
            delta.grid = Some(detected);
            detected
        } else {
            state.grid.flatten()
        };
    let have_ref = state.reference.as_ref().is_some_and(|r| r.len() == n);
    snapshot_modes_into(method, m, grid.is_some(), have_ref, modes);

    b_codes.clear();
    b_codes.reserve(m * n);
    j_codes.clear();
    escapes.clear();
    recon_prev.clear();
    recon_prev.resize(n, 0.0);
    recon_prev2.clear();
    recon_prev2.resize(n, 0.0);
    recon_cur.clear();
    recon_cur.resize(n, 0.0);
    recon_first.clear();

    // Prediction and quantization are one fused loop in this pipeline
    // (each value is predicted and immediately quantized against the
    // prediction), so they are timed as a single stage.
    let predict_quantize = obs.span("core.encode.predict_quantize_seconds");
    for (s_idx, snap) in snapshots.iter().enumerate() {
        let mode = modes[s_idx];
        match mode {
            SnapshotMode::VqGrid => {
                let g = grid.expect("mode implies grid");
                encode_vq_snapshot(
                    quant,
                    &g,
                    snap,
                    s_idx * n,
                    b_codes,
                    j_codes,
                    escapes,
                    recon_cur,
                    (lf, vq_pred),
                    (lin, simd),
                )
            }
            SnapshotMode::Lorenzo => encode_predicted_snapshot(
                quant,
                snap,
                s_idx * n,
                Predictor::Lorenzo,
                b_codes,
                escapes,
                recon_cur,
                (lin, simd),
            ),
            SnapshotMode::TimePrev => encode_predicted_snapshot(
                quant,
                snap,
                s_idx * n,
                Predictor::Slice(recon_prev.as_slice()),
                b_codes,
                escapes,
                recon_cur,
                (lin, simd),
            ),
            SnapshotMode::TimePrev2 => {
                extrapolated.clear();
                extrapolated
                    .extend(recon_prev.iter().zip(recon_prev2.iter()).map(|(&a, &b)| 2.0 * a - b));
                encode_predicted_snapshot(
                    quant,
                    snap,
                    s_idx * n,
                    Predictor::Slice(extrapolated.as_slice()),
                    b_codes,
                    escapes,
                    recon_cur,
                    (lin, simd),
                )
            }
            SnapshotMode::TimeRef => encode_predicted_snapshot(
                quant,
                snap,
                s_idx * n,
                Predictor::Slice(state.reference.as_deref().expect("mode implies ref")),
                b_codes,
                escapes,
                recon_cur,
                (lin, simd),
            ),
        }
        if s_idx == 0 {
            recon_first.extend_from_slice(recon_cur);
        }
        std::mem::swap(recon_prev2, recon_prev);
        std::mem::swap(recon_prev, recon_cur);
    }
    predict_quantize.finish();
    obs.incr("core.encode.buffers", 1);
    obs.incr("core.encode.values", (m * n) as u64);
    obs.incr("core.encode.escapes", escapes.len() as u64);

    // Reference-update rule (mirrored by the decompressor). The clone
    // happens at most once per stream — steady state stays allocation-free.
    if state.reference.as_ref().is_none_or(|r| r.len() != n) {
        delta.reference = Some(recon_first.clone());
    }

    // Interleave, entropy-code, assemble.
    let seq2 = cfg.seq2 && m > 1;
    let b_ord: &[u32] = if seq2 {
        to_seq2_into(b_codes, m, n, b_ordered);
        b_ordered
    } else {
        b_codes
    };
    let vq_rows = modes.iter().filter(|&&md| md == SnapshotMode::VqGrid).count();
    let j_ord: &[u32] = if seq2 && vq_rows > 1 {
        to_seq2_into(j_codes, vq_rows, n, j_ordered);
        j_ordered
    } else {
        j_codes
    };

    inner.clear();
    let entropy_stage: &mut dyn crate::stage::EntropyStage = match cfg.entropy {
        EntropyStage::Huffman => huffman,
        EntropyStage::Range => range,
    };
    let entropy = obs.span("core.encode.entropy_seconds");
    // The quantizer owns the wire representation of its code stream: the
    // fixed-scale quantizer routes through the entropy stage unchanged, the
    // bit-adaptive one writes its width-table packing instead. The J stream
    // (level-index deltas) is always entropy-coded.
    quant.encode_codes(b_ord, entropy_stage, inner);
    entropy_stage.encode_into(j_ord, inner);
    entropy.finish();
    write_uvarint(inner, escapes.len() as u64);
    let mut prev_idx = 0u64;
    for (i, &(idx, v)) in escapes.iter().enumerate() {
        let delta_idx = if i == 0 { idx as u64 } else { idx as u64 - prev_idx };
        write_uvarint(inner, delta_idx);
        inner.extend_from_slice(&v.to_le_bytes());
        prev_idx = idx as u64;
    }

    payload.clear();
    {
        let _t = obs.span("core.encode.lossless_seconds");
        lossless.compress_into(inner, payload);
    }
    let mut flags = quant.wire_flags();
    let grid_used = matches!(method, Method::Vq | Method::Vqt) && grid.is_some();
    if grid_used {
        flags |= FLAG_GRID;
    }
    if seq2 {
        flags |= FLAG_SEQ2;
    }
    if modes[0] == SnapshotMode::Lorenzo && matches!(method, Method::Mt | Method::Mt2) {
        flags |= FLAG_FIRST_LORENZO;
    }
    if cfg.entropy == EntropyStage::Range {
        flags |= FLAG_RANGE_CODED;
    }
    let header = BlockHeader {
        method,
        flags,
        n_snapshots: m,
        n_values: n,
        eps,
        radius: quant.wire_radius(),
        grid: grid_used.then(|| {
            let g = grid.expect("grid_used implies grid");
            (g.mu, g.lambda)
        }),
    };
    out.clear();
    header.write(out);
    write_uvarint(out, payload.len() as u64);
    out.extend_from_slice(payload);
    Ok(delta)
}

/// Encodes a snapshot under value prediction, writing codes/escapes and the
/// reconstruction.
///
/// `kernel` is the `(linear quantizer, dispatch level)` pair captured once
/// per buffer: when the quantizer is per-value linear and the predictions
/// are a precomputed slice (every time predictor; Lorenzo's serial
/// `recon[i-1]` chain is inherently scalar), the vectorized sweep runs and
/// the escape list is rebuilt from its in-band zero codes. Output is
/// byte-identical either way.
#[allow(clippy::too_many_arguments)]
fn encode_predicted_snapshot<Q: Quantizer>(
    quant: &Q,
    snap: &[f64],
    flat_base: usize,
    source: Predictor<'_>,
    b_codes: &mut Vec<u32>,
    escapes: &mut Vec<(usize, f64)>,
    recon: &mut [f64],
    kernel: (Option<LinearQuantizer>, SimdLevel),
) {
    if let (Some(lin), &Predictor::Slice(preds)) = (kernel.0, &source) {
        let start = b_codes.len();
        crate::simd::quantize_predicted(&lin, snap, preds, b_codes, recon, kernel.1);
        for (i, &c) in b_codes[start..].iter().enumerate() {
            if c == 0 {
                escapes.push((flat_base + i, snap[i]));
            }
        }
        return;
    }
    for (i, &d) in snap.iter().enumerate() {
        let pred = source.predict(recon, i);
        match quant.quantize(d, pred, &mut recon[i]) {
            Quantized::Code(c) => b_codes.push(c),
            Quantized::Escape => {
                b_codes.push(0);
                escapes.push((flat_base + i, d));
            }
        }
    }
}

/// Encodes a snapshot with VQ level prediction, emitting level-delta codes.
///
/// With a usable kernel the float work (level rounding, level prediction,
/// quantization) runs vectorized into per-value arrays, and a scalar sweep
/// then replays the serial integer chain — zigzag level deltas against
/// `prev_level`, which only advances on non-escaped values — exactly as the
/// fused scalar loop would. Output is byte-identical either way.
#[allow(clippy::too_many_arguments)]
fn encode_vq_snapshot<Q: Quantizer>(
    quant: &Q,
    grid: &LevelGrid,
    snap: &[f64],
    flat_base: usize,
    b_codes: &mut Vec<u32>,
    j_codes: &mut Vec<u32>,
    escapes: &mut Vec<(usize, f64)>,
    recon: &mut [f64],
    scratch: (&mut Vec<f64>, &mut Vec<f64>),
    kernel: (Option<LinearQuantizer>, SimdLevel),
) {
    if let Some(lin) = kernel.0 {
        let (lf_scratch, pred_scratch) = scratch;
        let n = snap.len();
        lf_scratch.clear();
        lf_scratch.resize(n, 0.0);
        pred_scratch.clear();
        pred_scratch.resize(n, 0.0);
        crate::simd::vq_levels(grid.mu, grid.lambda, snap, lf_scratch, pred_scratch, kernel.1);
        let start = b_codes.len();
        crate::simd::quantize_predicted(&lin, snap, pred_scratch, b_codes, recon, kernel.1);
        let codes = &mut b_codes[start..];
        let mut prev_level = 0i64;
        for i in 0..n {
            let d = snap[i];
            let lfv = lf_scratch[i];
            let quant_escape = codes[i] == 0;
            if !lfv.is_finite() || lfv.abs() > MAX_LEVEL_MAG {
                // The kernel quantized against a garbage prediction here;
                // discard its lane entirely, as the scalar loop never
                // reaches the quantizer for these values.
                codes[i] = 0;
                j_codes.push(zigzag_encode(0) as u32);
                escapes.push((flat_base + i, d));
                recon[i] = d;
                continue;
            }
            let level = lfv as i64;
            let zz = zigzag_encode(level - prev_level);
            if zz > u64::from(u32::MAX) {
                codes[i] = 0;
                j_codes.push(zigzag_encode(0) as u32);
                escapes.push((flat_base + i, d));
                recon[i] = d;
                continue;
            }
            if quant_escape {
                // recon[i] already holds `d` from the kernel's escape lane.
                j_codes.push(zigzag_encode(0) as u32);
                escapes.push((flat_base + i, d));
                continue;
            }
            j_codes.push(zz as u32);
            prev_level = level;
        }
        return;
    }
    let mut prev_level = 0i64;
    for (i, &d) in snap.iter().enumerate() {
        let mut escape = |recon_slot: &mut f64, b: &mut Vec<u32>, j: &mut Vec<u32>| {
            b.push(0);
            j.push(zigzag_encode(0) as u32);
            escapes.push((flat_base + i, d));
            *recon_slot = d;
        };
        let lf = ((d - grid.mu) / grid.lambda).round();
        if !lf.is_finite() || lf.abs() > MAX_LEVEL_MAG {
            escape(&mut recon[i], b_codes, j_codes);
            continue;
        }
        let level = lf as i64;
        let delta = level - prev_level;
        let zz = zigzag_encode(delta);
        if zz > u64::from(u32::MAX) {
            escape(&mut recon[i], b_codes, j_codes);
            continue;
        }
        let pred = grid.value_of(level);
        match quant.quantize(d, pred, &mut recon[i]) {
            Quantized::Code(c) => {
                b_codes.push(c);
                j_codes.push(zz as u32);
                prev_level = level;
            }
            Quantized::Escape => escape(&mut recon[i], b_codes, j_codes),
        }
    }
}
