//! Snapshot prediction: the mode plan and the value predictor shared by the
//! encode and decode stages.
//!
//! ## Prediction-parity invariant
//!
//! The encoder and decoder must compute *bit-identical* predictions, or the
//! error bound silently breaks. Both sides therefore funnel every non-VQ
//! prediction through [`Predictor::predict`]: the encoder hands it the
//! in-progress reconstruction, the decoder hands it the snapshot being
//! rebuilt, and the arithmetic (including the two-step extrapolation for
//! [`SnapshotMode::TimePrev2`], which is materialized into a slice before
//! prediction on both sides) lives in exactly one place.

use crate::format::Method;

/// How each snapshot within a buffer is predicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SnapshotMode {
    /// Level-centroid prediction via the grid; emits J codes.
    VqGrid,
    /// In-snapshot previous-value prediction (first value predicted as 0).
    Lorenzo,
    /// Same index in the previous snapshot's reconstruction.
    TimePrev,
    /// Linear extrapolation from the two previous reconstructions.
    TimePrev2,
    /// Same index in the stream's reference (initial) snapshot.
    TimeRef,
}

/// Where a plain (non-VQ) snapshot gets its predictions.
///
/// `recon` in [`Predictor::predict`] is the snapshot currently being
/// reconstructed — the encoder's reconstruction buffer or the decoder's
/// output snapshot; only [`Predictor::Lorenzo`] reads it, and only at
/// already-finalized indices (`i - 1`).
pub(crate) enum Predictor<'a> {
    /// Previous reconstructed value within the same snapshot.
    Lorenzo,
    /// A fixed slice: previous snapshot, two-step extrapolation, or the
    /// stream reference.
    Slice(&'a [f64]),
}

impl Predictor<'_> {
    /// The prediction for value `i` of the current snapshot.
    #[inline]
    pub(crate) fn predict(&self, recon: &[f64], i: usize) -> f64 {
        match self {
            Predictor::Lorenzo => {
                if i == 0 {
                    0.0
                } else {
                    recon[i - 1]
                }
            }
            Predictor::Slice(s) => s[i],
        }
    }
}

/// Resolves the per-snapshot prediction modes for a buffer, writing into a
/// caller-owned vector (cleared first).
pub(crate) fn snapshot_modes_into(
    method: Method,
    n_snapshots: usize,
    grid: bool,
    have_ref: bool,
    modes: &mut Vec<SnapshotMode>,
) {
    let first = match method {
        Method::Vq | Method::Vqt => {
            if grid {
                SnapshotMode::VqGrid
            } else {
                SnapshotMode::Lorenzo
            }
        }
        Method::Mt | Method::Mt2 => {
            if have_ref {
                SnapshotMode::TimeRef
            } else {
                SnapshotMode::Lorenzo
            }
        }
        Method::Adaptive => unreachable!("resolved before encoding"),
    };
    modes.clear();
    modes.push(first);
    match method {
        Method::Vq => modes.extend(std::iter::repeat_n(first, n_snapshots.saturating_sub(1))),
        Method::Mt2 => {
            // Second snapshot has only one predecessor; extrapolate after.
            if n_snapshots > 1 {
                modes.push(SnapshotMode::TimePrev);
            }
            modes.extend(std::iter::repeat_n(
                SnapshotMode::TimePrev2,
                n_snapshots.saturating_sub(2),
            ));
        }
        _ => {
            modes.extend(std::iter::repeat_n(SnapshotMode::TimePrev, n_snapshots.saturating_sub(1)))
        }
    }
}
