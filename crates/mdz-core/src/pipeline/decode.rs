//! Decode stage: entropy decoding, de-interleaving, and reconstruction.
//!
//! Mirrors the encode stage exactly — per-snapshot modes are re-derived from
//! the block header and every prediction goes through the shared
//! [`Predictor`], so encoder and decoder cannot drift apart. The quantizer
//! and entropy stages are rebuilt from the header flags ([`HeaderQuantizer`],
//! [`HeaderEntropy`]) and the body is generic over
//! [`Quantizer`](crate::stage::Quantizer), so linear and bit-adaptive blocks
//! share one reconstruction path. Streaming decompression reuses
//! [`DecodeScratch`]; the random-access path ([`decode_inner_one`]) is cold
//! and allocates freely.

use crate::format::{
    BlockHeader, Method, FLAG_BIT_ADAPTIVE, FLAG_FIRST_LORENZO, FLAG_RANGE_CODED, FLAG_SEQ2,
};
use crate::quant::{BitAdaptiveQuantizer, LinearQuantizer};
use crate::seq::from_seq2_into;
use crate::stage::{EntropyStage, HuffmanStage, Quantizer, RangeStage};
use crate::{MdzError, Result};
use mdz_entropy::{read_uvarint, zigzag_decode, StreamLimits};
use mdz_kmeans::LevelGrid;
use std::collections::HashMap;

use super::predict::{snapshot_modes_into, Predictor, SnapshotMode};

/// Bytes one serialized escape costs at minimum: a ≥1-byte index delta
/// varint plus the 8-byte raw `f64` value. Bounds the escape count by the
/// remaining input.
const MIN_ESCAPE_BYTES: usize = 9;

/// Reusable decode-side working storage, owned by a
/// [`Decompressor`](super::Decompressor).
#[derive(Debug, Clone, Default)]
pub(crate) struct DecodeScratch {
    /// LZ77-decompressed inner payload.
    pub(crate) inner: Vec<u8>,
    modes: Vec<SnapshotMode>,
    b_ordered: Vec<u32>,
    j_ordered: Vec<u32>,
    b_codes: Vec<u32>,
    j_codes: Vec<u32>,
    escapes: HashMap<usize, f64>,
    extrapolated: Vec<f64>,
}

/// The quantizer stage a parsed header declares, rebuilt decoder-side.
///
/// Dispatching once here keeps the per-value reconstruction loops
/// monomorphized over the concrete quantizer instead of paying a virtual
/// call per value.
enum HeaderQuantizer {
    /// Classic fixed `[1, 2·radius)` scale (format version 1).
    Linear(LinearQuantizer),
    /// Per-chunk bit widths (format version 2; the chunk size itself
    /// travels inside the B stream, so the header only fixes `eps` and the
    /// escape radius).
    BitAdaptive(BitAdaptiveQuantizer),
}

impl HeaderQuantizer {
    fn from_header(header: &BlockHeader) -> Self {
        if header.flags & FLAG_BIT_ADAPTIVE != 0 {
            // The chunk size passed here is irrelevant: `decode_codes` reads
            // the authoritative chunk size from the stream itself.
            HeaderQuantizer::BitAdaptive(BitAdaptiveQuantizer::with_wire_radius(
                header.eps,
                header.radius,
                BitAdaptiveQuantizer::DEFAULT_CHUNK,
            ))
        } else {
            HeaderQuantizer::Linear(LinearQuantizer::new(header.eps, header.radius))
        }
    }
}

/// The entropy stage a parsed header declares.
enum HeaderEntropy {
    /// Canonical Huffman coding.
    Huffman(HuffmanStage),
    /// Static range coding ([`FLAG_RANGE_CODED`]).
    Range(RangeStage),
}

impl HeaderEntropy {
    fn from_header(header: &BlockHeader) -> Self {
        if header.flags & FLAG_RANGE_CODED != 0 {
            HeaderEntropy::Range(RangeStage::default())
        } else {
            HeaderEntropy::Huffman(HuffmanStage::default())
        }
    }

    fn as_dyn(&mut self) -> &mut dyn EntropyStage {
        match self {
            HeaderEntropy::Huffman(s) => s,
            HeaderEntropy::Range(s) => s,
        }
    }
}

/// Rejects quantization codes outside the quantizer's code space.
///
/// Valid codes live in `[0, space)` — 0 is the escape marker, everything
/// else maps to an in-bound residual. A code past the space can only come
/// from corruption; reconstructing from it would silently violate the error
/// bound. The space comes from [`Quantizer::code_space`], never re-derived
/// from the raw header radius.
fn check_codes(codes: &[u32], space: u64) -> Result<()> {
    if codes.iter().any(|&c| u64::from(c) >= space) {
        return Err(MdzError::Corrupt { what: "quantization code out of range" });
    }
    Ok(())
}

/// Rejects escape counts the block could not legitimately contain: more
/// escapes than block values, or more than the remaining input bytes could
/// serialize (each escape costs ≥ [`MIN_ESCAPE_BYTES`]).
fn check_escape_count(count: usize, block_values: usize, remaining: usize) -> Result<()> {
    if count > block_values {
        return Err(MdzError::Corrupt { what: "escape count exceeds block size" });
    }
    if count > remaining / MIN_ESCAPE_BYTES {
        return Err(MdzError::Corrupt { what: "escape count exceeds input size" });
    }
    Ok(())
}

/// Decodes exactly one snapshot of a VQ block's inner payload.
///
/// The entropy streams are sequential and must be decoded in full, but only
/// the requested snapshot's values are dequantized and reconstructed.
pub(crate) fn decode_inner_one(
    header: &BlockHeader,
    inner: &[u8],
    index: usize,
) -> Result<Vec<f64>> {
    match HeaderQuantizer::from_header(header) {
        HeaderQuantizer::Linear(q) => decode_inner_one_with(header, inner, index, &q),
        HeaderQuantizer::BitAdaptive(q) => decode_inner_one_with(header, inner, index, &q),
    }
}

/// [`decode_inner_one`] monomorphized over the header's quantizer stage.
fn decode_inner_one_with<Q: Quantizer>(
    header: &BlockHeader,
    inner: &[u8],
    index: usize,
    quant: &Q,
) -> Result<Vec<f64>> {
    let m = header.n_snapshots;
    let n = header.n_values;
    let stream_limits = StreamLimits::with_max_items(m * n);
    let mut entropy = HeaderEntropy::from_header(header);
    let mut pos = 0;
    let mut b_ordered = Vec::new();
    quant.decode_codes(inner, &mut pos, entropy.as_dyn(), &mut b_ordered, &stream_limits)?;
    let mut j_ordered = Vec::new();
    entropy.as_dyn().decode_at_into(inner, &mut pos, &mut j_ordered, &stream_limits)?;
    if b_ordered.len() != m * n {
        return Err(MdzError::Corrupt { what: "quantization code count mismatch" });
    }
    check_codes(&b_ordered, quant.code_space())?;
    let grid = header.grid.map(|(mu, lambda)| LevelGrid { mu, lambda, k: 0, fit_error: 0.0 });
    let expect_j = if grid.is_some() { m * n } else { 0 };
    if j_ordered.len() != expect_j {
        return Err(MdzError::Corrupt { what: "level code count mismatch" });
    }
    // Escapes for this snapshot only.
    let escape_count = read_uvarint(inner, &mut pos)? as usize;
    check_escape_count(escape_count, m * n, inner.len().saturating_sub(pos))?;
    let mut escapes: HashMap<usize, f64> = HashMap::new();
    let mut idx = 0u64;
    let flat_base = index * n;
    for i in 0..escape_count {
        let delta = read_uvarint(inner, &mut pos)?;
        idx = if i == 0 {
            delta
        } else {
            idx.checked_add(delta).ok_or(MdzError::Corrupt { what: "escape index overflow" })?
        };
        if idx >= (m * n) as u64 {
            return Err(MdzError::Corrupt { what: "escape index out of range" });
        }
        let bytes = inner
            .get(pos..pos + 8)
            .ok_or(MdzError::Stream(mdz_entropy::EntropyError::UnexpectedEof))?;
        pos += 8;
        let flat = idx as usize;
        if flat >= flat_base && flat < flat_base + n {
            escapes.insert(flat - flat_base, f64::from_le_bytes(bytes.try_into().unwrap()));
        }
    }
    let seq2 = header.flags & FLAG_SEQ2 != 0;
    // Extract this snapshot's codes straight out of the interleaved layout.
    let pick = |ordered: &[u32], i: usize| -> u32 {
        if seq2 && m > 1 && n > 1 {
            ordered[i * m + index]
        } else {
            ordered[flat_base + i]
        }
    };
    let mut snap = vec![0.0f64; n];
    match &grid {
        Some(g) => {
            let mut level = 0i64;
            for (i, out) in snap.iter_mut().enumerate() {
                level = level.wrapping_add(zigzag_decode(u64::from(pick(&j_ordered, i))));
                let code = pick(&b_ordered, i);
                *out = if code == 0 {
                    *escapes.get(&i).ok_or(MdzError::BadHeader("missing escape value"))?
                } else {
                    quant.reconstruct(code, g.value_of(level))
                };
            }
        }
        None => {
            // Grid-less VQ blocks are Lorenzo-coded per snapshot — still
            // independent of other snapshots.
            for i in 0..n {
                let pred = Predictor::Lorenzo.predict(&snap, i);
                let code = pick(&b_ordered, i);
                snap[i] = if code == 0 {
                    *escapes.get(&i).ok_or(MdzError::BadHeader("missing escape value"))?
                } else {
                    quant.reconstruct(code, pred)
                };
            }
        }
    }
    Ok(snap)
}

/// Decodes the inner payload (`scratch.inner`) into snapshots.
pub(crate) fn decode_inner(
    header: &BlockHeader,
    reference: Option<&[f64]>,
    scratch: &mut DecodeScratch,
) -> Result<Vec<Vec<f64>>> {
    match HeaderQuantizer::from_header(header) {
        HeaderQuantizer::Linear(q) => decode_inner_with(header, reference, scratch, &q),
        HeaderQuantizer::BitAdaptive(q) => decode_inner_with(header, reference, scratch, &q),
    }
}

/// [`decode_inner`] monomorphized over the header's quantizer stage.
fn decode_inner_with<Q: Quantizer>(
    header: &BlockHeader,
    reference: Option<&[f64]>,
    scratch: &mut DecodeScratch,
    quant: &Q,
) -> Result<Vec<Vec<f64>>> {
    let DecodeScratch {
        inner,
        modes,
        b_ordered,
        j_ordered,
        b_codes,
        j_codes,
        escapes,
        extrapolated,
    } = scratch;
    let inner: &[u8] = inner;
    let m = header.n_snapshots;
    let n = header.n_values;
    let stream_limits = StreamLimits::with_max_items(m * n);
    let mut entropy = HeaderEntropy::from_header(header);
    let mut pos = 0;
    quant.decode_codes(inner, &mut pos, entropy.as_dyn(), b_ordered, &stream_limits)?;
    entropy.as_dyn().decode_at_into(inner, &mut pos, j_ordered, &stream_limits)?;
    if b_ordered.len() != m * n {
        return Err(MdzError::Corrupt { what: "quantization code count mismatch" });
    }
    check_codes(b_ordered, quant.code_space())?;
    let escape_count = read_uvarint(inner, &mut pos)? as usize;
    check_escape_count(escape_count, m * n, inner.len().saturating_sub(pos))?;
    // The count is now input-proportional, so this reservation is bounded by
    // the (already decompressed) inner payload size.
    escapes.clear();
    escapes.reserve(escape_count.min(1 << 20));
    let mut idx = 0u64;
    for i in 0..escape_count {
        let delta = read_uvarint(inner, &mut pos)?;
        idx = if i == 0 {
            delta
        } else {
            idx.checked_add(delta).ok_or(MdzError::Corrupt { what: "escape index overflow" })?
        };
        if idx >= (m * n) as u64 {
            return Err(MdzError::Corrupt { what: "escape index out of range" });
        }
        let bytes = inner
            .get(pos..pos + 8)
            .ok_or(MdzError::Stream(mdz_entropy::EntropyError::UnexpectedEof))?;
        pos += 8;
        escapes.insert(idx as usize, f64::from_le_bytes(bytes.try_into().unwrap()));
    }

    let seq2 = header.flags & FLAG_SEQ2 != 0;
    let b_codes: &[u32] = if seq2 {
        from_seq2_into(b_ordered, m, n, b_codes);
        b_codes
    } else {
        b_ordered
    };
    let grid = header.grid.map(|(mu, lambda)| LevelGrid { mu, lambda, k: 0, fit_error: 0.0 });
    let have_ref = reference.is_some_and(|r| r.len() == n);
    let first_lorenzo = header.flags & FLAG_FIRST_LORENZO != 0;
    // Reconstruct per-snapshot modes exactly as the encoder chose them.
    match header.method {
        Method::Vq | Method::Vqt => {
            snapshot_modes_into(header.method, m, grid.is_some(), have_ref, modes)
        }
        Method::Mt | Method::Mt2 => {
            if !first_lorenzo && !have_ref {
                return Err(MdzError::BadInput(
                    "MT block requires the stream's earlier blocks (reference snapshot)",
                ));
            }
            snapshot_modes_into(header.method, m, false, !first_lorenzo, modes)
        }
        // SAFETY of unreachable: `Method::from_wire` (the only way a header
        // gets a method) never yields `Adaptive` — hostile input cannot
        // reach this arm.
        Method::Adaptive => unreachable!("wire blocks are concrete"),
    }
    let vq_rows = modes.iter().filter(|&&md| md == SnapshotMode::VqGrid).count();
    if j_ordered.len() != vq_rows * n {
        return Err(MdzError::Corrupt { what: "level code count mismatch" });
    }
    let j_codes: &[u32] = if seq2 && vq_rows > 1 {
        from_seq2_into(j_ordered, vq_rows, n, j_codes);
        j_codes
    } else {
        j_ordered
    };

    let mut out: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut j_row = 0usize;
    for (s_idx, &mode) in modes.iter().enumerate() {
        let mut snap = vec![0.0f64; n];
        let flat_base = s_idx * n;
        match mode {
            SnapshotMode::VqGrid => {
                let g = grid.as_ref().ok_or(MdzError::BadHeader("VQ block without grid"))?;
                let j = &j_codes[j_row * n..(j_row + 1) * n];
                j_row += 1;
                let mut level = 0i64;
                for i in 0..n {
                    level = level.wrapping_add(zigzag_decode(u64::from(j[i])));
                    let code = b_codes[flat_base + i];
                    snap[i] = if code == 0 {
                        *escapes
                            .get(&(flat_base + i))
                            .ok_or(MdzError::BadHeader("missing escape value"))?
                    } else {
                        quant.reconstruct(code, g.value_of(level))
                    };
                }
            }
            _ => {
                if mode == SnapshotMode::TimePrev2 {
                    // SAFETY of expect/index: `snapshot_modes_into` assigns
                    // TimePrev2 only from the third snapshot on, so two
                    // reconstructed predecessors always exist regardless of
                    // the block bytes.
                    let a = out.last().expect("TimePrev2 needs two predecessors");
                    let b = &out[out.len() - 2];
                    extrapolated.clear();
                    extrapolated.extend(a.iter().zip(b.iter()).map(|(&x, &y)| 2.0 * x - y));
                }
                let pred = match mode {
                    SnapshotMode::Lorenzo => Predictor::Lorenzo,
                    SnapshotMode::TimePrev => {
                        // SAFETY of expect: `snapshot_modes_into` never
                        // assigns TimePrev to snapshot 0.
                        Predictor::Slice(out.last().expect("TimePrev never on first snapshot"))
                    }
                    SnapshotMode::TimePrev2 => Predictor::Slice(extrapolated.as_slice()),
                    // SAFETY of expect: TimeRef is only planned when
                    // `have_ref` held above, which requires `reference` to be
                    // `Some` with matching length.
                    SnapshotMode::TimeRef => Predictor::Slice(reference.expect("checked above")),
                    SnapshotMode::VqGrid => unreachable!("handled above"),
                };
                for i in 0..n {
                    let code = b_codes[flat_base + i];
                    snap[i] = if code == 0 {
                        *escapes
                            .get(&(flat_base + i))
                            .ok_or(MdzError::BadHeader("missing escape value"))?
                    } else {
                        quant.reconstruct(code, pred.predict(&snap, i))
                    };
                }
            }
        }
        out.push(snap);
    }
    Ok(out)
}
