//! Stage-oriented buffer pipeline: the MDZ compressor end to end.
//!
//! A *buffer* is `M` snapshots × `N` values of one coordinate axis. The
//! pipeline is split by stage:
//!
//! * [`predict`] — the per-snapshot mode plan and the [`predict::Predictor`]
//!   shared by both directions (the prediction-parity invariant lives here);
//! * [`encode`] — prediction → quantization → Seq-2 interleaving → entropy
//!   coding → LZ77 → block assembly, all into reusable scratch buffers;
//! * [`decode`] — the exact mirror, re-deriving the mode plan from the block
//!   header.
//!
//! The compressor is stateful across buffers (level grid computed once; the
//! stream's initial snapshot retained as the MT reference), mirroring the
//! paper's execution model where an MD code compresses every `BS` snapshots
//! during the run. The [`Decompressor`] maintains the same state, so blocks
//! must be decompressed in stream order — except pure-VQ blocks, which are
//! fully self-contained (the paper's random-access property).
//!
//! ## Prediction-parity invariant
//!
//! Every prediction on the encoder side uses *reconstructed* values (what
//! the decoder will have), never originals. This is what makes the error
//! bound compose across time prediction chains.
//!
//! ## Scratch workspaces
//!
//! Both endpoints own reusable working storage
//! ([`encode::EncodeScratch`] / [`decode::DecodeScratch`]): every
//! intermediate vector is cleared, never shrunk, between buffers, so
//! steady-state streaming compression performs no per-buffer heap
//! allocation on the hot path (locked in by the `alloc_free` test).

pub(crate) mod decode;
pub(crate) mod encode;
pub mod parallel;
pub(crate) mod predict;

use crate::adaptive::{AdaptiveState, Candidate};
use crate::format::{
    BlockHeader, Method, FLAGS_OFFSET, FLAG_BIT_ADAPTIVE, FLAG_F32, FLAG_RANGE_CODED, FLAG_SEQ2,
    MAGIC,
};
use crate::{ErrorBound, MdzConfig, MdzError, QuantizerKind, Result};
use decode::{decode_inner, decode_inner_one, DecodeScratch};
use encode::{encode_buffer_into, EncodeScratch};
use mdz_entropy::{read_uvarint, StreamLimits};
use mdz_kmeans::LevelGrid;
use mdz_lossless::lz77;
use mdz_obs::Obs;

/// Decode-side resource budget enforced before any header-driven allocation.
///
/// Block headers are untrusted: a forged header can declare huge snapshot
/// counts, value counts, or payload sizes. Every dimension below is checked
/// against its budget right after header parsing — a violating block fails
/// with [`MdzError::LimitExceeded`] before the decoder allocates anything
/// proportional to the forged size. The defaults equal the format's
/// structural plausibility caps (2³⁴ values), so default-constructed
/// decompressors accept everything they did before; services decoding
/// hostile input should set budgets matching their real data
/// ([`Decompressor::with_limits`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeLimits {
    /// Maximum snapshots (`M`) one block may declare.
    pub max_snapshots: usize,
    /// Maximum values per snapshot (`N`) one block may declare.
    pub max_values_per_snapshot: usize,
    /// Maximum total values (`M·N`) one block may declare.
    pub max_total_values: usize,
    /// Maximum decompressed inner-payload bytes (the LZ77 output holding
    /// the entropy streams and escape list).
    pub max_inner_bytes: usize,
}

impl Default for DecodeLimits {
    fn default() -> Self {
        Self {
            max_snapshots: 1 << 34,
            max_values_per_snapshot: 1 << 34,
            max_total_values: 1 << 34,
            max_inner_bytes: 1 << 34,
        }
    }
}

impl DecodeLimits {
    /// Validates a parsed header against the budget.
    fn check(&self, header: &BlockHeader) -> Result<()> {
        if header.n_snapshots > self.max_snapshots {
            return Err(MdzError::LimitExceeded {
                what: "snapshot count",
                limit: self.max_snapshots,
            });
        }
        if header.n_values > self.max_values_per_snapshot {
            return Err(MdzError::LimitExceeded {
                what: "values per snapshot",
                limit: self.max_values_per_snapshot,
            });
        }
        // M·N cannot overflow: the header parser capped the product at 2³⁴.
        if header.n_snapshots * header.n_values > self.max_total_values {
            return Err(MdzError::LimitExceeded {
                what: "total block values",
                limit: self.max_total_values,
            });
        }
        Ok(())
    }

    /// Budget for the LZ77-decompressed inner payload of a block with
    /// `total` values: what a worst-case legitimate block could need (codes,
    /// tables, and a full escape list), capped by `max_inner_bytes`.
    fn inner_budget(&self, total: usize) -> StreamLimits {
        let organic = total.saturating_mul(40).saturating_add(4096);
        StreamLimits::with_max_items(organic.min(self.max_inner_bytes))
    }
}

/// Cross-buffer state shared (by construction) between both endpoints.
#[derive(Debug, Clone, Default)]
pub(crate) struct CoreState {
    /// Level grid: `None` = not yet attempted, `Some(None)` = attempted and
    /// absent (data not level-structured), `Some(Some(g))` = detected.
    grid: Option<Option<LevelGrid>>,
    /// Reconstruction of the stream's first snapshot (the MT reference).
    reference: Option<Vec<f64>>,
}

/// The state transition produced by encoding one buffer.
///
/// Committing is the caller's decision: adaptive trials encode with several
/// methods against the *same* starting state and apply only the winner's
/// delta, without cloning [`CoreState`] per candidate.
#[derive(Debug, Clone, Default)]
pub(crate) struct StateDelta {
    /// `Some(outcome)` when level detection ran this buffer.
    grid: Option<Option<LevelGrid>>,
    /// `Some(recon)` when the stream reference was (re)established.
    reference: Option<Vec<f64>>,
}

impl CoreState {
    fn apply(&mut self, delta: StateDelta) {
        if let Some(g) = delta.grid {
            self.grid = Some(g);
        }
        if let Some(r) = delta.reference {
            self.reference = Some(r);
        }
    }
}

/// Stateful MDZ compressor for one axis stream.
#[derive(Debug, Clone)]
pub struct Compressor {
    cfg: MdzConfig,
    state: CoreState,
    adaptive: AdaptiveState,
    scratch: EncodeScratch,
    /// Best candidate block of the current adaptive trial.
    trial_best: Vec<u8>,
    /// Block being encoded by the current adaptive candidate.
    trial_cur: Vec<u8>,
    /// Metrics handle; a no-op unless a recorder was attached.
    obs: Obs,
}

impl Compressor {
    /// Creates a compressor; the configuration is validated on first use.
    pub fn new(cfg: MdzConfig) -> Self {
        Self {
            cfg,
            state: CoreState::default(),
            adaptive: AdaptiveState::new(),
            scratch: EncodeScratch::default(),
            trial_best: Vec::new(),
            trial_cur: Vec::new(),
            obs: Obs::noop(),
        }
    }

    /// Attaches a metrics handle; every subsequent buffer records
    /// per-stage timings and pipeline counters through it. The default
    /// handle is a no-op, so un-instrumented use costs nothing.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The configured method (possibly [`Method::Adaptive`]).
    pub fn method(&self) -> Method {
        self.cfg.method
    }

    /// The concrete method the adaptive selector is currently using, if any
    /// trial has run yet.
    pub fn current_adaptive_choice(&self) -> Option<Method> {
        self.adaptive.current().map(|c| c.method)
    }

    /// The full (method, quantizer) composition the adaptive selector is
    /// currently using, if any trial has run yet.
    pub fn current_adaptive_candidate(&self) -> Option<Candidate> {
        self.adaptive.current()
    }

    /// Replaces the error bound applied to subsequent buffers.
    ///
    /// Stream state (level grid, MT reference) is kept; used by the
    /// [`Codec`](crate::codec::Codec) layer, where the bound arrives per
    /// call rather than at construction.
    pub fn set_bound(&mut self, bound: ErrorBound) {
        self.cfg.bound = bound;
    }

    /// Drops all cross-buffer stream state (level grid, MT reference,
    /// adaptive history), keeping the configuration and scratch storage.
    ///
    /// The next buffer is encoded exactly as the first buffer of a fresh
    /// stream, so it decodes standalone — this is the keyframe re-anchoring
    /// hook the `mdz-store` epoch layer is built on.
    pub fn reset_stream(&mut self) {
        self.state = CoreState::default();
        self.adaptive = AdaptiveState::new();
    }

    /// Compresses one buffer of snapshots into a self-describing block.
    ///
    /// All snapshots must be non-empty and equally sized.
    pub fn compress_buffer(&mut self, snapshots: &[Vec<f64>]) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.compress_buffer_into(snapshots, &mut out)?;
        Ok(out)
    }

    /// [`Self::compress_buffer`] writing the block into a caller-owned
    /// vector (cleared first).
    ///
    /// With a reused output vector, steady-state compression of same-shaped
    /// buffers performs no heap allocation.
    pub fn compress_buffer_into(
        &mut self,
        snapshots: &[Vec<f64>],
        out: &mut Vec<u8>,
    ) -> Result<()> {
        self.cfg.validate()?;
        validate_shape(snapshots)?;
        match self.cfg.method {
            Method::Adaptive => self.compress_adaptive_into(snapshots, out),
            m => {
                let delta = encode_buffer_into(
                    &self.cfg,
                    &self.state,
                    m,
                    self.cfg.quantizer,
                    snapshots,
                    out,
                    &mut self.scratch,
                    &self.obs,
                )?;
                self.state.apply(delta);
                Ok(())
            }
        }
    }

    /// Compresses a buffer of single-precision snapshots.
    ///
    /// MD trajectory formats commonly store `f32`; values are widened
    /// losslessly, compressed as usual, and the block is tagged so
    /// [`Decompressor::decompress_block_f32`] can narrow the output again.
    ///
    /// The error bound is guaranteed in `f64` space; narrowing the
    /// reconstruction back to `f32` adds at most half an `f32` ULP
    /// (≈ 6e-8·|value|), which is far below any practical MD bound.
    pub fn compress_buffer_f32(&mut self, snapshots: &[Vec<f32>]) -> Result<Vec<u8>> {
        let widened: Vec<Vec<f64>> =
            snapshots.iter().map(|s| s.iter().map(|&v| f64::from(v)).collect()).collect();
        let mut block = self.compress_buffer(&widened)?;
        block[FLAGS_OFFSET] |= FLAG_F32;
        Ok(block)
    }

    /// The quantizer stages ADP trials: the configured one first (so the
    /// candidate ordering — and therefore every tie-break — is unchanged
    /// when the bit-adaptive pool is off), then the extra pool members.
    fn trial_quantizers(&self) -> Vec<QuantizerKind> {
        let mut quantizers = vec![self.cfg.quantizer];
        if self.cfg.bit_adaptive_candidates {
            for q in [QuantizerKind::Linear, QuantizerKind::BIT_ADAPTIVE_DEFAULT] {
                if !quantizers.contains(&q) {
                    quantizers.push(q);
                }
            }
        }
        quantizers
    }

    /// ADP: every `adapt_interval` buffers, compress with all candidate
    /// compositions (method × quantizer) and keep the smallest; in between,
    /// reuse the last winner.
    fn compress_adaptive_into(&mut self, snapshots: &[Vec<f64>], out: &mut Vec<u8>) -> Result<()> {
        if self.adaptive.trial_due(self.cfg.adapt_interval) {
            let methods: &[Method] =
                if self.cfg.extended_candidates { &Method::EXTENDED } else { &Method::CONCRETE };
            let quantizers = self.trial_quantizers();
            let mut best: Option<(StateDelta, Candidate)> = None;
            for &m in methods {
                for &q in &quantizers {
                    let delta = encode_buffer_into(
                        &self.cfg,
                        &self.state,
                        m,
                        q,
                        snapshots,
                        &mut self.trial_cur,
                        &mut self.scratch,
                        &self.obs,
                    )?;
                    if best.is_none() || self.trial_cur.len() < self.trial_best.len() {
                        std::mem::swap(&mut self.trial_best, &mut self.trial_cur);
                        best = Some((delta, Candidate { method: m, quantizer: q }));
                    }
                }
            }
            let (delta, winner) = best.expect("candidates evaluated");
            self.state.apply(delta);
            self.adaptive.record_winner(winner);
            self.obs.incr("core.adp.trials", 1);
            self.obs.incr(adp_win_counter(winner.method), 1);
            self.obs.incr(adp_quant_win_counter(winner.quantizer), 1);
            out.clear();
            out.extend_from_slice(&self.trial_best);
            Ok(())
        } else {
            let c = self.adaptive.current().expect("winner recorded at first trial");
            self.adaptive.tick();
            let delta = encode_buffer_into(
                &self.cfg,
                &self.state,
                c.method,
                c.quantizer,
                snapshots,
                out,
                &mut self.scratch,
                &self.obs,
            )?;
            self.state.apply(delta);
            Ok(())
        }
    }
}

/// The ADP winner counter for a concrete method.
fn adp_win_counter(method: Method) -> &'static str {
    match method {
        Method::Vq => "core.adp.win.vq",
        Method::Vqt => "core.adp.win.vqt",
        Method::Mt => "core.adp.win.mt",
        Method::Mt2 => "core.adp.win.mt2",
        // ADP trials only ever record concrete winners.
        Method::Adaptive => "core.adp.win.other",
    }
}

/// The ADP winner counter for a quantizer stage.
fn adp_quant_win_counter(quantizer: QuantizerKind) -> &'static str {
    match quantizer {
        QuantizerKind::Linear => "core.adp.win.quant.linear",
        QuantizerKind::BitAdaptive { .. } => "core.adp.win.quant.bit_adaptive",
    }
}

/// Stateful MDZ decompressor (mirror of [`Compressor`] state).
#[derive(Debug, Clone, Default)]
pub struct Decompressor {
    reference: Option<Vec<f64>>,
    scratch: DecodeScratch,
    limits: DecodeLimits,
    obs: Obs,
}

/// Parsed block metadata returned by [`Decompressor::inspect`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockInfo {
    /// Concrete method that produced the block.
    pub method: Method,
    /// Snapshots in the block.
    pub n_snapshots: usize,
    /// Values per snapshot.
    pub n_values: usize,
    /// Absolute error bound the block was coded under.
    pub eps: f64,
    /// Quantization radius (half the quantization scale).
    pub radius: u32,
    /// Level grid `(μ, λ)` when the VQ predictor was grid-backed.
    pub grid: Option<(f64, f64)>,
    /// Whether codes are Seq-2 (particle-major) interleaved.
    pub seq2: bool,
    /// Whether the entropy stage was the range coder.
    pub range_coded: bool,
    /// Whether residual codes use bit-adaptive (per-chunk width)
    /// quantization — a format-version-2 block.
    pub bit_adaptive: bool,
    /// Whether the source data was `f32` (decompress with
    /// [`Decompressor::decompress_block_f32`]).
    pub source_f32: bool,
    /// Compressed payload size in bytes (excluding the header).
    pub payload_bytes: usize,
}

impl Decompressor {
    /// Creates a decompressor with empty stream state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a decompressor enforcing the given [`DecodeLimits`].
    pub fn with_limits(limits: DecodeLimits) -> Self {
        Self { limits, ..Self::default() }
    }

    /// Replaces the decode budget applied to subsequent blocks.
    pub fn set_limits(&mut self, limits: DecodeLimits) {
        self.limits = limits;
    }

    /// Attaches a metrics handle; subsequent blocks record per-stage
    /// decode timings through it (no-op by default).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The decode budget currently in force.
    pub fn limits(&self) -> DecodeLimits {
        self.limits
    }

    /// Drops the cross-buffer stream state (the MT reference snapshot),
    /// keeping the decode budget and scratch storage.
    ///
    /// Mirror of [`Compressor::reset_stream`]: a decoder reset at the same
    /// buffer boundary as the compressor reproduces the stream exactly, so
    /// epoch-anchored archives can be decoded from any keyframe.
    pub fn reset_stream(&mut self) {
        self.reference = None;
    }

    /// Decompresses a single snapshot from a pure-VQ block without
    /// reconstructing the others — the paper's random-access property
    /// (§VI: "any snapshot data can be decompressed very quickly without a
    /// need in decompressing other snapshots").
    ///
    /// Works on blocks whose snapshots are all independently coded (method
    /// VQ, with or without a detected grid). Errors on VQT/MT blocks, whose
    /// snapshots form prediction chains, and on out-of-range indices.
    pub fn decompress_snapshot(block: &[u8], index: usize) -> Result<Vec<f64>> {
        Self::decompress_snapshot_limited(block, index, &DecodeLimits::default())
    }

    /// [`Decompressor::decompress_snapshot`] under an explicit decode
    /// budget, for callers handling untrusted blocks.
    pub fn decompress_snapshot_limited(
        block: &[u8],
        index: usize,
        limits: &DecodeLimits,
    ) -> Result<Vec<f64>> {
        let mut pos = 0;
        let header = BlockHeader::read(block, &mut pos)?;
        limits.check(&header)?;
        if header.method != Method::Vq {
            return Err(MdzError::BadInput("random access requires a VQ block"));
        }
        if index >= header.n_snapshots {
            return Err(MdzError::BadInput("snapshot index out of range"));
        }
        let payload_len = read_uvarint(block, &mut pos)? as usize;
        let end = pos
            .checked_add(payload_len)
            .filter(|&e| e <= block.len())
            .ok_or(MdzError::BadHeader("truncated payload"))?;
        let budget = limits.inner_budget(header.n_snapshots * header.n_values);
        let mut inner = Vec::new();
        lz77::decompress_into_limited(&block[pos..end], &mut inner, &budget)?;
        let all = decode_inner_one(&header, &inner, index)?;
        Ok(all)
    }

    /// Parses a block's header without decompressing it — cheap
    /// observability for tooling (`mdz info`, debuggers).
    pub fn inspect(block: &[u8]) -> Result<BlockInfo> {
        let mut pos = 0;
        let header = BlockHeader::read(block, &mut pos)?;
        let payload_len = read_uvarint(block, &mut pos)? as usize;
        Ok(BlockInfo {
            method: header.method,
            n_snapshots: header.n_snapshots,
            n_values: header.n_values,
            eps: header.eps,
            radius: header.radius,
            grid: header.grid,
            seq2: header.flags & FLAG_SEQ2 != 0,
            range_coded: header.flags & FLAG_RANGE_CODED != 0,
            bit_adaptive: header.flags & FLAG_BIT_ADAPTIVE != 0,
            source_f32: header.flags & FLAG_F32 != 0,
            payload_bytes: payload_len,
        })
    }

    /// Decompresses a block produced by [`Compressor::compress_buffer_f32`]
    /// back into single-precision snapshots.
    ///
    /// Errors if the block was not tagged as `f32`-sourced.
    pub fn decompress_block_f32(&mut self, block: &[u8]) -> Result<Vec<Vec<f32>>> {
        if !block.starts_with(&MAGIC) {
            return Err(MdzError::BadHeader("not an MDZ block"));
        }
        let flags = *block.get(FLAGS_OFFSET).ok_or(MdzError::BadHeader("truncated flags"))?;
        if flags & FLAG_F32 == 0 {
            return Err(MdzError::BadInput("block does not carry f32-source data"));
        }
        let wide = self.decompress_block(block)?;
        // Clamp finite reconstructions into f32 range before narrowing: a
        // huge error bound could push a reconstruction past f32::MAX, and
        // saturating to infinity would break the bound. Clamping moves the
        // value strictly closer to the (f32-representable) original.
        let narrow = |v: f64| -> f32 {
            if v.is_finite() {
                v.clamp(f64::from(f32::MIN), f64::from(f32::MAX)) as f32
            } else {
                v as f32
            }
        };
        Ok(wide.into_iter().map(|s| s.into_iter().map(narrow).collect()).collect())
    }

    /// Decompresses one block into its snapshots.
    pub fn decompress_block(&mut self, block: &[u8]) -> Result<Vec<Vec<f64>>> {
        let mut pos = 0;
        let header = BlockHeader::read(block, &mut pos)?;
        self.limits.check(&header)?;
        let payload_len = read_uvarint(block, &mut pos)? as usize;
        let end = pos
            .checked_add(payload_len)
            .filter(|&e| e <= block.len())
            .ok_or(MdzError::BadHeader("truncated payload"))?;
        let budget = self.limits.inner_budget(header.n_snapshots * header.n_values);
        {
            let _t = self.obs.span("core.decode.lossless_seconds");
            lz77::decompress_into_limited(&block[pos..end], &mut self.scratch.inner, &budget)?;
        }
        let reconstruct = self.obs.span("core.decode.reconstruct_seconds");
        let snapshots = decode_inner(&header, self.reference.as_deref(), &mut self.scratch)?;
        reconstruct.finish();
        self.obs.incr("core.decode.blocks", 1);
        // Mirror the compressor's reference-update rule.
        if self.reference.as_ref().is_none_or(|r| r.len() != header.n_values) {
            self.reference = Some(snapshots[0].clone());
        }
        Ok(snapshots)
    }
}

pub(crate) fn validate_shape(snapshots: &[Vec<f64>]) -> Result<()> {
    if snapshots.is_empty() {
        return Err(MdzError::BadInput("buffer has no snapshots"));
    }
    let n = snapshots[0].len();
    if n == 0 {
        return Err(MdzError::BadInput("snapshots are empty"));
    }
    if snapshots.iter().any(|s| s.len() != n) {
        return Err(MdzError::BadInput("ragged snapshots in buffer"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ErrorBound;

    fn check_round_trip(snapshots: &[Vec<f64>], cfg: MdzConfig) -> (usize, Vec<Vec<f64>>) {
        let eps_for = |buf: &[Vec<f64>]| {
            let flat: Vec<f64> = buf.iter().flatten().copied().collect();
            cfg.bound.absolute_for(&flat)
        };
        let eps = eps_for(snapshots);
        let mut c = Compressor::new(cfg);
        let block = c.compress_buffer(snapshots).unwrap();
        let mut d = Decompressor::new();
        let out = d.decompress_block(&block).unwrap();
        assert_eq!(out.len(), snapshots.len());
        for (s, o) in snapshots.iter().zip(out.iter()) {
            assert_eq!(s.len(), o.len());
            for (a, b) in s.iter().zip(o.iter()) {
                if a.is_finite() {
                    assert!((a - b).abs() <= eps, "{a} vs {b}, eps {eps}");
                } else {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
        (block.len(), out)
    }

    fn lattice_buffer(m: usize, n: usize, drift: f64) -> Vec<Vec<f64>> {
        let mut s = 99u64;
        (0..m)
            .map(|t| {
                (0..n)
                    .map(|i| {
                        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let u = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                        (i % 16) as f64 * 3.0 + u * 0.02 + t as f64 * drift
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn vq_round_trip_on_lattice() {
        let snaps = lattice_buffer(5, 400, 0.0);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(Method::Vq);
        let (size, _) = check_round_trip(&snaps, cfg);
        let raw = 5 * 400 * 8;
        assert!(size < raw / 4, "VQ should compress lattice data well: {size} vs {raw}");
    }

    #[test]
    fn vqt_round_trip() {
        let snaps = lattice_buffer(10, 300, 1e-4);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(Method::Vqt);
        check_round_trip(&snaps, cfg);
    }

    #[test]
    fn mt_round_trip() {
        let snaps = lattice_buffer(10, 300, 1e-4);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(Method::Mt);
        check_round_trip(&snaps, cfg);
    }

    #[test]
    fn adaptive_round_trip() {
        let snaps = lattice_buffer(10, 300, 1e-4);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3));
        check_round_trip(&snaps, cfg);
    }

    #[test]
    fn single_snapshot_buffer() {
        let snaps = lattice_buffer(1, 500, 0.0);
        for m in [Method::Vq, Method::Vqt, Method::Mt, Method::Adaptive] {
            let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(m);
            check_round_trip(&snaps, cfg);
        }
    }

    #[test]
    fn random_data_without_levels_falls_back() {
        let mut s = 5u64;
        let snaps: Vec<Vec<f64>> = (0..4)
            .map(|_| {
                (0..500)
                    .map(|_| {
                        s ^= s << 13;
                        s ^= s >> 7;
                        s ^= s << 17;
                        (s >> 11) as f64 / (1u64 << 53) as f64 * 100.0
                    })
                    .collect()
            })
            .collect();
        for m in [Method::Vq, Method::Vqt, Method::Mt] {
            let cfg = MdzConfig::new(ErrorBound::Absolute(1e-2)).with_method(m);
            check_round_trip(&snaps, cfg);
        }
    }

    #[test]
    fn value_range_relative_bound() {
        let snaps = lattice_buffer(5, 200, 0.0);
        let cfg = MdzConfig::new(ErrorBound::ValueRangeRelative(1e-3));
        check_round_trip(&snaps, cfg);
    }

    #[test]
    fn constant_data() {
        let snaps = vec![vec![42.0; 100]; 5];
        for m in [Method::Vq, Method::Vqt, Method::Mt] {
            let cfg = MdzConfig::new(ErrorBound::Absolute(1e-6)).with_method(m);
            let (size, _) = check_round_trip(&snaps, cfg);
            assert!(size < 300, "constant data should compress to almost nothing: {size}");
        }
    }

    #[test]
    fn non_finite_values_survive_bit_exact() {
        let mut snaps = lattice_buffer(3, 50, 0.0);
        snaps[1][7] = f64::NAN;
        snaps[2][9] = f64::INFINITY;
        snaps[0][0] = f64::NEG_INFINITY;
        for m in [Method::Vq, Method::Vqt, Method::Mt] {
            let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(m);
            check_round_trip(&snaps, cfg);
        }
    }

    #[test]
    fn multi_buffer_stream_with_state() {
        // MT's reference comes from buffer 0; later buffers predict from it.
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(Method::Mt);
        let mut c = Compressor::new(cfg);
        let mut d = Decompressor::new();
        let base = lattice_buffer(1, 200, 0.0).pop().unwrap();
        for t in 0..5 {
            let buf: Vec<Vec<f64>> = (0..4)
                .map(|k| base.iter().map(|&v| v + (t * 4 + k) as f64 * 1e-5).collect())
                .collect();
            let block = c.compress_buffer(&buf).unwrap();
            let out = d.decompress_block(&block).unwrap();
            for (s, o) in buf.iter().zip(out.iter()) {
                for (a, b) in s.iter().zip(o.iter()) {
                    assert!((a - b).abs() <= 1e-4);
                }
            }
        }
    }

    #[test]
    fn mt_block_out_of_order_fails_cleanly() {
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(Method::Mt);
        let mut c = Compressor::new(cfg);
        let b0 = c.compress_buffer(&lattice_buffer(3, 100, 0.0)).unwrap();
        let b1 = c.compress_buffer(&lattice_buffer(3, 100, 1e-5)).unwrap();
        // Fresh decompressor given block 1 first: must error, not garble.
        let mut d = Decompressor::new();
        assert!(d.decompress_block(&b1).is_err());
        // In order works.
        let mut d = Decompressor::new();
        d.decompress_block(&b0).unwrap();
        d.decompress_block(&b1).unwrap();
    }

    #[test]
    fn vq_blocks_are_self_contained() {
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(Method::Vq);
        let mut c = Compressor::new(cfg);
        let _b0 = c.compress_buffer(&lattice_buffer(3, 100, 0.0)).unwrap();
        let b1 = c.compress_buffer(&lattice_buffer(3, 100, 0.1)).unwrap();
        // A fresh decompressor can open block 1 directly.
        let mut d = Decompressor::new();
        d.decompress_block(&b1).unwrap();
    }

    #[test]
    fn seq1_and_seq2_both_round_trip() {
        let snaps = lattice_buffer(8, 100, 1e-5);
        for seq2 in [false, true] {
            let cfg =
                MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(Method::Vqt).with_seq2(seq2);
            check_round_trip(&snaps, cfg);
        }
    }

    #[test]
    fn quantization_radius_sweep() {
        let snaps = lattice_buffer(4, 200, 1e-4);
        for radius in [32u32, 512, 4096, 32768] {
            let cfg = MdzConfig::new(ErrorBound::Absolute(1e-5))
                .with_method(Method::Vqt)
                .with_radius(radius);
            check_round_trip(&snaps, cfg);
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3));
        let mut c = Compressor::new(cfg.clone());
        assert!(matches!(c.compress_buffer(&[]), Err(MdzError::BadInput(_))));
        assert!(matches!(c.compress_buffer(&[vec![]]), Err(MdzError::BadInput(_))));
        assert!(matches!(
            c.compress_buffer(&[vec![1.0], vec![1.0, 2.0]]),
            Err(MdzError::BadInput(_))
        ));
        let mut c = Compressor::new(MdzConfig::new(ErrorBound::Absolute(-1.0)));
        assert!(matches!(c.compress_buffer(&[vec![1.0]]), Err(MdzError::BadConfig(_))));
    }

    #[test]
    fn corrupted_blocks_error_not_panic() {
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(Method::Vq);
        let mut c = Compressor::new(cfg);
        let block = c.compress_buffer(&lattice_buffer(3, 50, 0.0)).unwrap();
        for cut in [0, 4, block.len() / 2, block.len() - 1] {
            let mut d = Decompressor::new();
            assert!(d.decompress_block(&block[..cut]).is_err(), "cut {cut}");
        }
        let mut bad = block.clone();
        for i in 0..bad.len() {
            bad[i] ^= 0xA5;
            let mut d = Decompressor::new();
            let _ = d.decompress_block(&bad);
            bad[i] ^= 0xA5;
        }
    }

    #[test]
    fn f32_round_trip_within_bound() {
        let snaps_f32: Vec<Vec<f32>> = (0..6)
            .map(|t| (0..200).map(|i| (i % 11) as f32 * 2.5 + t as f32 * 1e-4).collect())
            .collect();
        let eps = 1e-3;
        for m in [Method::Vq, Method::Vqt, Method::Mt, Method::Adaptive] {
            let cfg = MdzConfig::new(ErrorBound::Absolute(eps)).with_method(m);
            let mut c = Compressor::new(cfg);
            let block = c.compress_buffer_f32(&snaps_f32).unwrap();
            let info = Decompressor::inspect(&block).unwrap();
            assert!(info.source_f32);
            let out = Decompressor::new().decompress_block_f32(&block).unwrap();
            for (s, o) in snaps_f32.iter().zip(out.iter()) {
                for (a, b) in s.iter().zip(o.iter()) {
                    // f64 bound + half an f32 ULP of slack.
                    let slack = (a.abs() * 1e-7).max(1e-30) as f64;
                    assert!((f64::from(*a) - f64::from(*b)).abs() <= eps + slack, "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn f32_decoder_rejects_f64_blocks() {
        let snaps = lattice_buffer(3, 50, 0.0);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3));
        let mut c = Compressor::new(cfg);
        let block = c.compress_buffer(&snaps).unwrap();
        assert!(matches!(
            Decompressor::new().decompress_block_f32(&block),
            Err(MdzError::BadInput(_))
        ));
    }

    #[test]
    fn f32_non_finite_round_trip() {
        let mut snaps: Vec<Vec<f32>> = vec![vec![1.0; 20]; 3];
        snaps[1][3] = f32::NAN;
        snaps[2][7] = f32::INFINITY;
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4));
        let mut c = Compressor::new(cfg);
        let block = c.compress_buffer_f32(&snaps).unwrap();
        let out = Decompressor::new().decompress_block_f32(&block).unwrap();
        assert!(out[1][3].is_nan());
        assert!(out[2][7].is_infinite());
    }

    #[test]
    fn inspect_reports_block_metadata() {
        let snaps = lattice_buffer(6, 100, 0.0);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(Method::Vq);
        let mut c = Compressor::new(cfg);
        let block = c.compress_buffer(&snaps).unwrap();
        let info = Decompressor::inspect(&block).unwrap();
        assert_eq!(info.method, Method::Vq);
        assert_eq!(info.n_snapshots, 6);
        assert_eq!(info.n_values, 100);
        assert_eq!(info.eps, 1e-3);
        assert_eq!(info.radius, 512);
        assert!(info.grid.is_some());
        assert!(info.seq2);
        assert!(!info.range_coded);
        assert!(info.payload_bytes > 0 && info.payload_bytes < block.len());
        assert!(Decompressor::inspect(&block[..4]).is_err());
    }

    #[test]
    fn mt2_round_trips_and_wins_on_linear_drift() {
        // Particles moving ballistically: x_t = x_0 + v·t. Second-order
        // prediction is exact; first-order pays |v| per step.
        let mut s = 9u64;
        let n = 400;
        let x0: Vec<f64> = (0..n).map(|i| (i % 10) as f64 * 3.0).collect();
        let v: Vec<f64> = (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.1
            })
            .collect();
        let snaps: Vec<Vec<f64>> = (0..12)
            .map(|t| x0.iter().zip(v.iter()).map(|(&x, &vi)| x + vi * t as f64).collect())
            .collect();
        let size = |method| {
            let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(method);
            check_round_trip(&snaps, cfg).0
        };
        let mt = size(Method::Mt);
        let mt2 = size(Method::Mt2);
        assert!(mt2 < mt / 2, "MT2 {mt2} should crush MT {mt} on ballistic data");
    }

    #[test]
    fn extended_adaptive_picks_mt2_on_ballistic_data() {
        let n = 300;
        let x0: Vec<f64> = (0..n).map(|i| i as f64 * 0.37).collect();
        let snaps: Vec<Vec<f64>> = (0..10)
            .map(|t| {
                x0.iter().enumerate().map(|(i, &x)| x + (i % 7) as f64 * 0.02 * t as f64).collect()
            })
            .collect();
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-5)).with_extended_candidates(true);
        let mut c = Compressor::new(cfg);
        c.compress_buffer(&snaps).unwrap();
        assert_eq!(c.current_adaptive_choice(), Some(Method::Mt2));
    }

    #[test]
    fn mt2_multi_buffer_stream() {
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(Method::Mt2);
        let mut c = Compressor::new(cfg);
        let mut d = Decompressor::new();
        for t in 0..4 {
            let buf: Vec<Vec<f64>> = (0..5)
                .map(|k| (0..100).map(|i| i as f64 + (t * 5 + k) as f64 * 0.01).collect())
                .collect();
            let block = c.compress_buffer(&buf).unwrap();
            let out = d.decompress_block(&block).unwrap();
            for (sn, o) in buf.iter().zip(out.iter()) {
                for (a, b) in sn.iter().zip(o.iter()) {
                    assert!((a - b).abs() <= 1e-4);
                }
            }
        }
    }

    #[test]
    fn range_coded_blocks_round_trip() {
        let snaps = lattice_buffer(8, 200, 1e-4);
        for m in [Method::Vq, Method::Vqt, Method::Mt, Method::Adaptive] {
            let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3))
                .with_method(m)
                .with_entropy(crate::EntropyStage::Range);
            check_round_trip(&snaps, cfg);
        }
    }

    #[test]
    fn range_coding_never_much_worse_than_huffman() {
        let snaps = lattice_buffer(10, 400, 1e-4);
        let size = |entropy| {
            let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3))
                .with_method(Method::Vqt)
                .with_entropy(entropy);
            Compressor::new(cfg).compress_buffer(&snaps).unwrap().len()
        };
        let h = size(crate::EntropyStage::Huffman);
        let r = size(crate::EntropyStage::Range);
        assert!(r <= h + h / 4, "range {r} vs huffman {h}");
    }

    #[test]
    fn random_access_works_with_range_coding() {
        let snaps = lattice_buffer(5, 120, 0.0);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3))
            .with_method(Method::Vq)
            .with_entropy(crate::EntropyStage::Range);
        let mut c = Compressor::new(cfg);
        let block = c.compress_buffer(&snaps).unwrap();
        let full = Decompressor::new().decompress_block(&block).unwrap();
        for (i, want) in full.iter().enumerate() {
            assert_eq!(&Decompressor::decompress_snapshot(&block, i).unwrap(), want);
        }
    }

    #[test]
    fn random_access_matches_full_decompression() {
        let snaps = lattice_buffer(6, 150, 0.0);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(Method::Vq);
        let mut c = Compressor::new(cfg);
        let block = c.compress_buffer(&snaps).unwrap();
        let full = Decompressor::new().decompress_block(&block).unwrap();
        for (i, want) in full.iter().enumerate() {
            let got = Decompressor::decompress_snapshot(&block, i).unwrap();
            assert_eq!(&got, want, "snapshot {i}");
        }
        assert!(Decompressor::decompress_snapshot(&block, 6).is_err());
    }

    #[test]
    fn random_access_on_gridless_vq_block() {
        // Random data → no level grid → Lorenzo fallback, still per-snapshot.
        let mut s = 3u64;
        let snaps: Vec<Vec<f64>> = (0..4)
            .map(|_| {
                (0..100)
                    .map(|_| {
                        s ^= s << 13;
                        s ^= s >> 7;
                        s ^= s << 17;
                        (s >> 11) as f64 / (1u64 << 53) as f64 * 50.0
                    })
                    .collect()
            })
            .collect();
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(Method::Vq);
        let mut c = Compressor::new(cfg);
        let block = c.compress_buffer(&snaps).unwrap();
        let full = Decompressor::new().decompress_block(&block).unwrap();
        let got = Decompressor::decompress_snapshot(&block, 2).unwrap();
        assert_eq!(got, full[2]);
    }

    #[test]
    fn random_access_rejects_time_chained_blocks() {
        let snaps = lattice_buffer(5, 80, 1e-4);
        for m in [Method::Vqt, Method::Mt] {
            let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(m);
            let mut c = Compressor::new(cfg);
            let block = c.compress_buffer(&snaps).unwrap();
            assert!(matches!(
                Decompressor::decompress_snapshot(&block, 0),
                Err(MdzError::BadInput(_))
            ));
        }
    }

    #[test]
    fn adaptive_picks_time_method_on_smooth_data() {
        // Temporally near-constant, spatially random: MT/VQT should win.
        let mut s = 77u64;
        let base: Vec<f64> = (0..400)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 53) as f64 * 50.0
            })
            .collect();
        let snaps: Vec<Vec<f64>> =
            (0..10).map(|t| base.iter().map(|&v| v + t as f64 * 1e-6).collect()).collect();
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4));
        let mut c = Compressor::new(cfg);
        c.compress_buffer(&snaps).unwrap();
        let chosen = c.current_adaptive_choice().unwrap();
        assert!(
            matches!(chosen, Method::Mt | Method::Vqt),
            "expected a time-based method, got {chosen}"
        );
    }

    #[test]
    fn adaptive_picks_vq_on_time_noisy_lattice_data() {
        // Strong levels but large temporal jumps: VQ should win.
        let mut s = 13u64;
        let snaps: Vec<Vec<f64>> = (0..10)
            .map(|_| {
                (0..400)
                    .map(|_| {
                        s ^= s << 13;
                        s ^= s >> 7;
                        s ^= s << 17;
                        let level = (s % 12) as f64;
                        let u = ((s >> 12) % 1000) as f64 / 1000.0 - 0.5;
                        level * 5.0 + u * 0.02
                    })
                    .collect()
            })
            .collect();
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3));
        let mut c = Compressor::new(cfg);
        c.compress_buffer(&snaps).unwrap();
        assert_eq!(c.current_adaptive_choice().unwrap(), Method::Vq);
    }

    #[test]
    fn compress_into_matches_compress_and_reuses_buffer() {
        for method in [Method::Vq, Method::Vqt, Method::Mt, Method::Mt2, Method::Adaptive] {
            let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(method);
            let mut a = Compressor::new(cfg.clone());
            let mut b = Compressor::new(cfg);
            let mut out = Vec::new();
            for drift in [0.0, 1e-5, 2e-5] {
                let buf = lattice_buffer(6, 120, drift);
                let want = a.compress_buffer(&buf).unwrap();
                b.compress_buffer_into(&buf, &mut out).unwrap();
                assert_eq!(out, want, "method {method}, drift {drift}");
            }
        }
    }

    #[test]
    fn reset_stream_re_anchors_both_endpoints() {
        for method in [Method::Vq, Method::Vqt, Method::Mt, Method::Mt2, Method::Adaptive] {
            let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(method);
            let mut c = Compressor::new(cfg);
            let b0 = c.compress_buffer(&lattice_buffer(4, 120, 1e-5)).unwrap();
            let _b1 = c.compress_buffer(&lattice_buffer(4, 120, 2e-5)).unwrap();
            c.reset_stream();
            // After the reset the compressor re-emits a self-starting block…
            let b0_again = c.compress_buffer(&lattice_buffer(4, 120, 1e-5)).unwrap();
            assert_eq!(b0, b0_again, "method {method}");
            // …and a decoder reset at the same boundary tracks the stream.
            let mut d = Decompressor::new();
            d.decompress_block(&b0).unwrap();
            d.reset_stream();
            let out = d.decompress_block(&b0_again).unwrap();
            assert_eq!(out, Decompressor::new().decompress_block(&b0).unwrap());
        }
    }

    #[test]
    fn set_bound_applies_to_next_buffer() {
        let snaps = lattice_buffer(4, 100, 0.0);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(Method::Vq);
        let mut c = Compressor::new(cfg);
        c.compress_buffer(&snaps).unwrap();
        c.set_bound(ErrorBound::Absolute(1e-6));
        let block = c.compress_buffer(&snaps).unwrap();
        assert_eq!(Decompressor::inspect(&block).unwrap().eps, 1e-6);
    }
}
