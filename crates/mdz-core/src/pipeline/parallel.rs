//! Parallel block engine: fans independent axis×buffer blocks across
//! worker threads while keeping the output **byte-identical** to the
//! serial path.
//!
//! ## Why blocks parallelize at all
//!
//! MDZ compresses each coordinate axis as an independent stream, sliced
//! into buffers of `BS` snapshots (paper §IV). Cross-buffer coupling is
//! deliberately thin: a stream's level grid and MT reference snapshot are
//! established by its *first* buffer and then stay fixed, and the adaptive
//! selector re-decides only at trial buffers (one per `adapt_interval`).
//! Every other buffer is a pure function of `(config, stream state,
//! method, snapshots)` — embarrassingly parallel by construction.
//!
//! ## How byte-identity is preserved
//!
//! The engine runs two phases:
//!
//! 1. **Serial prologue** (caller thread): walk every stream's buffers in
//!    order, replicating exactly the bookkeeping the serial path performs
//!    (adaptive trials, ticks, state commits). Any buffer whose encoding
//!    would *change* stream state — the first buffer, adaptive trials,
//!    shape changes that re-establish the reference — is encoded right
//!    here, in order. Buffers that provably leave state untouched are
//!    recorded as deferred jobs against an immutable snapshot ("epoch")
//!    of the stream state they would have observed.
//! 2. **Fan-out**: deferred jobs are pulled off a shared self-scheduling
//!    queue (an atomic cursor — idle workers steal the next block the
//!    moment they finish one) by `workers` scoped threads. Each worker
//!    owns its own scratch workspace, preserving the per-stream
//!    zero-alloc steady state from the serial path. Results land in their
//!    original slots, so reassembly is deterministic and in order.
//!
//! Because a deferred buffer sees exactly the state the serial path would
//! have given it, and `encode_buffer_into` is deterministic, the bytes per
//! slot are identical to the serial loop's — pinned by the golden fixtures
//! in `tests/format_stability.rs` and the `parallel_determinism` test.
//! Parallelism is purely an encoder/decoder concern: no flag, block, or
//! frame differs on the wire.

use std::sync::atomic::{AtomicUsize, Ordering};

use mdz_obs::Obs;

use crate::adaptive::Candidate;
use crate::format::BlockHeader;
use crate::{MdzConfig, Method, QuantizerKind, Result};

use super::encode::{encode_buffer_into, EncodeScratch};
use super::{validate_shape, Compressor, CoreState, Decompressor};

/// Worker configuration for the parallel block engine.
///
/// The single knob is `workers`: how many OS threads fan blocks out.
/// `workers <= 1` means fully serial execution on the caller thread (the
/// default), so parallelism is strictly opt-in. Output is byte-identical
/// for every worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelOptions {
    /// Number of worker threads; `0` and `1` both mean serial.
    pub workers: usize,
}

impl Default for ParallelOptions {
    /// Serial execution — identical behavior to the pre-parallel API.
    fn default() -> Self {
        Self::serial()
    }
}

impl ParallelOptions {
    /// Serial execution on the caller thread.
    pub const fn serial() -> Self {
        Self { workers: 1 }
    }

    /// An explicit worker count (`0` is treated as `1`).
    pub const fn with_workers(workers: usize) -> Self {
        Self { workers: if workers == 0 { 1 } else { workers } }
    }

    /// One worker per available hardware thread.
    pub fn auto() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self { workers }
    }

    /// Whether this configuration actually spawns worker threads.
    pub fn is_parallel(&self) -> bool {
        self.workers > 1
    }
}

/// Runs `run` over `jobs` on up to `workers` scoped threads, returning the
/// results in job order.
///
/// Each worker owns one context built by `make_ctx` (scratch buffers,
/// decoders, …) for its whole lifetime. Jobs are claimed through a shared
/// atomic cursor, so a worker that finishes early immediately takes the
/// next unclaimed block — coarse-grained work stealing without a deque.
/// With `workers <= 1` or fewer than two jobs everything runs inline on
/// the caller thread.
///
/// `obs` records one `core.parallel.worker_jobs` observation per worker
/// (the inline path counts as a single worker), exposing how evenly the
/// atomic-cursor scheduler spread the batch.
fn fan_out<J, C, R>(
    jobs: &[J],
    workers: usize,
    obs: &Obs,
    make_ctx: impl Fn() -> C + Sync,
    run: impl Fn(&mut C, &J) -> R + Sync,
) -> Vec<R>
where
    J: Sync,
    R: Send,
{
    if workers <= 1 || jobs.len() <= 1 {
        let mut ctx = make_ctx();
        if !jobs.is_empty() {
            obs.observe("core.parallel.worker_jobs", jobs.len() as f64);
        }
        return jobs.iter().map(|j| run(&mut ctx, j)).collect();
    }
    let threads = workers.min(jobs.len());
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(jobs.len());
    slots.resize_with(jobs.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut ctx = make_ctx();
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        local.push((i, run(&mut ctx, &jobs[i])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => {
                    obs.observe("core.parallel.worker_jobs", local.len() as f64);
                    for (i, r) in local {
                        slots[i] = Some(r);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots.into_iter().map(|s| s.expect("every job claimed exactly once")).collect()
}

/// A deferred encode block: everything a worker needs to reproduce the
/// serial path's bytes for one buffer.
struct EncodeJob<'a> {
    /// Index into the shared config table (one entry per stream).
    cfg: usize,
    /// Index into the shared epoch table (immutable state snapshots).
    epoch: usize,
    /// Concrete method the serial path would have used for this buffer.
    method: Method,
    /// Quantizer stage the serial path would have composed.
    quantizer: QuantizerKind,
    /// The buffer's snapshots.
    snapshots: &'a [Vec<f64>],
}

/// Compresses several independent buffer streams, fanning state-neutral
/// blocks across `workers` threads.
///
/// `streams` pairs each stateful [`Compressor`] with its ordered buffers.
/// Returns per-stream, per-buffer results whose bytes are identical to
/// calling [`Compressor::compress_buffer`] in order on each stream; the
/// compressors' stream state afterwards matches the serial path as long
/// as every buffer succeeded.
pub(crate) fn compress_streams<'a>(
    streams: Vec<(&mut Compressor, &[&'a [Vec<f64>]])>,
    workers: usize,
) -> Vec<Vec<Result<Vec<u8>>>> {
    let mut outs: Vec<Vec<Option<Result<Vec<u8>>>>> =
        streams.iter().map(|(_, bufs)| (0..bufs.len()).map(|_| None).collect()).collect();
    // Engine-wide metrics (queue depth, worker spread) go to the first
    // stream's recorder; per-block counters go to each block's own stream.
    let engine_obs = streams.first().map(|(c, _)| c.obs.clone()).unwrap_or_default();
    let mut cfgs: Vec<MdzConfig> = Vec::with_capacity(streams.len());
    let mut obses: Vec<Obs> = Vec::with_capacity(streams.len());
    let mut epochs: Vec<CoreState> = Vec::new();
    let mut jobs: Vec<EncodeJob<'a>> = Vec::new();
    let mut slot_of: Vec<(usize, usize)> = Vec::new(); // job slot -> (stream, buffer)

    // Phase 1: serial prologue. Encode every state-changing buffer in
    // order; defer the rest against an epoch snapshot of the stream state.
    for (si, (comp, bufs)) in streams.into_iter().enumerate() {
        cfgs.push(comp.cfg.clone());
        obses.push(comp.obs.clone());
        // Epoch index currently valid for this stream (`None` right after
        // a state-changing encode, so the next deferral re-snapshots).
        let mut cur_epoch: Option<usize> = None;
        for (slot, buf) in bufs.iter().enumerate() {
            if let Err(e) = comp.cfg.validate().and_then(|()| validate_shape(buf)) {
                outs[si][slot] = Some(Err(e));
                continue;
            }
            let is_adaptive = comp.cfg.method == Method::Adaptive;
            // The concrete composition a non-state-changing encode would
            // use; `None` marks an adaptive trial (always serial).
            let concrete: Option<Candidate> = if is_adaptive {
                if comp.adaptive.trial_due(comp.cfg.adapt_interval) {
                    None
                } else {
                    comp.adaptive.current()
                }
            } else {
                Some(Candidate { method: comp.cfg.method, quantizer: comp.cfg.quantizer })
            };
            let deferrable = concrete.is_some_and(|c| {
                let n = buf[0].len();
                // Mirrors the two state-delta sources in
                // `encode_buffer_into`: first-use level detection and
                // (re-)establishing the reference snapshot.
                let detects =
                    matches!(c.method, Method::Vq | Method::Vqt) && comp.state.grid.is_none();
                let sets_ref = comp.state.reference.as_ref().is_none_or(|r| r.len() != n);
                !detects && !sets_ref
            });
            if let (true, Some(candidate)) = (deferrable, concrete) {
                if is_adaptive {
                    comp.adaptive.tick();
                }
                let epoch = *cur_epoch.get_or_insert_with(|| {
                    epochs.push(comp.state.clone());
                    epochs.len() - 1
                });
                comp.obs.incr("core.parallel.deferred_blocks", 1);
                jobs.push(EncodeJob {
                    cfg: si,
                    epoch,
                    method: candidate.method,
                    quantizer: candidate.quantizer,
                    snapshots: buf,
                });
                slot_of.push((si, slot));
            } else {
                comp.obs.incr("core.parallel.serial_blocks", 1);
                let mut block = Vec::new();
                let r = comp.compress_buffer_into(buf, &mut block);
                outs[si][slot] = Some(r.map(|()| block));
                cur_epoch = None;
            }
        }
    }

    // Phase 2: fan the deferred blocks out. Each worker owns one scratch
    // workspace for its lifetime (zero-alloc steady state per worker).
    engine_obs.gauge("core.parallel.queue_depth", jobs.len() as u64);
    let results = fan_out(
        &jobs,
        workers,
        &engine_obs,
        EncodeScratch::default,
        |scratch: &mut EncodeScratch, job: &EncodeJob<'a>| {
            let mut block = Vec::new();
            let r = encode_buffer_into(
                &cfgs[job.cfg],
                &epochs[job.epoch],
                job.method,
                job.quantizer,
                job.snapshots,
                &mut block,
                scratch,
                &obses[job.cfg],
            );
            r.map(|delta| {
                debug_assert!(
                    delta.is_empty(),
                    "deferred block produced a state delta — deferral predicate out of sync"
                );
                block
            })
        },
    );
    for (job_idx, result) in results.into_iter().enumerate() {
        let (si, slot) = slot_of[job_idx];
        outs[si][slot] = Some(result);
    }
    outs.into_iter()
        .map(|stream| stream.into_iter().map(|s| s.expect("every slot filled")).collect())
        .collect()
}

/// A deferred decode block.
struct DecodeJob<'a> {
    /// Index into the per-stream limits table.
    stream: usize,
    /// Index into the shared epoch table of reference snapshots.
    epoch: usize,
    block: &'a [u8],
}

/// Decompresses several independent block streams, fanning state-neutral
/// blocks across `workers` threads.
///
/// The mirror of [`compress_streams`]: blocks that would establish or
/// replace a stream's reference snapshot decode serially in order, all
/// others fan out against an immutable clone of the reference they would
/// have observed. Per-slot results match a serial
/// [`Decompressor::decompress_block`] loop that keeps going after errors.
pub(crate) fn decompress_streams(
    streams: Vec<(&mut Decompressor, &[&[u8]])>,
    workers: usize,
) -> Vec<Vec<Result<Vec<Vec<f64>>>>> {
    type SlotResults = Vec<Option<Result<Vec<Vec<f64>>>>>;
    let mut outs: Vec<SlotResults> =
        streams.iter().map(|(_, blocks)| (0..blocks.len()).map(|_| None).collect()).collect();
    let engine_obs = streams.first().map(|(d, _)| d.obs.clone()).unwrap_or_default();
    let mut limits = Vec::with_capacity(streams.len());
    let mut obses: Vec<Obs> = Vec::with_capacity(streams.len());
    let mut epochs: Vec<Vec<f64>> = Vec::new();
    let mut jobs: Vec<DecodeJob<'_>> = Vec::new();
    let mut slot_of: Vec<(usize, usize)> = Vec::new();

    for (si, (dec, blocks)) in streams.into_iter().enumerate() {
        limits.push(dec.limits());
        obses.push(dec.obs.clone());
        let mut cur_epoch: Option<usize> = None;
        for (slot, block) in blocks.iter().enumerate() {
            // A block leaves decoder state untouched iff the established
            // reference already matches its value count (the mirror of the
            // compressor's reference-update rule).
            let deferrable = {
                let mut pos = 0;
                match BlockHeader::read(block, &mut pos) {
                    Ok(h) => dec.reference.as_ref().is_some_and(|r| r.len() == h.n_values),
                    Err(_) => false,
                }
            };
            if deferrable {
                dec.obs.incr("core.parallel.deferred_blocks", 1);
                let epoch = *cur_epoch.get_or_insert_with(|| {
                    epochs.push(dec.reference.clone().expect("deferrable implies reference"));
                    epochs.len() - 1
                });
                jobs.push(DecodeJob { stream: si, epoch, block });
                slot_of.push((si, slot));
            } else {
                // State-changing (or malformed) block: decode in order on
                // the caller thread. Errors leave state untouched, exactly
                // like the serial loop.
                dec.obs.incr("core.parallel.serial_blocks", 1);
                outs[si][slot] = Some(dec.decompress_block(block));
                cur_epoch = None;
            }
        }
    }

    // Worker context: a private decompressor whose reference is re-pointed
    // at the job's epoch. The scratch inside it persists across jobs.
    struct Ctx {
        dec: Decompressor,
        /// Epoch the worker's decompressor currently holds, to avoid
        /// re-cloning the reference for runs of same-epoch jobs.
        loaded: Option<usize>,
    }
    engine_obs.gauge("core.parallel.queue_depth", jobs.len() as u64);
    let results = fan_out(
        &jobs,
        workers,
        &engine_obs,
        || Ctx { dec: Decompressor::default(), loaded: None },
        |ctx: &mut Ctx, job: &DecodeJob<'_>| {
            ctx.dec.set_limits(limits[job.stream]);
            ctx.dec.obs = obses[job.stream].clone();
            if ctx.loaded != Some(job.epoch) {
                ctx.dec.reference = Some(epochs[job.epoch].clone());
                ctx.loaded = Some(job.epoch);
            }
            // A deferrable block never rewrites the reference (its length
            // already matches), so the epoch stays valid across jobs.
            ctx.dec.decompress_block(job.block)
        },
    );
    for (job_idx, result) in results.into_iter().enumerate() {
        let (si, slot) = slot_of[job_idx];
        outs[si][slot] = Some(result);
    }
    outs.into_iter()
        .map(|stream| stream.into_iter().map(|s| s.expect("every slot filled")).collect())
        .collect()
}

impl Compressor {
    /// Compresses an ordered sequence of buffers, fanning independent
    /// blocks across `opts.workers` threads.
    ///
    /// The returned blocks are **byte-identical** to calling
    /// [`Compressor::compress_buffer`] on each buffer in order, for every
    /// worker count; afterwards the compressor holds the same stream state
    /// as the serial path. On the first error the remaining results are
    /// discarded and the stream state is unspecified — [`reset`] via
    /// constructing a fresh compressor before reuse.
    ///
    /// [`reset`]: crate::Codec::reset
    pub fn compress_buffers_parallel(
        &mut self,
        buffers: &[&[Vec<f64>]],
        opts: &ParallelOptions,
    ) -> Result<Vec<Vec<u8>>> {
        let per_slot = compress_streams(vec![(self, buffers)], opts.workers);
        per_slot.into_iter().next().unwrap_or_default().into_iter().collect()
    }

    /// [`Compressor::compress_buffers_parallel`] for single-precision
    /// buffers: each block is compressed via the lossless `f64` widening
    /// path and tagged `f32`, byte-identical to a serial
    /// [`Compressor::compress_buffer_f32`] loop.
    pub fn compress_buffers_f32_parallel(
        &mut self,
        buffers: &[&[Vec<f32>]],
        opts: &ParallelOptions,
    ) -> Result<Vec<Vec<u8>>> {
        let widened: Vec<Vec<Vec<f64>>> = buffers
            .iter()
            .map(|buf| buf.iter().map(|s| s.iter().map(|&v| f64::from(v)).collect()).collect())
            .collect();
        let refs: Vec<&[Vec<f64>]> = widened.iter().map(Vec::as_slice).collect();
        let mut blocks = self.compress_buffers_parallel(&refs, opts)?;
        for block in &mut blocks {
            block[crate::format::FLAGS_OFFSET] |= crate::format::FLAG_F32;
        }
        Ok(blocks)
    }
}

impl Decompressor {
    /// Decompresses an ordered sequence of blocks, fanning independent
    /// blocks across `opts.workers` threads.
    ///
    /// Results are identical to calling
    /// [`Decompressor::decompress_block`] on each block in order, for
    /// every worker count. Returns the first error in block order, if any;
    /// the decompressor's stream state is then unspecified.
    pub fn decompress_blocks_parallel(
        &mut self,
        blocks: &[&[u8]],
        opts: &ParallelOptions,
    ) -> Result<Vec<Vec<Vec<f64>>>> {
        let per_slot = decompress_streams(vec![(self, blocks)], opts.workers);
        per_slot.into_iter().next().unwrap_or_default().into_iter().collect()
    }
}

impl super::StateDelta {
    /// Whether committing this delta would be a no-op.
    pub(crate) fn is_empty(&self) -> bool {
        self.grid.is_none() && self.reference.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ErrorBound, MdzConfig};

    fn lattice(m: usize, n: usize, drift: f64) -> Vec<Vec<f64>> {
        let mut s = 42u64;
        (0..m)
            .map(|t| {
                (0..n)
                    .map(|i| {
                        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let u = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                        (i % 12) as f64 * 2.0 + u * 0.01 + t as f64 * drift
                    })
                    .collect()
            })
            .collect()
    }

    fn buffers(count: usize) -> Vec<Vec<Vec<f64>>> {
        (0..count).map(|k| lattice(4, 150, 1e-4 * (k + 1) as f64)).collect()
    }

    #[test]
    fn parallel_blocks_match_serial_for_every_method() {
        let bufs = buffers(7);
        let refs: Vec<&[Vec<f64>]> = bufs.iter().map(Vec::as_slice).collect();
        for method in [Method::Vq, Method::Vqt, Method::Mt, Method::Mt2, Method::Adaptive] {
            let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(method);
            let mut serial = Compressor::new(cfg.clone());
            let want: Vec<Vec<u8>> =
                refs.iter().map(|b| serial.compress_buffer(b).unwrap()).collect();
            for workers in [1, 2, 4] {
                let mut par = Compressor::new(cfg.clone());
                let got = par
                    .compress_buffers_parallel(&refs, &ParallelOptions::with_workers(workers))
                    .unwrap();
                assert_eq!(got, want, "{method} with {workers} workers");
            }
        }
    }

    #[test]
    fn parallel_engine_state_matches_serial_afterwards() {
        // Compress half the stream in parallel, then one more buffer on
        // both compressors serially: the follow-up blocks must agree.
        let bufs = buffers(6);
        let refs: Vec<&[Vec<f64>]> = bufs.iter().map(Vec::as_slice).collect();
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(Method::Mt);
        let mut serial = Compressor::new(cfg.clone());
        for b in &refs[..5] {
            serial.compress_buffer(b).unwrap();
        }
        let mut par = Compressor::new(cfg);
        par.compress_buffers_parallel(&refs[..5], &ParallelOptions::with_workers(4)).unwrap();
        assert_eq!(
            par.compress_buffer(&bufs[5]).unwrap(),
            serial.compress_buffer(&bufs[5]).unwrap()
        );
    }

    #[test]
    fn adaptive_trial_cadence_survives_parallel_encoding() {
        // A short adapt interval forces several trials inside one batch.
        let bufs = buffers(9);
        let refs: Vec<&[Vec<f64>]> = bufs.iter().map(Vec::as_slice).collect();
        let mut cfg = MdzConfig::new(ErrorBound::Absolute(1e-3));
        cfg.adapt_interval = 3;
        let mut serial = Compressor::new(cfg.clone());
        let want: Vec<Vec<u8>> = refs.iter().map(|b| serial.compress_buffer(b).unwrap()).collect();
        let mut par = Compressor::new(cfg);
        let got = par.compress_buffers_parallel(&refs, &ParallelOptions::with_workers(4)).unwrap();
        assert_eq!(got, want);
        assert_eq!(par.current_adaptive_choice(), serial.current_adaptive_choice());
    }

    #[test]
    fn shape_change_mid_stream_stays_identical() {
        // A different particle count re-establishes the reference; that
        // buffer must be treated as a serial state boundary.
        let mut bufs = buffers(5);
        bufs[2] = lattice(4, 90, 1e-4);
        bufs[3] = lattice(4, 90, 2e-4);
        let refs: Vec<&[Vec<f64>]> = bufs.iter().map(Vec::as_slice).collect();
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(Method::Mt);
        let mut serial = Compressor::new(cfg.clone());
        let want: Vec<Vec<u8>> = refs.iter().map(|b| serial.compress_buffer(b).unwrap()).collect();
        let mut par = Compressor::new(cfg);
        let got = par.compress_buffers_parallel(&refs, &ParallelOptions::with_workers(4)).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn parallel_decode_round_trips_and_matches_serial() {
        let bufs = buffers(6);
        let refs: Vec<&[Vec<f64>]> = bufs.iter().map(Vec::as_slice).collect();
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(Method::Vqt);
        let mut comp = Compressor::new(cfg);
        let blocks = comp.compress_buffers_parallel(&refs, &ParallelOptions::serial()).unwrap();
        let block_refs: Vec<&[u8]> = blocks.iter().map(Vec::as_slice).collect();
        let mut serial = Decompressor::new();
        let want: Vec<_> = block_refs.iter().map(|b| serial.decompress_block(b).unwrap()).collect();
        for workers in [1, 2, 4] {
            let mut par = Decompressor::new();
            let got = par
                .decompress_blocks_parallel(&block_refs, &ParallelOptions::with_workers(workers))
                .unwrap();
            assert_eq!(got, want, "{workers} workers");
        }
    }

    #[test]
    fn parallel_decode_propagates_first_error() {
        let bufs = buffers(3);
        let refs: Vec<&[Vec<f64>]> = bufs.iter().map(Vec::as_slice).collect();
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(Method::Vq);
        let mut comp = Compressor::new(cfg);
        let blocks = comp.compress_buffers_parallel(&refs, &ParallelOptions::serial()).unwrap();
        let mut corrupt = blocks[1].clone();
        let mid = corrupt.len() / 2;
        corrupt[mid..].iter_mut().for_each(|b| *b ^= 0x5A);
        let block_refs: Vec<&[u8]> = vec![&blocks[0], &corrupt, &blocks[2]];
        let mut par = Decompressor::new();
        assert!(par
            .decompress_blocks_parallel(&block_refs, &ParallelOptions::with_workers(4))
            .is_err());
    }

    #[test]
    fn options_constructors() {
        assert_eq!(ParallelOptions::default(), ParallelOptions::serial());
        assert_eq!(ParallelOptions::with_workers(0).workers, 1);
        assert!(!ParallelOptions::with_workers(1).is_parallel());
        assert!(ParallelOptions::with_workers(2).is_parallel());
        assert!(ParallelOptions::auto().workers >= 1);
    }

    #[test]
    fn empty_and_single_buffer_batches() {
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3));
        let mut c = Compressor::new(cfg);
        assert!(c.compress_buffers_parallel(&[], &ParallelOptions::auto()).unwrap().is_empty());
        let buf = lattice(3, 50, 0.0);
        let got = c.compress_buffers_parallel(&[buf.as_slice()], &ParallelOptions::auto()).unwrap();
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn f32_parallel_matches_serial_f32_loop() {
        let wide = buffers(5);
        let narrow: Vec<Vec<Vec<f32>>> = wide
            .iter()
            .map(|buf| buf.iter().map(|s| s.iter().map(|&v| v as f32).collect()).collect())
            .collect();
        let refs: Vec<&[Vec<f32>]> = narrow.iter().map(Vec::as_slice).collect();
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(Method::Vqt);
        let mut serial = Compressor::new(cfg.clone());
        let want: Vec<Vec<u8>> =
            refs.iter().map(|b| serial.compress_buffer_f32(b).unwrap()).collect();
        let mut par = Compressor::new(cfg);
        let got =
            par.compress_buffers_f32_parallel(&refs, &ParallelOptions::with_workers(4)).unwrap();
        assert_eq!(got, want);
    }
}
