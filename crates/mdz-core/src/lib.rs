//! MDZ: an adaptive error-bounded lossy compressor for molecular-dynamics
//! particle data (Zhao et al., ICDE 2022).
//!
//! MD trajectory output is a stream of *snapshots* (one `f64` per particle
//! per axis), compressed in buffers of `BS` snapshots to bound memory. MDZ
//! follows the SZ pipeline — prediction, linear-scale quantization, Huffman
//! coding, dictionary coding — and contributes three predictors tuned to the
//! spatial/temporal structure of MD data, plus a runtime selector:
//!
//! * [`Method::Vq`] — vector quantization: coordinates cluster at equally
//!   spaced levels (crystal planes); each value is predicted by its level
//!   centroid, and the level-index deltas are entropy-coded alongside the
//!   quantized residuals. Purely spatial: any snapshot decompresses alone.
//! * [`Method::Vqt`] — VQ on the first snapshot of each buffer,
//!   previous-snapshot prediction for the rest.
//! * [`Method::Mt`] — the first snapshot of each buffer is predicted from
//!   the *initial* snapshot of the whole stream, the rest from their
//!   predecessors; ideal for temporally quiescent data.
//! * [`Method::Adaptive`] (ADP, the default) — re-evaluates all three every
//!   50 buffers on live data and keeps the winner.
//!
//! # Example
//!
//! ```
//! use mdz_core::{Compressor, Decompressor, ErrorBound, MdzConfig, Method};
//!
//! let snapshots: Vec<Vec<f64>> = (0..4)
//!     .map(|t| (0..100).map(|i| (i % 10) as f64 * 2.5 + t as f64 * 1e-4).collect())
//!     .collect();
//! let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3));
//! let mut comp = Compressor::new(cfg);
//! let block = comp.compress_buffer(&snapshots).unwrap();
//! let mut dec = Decompressor::new();
//! let out = dec.decompress_block(&block).unwrap();
//! for (s, o) in snapshots.iter().zip(out.iter()) {
//!     for (a, b) in s.iter().zip(o.iter()) {
//!         assert!((a - b).abs() <= 1e-3);
//!     }
//! }
//! ```
//!
//! Batch entry points ([`Compressor::compress_buffers_parallel`],
//! [`MdzCodec::compress_buffers`], [`ParallelTrajectoryCompressor`]) fan
//! independent axis×buffer blocks across worker threads configured by
//! [`ParallelOptions`]; their output is byte-identical to the serial path.

#![deny(missing_docs)]

pub mod adaptive;
pub mod bound;
pub mod buffer;
pub mod checksum;
pub mod codec;
pub mod format;
pub(crate) mod pipeline;
pub mod quant;
pub mod seq;
pub(crate) mod simd;
pub mod stage;
pub mod traj;

pub use mdz_entropy::kernel;

pub use adaptive::{AdaptiveState, Candidate};
pub use bound::ErrorBound;
pub use buffer::{BlockInfo, Compressor, DecodeLimits, Decompressor};
pub use codec::{Codec, MdzCodec};
pub use format::Method;
pub use mdz_obs::{Obs, Recorder};
pub use pipeline::parallel::ParallelOptions;
pub use quant::{BitAdaptiveQuantizer, LinearQuantizer};
pub use stage::{HuffmanStage, LosslessStage, Lz77Stage, Quantizer, RangeStage};
pub use traj::{
    compress_frames, decompress_frames, Frame, ParallelTrajectoryCompressor,
    ParallelTrajectoryDecompressor, TrajReader, TrajWriter, TrajectoryCompressor,
    TrajectoryDecompressor,
};

use mdz_entropy::EntropyError;

/// Errors surfaced by compression and decompression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MdzError {
    /// Underlying entropy/dictionary stream was malformed.
    Stream(EntropyError),
    /// The block header is not an MDZ block or uses an unknown version.
    BadHeader(&'static str),
    /// The input shape is invalid (empty buffer, ragged snapshots, …).
    BadInput(&'static str),
    /// Configuration is invalid (non-positive error bound, zero radius, …).
    BadConfig(&'static str),
    /// The block body violates an invariant of the format (checksum
    /// mismatch, out-of-range quantization code, forged count, …).
    Corrupt {
        /// Which invariant the input violated.
        what: &'static str,
    },
    /// A header-declared size exceeded the caller's [`DecodeLimits`] budget.
    LimitExceeded {
        /// Which declared quantity blew the budget.
        what: &'static str,
        /// The budget that was in force.
        limit: usize,
    },
    /// An underlying I/O sink or source failed (streaming writers such as
    /// [`TrajWriter`], archive storage backends). Carries the
    /// [`std::io::ErrorKind`] plus the rendered message so the error type
    /// stays `Clone + PartialEq` while callers can still tell a timeout
    /// (`TimedOut`/`WouldBlock`) from a hard failure.
    Io {
        /// Kind of the underlying [`std::io::Error`].
        kind: std::io::ErrorKind,
        /// Rendered error message.
        msg: String,
    },
}

impl MdzError {
    /// Builds an [`MdzError::Io`] from a kind and message.
    pub fn io(kind: std::io::ErrorKind, msg: impl Into<String>) -> Self {
        MdzError::Io { kind, msg: msg.into() }
    }

    /// True when this is an I/O timeout (`TimedOut` or `WouldBlock`) — the
    /// class of transient failure retry policies may safely retry.
    pub fn is_io_timeout(&self) -> bool {
        matches!(
            self,
            MdzError::Io { kind: std::io::ErrorKind::TimedOut, .. }
                | MdzError::Io { kind: std::io::ErrorKind::WouldBlock, .. }
        )
    }
}

impl From<std::io::Error> for MdzError {
    fn from(e: std::io::Error) -> Self {
        MdzError::Io { kind: e.kind(), msg: e.to_string() }
    }
}

impl From<EntropyError> for MdzError {
    fn from(e: EntropyError) -> Self {
        match e {
            // Budget violations keep their identity so callers can tell
            // "tune DecodeLimits" apart from "the bytes are bad".
            EntropyError::LimitExceeded { what, limit } => MdzError::LimitExceeded { what, limit },
            other => MdzError::Stream(other),
        }
    }
}

impl std::fmt::Display for MdzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MdzError::Stream(e) => write!(f, "stream error: {e}"),
            MdzError::BadHeader(w) => write!(f, "bad header: {w}"),
            MdzError::BadInput(w) => write!(f, "bad input: {w}"),
            MdzError::BadConfig(w) => write!(f, "bad config: {w}"),
            MdzError::Corrupt { what } => write!(f, "corrupt block: {what}"),
            MdzError::LimitExceeded { what, limit } => {
                write!(f, "decode budget exceeded: {what} > {limit}")
            }
            MdzError::Io { msg, .. } => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for MdzError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, MdzError>;

/// Top-level configuration for a [`Compressor`].
#[derive(Debug, Clone)]
pub struct MdzConfig {
    /// The error bound every reconstructed value must satisfy.
    pub bound: ErrorBound,
    /// Compression method; [`Method::Adaptive`] by default.
    pub method: Method,
    /// Quantization radius: codes span `[1, 2·radius)`, i.e. the paper's
    /// "quantization scale" is `2·radius` (default scale 1024 → radius 512).
    pub radius: u32,
    /// Use Seq-2 (particle-major) interleaving before entropy coding.
    pub seq2: bool,
    /// Re-evaluate the adaptive choice every this many buffers (paper: 50).
    pub adapt_interval: u32,
    /// Sampling fraction for level detection (paper: 0.10).
    pub level_sample_fraction: f64,
    /// Maximum clusters considered by level detection (paper: 150).
    pub max_levels: usize,
    /// Entropy coder for the integer streams (paper/SZ default: Huffman).
    pub entropy: EntropyStage,
    /// Include the second-order predictor [`Method::Mt2`] among the
    /// adaptive candidates (extension; off by default to match the paper).
    pub extended_candidates: bool,
    /// Which quantizer codes residuals (the classic fixed linear scale by
    /// default; bit-adaptive blocks carry the version-2 flag).
    pub quantizer: QuantizerKind,
    /// Let the adaptive selector also trial bit-adaptive quantization and
    /// keep whichever composition compresses best (off by default so ADP
    /// output matches the paper's fixed-scale pipeline bit for bit).
    pub bit_adaptive_candidates: bool,
}

/// Which quantizer stage a [`Compressor`] composes into its pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QuantizerKind {
    /// Fixed `[1, 2·radius)` linear scale ([`LinearQuantizer`]; default).
    #[default]
    Linear,
    /// Per-chunk bit widths sized to local residual magnitude
    /// ([`BitAdaptiveQuantizer`]), serialized behind
    /// [`format::FLAG_BIT_ADAPTIVE`].
    BitAdaptive {
        /// Codes per width region in the wire format.
        chunk: usize,
    },
}

impl QuantizerKind {
    /// Bit-adaptive quantization with the default chunk size.
    pub const BIT_ADAPTIVE_DEFAULT: QuantizerKind =
        QuantizerKind::BitAdaptive { chunk: BitAdaptiveQuantizer::DEFAULT_CHUNK };
}

impl std::fmt::Display for QuantizerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantizerKind::Linear => write!(f, "linear"),
            QuantizerKind::BitAdaptive { .. } => write!(f, "bit-adaptive"),
        }
    }
}

/// Which entropy coder the pipeline's third stage uses.
///
/// The SZ framework (and the paper) use Huffman coding; the range coder is
/// provided as an ablation — it removes Huffman's ≤1-bit-per-symbol rounding
/// loss at some speed cost (see the `ablations` experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EntropyStage {
    /// Canonical Huffman coding (default).
    #[default]
    Huffman,
    /// Static range (arithmetic) coding.
    Range,
}

impl MdzConfig {
    /// Creates a configuration with the paper's defaults.
    pub fn new(bound: ErrorBound) -> Self {
        Self {
            bound,
            method: Method::Adaptive,
            radius: 512,
            seq2: true,
            adapt_interval: 50,
            level_sample_fraction: 0.10,
            max_levels: 150,
            entropy: EntropyStage::default(),
            extended_candidates: false,
            quantizer: QuantizerKind::default(),
            bit_adaptive_candidates: false,
        }
    }

    /// Overrides the compression method.
    pub fn with_method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Overrides the quantization radius (half the quantization scale).
    pub fn with_radius(mut self, radius: u32) -> Self {
        self.radius = radius;
        self
    }

    /// Selects Seq-1 (snapshot-major) or Seq-2 (particle-major) ordering.
    pub fn with_seq2(mut self, seq2: bool) -> Self {
        self.seq2 = seq2;
        self
    }

    /// Overrides the entropy coder used for the integer streams.
    pub fn with_entropy(mut self, entropy: EntropyStage) -> Self {
        self.entropy = entropy;
        self
    }

    /// Adds the second-order predictor to the adaptive candidate set.
    pub fn with_extended_candidates(mut self, on: bool) -> Self {
        self.extended_candidates = on;
        self
    }

    /// Overrides the quantizer stage.
    pub fn with_quantizer(mut self, quantizer: QuantizerKind) -> Self {
        self.quantizer = quantizer;
        self
    }

    /// Adds bit-adaptive quantization to the adaptive candidate set.
    pub fn with_bit_adaptive_candidates(mut self, on: bool) -> Self {
        self.bit_adaptive_candidates = on;
        self
    }

    /// Validates field ranges.
    pub fn validate(&self) -> Result<()> {
        if self.radius < 2 || self.radius > (1 << 24) {
            return Err(MdzError::BadConfig("radius must be in [2, 2^24]"));
        }
        if self.adapt_interval == 0 {
            return Err(MdzError::BadConfig("adapt_interval must be positive"));
        }
        if let QuantizerKind::BitAdaptive { chunk } = self.quantizer {
            if !(1..=BitAdaptiveQuantizer::MAX_CHUNK).contains(&chunk) {
                return Err(MdzError::BadConfig("bit-adaptive chunk must be in [1, 2^20]"));
            }
        }
        self.bound.validate()
    }
}

/// One-shot compression of a single buffer with a fresh [`Compressor`].
pub fn compress(snapshots: &[Vec<f64>], cfg: MdzConfig) -> Result<Vec<u8>> {
    Compressor::new(cfg).compress_buffer(snapshots)
}

/// One-shot decompression of a single block with a fresh [`Decompressor`].
pub fn decompress(block: &[u8]) -> Result<Vec<Vec<f64>>> {
    Decompressor::new().decompress_block(block)
}
