//! Three-axis trajectory convenience layer.
//!
//! MD positions are `(x, y, z)` triples, but the paper compresses each axis
//! as an independent stream (each axis may even pick a different method —
//! Table VI shows ADP choosing VQ for x/y and MT for z on Copper-B). This
//! module wraps three per-axis [`Codec`]s behind one call and frames the
//! three blocks in a tiny container. The axes are MDZ by default but any
//! [`Codec`] mix works ([`TrajectoryCompressor::from_codecs`]).

use crate::buffer::{Compressor, DecodeLimits, Decompressor};
use crate::codec::{Codec, MdzCodec};
use crate::format::{read_frame, write_frame, FRAME_MAGIC};
use crate::pipeline::parallel::{compress_streams, decompress_streams, ParallelOptions};
use crate::{ErrorBound, MdzConfig, MdzError, Result};
use mdz_entropy::{read_uvarint, write_uvarint};

/// Container magic for a three-axis block group.
const TRAJ_MAGIC: [u8; 4] = *b"MDZT";

/// One snapshot of particle positions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Frame {
    /// Per-particle x coordinates.
    pub x: Vec<f64>,
    /// Per-particle y coordinates.
    pub y: Vec<f64>,
    /// Per-particle z coordinates.
    pub z: Vec<f64>,
}

impl Frame {
    /// Creates a frame from per-axis vectors (must be equally long).
    pub fn new(x: Vec<f64>, y: Vec<f64>, z: Vec<f64>) -> Self {
        assert!(x.len() == y.len() && y.len() == z.len(), "axes must be equally long");
        Self { x, y, z }
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the frame holds no particles.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// Stateful three-axis compressor.
pub struct TrajectoryCompressor {
    axes: [Box<dyn Codec>; 3],
    bound: ErrorBound,
}

impl TrajectoryCompressor {
    /// Creates one MDZ codec per axis from a shared configuration.
    pub fn new(cfg: MdzConfig) -> Self {
        let bound = cfg.bound;
        let axes: [Box<dyn Codec>; 3] =
            std::array::from_fn(|_| Box::new(MdzCodec::from_config(cfg.clone())) as Box<dyn Codec>);
        Self { axes, bound }
    }

    /// Builds a trajectory compressor from three arbitrary per-axis codecs.
    pub fn from_codecs(axes: [Box<dyn Codec>; 3], bound: ErrorBound) -> Self {
        Self { axes, bound }
    }

    /// Compresses a buffer of frames into one container blob.
    pub fn compress_buffer(&mut self, frames: &[Frame]) -> Result<Vec<u8>> {
        if frames.is_empty() {
            return Err(MdzError::BadInput("buffer has no frames"));
        }
        let xs: Vec<Vec<f64>> = frames.iter().map(|f| f.x.clone()).collect();
        let ys: Vec<Vec<f64>> = frames.iter().map(|f| f.y.clone()).collect();
        let zs: Vec<Vec<f64>> = frames.iter().map(|f| f.z.clone()).collect();
        let blocks = [
            self.axes[0].compress_buffer(&xs, self.bound)?,
            self.axes[1].compress_buffer(&ys, self.bound)?,
            self.axes[2].compress_buffer(&zs, self.bound)?,
        ];
        Ok(assemble(&blocks))
    }

    /// Like [`Self::compress_buffer`] but compresses the three axes on
    /// scoped threads. The per-axis streams are independent by design
    /// (§III: each axis is a separate SZ stream), so the output is
    /// byte-identical to the sequential path. This is what `Codec: Send`
    /// buys: each thread drives one axis codec (and its scratch workspace)
    /// exclusively.
    pub fn compress_buffer_parallel(&mut self, frames: &[Frame]) -> Result<Vec<u8>> {
        if frames.is_empty() {
            return Err(MdzError::BadInput("buffer has no frames"));
        }
        let series: [Vec<Vec<f64>>; 3] = [
            frames.iter().map(|f| f.x.clone()).collect(),
            frames.iter().map(|f| f.y.clone()).collect(),
            frames.iter().map(|f| f.z.clone()).collect(),
        ];
        let bound = self.bound;
        let mut results: [Result<Vec<u8>>; 3] = [Ok(Vec::new()), Ok(Vec::new()), Ok(Vec::new())];
        std::thread::scope(|scope| {
            for ((axis, buf), slot) in
                self.axes.iter_mut().zip(series.iter()).zip(results.iter_mut())
            {
                scope.spawn(move || {
                    *slot = axis.compress_buffer(buf, bound);
                });
            }
        });
        let [x, y, z] = results;
        Ok(assemble(&[x?, y?, z?]))
    }

    /// Like [`Self::compress_buffer`] but wraps the container in a
    /// checksummed [`crate::format::FRAME_MAGIC`] frame, so an archival
    /// stream of buffers can be scanned with [`TrajReader`] and survives
    /// localized corruption by dropping only the damaged buffer.
    pub fn compress_buffer_framed(&mut self, frames: &[Frame]) -> Result<Vec<u8>> {
        let container = self.compress_buffer(frames)?;
        let mut out = Vec::with_capacity(container.len() + crate::format::FRAME_HEADER_LEN);
        write_frame(&container, &mut out)?;
        Ok(out)
    }
}

/// Scanning reader over a stream of checksummed frames.
///
/// Yields each frame's verified payload in order. When a frame fails its
/// checksum — or the stream contains garbage between frames — the reader
/// *resynchronizes*: it scans forward for the next [`FRAME_MAGIC`] marker
/// and continues from there, so one damaged buffer costs exactly that
/// buffer, not the rest of the stream. [`TrajReader::skipped`] reports how
/// many damaged regions were skipped.
pub struct TrajReader<'a> {
    data: &'a [u8],
    pos: usize,
    /// Contiguous damaged regions skipped so far (one region may span
    /// several false magic hits).
    skipped: usize,
    /// Whether the scanner is currently inside a damaged region (so a chain
    /// of failed resync candidates counts as one skip).
    resyncing: bool,
}

impl<'a> TrajReader<'a> {
    /// Starts scanning `data` from the beginning.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0, skipped: 0, resyncing: false }
    }

    /// Number of damaged regions skipped so far.
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Byte offset the scanner will read next.
    pub fn position(&self) -> usize {
        self.pos
    }
}

impl<'a> Iterator for TrajReader<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        while self.pos < self.data.len() {
            match read_frame(self.data, &mut self.pos) {
                Ok(payload) => {
                    self.resyncing = false;
                    return Some(payload);
                }
                Err(_) => {
                    if !self.resyncing {
                        self.resyncing = true;
                        self.skipped += 1;
                    }
                    // Scan forward for the next magic marker, starting one
                    // byte past the failed position so a corrupt frame whose
                    // magic is intact doesn't loop forever.
                    match self.data[self.pos + 1..]
                        .windows(FRAME_MAGIC.len())
                        .position(|w| w == FRAME_MAGIC)
                    {
                        Some(off) => self.pos += 1 + off,
                        None => {
                            self.pos = self.data.len();
                            return None;
                        }
                    }
                }
            }
        }
        None
    }
}

/// Splits a trajectory container into its three per-axis blocks.
///
/// Public for layers that address axis blocks individually (the `mdz-store`
/// epoch decoder); most callers want [`TrajectoryDecompressor`] instead.
pub fn split_container(data: &[u8]) -> Result<[&[u8]; 3]> {
    let magic = data.get(..4).ok_or(MdzError::BadHeader("truncated container"))?;
    if magic != TRAJ_MAGIC {
        return Err(MdzError::BadHeader("not an MDZ trajectory container"));
    }
    let mut pos = 4;
    let mut blocks = [&data[0..0]; 3];
    for slot in &mut blocks {
        let len = read_uvarint(data, &mut pos)? as usize;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= data.len())
            .ok_or(MdzError::BadHeader("truncated axis block"))?;
        *slot = &data[pos..end];
        pos = end;
    }
    Ok(blocks)
}

/// Zips three per-axis snapshot lists back into frames, checking that the
/// axes agree on snapshot and particle counts.
fn zip_frames(x: Vec<Vec<f64>>, y: Vec<Vec<f64>>, z: Vec<Vec<f64>>) -> Result<Vec<Frame>> {
    if x.len() != y.len() || y.len() != z.len() {
        return Err(MdzError::BadHeader("axis snapshot counts disagree"));
    }
    let mut frames = Vec::with_capacity(x.len());
    for ((x, y), z) in x.into_iter().zip(y).zip(z) {
        if x.len() != y.len() || y.len() != z.len() {
            return Err(MdzError::BadHeader("axis particle counts disagree"));
        }
        frames.push(Frame { x, y, z });
    }
    Ok(frames)
}

/// Frames three per-axis blocks into the trajectory container.
///
/// Inverse of [`split_container`]; public for layers that produce axis
/// blocks through [`crate::Compressor`] directly (the `mdz-store` epoch
/// writer) yet must stay byte-compatible with [`TrajectoryCompressor`].
pub fn assemble_container(blocks: &[Vec<u8>; 3]) -> Vec<u8> {
    assemble(blocks)
}

fn assemble(blocks: &[Vec<u8>; 3]) -> Vec<u8> {
    let mut out = Vec::with_capacity(blocks.iter().map(Vec::len).sum::<usize>() + 16);
    out.extend_from_slice(&TRAJ_MAGIC);
    for b in blocks {
        write_uvarint(&mut out, b.len() as u64);
        out.extend_from_slice(b);
    }
    out
}

/// Stateful three-axis decompressor.
pub struct TrajectoryDecompressor {
    axes: [Box<dyn Codec>; 3],
}

impl Default for TrajectoryDecompressor {
    fn default() -> Self {
        Self { axes: std::array::from_fn(|_| Box::new(MdzCodec::default()) as Box<dyn Codec>) }
    }
}

impl TrajectoryDecompressor {
    /// Creates an MDZ decompressor with empty stream state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a trajectory decompressor from three arbitrary per-axis
    /// codecs (must match the codecs that produced the container).
    pub fn from_codecs(axes: [Box<dyn Codec>; 3]) -> Self {
        Self { axes }
    }

    /// Decompresses one container blob back into frames.
    pub fn decompress_buffer(&mut self, data: &[u8]) -> Result<Vec<Frame>> {
        let blocks = split_container(data)?;
        let x = self.axes[0].decompress_buffer(blocks[0])?;
        let y = self.axes[1].decompress_buffer(blocks[1])?;
        let z = self.axes[2].decompress_buffer(blocks[2])?;
        zip_frames(x, y, z)
    }
}

/// Three-axis compressor that fans axis×buffer blocks across workers.
///
/// Where [`TrajectoryCompressor`] parallelizes at most across the three
/// axes (one thread each), this type feeds *every* axis×buffer block of a
/// batch into the block engine
/// ([`Compressor::compress_buffers_parallel`]), so a batch of `B` buffers
/// exposes up to `3·B` units of work. Output is **byte-identical** to the
/// serial path for every worker count. The axes are always MDZ codecs
/// (the engine needs concrete [`Compressor`]s, not `dyn Codec`).
pub struct ParallelTrajectoryCompressor {
    axes: [Compressor; 3],
    bound: ErrorBound,
    par: ParallelOptions,
}

impl ParallelTrajectoryCompressor {
    /// Creates one MDZ compressor per axis from a shared configuration,
    /// initially serial — set workers with
    /// [`ParallelTrajectoryCompressor::with_parallelism`].
    pub fn new(cfg: MdzConfig) -> Self {
        let bound = cfg.bound;
        Self {
            axes: std::array::from_fn(|_| Compressor::new(cfg.clone())),
            bound,
            par: ParallelOptions::serial(),
        }
    }

    /// Installs a worker configuration for subsequent calls.
    pub fn with_parallelism(mut self, par: ParallelOptions) -> Self {
        self.par = par;
        self
    }

    /// Replaces the worker configuration applied to subsequent calls.
    pub fn set_parallelism(&mut self, par: ParallelOptions) {
        self.par = par;
    }

    /// Compresses an ordered batch of frame buffers into one container
    /// blob per buffer, byte-identical to
    /// [`TrajectoryCompressor::compress_buffer`] called in order.
    ///
    /// On error the stream state is unspecified; rebuild before reuse.
    pub fn compress_buffers(&mut self, buffers: &[&[Frame]]) -> Result<Vec<Vec<u8>>> {
        if buffers.iter().any(|frames| frames.is_empty()) {
            return Err(MdzError::BadInput("buffer has no frames"));
        }
        // axis → buffer → snapshots
        let series: [Vec<Vec<Vec<f64>>>; 3] = [
            buffers.iter().map(|fs| fs.iter().map(|f| f.x.clone()).collect()).collect(),
            buffers.iter().map(|fs| fs.iter().map(|f| f.y.clone()).collect()).collect(),
            buffers.iter().map(|fs| fs.iter().map(|f| f.z.clone()).collect()).collect(),
        ];
        let refs: Vec<Vec<&[Vec<f64>]>> =
            series.iter().map(|bufs| bufs.iter().map(Vec::as_slice).collect()).collect();
        for axis in &mut self.axes {
            axis.set_bound(self.bound);
        }
        let streams = self
            .axes
            .iter_mut()
            .zip(refs.iter())
            .map(|(axis, bufs)| (axis, bufs.as_slice()))
            .collect();
        let mut per_axis = compress_streams(streams, self.par.workers).into_iter();
        let (xs, ys, zs) = (
            per_axis.next().expect("three streams"),
            per_axis.next().expect("three streams"),
            per_axis.next().expect("three streams"),
        );
        // Surface the first failure in buffer order, then axis order.
        let mut out = Vec::with_capacity(buffers.len());
        for ((x, y), z) in xs.into_iter().zip(ys).zip(zs) {
            out.push(assemble(&[x?, y?, z?]));
        }
        Ok(out)
    }

    /// [`ParallelTrajectoryCompressor::compress_buffers`] with each
    /// container wrapped in a checksummed frame, ready for a
    /// [`TrajReader`]-scannable archival stream.
    pub fn compress_buffers_framed(&mut self, buffers: &[&[Frame]]) -> Result<Vec<Vec<u8>>> {
        let containers = self.compress_buffers(buffers)?;
        containers
            .into_iter()
            .map(|c| {
                let mut framed = Vec::with_capacity(c.len() + crate::format::FRAME_HEADER_LEN);
                write_frame(&c, &mut framed)?;
                Ok(framed)
            })
            .collect()
    }
}

/// Three-axis decompressor that fans axis×buffer blocks across workers.
///
/// The decode mirror of [`ParallelTrajectoryCompressor`]: a batch of
/// container blobs is split into per-axis block streams and fed to
/// [`Decompressor::decompress_blocks_parallel`]. Results match
/// [`TrajectoryDecompressor::decompress_buffer`] called in order.
pub struct ParallelTrajectoryDecompressor {
    axes: [Decompressor; 3],
    par: ParallelOptions,
}

impl Default for ParallelTrajectoryDecompressor {
    fn default() -> Self {
        Self::new()
    }
}

impl ParallelTrajectoryDecompressor {
    /// Creates an MDZ decompressor with empty stream state, initially
    /// serial.
    pub fn new() -> Self {
        Self { axes: std::array::from_fn(|_| Decompressor::new()), par: ParallelOptions::serial() }
    }

    /// Installs a worker configuration for subsequent calls.
    pub fn with_parallelism(mut self, par: ParallelOptions) -> Self {
        self.par = par;
        self
    }

    /// Replaces the worker configuration applied to subsequent calls.
    pub fn set_parallelism(&mut self, par: ParallelOptions) {
        self.par = par;
    }

    /// Installs a decode budget on all three axis decompressors.
    pub fn with_decode_limits(mut self, limits: DecodeLimits) -> Self {
        for axis in &mut self.axes {
            axis.set_limits(limits);
        }
        self
    }

    /// Decompresses an ordered batch of container blobs back into frame
    /// buffers.
    ///
    /// On error the stream state is unspecified; rebuild before reuse.
    pub fn decompress_buffers(&mut self, containers: &[&[u8]]) -> Result<Vec<Vec<Frame>>> {
        let split: Vec<[&[u8]; 3]> =
            containers.iter().map(|c| split_container(c)).collect::<Result<_>>()?;
        let blocks: Vec<Vec<&[u8]>> =
            (0..3).map(|axis| split.iter().map(|s| s[axis]).collect()).collect();
        let streams = self
            .axes
            .iter_mut()
            .zip(blocks.iter())
            .map(|(axis, bs)| (axis, bs.as_slice()))
            .collect();
        let mut per_axis = decompress_streams(streams, self.par.workers).into_iter();
        let (xs, ys, zs) = (
            per_axis.next().expect("three streams"),
            per_axis.next().expect("three streams"),
            per_axis.next().expect("three streams"),
        );
        let mut out = Vec::with_capacity(containers.len());
        for ((x, y), z) in xs.into_iter().zip(ys).zip(zs) {
            out.push(zip_frames(x?, y?, z?)?);
        }
        Ok(out)
    }
}

impl<'a> TrajReader<'a> {
    /// Collects every intact frame payload remaining in the stream and
    /// decodes them concurrently through `dec`.
    ///
    /// Corrupted regions are skipped exactly as in iteration (check
    /// [`TrajReader::skipped`] afterwards); the surviving buffers decode
    /// with the same results, in the same order, as a serial loop over
    /// [`TrajectoryDecompressor::decompress_buffer`].
    pub fn decode_all_parallel(
        &mut self,
        dec: &mut ParallelTrajectoryDecompressor,
    ) -> Result<Vec<Vec<Frame>>> {
        let payloads: Vec<&[u8]> = self.by_ref().collect();
        dec.decompress_buffers(&payloads)
    }
}

/// Streaming writer producing a [`TrajReader`]-compatible framed stream.
///
/// Wraps any [`std::io::Write`] sink and a [`ParallelTrajectoryCompressor`]:
/// each buffer of frames is compressed (fanning blocks across the
/// configured workers), wrapped in a checksummed frame, and appended to the
/// sink. The byte stream is identical for every worker count.
pub struct TrajWriter<W: std::io::Write> {
    sink: W,
    comp: ParallelTrajectoryCompressor,
}

impl<W: std::io::Write> TrajWriter<W> {
    /// Creates a writer compressing with one MDZ codec per axis.
    pub fn new(sink: W, cfg: MdzConfig) -> Self {
        Self { sink, comp: ParallelTrajectoryCompressor::new(cfg) }
    }

    /// Installs a worker configuration for subsequent writes.
    pub fn with_parallelism(mut self, par: ParallelOptions) -> Self {
        self.comp.set_parallelism(par);
        self
    }

    /// Compresses one buffer of frames and appends its frame to the sink.
    /// Returns the number of bytes written.
    pub fn write_buffer(&mut self, frames: &[Frame]) -> Result<usize> {
        self.write_buffers(&[frames])
    }

    /// Compresses an ordered batch of buffers (fanning axis×buffer blocks
    /// across workers) and appends their frames to the sink in order.
    /// Returns the total number of bytes written.
    pub fn write_buffers(&mut self, buffers: &[&[Frame]]) -> Result<usize> {
        let framed = self.comp.compress_buffers_framed(buffers)?;
        let mut written = 0;
        for f in &framed {
            self.sink.write_all(f)?;
            written += f.len();
        }
        Ok(written)
    }

    /// Flushes the underlying sink.
    pub fn flush(&mut self) -> Result<()> {
        Ok(self.sink.flush()?)
    }

    /// Consumes the writer, returning the sink.
    pub fn into_inner(self) -> W {
        self.sink
    }
}

/// One-shot frame-buffer compression with a fresh compressor.
pub fn compress_frames(frames: &[Frame], cfg: MdzConfig) -> Result<Vec<u8>> {
    TrajectoryCompressor::new(cfg).compress_buffer(frames)
}

/// One-shot frame-buffer decompression with a fresh decompressor.
pub fn decompress_frames(data: &[u8]) -> Result<Vec<Frame>> {
    TrajectoryDecompressor::new().decompress_buffer(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ErrorBound, Method};

    fn frames(m: usize, n: usize) -> Vec<Frame> {
        (0..m)
            .map(|t| {
                let mk = |off: f64| -> Vec<f64> {
                    (0..n).map(|i| (i % 8) as f64 * 2.0 + off + t as f64 * 1e-4).collect()
                };
                Frame::new(mk(0.0), mk(0.3), mk(0.7))
            })
            .collect()
    }

    #[test]
    fn frame_round_trip() {
        let fs = frames(6, 120);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3));
        let blob = compress_frames(&fs, cfg).unwrap();
        let out = decompress_frames(&blob).unwrap();
        assert_eq!(out.len(), fs.len());
        for (a, b) in fs.iter().zip(out.iter()) {
            for axis in [(&a.x, &b.x), (&a.y, &b.y), (&a.z, &b.z)] {
                for (v, w) in axis.0.iter().zip(axis.1.iter()) {
                    assert!((v - w).abs() <= 1e-3);
                }
            }
        }
    }

    #[test]
    fn stateful_multi_buffer_stream() {
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(Method::Mt);
        let mut c = TrajectoryCompressor::new(cfg);
        let mut d = TrajectoryDecompressor::new();
        for _ in 0..3 {
            let fs = frames(4, 80);
            let blob = c.compress_buffer(&fs).unwrap();
            let out = d.decompress_buffer(&blob).unwrap();
            assert_eq!(out.len(), 4);
        }
    }

    #[test]
    fn parallel_output_is_byte_identical() {
        let fs = frames(8, 150);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3));
        let mut seq = TrajectoryCompressor::new(cfg.clone());
        let mut par = TrajectoryCompressor::new(cfg);
        for chunk in fs.chunks(4) {
            let a = seq.compress_buffer(chunk).unwrap();
            let b = par.compress_buffer_parallel(chunk).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn empty_buffer_rejected() {
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3));
        assert!(compress_frames(&[], cfg).is_err());
    }

    #[test]
    fn corrupted_container_errors() {
        let fs = frames(2, 40);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3));
        let blob = compress_frames(&fs, cfg).unwrap();
        assert!(decompress_frames(&blob[..3]).is_err());
        let mut bad = blob.clone();
        bad[0] = b'X';
        assert!(decompress_frames(&bad).is_err());
    }

    #[test]
    #[should_panic(expected = "equally long")]
    fn ragged_frame_panics() {
        let _ = Frame::new(vec![1.0], vec![1.0, 2.0], vec![1.0]);
    }

    #[test]
    fn framed_buffer_round_trip() {
        let fs = frames(4, 60);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3));
        let mut c = TrajectoryCompressor::new(cfg);
        let framed = c.compress_buffer_framed(&fs).unwrap();
        let mut reader = TrajReader::new(&framed);
        let payload = reader.next().unwrap();
        assert!(reader.next().is_none());
        assert_eq!(reader.skipped(), 0);
        let out = TrajectoryDecompressor::new().decompress_buffer(payload).unwrap();
        assert_eq!(out.len(), fs.len());
    }

    #[test]
    fn reader_recovers_all_intact_frames_around_a_corrupted_buffer() {
        // Acceptance scenario: a stream of five framed buffers with the
        // middle one damaged must yield the other four intact.
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(Method::Vq);
        let mut c = TrajectoryCompressor::new(cfg);
        let mut stream = Vec::new();
        let mut offsets = Vec::new();
        for t in 0..5 {
            let fs = frames(3, 50 + t); // distinct sizes per buffer
            offsets.push(stream.len());
            stream.extend(c.compress_buffer_framed(&fs).unwrap());
        }
        offsets.push(stream.len());
        // Smash bytes in the middle of buffer 2's payload.
        let mid = (offsets[2] + offsets[3]) / 2;
        for b in &mut stream[mid..mid + 8] {
            *b ^= 0x5A;
        }
        let mut d = TrajectoryDecompressor::new();
        let mut reader = TrajReader::new(&stream);
        let mut recovered = Vec::new();
        for payload in reader.by_ref() {
            recovered.push(d.decompress_buffer(payload).unwrap().len());
        }
        assert_eq!(reader.skipped(), 1, "one damaged region");
        assert_eq!(recovered, vec![3, 3, 3, 3], "four intact buffers recovered");
    }

    #[test]
    fn reader_skips_leading_garbage_and_resynchronizes() {
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(Method::Vq);
        let mut c = TrajectoryCompressor::new(cfg);
        let fs = frames(2, 40);
        let mut stream = vec![0xDEu8; 37]; // garbage prefix
        stream.extend(c.compress_buffer_framed(&fs).unwrap());
        let mut reader = TrajReader::new(&stream);
        assert!(reader.next().is_some());
        assert!(reader.next().is_none());
        assert_eq!(reader.skipped(), 1);
    }

    #[test]
    fn reader_on_pure_garbage_yields_nothing() {
        let garbage: Vec<u8> = (0..1000u32).map(|i| (i * 31 % 251) as u8).collect();
        let mut reader = TrajReader::new(&garbage);
        assert!(reader.next().is_none());
        assert!(reader.skipped() <= 1);
    }

    #[test]
    fn parallel_batch_matches_serial_trajectory_bytes() {
        let buffers: Vec<Vec<Frame>> = (0..5).map(|k| frames(4, 80 + k)).collect();
        let refs: Vec<&[Frame]> = buffers.iter().map(Vec::as_slice).collect();
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3));
        let mut serial = TrajectoryCompressor::new(cfg.clone());
        let want: Vec<Vec<u8>> = refs.iter().map(|b| serial.compress_buffer(b).unwrap()).collect();
        for workers in [1, 4] {
            let mut par = ParallelTrajectoryCompressor::new(cfg.clone())
                .with_parallelism(ParallelOptions::with_workers(workers));
            assert_eq!(par.compress_buffers(&refs).unwrap(), want, "{workers} workers");
        }
    }

    #[test]
    fn parallel_trajectory_decompressor_round_trips() {
        let buffers: Vec<Vec<Frame>> = (0..4).map(|_| frames(4, 70)).collect();
        let refs: Vec<&[Frame]> = buffers.iter().map(Vec::as_slice).collect();
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(Method::Mt);
        let mut c = ParallelTrajectoryCompressor::new(cfg)
            .with_parallelism(ParallelOptions::with_workers(4));
        let containers = c.compress_buffers(&refs).unwrap();
        let container_refs: Vec<&[u8]> = containers.iter().map(Vec::as_slice).collect();
        let mut d = ParallelTrajectoryDecompressor::new()
            .with_parallelism(ParallelOptions::with_workers(4));
        let out = d.decompress_buffers(&container_refs).unwrap();
        assert_eq!(out.len(), 4);
        for (got, want) in out.iter().zip(buffers.iter()) {
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want.iter()) {
                for (a, b) in g.x.iter().zip(w.x.iter()) {
                    assert!((a - b).abs() <= 1e-4);
                }
            }
        }
    }

    #[test]
    fn traj_writer_stream_is_reader_compatible_and_worker_invariant() {
        let buffers: Vec<Vec<Frame>> = (0..3).map(|_| frames(3, 60)).collect();
        let refs: Vec<&[Frame]> = buffers.iter().map(Vec::as_slice).collect();
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3));
        let stream_for = |workers: usize| -> Vec<u8> {
            let mut w = TrajWriter::new(Vec::new(), cfg.clone())
                .with_parallelism(ParallelOptions::with_workers(workers));
            let n = w.write_buffers(&refs).unwrap();
            w.flush().unwrap();
            let out = w.into_inner();
            assert_eq!(n, out.len());
            out
        };
        let serial = stream_for(1);
        assert_eq!(stream_for(4), serial);
        let mut reader = TrajReader::new(&serial);
        let mut dec = ParallelTrajectoryDecompressor::new()
            .with_parallelism(ParallelOptions::with_workers(4));
        let decoded = reader.decode_all_parallel(&mut dec).unwrap();
        assert_eq!(reader.skipped(), 0);
        assert_eq!(decoded.len(), 3);
    }

    #[test]
    fn decode_all_parallel_skips_damaged_buffers() {
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(Method::Vq);
        let mut w =
            TrajWriter::new(Vec::new(), cfg).with_parallelism(ParallelOptions::with_workers(2));
        let mut offsets = vec![0usize];
        for t in 0..5 {
            let n = w.write_buffer(&frames(3, 50 + t)).unwrap();
            offsets.push(offsets.last().unwrap() + n);
        }
        let mut stream = w.into_inner();
        let mid = (offsets[2] + offsets[3]) / 2;
        for b in &mut stream[mid..mid + 8] {
            *b ^= 0x5A;
        }
        let mut reader = TrajReader::new(&stream);
        let mut dec = ParallelTrajectoryDecompressor::new()
            .with_parallelism(ParallelOptions::with_workers(4));
        let decoded = reader.decode_all_parallel(&mut dec).unwrap();
        assert_eq!(reader.skipped(), 1);
        assert_eq!(decoded.len(), 4, "four intact buffers recovered");
    }

    #[test]
    fn writer_surfaces_io_errors() {
        struct Failing;
        impl std::io::Write for Failing {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3));
        let mut w = TrajWriter::new(Failing, cfg);
        assert!(matches!(w.write_buffer(&frames(2, 30)), Err(MdzError::Io { .. })));
    }
}
