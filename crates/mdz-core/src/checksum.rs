//! Shared checksum primitives used across the MDZ container formats.
//!
//! Two checksums, two jobs:
//!
//! * [`Crc32`] / [`crc32`] — CRC-32 (IEEE 802.3). Strong burst-error
//!   detection; used by the frame layer ([`crate::format::write_frame`])
//!   and by the `mdz-store` footer index.
//! * [`fnv1a64`] — FNV-1a 64-bit. Cheap whole-record hash; used by the
//!   `.mdz` archive block records (v1 and v2), where the 8-byte digest was
//!   already part of the on-disk layout.
//!
//! Both are dependency-free and deterministic across platforms; the archive
//! and store layers import them from here so the repository has exactly one
//! implementation of each (they were previously duplicated between
//! `mdz_core::format` and the archive module).

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) lookup table,
/// built at compile time so the coder stays dependency-free.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Incremental CRC-32 (IEEE) hasher.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.state =
                CRC32_TABLE[((self.state ^ u32::from(b)) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// Finalizes and returns the checksum value.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finish()
}

/// One-shot FNV-1a 64-bit hash of `data`.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vectors() {
        // IEEE CRC-32 check values (RFC 3720 appendix / zlib).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn crc32_incremental_matches_one_shot() {
        let data = b"incremental hashing must match the one-shot helper";
        let mut h = Crc32::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
