//! ADP: runtime selection of the best concrete method (paper §VI-D).
//!
//! Data patterns are stable over short horizons but drift over long ones
//! (Fig. 10), so MDZ periodically re-evaluates VQ, VQT, and MT on a live
//! buffer — compressing it with all three and keeping the smallest output —
//! then reuses the winner for the next `interval − 1` buffers. The paper
//! uses an interval of 50, keeping the evaluation overhead under 6 %.

use crate::format::Method;

/// Selector state carried by a [`crate::Compressor`].
#[derive(Debug, Clone, Default)]
pub struct AdaptiveState {
    /// Buffers compressed since the last trial.
    since_trial: u32,
    /// Winner of the most recent trial.
    current: Option<Method>,
}

impl AdaptiveState {
    /// Fresh state; the first buffer always triggers a trial.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the next buffer should be a three-way trial.
    pub fn trial_due(&self, interval: u32) -> bool {
        self.current.is_none() || self.since_trial >= interval
    }

    /// Records a trial winner and resets the interval counter.
    pub fn record_winner(&mut self, method: Method) {
        debug_assert!(!matches!(method, Method::Adaptive));
        self.current = Some(method);
        self.since_trial = 1;
    }

    /// Advances the interval counter for a non-trial buffer.
    pub fn tick(&mut self) {
        self.since_trial += 1;
    }

    /// The method currently in force, if a trial has run.
    pub fn current(&self) -> Option<Method> {
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_buffer_is_a_trial() {
        let s = AdaptiveState::new();
        assert!(s.trial_due(50));
    }

    #[test]
    fn trial_cadence_matches_interval() {
        let mut s = AdaptiveState::new();
        assert!(s.trial_due(5));
        s.record_winner(Method::Vqt);
        // Buffers 2..=5 reuse the winner; buffer 6 re-trials.
        for _ in 0..4 {
            assert!(!s.trial_due(5));
            s.tick();
        }
        assert!(s.trial_due(5));
    }

    #[test]
    fn winner_is_remembered() {
        let mut s = AdaptiveState::new();
        s.record_winner(Method::Mt);
        assert_eq!(s.current(), Some(Method::Mt));
        s.record_winner(Method::Vq);
        assert_eq!(s.current(), Some(Method::Vq));
    }
}
