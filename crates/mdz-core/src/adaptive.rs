//! ADP: runtime selection of the best pipeline composition (paper §VI-D).
//!
//! Data patterns are stable over short horizons but drift over long ones
//! (Fig. 10), so MDZ periodically re-evaluates its candidate compositions on
//! a live buffer — compressing it with each and keeping the smallest output —
//! then reuses the winner for the next `interval − 1` buffers. The paper
//! uses an interval of 50, keeping the evaluation overhead under 6 %.
//!
//! The paper's candidate space is the three concrete methods (VQ, VQT, MT)
//! over the fixed-scale quantizer. With the stage-composition refactor a
//! candidate is a [`Candidate`] — a (method, quantizer) pair — so enabling
//! [`crate::MdzConfig::bit_adaptive_candidates`] (or
//! `extended_candidates`) enlarges the product space ADP ranks without
//! touching the selector logic.

use crate::format::Method;
use crate::QuantizerKind;

/// One point of the composition space ADP selects over: a concrete method
/// paired with a quantizer stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Candidate {
    /// Concrete prediction method (never [`Method::Adaptive`]).
    pub method: Method,
    /// Quantizer stage coding the residuals.
    pub quantizer: QuantizerKind,
}

impl Candidate {
    /// Pairs `method` with the classic fixed-scale quantizer.
    pub fn linear(method: Method) -> Self {
        Self { method, quantizer: QuantizerKind::Linear }
    }
}

impl std::fmt::Display for Candidate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.quantizer {
            QuantizerKind::Linear => write!(f, "{}", self.method),
            QuantizerKind::BitAdaptive { .. } => write!(f, "{}+BA", self.method),
        }
    }
}

/// Selector state carried by a [`crate::Compressor`].
#[derive(Debug, Clone, Default)]
pub struct AdaptiveState {
    /// Buffers compressed since the last trial.
    since_trial: u32,
    /// Winner of the most recent trial.
    current: Option<Candidate>,
}

impl AdaptiveState {
    /// Fresh state; the first buffer always triggers a trial.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the next buffer should be a full candidate trial.
    pub fn trial_due(&self, interval: u32) -> bool {
        self.current.is_none() || self.since_trial >= interval
    }

    /// Records a trial winner and resets the interval counter.
    pub fn record_winner(&mut self, winner: Candidate) {
        debug_assert!(!matches!(winner.method, Method::Adaptive));
        self.current = Some(winner);
        self.since_trial = 1;
    }

    /// Advances the interval counter for a non-trial buffer.
    pub fn tick(&mut self) {
        self.since_trial += 1;
    }

    /// The composition currently in force, if a trial has run.
    pub fn current(&self) -> Option<Candidate> {
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_buffer_is_a_trial() {
        let s = AdaptiveState::new();
        assert!(s.trial_due(50));
    }

    #[test]
    fn trial_cadence_matches_interval() {
        let mut s = AdaptiveState::new();
        assert!(s.trial_due(5));
        s.record_winner(Candidate::linear(Method::Vqt));
        // Buffers 2..=5 reuse the winner; buffer 6 re-trials.
        for _ in 0..4 {
            assert!(!s.trial_due(5));
            s.tick();
        }
        assert!(s.trial_due(5));
    }

    #[test]
    fn winner_is_remembered() {
        let mut s = AdaptiveState::new();
        s.record_winner(Candidate::linear(Method::Mt));
        assert_eq!(s.current(), Some(Candidate::linear(Method::Mt)));
        let ba = Candidate { method: Method::Vq, quantizer: QuantizerKind::BIT_ADAPTIVE_DEFAULT };
        s.record_winner(ba);
        assert_eq!(s.current(), Some(ba));
    }

    #[test]
    fn candidate_display_tags_quantizer() {
        assert_eq!(Candidate::linear(Method::Vqt).to_string(), "VQT");
        let ba = Candidate { method: Method::Mt, quantizer: QuantizerKind::BIT_ADAPTIVE_DEFAULT };
        assert_eq!(ba.to_string(), "MT+BA");
    }
}
