//! Error-bounded quantizers: the classic fixed linear scale and the
//! bit-adaptive variant.
//!
//! Given a prediction `p` for value `d` and absolute bound `eps`, the
//! quantization code is `q = round((d − p) / (2·eps))`, reconstructed as
//! `p + 2·eps·q`, which guarantees `|d − d'| ≤ eps`. Codes are biased by the
//! radius `R` into `[1, 2R)`; code `0` is the *escape* marker — the value is
//! then stored verbatim (bit exact), which both bounds the Huffman alphabet
//! (the paper's "quantization scale" tuning, §VI-C1) and handles wild
//! outliers and non-finite values.
//!
//! [`LinearQuantizer`] fixes `R` globally (the paper's 1024-code scale with
//! the default radius 512). [`BitAdaptiveQuantizer`] keeps the identical
//! step/bound arithmetic but widens the escape radius to 2²³ steps and packs
//! codes with per-chunk bit widths sized to the local residual magnitude —
//! the right trade for non-crystal particle data whose residuals span orders
//! of magnitude. Both implement the [`crate::stage::Quantizer`] trait the
//! pipeline composes over.

use mdz_entropy::{read_uvarint, write_uvarint, BitReader, BitWriter, EntropyError, StreamLimits};

use crate::stage::{EntropyStage, Quantizer};
use crate::{MdzError, Result};

/// Stateless quantizer for one `(eps, radius)` setting.
#[derive(Debug, Clone, Copy)]
pub struct LinearQuantizer {
    eps: f64,
    /// Precomputed `1 / (2·eps)`.
    inv_step: f64,
    /// Codes span `[1, 2·radius)`; the bias added to `q` is `radius`.
    radius: u32,
}

/// Outcome of quantizing one value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantized {
    /// In-range code (never 0) plus the decoder-visible reconstruction.
    Code(u32),
    /// Out of range or non-finite: store the value verbatim.
    Escape,
}

impl LinearQuantizer {
    /// Creates a quantizer. `eps` must be positive and finite; `radius ≥ 2`.
    pub fn new(eps: f64, radius: u32) -> Self {
        debug_assert!(eps > 0.0 && eps.is_finite());
        debug_assert!(radius >= 2);
        Self { eps, inv_step: 0.5 / eps, radius }
    }

    /// The absolute error bound.
    #[inline]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The code-space radius (half the quantization scale).
    #[inline]
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// The precomputed `0.5 / eps` multiplier, exposed so the SIMD kernels
    /// replicate the scalar arithmetic bit-for-bit instead of re-deriving it.
    pub(crate) fn inv_step(&self) -> f64 {
        self.inv_step
    }

    /// Quantizes `value` against `prediction`.
    ///
    /// Returns the code and writes the *reconstructed* value (what the
    /// decoder will see) into `recon` — predictors must feed reconstructions,
    /// not originals, into subsequent predictions.
    #[inline]
    pub fn quantize(&self, value: f64, prediction: f64, recon: &mut f64) -> Quantized {
        let diff = value - prediction;
        if !diff.is_finite() {
            *recon = value;
            return Quantized::Escape;
        }
        let qf = (diff * self.inv_step).round();
        if qf.abs() >= self.radius as f64 {
            *recon = value;
            return Quantized::Escape;
        }
        let q = qf as i64;
        let reconstructed = prediction + 2.0 * self.eps * q as f64;
        // Guard: floating-point rounding at extreme magnitudes could break
        // the bound; escape instead of emitting an unsound code.
        if !(reconstructed - value).abs().le(&self.eps) {
            *recon = value;
            return Quantized::Escape;
        }
        *recon = reconstructed;
        Quantized::Code((q + self.radius as i64) as u32)
    }

    /// Reconstructs a value from an in-range code (code ≠ 0).
    #[inline]
    pub fn reconstruct(&self, code: u32, prediction: f64) -> f64 {
        let q = code as i64 - self.radius as i64;
        prediction + 2.0 * self.eps * q as f64
    }
}

impl Quantizer for LinearQuantizer {
    fn eps(&self) -> f64 {
        LinearQuantizer::eps(self)
    }

    fn wire_radius(&self) -> u32 {
        self.radius
    }

    #[inline]
    fn quantize(&self, value: f64, prediction: f64, reconstructed: &mut f64) -> Quantized {
        LinearQuantizer::quantize(self, value, prediction, reconstructed)
    }

    #[inline]
    fn reconstruct(&self, code: u32, prediction: f64) -> f64 {
        LinearQuantizer::reconstruct(self, code, prediction)
    }

    fn as_linear(&self) -> Option<LinearQuantizer> {
        Some(*self)
    }
}

/// Quantizer whose wire representation packs codes with per-chunk bit
/// widths sized to the local residual magnitude.
///
/// The step arithmetic is [`LinearQuantizer`]'s exactly (same `2·eps` step,
/// same bound guard), but the escape radius is widened to
/// [`BitAdaptiveQuantizer::CAP_RADIUS`] = 2²³ steps, so residuals the fixed
/// 1024-code scale would spill into 9-byte escapes stay in-code. The size
/// win comes from the wire format: the ordered code stream is cut into
/// fixed-size chunks and each chunk stores its codes in exactly the bits the
/// largest local residual needs (see [`crate::format::FLAG_BIT_ADAPTIVE`]).
///
/// Per chunk with width `b`: local symbol `0` is the escape, and a residual
/// `q` is stored as `q + 2^(b−1)` in `[1, 2^b − 1]`. `b = 0` marks a chunk
/// whose every residual is exactly `0` (no bits stored at all).
#[derive(Debug, Clone, Copy)]
pub struct BitAdaptiveQuantizer {
    inner: LinearQuantizer,
    /// Codes per width region in the wire format.
    chunk: usize,
}

impl BitAdaptiveQuantizer {
    /// Escape radius: residuals up to ±(2²³ − 1) steps stay in-code, and the
    /// widest per-chunk code is [`BitAdaptiveQuantizer::MAX_CODE_BITS`] bits.
    pub const CAP_RADIUS: u32 = 1 << 23;
    /// Largest per-chunk code width the format permits.
    pub const MAX_CODE_BITS: u8 = 24;
    /// Default codes-per-chunk used by configs and ADP trial candidates.
    pub const DEFAULT_CHUNK: usize = 64;
    /// Largest chunk size a well-formed stream may declare.
    pub const MAX_CHUNK: usize = 1 << 20;

    /// Creates a quantizer for `eps` with `chunk` codes per width region.
    pub fn new(eps: f64, chunk: usize) -> Self {
        Self::with_wire_radius(eps, Self::CAP_RADIUS, chunk)
    }

    /// Decoder-side constructor from header fields: the wire `radius` of a
    /// hostile block need not equal [`BitAdaptiveQuantizer::CAP_RADIUS`],
    /// and reconstruction must stay consistent with whatever was declared.
    pub(crate) fn with_wire_radius(eps: f64, radius: u32, chunk: usize) -> Self {
        debug_assert!((1..=Self::MAX_CHUNK).contains(&chunk));
        Self { inner: LinearQuantizer::new(eps, radius), chunk }
    }

    /// Codes per width region.
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Bits needed to store residual `q` as a local chunk symbol (sign
    /// included); `0` for an exact prediction.
    fn width_of(q: i64) -> u8 {
        let mag = q.unsigned_abs();
        if mag == 0 {
            0
        } else {
            (64 - mag.leading_zeros() + 1) as u8
        }
    }
}

impl Quantizer for BitAdaptiveQuantizer {
    fn eps(&self) -> f64 {
        self.inner.eps()
    }

    fn wire_radius(&self) -> u32 {
        self.inner.radius()
    }

    fn wire_flags(&self) -> u8 {
        crate::format::FLAG_BIT_ADAPTIVE
    }

    #[inline]
    fn quantize(&self, value: f64, prediction: f64, reconstructed: &mut f64) -> Quantized {
        self.inner.quantize(value, prediction, reconstructed)
    }

    #[inline]
    fn reconstruct(&self, code: u32, prediction: f64) -> f64 {
        self.inner.reconstruct(code, prediction)
    }

    fn as_linear(&self) -> Option<LinearQuantizer> {
        // The adaptivity is all in the wire format (`encode_codes`); the
        // per-value arithmetic is the inner linear quantizer verbatim.
        Some(self.inner)
    }

    fn encode_codes(&self, codes: &[u32], _entropy: &mut dyn EntropyStage, out: &mut Vec<u8>) {
        let cap = i64::from(self.wire_radius());
        write_uvarint(out, self.chunk as u64);
        write_uvarint(out, codes.len() as u64);
        // Pass 1: one width byte per chunk — the max over its residuals,
        // with escapes forcing at least 1 bit (local symbol 0).
        let widths: Vec<u8> = codes
            .chunks(self.chunk)
            .map(|chunk| {
                chunk
                    .iter()
                    .map(|&c| if c == 0 { 1 } else { Self::width_of(i64::from(c) - cap) })
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        out.extend_from_slice(&widths);
        // Pass 2: pack each chunk's local symbols MSB-first.
        let mut bits = BitWriter::new();
        for (chunk, &w) in codes.chunks(self.chunk).zip(&widths) {
            if w == 0 {
                continue;
            }
            let bias = 1i64 << (w - 1);
            for &c in chunk {
                let local = if c == 0 { 0 } else { i64::from(c) - cap + bias };
                debug_assert!((0..(1i64 << w)).contains(&local));
                bits.write_bits(local as u64, u32::from(w));
            }
        }
        out.extend_from_slice(bits.flush());
    }

    fn decode_codes(
        &self,
        data: &[u8],
        pos: &mut usize,
        _entropy: &mut dyn EntropyStage,
        out: &mut Vec<u32>,
        limits: &StreamLimits,
    ) -> Result<()> {
        let cap = i64::from(self.wire_radius());
        let space = self.code_space() as i64;
        let chunk = read_uvarint(data, pos)? as usize;
        if !(1..=Self::MAX_CHUNK).contains(&chunk) {
            return Err(MdzError::Corrupt { what: "bit-adaptive chunk size out of range" });
        }
        let count = read_uvarint(data, pos)? as usize;
        limits.check_items(count, "bit-adaptive code count").map_err(MdzError::from)?;
        let n_chunks = count.div_ceil(chunk);
        let widths =
            data.get(*pos..*pos + n_chunks).ok_or(MdzError::from(EntropyError::UnexpectedEof))?;
        *pos += n_chunks;
        let mut total_bits = 0u64;
        for (ci, &w) in widths.iter().enumerate() {
            if w > Self::MAX_CODE_BITS {
                return Err(MdzError::Corrupt { what: "bit-adaptive width exceeds 24 bits" });
            }
            let len = chunk.min(count - ci * chunk);
            total_bits += u64::from(w) * len as u64;
        }
        let packed_len = total_bits.div_ceil(8) as usize;
        let packed =
            data.get(*pos..*pos + packed_len).ok_or(MdzError::from(EntropyError::UnexpectedEof))?;
        *pos += packed_len;
        let mut bits = BitReader::new(packed);
        out.clear();
        out.reserve(count);
        for (ci, &w) in widths.iter().enumerate() {
            let len = chunk.min(count - ci * chunk);
            if w == 0 {
                // An all-exact chunk: every residual is 0.
                let fill_to = out.len() + len;
                out.resize(fill_to, cap as u32);
                continue;
            }
            let bias = 1i64 << (w - 1);
            for _ in 0..len {
                let local = bits.read_bits(u32::from(w))? as i64;
                if local == 0 {
                    out.push(0); // escape
                    continue;
                }
                let code = local - bias + cap;
                // A declared width wider than the declared radius allows
                // can place codes outside [1, 2·radius); reject rather
                // than wrap.
                if !(1..space).contains(&code) {
                    return Err(MdzError::Corrupt { what: "quantization code out of range" });
                }
                out.push(code as u32);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bound(q: &LinearQuantizer, value: f64, prediction: f64) {
        let mut recon = 0.0;
        match q.quantize(value, prediction, &mut recon) {
            Quantized::Code(code) => {
                assert!(code > 0 && code < 2 * q.radius());
                assert!((recon - value).abs() <= q.eps(), "{value} {prediction} → {recon}");
                assert_eq!(q.reconstruct(code, prediction), recon);
            }
            Quantized::Escape => assert_eq!(recon.to_bits(), value.to_bits()),
        }
    }

    #[test]
    fn exact_prediction_gives_center_code() {
        let q = LinearQuantizer::new(1e-3, 512);
        let mut recon = 0.0;
        match q.quantize(5.0, 5.0, &mut recon) {
            Quantized::Code(code) => assert_eq!(code, 512),
            Quantized::Escape => panic!("should be in range"),
        }
        assert_eq!(recon, 5.0);
    }

    #[test]
    fn error_always_within_bound() {
        let q = LinearQuantizer::new(0.01, 512);
        for i in -2000..2000 {
            let value = i as f64 * 0.003;
            check_bound(&q, value, 0.0);
            check_bound(&q, value, 1.2345);
        }
    }

    #[test]
    fn out_of_range_escapes() {
        let q = LinearQuantizer::new(1e-3, 512);
        let mut recon = 0.0;
        // |diff| = 2.0 → q = 1000 ≥ 512 → escape.
        assert_eq!(q.quantize(2.0, 0.0, &mut recon), Quantized::Escape);
        assert_eq!(recon, 2.0);
    }

    #[test]
    fn boundary_codes() {
        let q = LinearQuantizer::new(0.5, 4); // step 1.0, codes 1..8
        let mut recon = 0.0;
        // q = 3 → code 7 (max in-range).
        assert_eq!(q.quantize(3.0, 0.0, &mut recon), Quantized::Code(7));
        // q = 4 → escape (|q| ≥ radius).
        assert_eq!(q.quantize(4.0, 0.0, &mut recon), Quantized::Escape);
        // q = -3 → code 1 (min in-range).
        assert_eq!(q.quantize(-3.0, 0.0, &mut recon), Quantized::Code(1));
        // q = -4 → escape.
        assert_eq!(q.quantize(-4.0, 0.0, &mut recon), Quantized::Escape);
    }

    #[test]
    fn non_finite_values_escape() {
        let q = LinearQuantizer::new(1e-3, 512);
        let mut recon = 0.0;
        assert_eq!(q.quantize(f64::NAN, 0.0, &mut recon), Quantized::Escape);
        assert!(recon.is_nan());
        assert_eq!(q.quantize(f64::INFINITY, 0.0, &mut recon), Quantized::Escape);
        assert_eq!(q.quantize(1.0, f64::NAN, &mut recon), Quantized::Escape);
    }

    #[test]
    fn huge_magnitude_rounding_escapes_rather_than_breaks_bound() {
        // At 1e18 magnitude, eps 1e-3 steps are below the ULP: quantization
        // cannot represent the value; it must escape, not emit a bad code.
        let q = LinearQuantizer::new(1e-3, 512);
        let mut recon = 0.0;
        let value = 1e18 + 0.1;
        match q.quantize(value, 1e18, &mut recon) {
            Quantized::Code(_) => assert!((recon - value).abs() <= 1e-3),
            Quantized::Escape => assert_eq!(recon, value),
        }
    }

    #[test]
    fn reconstruct_inverts_code_space() {
        let q = LinearQuantizer::new(0.25, 16);
        for code in 1..32u32 {
            let v = q.reconstruct(code, 10.0);
            let mut recon = 0.0;
            assert_eq!(q.quantize(v, 10.0, &mut recon), Quantized::Code(code));
            assert_eq!(recon, v);
        }
    }

    #[test]
    fn trait_surface_matches_inherent_contract() {
        let q = LinearQuantizer::new(1e-3, 512);
        assert_eq!(Quantizer::code_space(&q), 1024);
        assert_eq!(Quantizer::wire_radius(&q), 512);
        assert_eq!(Quantizer::wire_flags(&q), 0);
        assert_eq!(Quantizer::eps(&q), 1e-3);
        let ba = BitAdaptiveQuantizer::new(1e-3, 64);
        assert_eq!(ba.wire_radius(), BitAdaptiveQuantizer::CAP_RADIUS);
        assert_eq!(ba.code_space(), 1 << 24);
        assert_eq!(ba.wire_flags(), crate::format::FLAG_BIT_ADAPTIVE);
    }

    fn ba_round_trip(chunk: usize, codes: &[u32]) -> Vec<u8> {
        let ba = BitAdaptiveQuantizer::new(1e-3, chunk);
        let mut entropy = crate::stage::HuffmanStage::default();
        let mut bytes = Vec::new();
        ba.encode_codes(codes, &mut entropy, &mut bytes);
        let mut pos = 0;
        let mut back = Vec::new();
        ba.decode_codes(&bytes, &mut pos, &mut entropy, &mut back, &StreamLimits::default())
            .expect("round trip");
        assert_eq!(back, codes);
        assert_eq!(pos, bytes.len());
        bytes
    }

    #[test]
    fn bit_adaptive_codes_round_trip() {
        let cap = BitAdaptiveQuantizer::CAP_RADIUS;
        // Mixed magnitudes, escapes, exact predictions, chunk-boundary
        // straddles, and a final partial chunk.
        let mut codes = Vec::new();
        for i in 0..137i64 {
            let q = match i % 7 {
                0 => 0,
                1 => 1,
                2 => -1,
                3 => 900,
                4 => -77_000,
                5 => (1 << 23) - 1,
                _ => 1 - (1 << 23),
            };
            codes.push((q + i64::from(cap)) as u32);
        }
        codes[5] = 0; // escape
        codes[130] = 0;
        for chunk in [1, 3, 16, 64, 200] {
            ba_round_trip(chunk, &codes);
        }
        ba_round_trip(8, &[]);
    }

    #[test]
    fn all_exact_chunks_store_zero_bits() {
        let cap = BitAdaptiveQuantizer::CAP_RADIUS;
        let codes = vec![cap; 1024];
        let bytes = ba_round_trip(64, &codes);
        // chunk uvarint (1) + count uvarint (2) + 16 zero width bytes; no
        // packed payload at all.
        assert_eq!(bytes.len(), 1 + 2 + 16);
    }

    #[test]
    fn hostile_bit_adaptive_streams_are_rejected() {
        let ba = BitAdaptiveQuantizer::new(1e-3, 64);
        let mut entropy = crate::stage::HuffmanStage::default();
        let cap = BitAdaptiveQuantizer::CAP_RADIUS;
        let codes: Vec<u32> = (0..100).map(|i| cap + i % 50).collect();
        let mut valid = Vec::new();
        ba.encode_codes(&codes, &mut entropy, &mut valid);

        let decode = |bytes: &[u8], limits: &StreamLimits| {
            let mut out = Vec::new();
            let mut entropy = crate::stage::HuffmanStage::default();
            ba.decode_codes(bytes, &mut 0, &mut entropy, &mut out, limits)
        };
        let limits = StreamLimits::default();

        // Chunk size 0 and an implausibly large chunk.
        let mut bad = valid.clone();
        bad[0] = 0;
        assert!(decode(&bad, &limits).is_err());
        let mut bad = Vec::new();
        write_uvarint(&mut bad, (BitAdaptiveQuantizer::MAX_CHUNK + 1) as u64);
        write_uvarint(&mut bad, 1);
        bad.push(1);
        bad.push(0);
        assert!(decode(&bad, &limits).is_err());

        // Width byte above 24.
        let mut bad = valid.clone();
        bad[3] = 25; // first width byte: chunk uvarint(64)=1, count uvarint(100)=2
        assert!(matches!(decode(&bad, &limits), Err(MdzError::Corrupt { .. })));

        // Truncations anywhere must error, never panic.
        for cut in 0..valid.len() {
            assert!(decode(&valid[..cut], &limits).is_err(), "cut {cut}");
        }

        // A forged count must fail the caller's budget before allocating.
        let mut forged = Vec::new();
        write_uvarint(&mut forged, 64);
        write_uvarint(&mut forged, u64::MAX);
        assert!(matches!(
            decode(&forged, &StreamLimits::with_max_items(1 << 16)),
            Err(MdzError::LimitExceeded { .. })
        ));

        // A width wide enough to escape a small declared radius is caught.
        let small = BitAdaptiveQuantizer::with_wire_radius(1e-3, 4, 8);
        let mut bad = Vec::new();
        write_uvarint(&mut bad, 8); // chunk
        write_uvarint(&mut bad, 1); // count
        bad.push(24); // width far beyond radius 4
        bad.extend_from_slice(&[0xFF, 0xFF, 0xFF]); // local = 2^24 - 1
        let mut out = Vec::new();
        let err = small.decode_codes(&bad, &mut 0, &mut entropy, &mut out, &limits).unwrap_err();
        assert!(matches!(err, MdzError::Corrupt { .. }));
    }

    #[test]
    fn bit_adaptive_bound_matches_linear_arithmetic() {
        // Identical step arithmetic: wherever the fixed-scale quantizer
        // stays in range, the bit-adaptive one produces the same
        // reconstruction; beyond the fixed radius it keeps coding while the
        // fixed scale escapes.
        let lin = LinearQuantizer::new(1e-3, 512);
        let ba = BitAdaptiveQuantizer::new(1e-3, 64);
        for i in -4000..4000i64 {
            let value = i as f64 * 7.3e-4;
            let (mut r_lin, mut r_ba) = (0.0, 0.0);
            let q_lin = lin.quantize(value, 0.0, &mut r_lin);
            let q_ba = Quantizer::quantize(&ba, value, 0.0, &mut r_ba);
            match q_ba {
                Quantized::Code(_) => assert!((r_ba - value).abs() <= 1e-3),
                Quantized::Escape => assert_eq!(r_ba.to_bits(), value.to_bits()),
            }
            if let (Quantized::Code(_), Quantized::Code(_)) = (q_lin, q_ba) {
                assert_eq!(r_lin, r_ba, "step arithmetic diverged at {value}");
            }
        }
        // A residual of 1500 steps escapes the fixed scale but stays
        // in-code bit-adaptively.
        let (mut r_lin, mut r_ba) = (0.0, 0.0);
        assert_eq!(lin.quantize(3.0, 0.0, &mut r_lin), Quantized::Escape);
        assert!(matches!(Quantizer::quantize(&ba, 3.0, 0.0, &mut r_ba), Quantized::Code(_)));
        assert!((r_ba - 3.0).abs() <= 1e-3);
    }
}
