//! Linear-scale quantization with out-of-range escapes.
//!
//! Given a prediction `p` for value `d` and absolute bound `eps`, the
//! quantization code is `q = round((d − p) / (2·eps))`, reconstructed as
//! `p + 2·eps·q`, which guarantees `|d − d'| ≤ eps`. Codes are biased by the
//! radius `R` into `[1, 2R)`; code `0` is the *escape* marker — the value is
//! then stored verbatim (bit exact), which both bounds the Huffman alphabet
//! (the paper's "quantization scale" tuning, §VI-C1) and handles wild
//! outliers and non-finite values.

/// Stateless quantizer for one `(eps, radius)` setting.
#[derive(Debug, Clone, Copy)]
pub struct LinearQuantizer {
    eps: f64,
    /// Precomputed `1 / (2·eps)`.
    inv_step: f64,
    /// Codes span `[1, 2·radius)`; the bias added to `q` is `radius`.
    radius: u32,
}

/// Outcome of quantizing one value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantized {
    /// In-range code (never 0) plus the decoder-visible reconstruction.
    Code(u32),
    /// Out of range or non-finite: store the value verbatim.
    Escape,
}

impl LinearQuantizer {
    /// Creates a quantizer. `eps` must be positive and finite; `radius ≥ 2`.
    pub fn new(eps: f64, radius: u32) -> Self {
        debug_assert!(eps > 0.0 && eps.is_finite());
        debug_assert!(radius >= 2);
        Self { eps, inv_step: 0.5 / eps, radius }
    }

    /// The absolute error bound.
    #[inline]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The code-space radius (half the quantization scale).
    #[inline]
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// Quantizes `value` against `prediction`.
    ///
    /// Returns the code and writes the *reconstructed* value (what the
    /// decoder will see) into `recon` — predictors must feed reconstructions,
    /// not originals, into subsequent predictions.
    #[inline]
    pub fn quantize(&self, value: f64, prediction: f64, recon: &mut f64) -> Quantized {
        let diff = value - prediction;
        if !diff.is_finite() {
            *recon = value;
            return Quantized::Escape;
        }
        let qf = (diff * self.inv_step).round();
        if qf.abs() >= self.radius as f64 {
            *recon = value;
            return Quantized::Escape;
        }
        let q = qf as i64;
        let reconstructed = prediction + 2.0 * self.eps * q as f64;
        // Guard: floating-point rounding at extreme magnitudes could break
        // the bound; escape instead of emitting an unsound code.
        if !(reconstructed - value).abs().le(&self.eps) {
            *recon = value;
            return Quantized::Escape;
        }
        *recon = reconstructed;
        Quantized::Code((q + self.radius as i64) as u32)
    }

    /// Reconstructs a value from an in-range code (code ≠ 0).
    #[inline]
    pub fn reconstruct(&self, code: u32, prediction: f64) -> f64 {
        let q = code as i64 - self.radius as i64;
        prediction + 2.0 * self.eps * q as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bound(q: &LinearQuantizer, value: f64, prediction: f64) {
        let mut recon = 0.0;
        match q.quantize(value, prediction, &mut recon) {
            Quantized::Code(code) => {
                assert!(code > 0 && code < 2 * q.radius());
                assert!((recon - value).abs() <= q.eps(), "{value} {prediction} → {recon}");
                assert_eq!(q.reconstruct(code, prediction), recon);
            }
            Quantized::Escape => assert_eq!(recon.to_bits(), value.to_bits()),
        }
    }

    #[test]
    fn exact_prediction_gives_center_code() {
        let q = LinearQuantizer::new(1e-3, 512);
        let mut recon = 0.0;
        match q.quantize(5.0, 5.0, &mut recon) {
            Quantized::Code(code) => assert_eq!(code, 512),
            Quantized::Escape => panic!("should be in range"),
        }
        assert_eq!(recon, 5.0);
    }

    #[test]
    fn error_always_within_bound() {
        let q = LinearQuantizer::new(0.01, 512);
        for i in -2000..2000 {
            let value = i as f64 * 0.003;
            check_bound(&q, value, 0.0);
            check_bound(&q, value, 1.2345);
        }
    }

    #[test]
    fn out_of_range_escapes() {
        let q = LinearQuantizer::new(1e-3, 512);
        let mut recon = 0.0;
        // |diff| = 2.0 → q = 1000 ≥ 512 → escape.
        assert_eq!(q.quantize(2.0, 0.0, &mut recon), Quantized::Escape);
        assert_eq!(recon, 2.0);
    }

    #[test]
    fn boundary_codes() {
        let q = LinearQuantizer::new(0.5, 4); // step 1.0, codes 1..8
        let mut recon = 0.0;
        // q = 3 → code 7 (max in-range).
        assert_eq!(q.quantize(3.0, 0.0, &mut recon), Quantized::Code(7));
        // q = 4 → escape (|q| ≥ radius).
        assert_eq!(q.quantize(4.0, 0.0, &mut recon), Quantized::Escape);
        // q = -3 → code 1 (min in-range).
        assert_eq!(q.quantize(-3.0, 0.0, &mut recon), Quantized::Code(1));
        // q = -4 → escape.
        assert_eq!(q.quantize(-4.0, 0.0, &mut recon), Quantized::Escape);
    }

    #[test]
    fn non_finite_values_escape() {
        let q = LinearQuantizer::new(1e-3, 512);
        let mut recon = 0.0;
        assert_eq!(q.quantize(f64::NAN, 0.0, &mut recon), Quantized::Escape);
        assert!(recon.is_nan());
        assert_eq!(q.quantize(f64::INFINITY, 0.0, &mut recon), Quantized::Escape);
        assert_eq!(q.quantize(1.0, f64::NAN, &mut recon), Quantized::Escape);
    }

    #[test]
    fn huge_magnitude_rounding_escapes_rather_than_breaks_bound() {
        // At 1e18 magnitude, eps 1e-3 steps are below the ULP: quantization
        // cannot represent the value; it must escape, not emit a bad code.
        let q = LinearQuantizer::new(1e-3, 512);
        let mut recon = 0.0;
        let value = 1e18 + 0.1;
        match q.quantize(value, 1e18, &mut recon) {
            Quantized::Code(_) => assert!((recon - value).abs() <= 1e-3),
            Quantized::Escape => assert_eq!(recon, value),
        }
    }

    #[test]
    fn reconstruct_inverts_code_space() {
        let q = LinearQuantizer::new(0.25, 16);
        for code in 1..32u32 {
            let v = q.reconstruct(code, 10.0);
            let mut recon = 0.0;
            assert_eq!(q.quantize(v, 10.0, &mut recon), Quantized::Code(code));
            assert_eq!(recon, v);
        }
    }
}
