//! Vectorized fused predict/quantize kernels, byte-identical to the scalar
//! pipeline.
//!
//! The encode hot loop — subtract prediction, scale by `1/(2ε)`, round half
//! away from zero, range-check, reconstruct, bound-check — is lane-parallel
//! whenever the predictor is a precomputed slice (the time predictors and
//! the VQ grid; Lorenzo's `recon[i-1]` chain stays scalar). The kernels here
//! run that sweep 2 or 4 doubles at a time under the dispatch levels of
//! [`mdz_entropy::kernel`], with the *scalar quantizer itself* as the tail
//! handler and differential oracle.
//!
//! Byte-identity is not approximate; three details make it exact:
//!
//! * **Rounding.** `f64::round` rounds half away from zero, vector rounding
//!   primitives round half to even. The kernels compute `re = roundeven(x)`
//!   and `frac = x − re` (exact, since `re` is within a factor of two of
//!   `x` or zero) and correct by `±1` only when `frac == ±0.5` with the
//!   matching sign of `x` — i.e. exactly when roundeven broke the tie toward
//!   zero and `round` would not.
//! * **Signed zero.** The scalar path reconstructs with `q as i64 as f64`,
//!   which turns `-0.0` into `+0.0`; the kernels canonicalize `qf + 0.0`
//!   before the multiply so `prediction + (-0.0) * step` cannot diverge.
//! * **Code conversion.** Scalar code conversion is `(q + radius as i64) as
//!   u32`; packed conversions saturate instead of wrapping, so the kernels
//!   only engage when `radius ≤ 2³⁰` ([`MAX_SIMD_RADIUS`]), which keeps
//!   every non-escape code strictly inside `i32` range where both agree.
//!   (The default radius 512 and the bit-adaptive cap 2²³ both qualify.)
//!
//! Escapes are encoded in-band: a lane that escapes for any reason (non-
//! finite residual, out-of-range code, bound-check failure) gets code `0`
//! — never a legitimate code, which start at 1 — and its reconstruction
//! slot holds the original value, exactly as the scalar path leaves things.
//! Callers scan for zeros to build the escape list.

use crate::quant::{LinearQuantizer, Quantized};
use mdz_entropy::kernel::SimdLevel;

/// Largest wire radius the vector kernels accept.
///
/// In-range codes are `qf + radius < 2·radius`; keeping that below `2³¹`
/// means the packed double→i32 conversion is exact and cannot hit its
/// saturating edge (the scalar path wraps via `as u32` instead — the two
/// only agree when neither limit is reachable).
pub(crate) const MAX_SIMD_RADIUS: u32 = 1 << 30;

/// Whether the vector kernels may run for this quantizer's parameters.
pub(crate) fn eligible(quant: &LinearQuantizer) -> bool {
    quant.radius() <= MAX_SIMD_RADIUS
}

/// Scalar fallback and vector-tail handler: the real quantizer, verbatim,
/// writing in-band escape codes.
fn quantize_tail(
    quant: &LinearQuantizer,
    values: &[f64],
    preds: &[f64],
    codes: &mut [u32],
    recon: &mut [f64],
) {
    for i in 0..values.len() {
        codes[i] = match quant.quantize(values[i], preds[i], &mut recon[i]) {
            Quantized::Code(c) => c,
            Quantized::Escape => 0,
        };
    }
}

/// Fused quantize of `values` against per-lane predictions `preds`.
///
/// Appends exactly `values.len()` codes to `codes_out` (0 = escape) and
/// fills `recon[..values.len()]` with the decoder-visible reconstructions
/// (the original value on escape). Callers must have checked [`eligible`];
/// `level` is the dispatch level captured once by the caller.
pub(crate) fn quantize_predicted(
    quant: &LinearQuantizer,
    values: &[f64],
    preds: &[f64],
    codes_out: &mut Vec<u32>,
    recon: &mut [f64],
    level: SimdLevel,
) {
    debug_assert_eq!(values.len(), preds.len());
    debug_assert!(values.len() <= recon.len());
    debug_assert!(eligible(quant));
    let start = codes_out.len();
    codes_out.resize(start + values.len(), 0);
    let codes = &mut codes_out[start..];
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatched only when runtime detection reported AVX2.
        SimdLevel::Avx2 => unsafe { quantize_avx2(quant, values, preds, codes, recon) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatched only when runtime detection reported SSE4.1.
        SimdLevel::Sse41 => unsafe { quantize_sse41(quant, values, preds, codes, recon) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => quantize_neon(quant, values, preds, codes, recon),
        _ => quantize_tail(quant, values, preds, codes, recon),
    }
}

/// VQ level rounding: for each value computes the rounded level index float
/// `lf = round((d − μ)/λ)` and the level prediction `μ + λ·(lf + 0.0)`.
///
/// `lf + 0.0` matches the scalar path's `level as i64 as f64` exactly for
/// every level the sweep accepts (integral, magnitude ≤ 2⁴⁰, signed zero
/// canonicalized); lanes the sweep rejects never use their prediction.
pub(crate) fn vq_levels(
    mu: f64,
    lambda: f64,
    values: &[f64],
    lf_out: &mut [f64],
    pred_out: &mut [f64],
    level: SimdLevel,
) {
    debug_assert_eq!(values.len(), lf_out.len());
    debug_assert_eq!(values.len(), pred_out.len());
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatched only when runtime detection reported AVX2.
        SimdLevel::Avx2 => unsafe { vq_levels_avx2(mu, lambda, values, lf_out, pred_out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatched only when runtime detection reported SSE4.1.
        SimdLevel::Sse41 => unsafe { vq_levels_sse41(mu, lambda, values, lf_out, pred_out) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => vq_levels_neon(mu, lambda, values, lf_out, pred_out),
        _ => vq_levels_tail(mu, lambda, values, lf_out, pred_out),
    }
}

/// Scalar form of [`vq_levels`], also the vector tail.
fn vq_levels_tail(mu: f64, lambda: f64, values: &[f64], lf_out: &mut [f64], pred_out: &mut [f64]) {
    for i in 0..values.len() {
        let lf = ((values[i] - mu) / lambda).round();
        lf_out[i] = lf;
        pred_out[i] = mu + lambda * (lf + 0.0);
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use std::arch::x86_64::*;

    /// Shared lane math for one 256-bit block. Caller guarantees AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn quantize_avx2(
        quant: &LinearQuantizer,
        values: &[f64],
        preds: &[f64],
        codes: &mut [u32],
        recon: &mut [f64],
    ) {
        let n = values.len();
        let inv = _mm256_set1_pd(quant.inv_step());
        let eps = _mm256_set1_pd(quant.eps());
        let step2 = _mm256_set1_pd(2.0 * quant.eps());
        let radiusf = _mm256_set1_pd(f64::from(quant.radius()));
        let fmax = _mm256_set1_pd(f64::MAX);
        let half = _mm256_set1_pd(0.5);
        let nhalf = _mm256_set1_pd(-0.5);
        let one = _mm256_set1_pd(1.0);
        let zero = _mm256_setzero_pd();
        let abs_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fff_ffff_ffff_ffff));
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` keeps every unaligned load/store in
            // bounds of its slice (`preds.len() == n`, `recon.len() >= n`,
            // `codes.len() == n`).
            unsafe {
                let vv = _mm256_loadu_pd(values.as_ptr().add(i));
                let pp = _mm256_loadu_pd(preds.as_ptr().add(i));
                let diff = _mm256_sub_pd(vv, pp);
                // `!diff.is_finite()` ⇔ |diff| ≤ f64::MAX fails (NaN, ±inf).
                let finite = _mm256_cmp_pd::<_CMP_LE_OQ>(_mm256_and_pd(diff, abs_mask), fmax);
                let x = _mm256_mul_pd(diff, inv);
                let re = _mm256_round_pd::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(x);
                // Exact tie residue; ±0.5 only at true ties (see module doc).
                let frac = _mm256_sub_pd(x, re);
                let tie_pos = _mm256_and_pd(
                    _mm256_cmp_pd::<_CMP_EQ_OQ>(frac, half),
                    _mm256_cmp_pd::<_CMP_GT_OQ>(x, zero),
                );
                let tie_neg = _mm256_and_pd(
                    _mm256_cmp_pd::<_CMP_EQ_OQ>(frac, nhalf),
                    _mm256_cmp_pd::<_CMP_LT_OQ>(x, zero),
                );
                // Blend (not add): an unconditional `re + 0.0` would turn the
                // -0.0 that round() produces for x in (-0.5, -0.0] into +0.0.
                let qf = _mm256_blendv_pd(re, _mm256_add_pd(re, one), tie_pos);
                let qf = _mm256_blendv_pd(qf, _mm256_sub_pd(re, one), tie_neg);
                let in_range = _mm256_cmp_pd::<_CMP_LT_OQ>(_mm256_and_pd(qf, abs_mask), radiusf);
                // Canonicalize -0.0 → +0.0 like the scalar `q as i64 as f64`.
                let qfz = _mm256_add_pd(qf, zero);
                let rec = _mm256_add_pd(pp, _mm256_mul_pd(step2, qfz));
                let err = _mm256_and_pd(_mm256_sub_pd(rec, vv), abs_mask);
                let bound_ok = _mm256_cmp_pd::<_CMP_LE_OQ>(err, eps);
                let ok = _mm256_and_pd(_mm256_and_pd(finite, in_range), bound_ok);
                _mm256_storeu_pd(recon.as_mut_ptr().add(i), _mm256_blendv_pd(vv, rec, ok));
                // Escape lanes are masked to +0.0 before conversion → code 0.
                let codef = _mm256_and_pd(_mm256_add_pd(qf, radiusf), ok);
                _mm_storeu_si128(codes.as_mut_ptr().add(i).cast(), _mm256_cvtpd_epi32(codef));
            }
            i += 4;
        }
        quantize_tail(quant, &values[i..], &preds[i..], &mut codes[i..], &mut recon[i..]);
    }

    /// 2-lane SSE4.1 variant of [`quantize_avx2`]. Caller guarantees SSE4.1
    /// (needed for `_mm_round_pd` / `_mm_blendv_pd`).
    #[target_feature(enable = "sse4.1")]
    pub(super) unsafe fn quantize_sse41(
        quant: &LinearQuantizer,
        values: &[f64],
        preds: &[f64],
        codes: &mut [u32],
        recon: &mut [f64],
    ) {
        let n = values.len();
        let inv = _mm_set1_pd(quant.inv_step());
        let eps = _mm_set1_pd(quant.eps());
        let step2 = _mm_set1_pd(2.0 * quant.eps());
        let radiusf = _mm_set1_pd(f64::from(quant.radius()));
        let fmax = _mm_set1_pd(f64::MAX);
        let half = _mm_set1_pd(0.5);
        let nhalf = _mm_set1_pd(-0.5);
        let one = _mm_set1_pd(1.0);
        let zero = _mm_setzero_pd();
        let abs_mask = _mm_castsi128_pd(_mm_set1_epi64x(0x7fff_ffff_ffff_ffff));
        let mut i = 0;
        while i + 2 <= n {
            // SAFETY: `i + 2 <= n` keeps every unaligned load/store in
            // bounds of its slice.
            unsafe {
                let vv = _mm_loadu_pd(values.as_ptr().add(i));
                let pp = _mm_loadu_pd(preds.as_ptr().add(i));
                let diff = _mm_sub_pd(vv, pp);
                let finite = _mm_cmple_pd(_mm_and_pd(diff, abs_mask), fmax);
                let x = _mm_mul_pd(diff, inv);
                let re = _mm_round_pd::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(x);
                let frac = _mm_sub_pd(x, re);
                let tie_pos = _mm_and_pd(_mm_cmpeq_pd(frac, half), _mm_cmpgt_pd(x, zero));
                let tie_neg = _mm_and_pd(_mm_cmpeq_pd(frac, nhalf), _mm_cmplt_pd(x, zero));
                // Blend (not add) to preserve round()'s -0.0 for x in (-0.5, -0.0].
                let qf = _mm_blendv_pd(re, _mm_add_pd(re, one), tie_pos);
                let qf = _mm_blendv_pd(qf, _mm_sub_pd(re, one), tie_neg);
                let in_range = _mm_cmplt_pd(_mm_and_pd(qf, abs_mask), radiusf);
                let qfz = _mm_add_pd(qf, zero);
                let rec = _mm_add_pd(pp, _mm_mul_pd(step2, qfz));
                let err = _mm_and_pd(_mm_sub_pd(rec, vv), abs_mask);
                let bound_ok = _mm_cmple_pd(err, eps);
                let ok = _mm_and_pd(_mm_and_pd(finite, in_range), bound_ok);
                _mm_storeu_pd(recon.as_mut_ptr().add(i), _mm_blendv_pd(vv, rec, ok));
                let codef = _mm_and_pd(_mm_add_pd(qf, radiusf), ok);
                // Two i32 codes land in the low 8 bytes.
                _mm_storel_epi64(codes.as_mut_ptr().add(i).cast(), _mm_cvtpd_epi32(codef));
            }
            i += 2;
        }
        quantize_tail(quant, &values[i..], &preds[i..], &mut codes[i..], &mut recon[i..]);
    }

    /// 4-lane level rounding for [`vq_levels`]. Caller guarantees AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn vq_levels_avx2(
        mu: f64,
        lambda: f64,
        values: &[f64],
        lf_out: &mut [f64],
        pred_out: &mut [f64],
    ) {
        let n = values.len();
        let muv = _mm256_set1_pd(mu);
        let lamv = _mm256_set1_pd(lambda);
        let half = _mm256_set1_pd(0.5);
        let nhalf = _mm256_set1_pd(-0.5);
        let one = _mm256_set1_pd(1.0);
        let zero = _mm256_setzero_pd();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` keeps every unaligned load/store in
            // bounds (both outputs are length `n`).
            unsafe {
                let d = _mm256_loadu_pd(values.as_ptr().add(i));
                let x = _mm256_div_pd(_mm256_sub_pd(d, muv), lamv);
                let re = _mm256_round_pd::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(x);
                let frac = _mm256_sub_pd(x, re);
                let tie_pos = _mm256_and_pd(
                    _mm256_cmp_pd::<_CMP_EQ_OQ>(frac, half),
                    _mm256_cmp_pd::<_CMP_GT_OQ>(x, zero),
                );
                let tie_neg = _mm256_and_pd(
                    _mm256_cmp_pd::<_CMP_EQ_OQ>(frac, nhalf),
                    _mm256_cmp_pd::<_CMP_LT_OQ>(x, zero),
                );
                // Blend (not add) to preserve round()'s -0.0 for x in (-0.5, -0.0].
                let lf = _mm256_blendv_pd(re, _mm256_add_pd(re, one), tie_pos);
                let lf = _mm256_blendv_pd(lf, _mm256_sub_pd(re, one), tie_neg);
                _mm256_storeu_pd(lf_out.as_mut_ptr().add(i), lf);
                let lfz = _mm256_add_pd(lf, zero);
                let pred = _mm256_add_pd(muv, _mm256_mul_pd(lamv, lfz));
                _mm256_storeu_pd(pred_out.as_mut_ptr().add(i), pred);
            }
            i += 4;
        }
        vq_levels_tail(mu, lambda, &values[i..], &mut lf_out[i..], &mut pred_out[i..]);
    }

    /// 2-lane SSE4.1 variant of [`vq_levels_avx2`].
    #[target_feature(enable = "sse4.1")]
    pub(super) unsafe fn vq_levels_sse41(
        mu: f64,
        lambda: f64,
        values: &[f64],
        lf_out: &mut [f64],
        pred_out: &mut [f64],
    ) {
        let n = values.len();
        let muv = _mm_set1_pd(mu);
        let lamv = _mm_set1_pd(lambda);
        let half = _mm_set1_pd(0.5);
        let nhalf = _mm_set1_pd(-0.5);
        let one = _mm_set1_pd(1.0);
        let zero = _mm_setzero_pd();
        let mut i = 0;
        while i + 2 <= n {
            // SAFETY: `i + 2 <= n` keeps every unaligned load/store in
            // bounds (both outputs are length `n`).
            unsafe {
                let d = _mm_loadu_pd(values.as_ptr().add(i));
                let x = _mm_div_pd(_mm_sub_pd(d, muv), lamv);
                let re = _mm_round_pd::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(x);
                let frac = _mm_sub_pd(x, re);
                let tie_pos = _mm_and_pd(_mm_cmpeq_pd(frac, half), _mm_cmpgt_pd(x, zero));
                let tie_neg = _mm_and_pd(_mm_cmpeq_pd(frac, nhalf), _mm_cmplt_pd(x, zero));
                // Blend (not add) to preserve round()'s -0.0 for x in (-0.5, -0.0].
                let lf = _mm_blendv_pd(re, _mm_add_pd(re, one), tie_pos);
                let lf = _mm_blendv_pd(lf, _mm_sub_pd(re, one), tie_neg);
                _mm_storeu_pd(lf_out.as_mut_ptr().add(i), lf);
                let lfz = _mm_add_pd(lf, zero);
                let pred = _mm_add_pd(muv, _mm_mul_pd(lamv, lfz));
                _mm_storeu_pd(pred_out.as_mut_ptr().add(i), pred);
            }
            i += 2;
        }
        vq_levels_tail(mu, lambda, &values[i..], &mut lf_out[i..], &mut pred_out[i..]);
    }
}

#[cfg(target_arch = "x86_64")]
use x86::{quantize_avx2, quantize_sse41, vq_levels_avx2, vq_levels_sse41};

/// 2-lane NEON variant of the fused quantize (aarch64 baseline — safe to
/// call unconditionally on that arch).
#[cfg(target_arch = "aarch64")]
fn quantize_neon(
    quant: &LinearQuantizer,
    values: &[f64],
    preds: &[f64],
    codes: &mut [u32],
    recon: &mut [f64],
) {
    use std::arch::aarch64::*;
    let n = values.len();
    // SAFETY: NEON is mandatory on aarch64; all loads/stores below stay in
    // bounds because `i + 2 <= n` and every slice has length ≥ n.
    unsafe {
        let inv = vdupq_n_f64(quant.inv_step());
        let eps = vdupq_n_f64(quant.eps());
        let step2 = vdupq_n_f64(2.0 * quant.eps());
        let radiusf = vdupq_n_f64(f64::from(quant.radius()));
        let fmax = vdupq_n_f64(f64::MAX);
        let half = vdupq_n_f64(0.5);
        let nhalf = vdupq_n_f64(-0.5);
        let one = vdupq_n_f64(1.0);
        let zero = vdupq_n_f64(0.0);
        let mut i = 0;
        while i + 2 <= n {
            let vv = vld1q_f64(values.as_ptr().add(i));
            let pp = vld1q_f64(preds.as_ptr().add(i));
            let diff = vsubq_f64(vv, pp);
            let finite = vcleq_f64(vabsq_f64(diff), fmax);
            let x = vmulq_f64(diff, inv);
            let re = vrndnq_f64(x);
            let frac = vsubq_f64(x, re);
            let tie_pos = vandq_u64(vceqq_f64(frac, half), vcgtq_f64(x, zero));
            let tie_neg = vandq_u64(vceqq_f64(frac, nhalf), vcltq_f64(x, zero));
            // Blend (not add) to preserve round()'s -0.0 for x in (-0.5, -0.0].
            let qf = vbslq_f64(tie_pos, vaddq_f64(re, one), re);
            let qf = vbslq_f64(tie_neg, vsubq_f64(re, one), qf);
            let in_range = vcltq_f64(vabsq_f64(qf), radiusf);
            let qfz = vaddq_f64(qf, zero);
            let rec = vaddq_f64(pp, vmulq_f64(step2, qfz));
            let bound_ok = vcleq_f64(vabsq_f64(vsubq_f64(rec, vv)), eps);
            let ok = vandq_u64(vandq_u64(finite, in_range), bound_ok);
            vst1q_f64(recon.as_mut_ptr().add(i), vbslq_f64(ok, rec, vv));
            let codef =
                vreinterpretq_f64_u64(vandq_u64(vreinterpretq_u64_f64(vaddq_f64(qf, radiusf)), ok));
            // Values are exact non-negative integers < 2³¹; truncation is exact.
            let code64 = vcvtq_s64_f64(codef);
            codes[i] = vgetq_lane_s64::<0>(code64) as u32;
            codes[i + 1] = vgetq_lane_s64::<1>(code64) as u32;
            i += 2;
        }
        quantize_tail(quant, &values[i..], &preds[i..], &mut codes[i..], &mut recon[i..]);
    }
}

/// 2-lane NEON variant of [`vq_levels`].
#[cfg(target_arch = "aarch64")]
fn vq_levels_neon(mu: f64, lambda: f64, values: &[f64], lf_out: &mut [f64], pred_out: &mut [f64]) {
    use std::arch::aarch64::*;
    let n = values.len();
    // SAFETY: NEON is mandatory on aarch64; all loads/stores stay in bounds.
    unsafe {
        let muv = vdupq_n_f64(mu);
        let lamv = vdupq_n_f64(lambda);
        let half = vdupq_n_f64(0.5);
        let nhalf = vdupq_n_f64(-0.5);
        let one = vdupq_n_f64(1.0);
        let zero = vdupq_n_f64(0.0);
        let mut i = 0;
        while i + 2 <= n {
            let d = vld1q_f64(values.as_ptr().add(i));
            let x = vdivq_f64(vsubq_f64(d, muv), lamv);
            let re = vrndnq_f64(x);
            let frac = vsubq_f64(x, re);
            let tie_pos = vandq_u64(vceqq_f64(frac, half), vcgtq_f64(x, zero));
            let tie_neg = vandq_u64(vceqq_f64(frac, nhalf), vcltq_f64(x, zero));
            // Blend (not add) to preserve round()'s -0.0 for x in (-0.5, -0.0].
            let lf = vbslq_f64(tie_pos, vaddq_f64(re, one), re);
            let lf = vbslq_f64(tie_neg, vsubq_f64(re, one), lf);
            vst1q_f64(lf_out.as_mut_ptr().add(i), lf);
            let lfz = vaddq_f64(lf, zero);
            vst1q_f64(pred_out.as_mut_ptr().add(i), vaddq_f64(muv, vmulq_f64(lamv, lfz)));
            i += 2;
        }
        vq_levels_tail(mu, lambda, &values[i..], &mut lf_out[i..], &mut pred_out[i..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdz_entropy::kernel;

    /// Every level the host can actually execute, oracle included.
    fn runnable_levels() -> Vec<SimdLevel> {
        let mut levels = vec![SimdLevel::Scalar];
        match kernel::detected_level() {
            SimdLevel::Avx2 => {
                levels.push(SimdLevel::Sse41);
                levels.push(SimdLevel::Avx2);
            }
            l @ (SimdLevel::Sse41 | SimdLevel::Neon) => levels.push(l),
            SimdLevel::Scalar => {}
        }
        levels
    }

    fn lcg(state: &mut u64) -> u64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *state
    }

    /// Adversarial value/prediction pairs: exact ties at the rounding step,
    /// signed zeros, escapes of all three kinds, and ordinary noise.
    fn test_pairs(eps: f64, n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut state = seed;
        let mut values = Vec::with_capacity(n);
        let mut preds = Vec::with_capacity(n);
        for k in 0..n {
            let r = lcg(&mut state);
            let pred = match r % 7 {
                0 => 0.0,
                1 => -0.0,
                2 => ((r >> 8) % 1000) as f64 * 0.1 - 50.0,
                3 => f64::NAN,
                4 => f64::INFINITY,
                _ => ((r >> 8) % 100_000) as f64 * 1e-4,
            };
            let value = match (r >> 32) % 8 {
                // Exact half-step residuals: diff = (m + 0.5) · 2ε hits the
                // rounding tie dead on for every sign combination.
                0 => pred + (2.0 * eps) * (((k % 9) as f64 - 4.0) + 0.5),
                1 => pred - (2.0 * eps) * (((k % 5) as f64) + 0.5),
                // Out-of-range residual → range escape.
                2 => pred + 3.0e9 * eps,
                // Non-finite value → finite-check escape.
                3 => f64::NAN,
                4 => -0.0,
                _ => pred + ((r >> 40) as f64 / (1u64 << 24) as f64 - 0.5) * 100.0 * eps,
            };
            values.push(value);
            preds.push(pred);
        }
        (values, preds)
    }

    #[test]
    fn quantize_kernels_match_scalar_bit_for_bit() {
        for eps in [1e-3, 1e-6, 0.25, 1e3] {
            for radius in [512u32, 1 << 23, MAX_SIMD_RADIUS] {
                let quant = LinearQuantizer::new(eps, radius);
                let (values, preds) = test_pairs(eps, 257, 0x00D1_CE00 + radius as u64);
                let mut want_codes = Vec::new();
                let mut want_recon = vec![0.0; values.len()];
                quantize_tail(
                    &quant,
                    &values,
                    &preds,
                    {
                        want_codes.resize(values.len(), 0);
                        &mut want_codes[..]
                    },
                    &mut want_recon,
                );
                for &lv in &runnable_levels() {
                    let mut codes = Vec::new();
                    let mut recon = vec![0.0; values.len()];
                    quantize_predicted(&quant, &values, &preds, &mut codes, &mut recon, lv);
                    assert_eq!(codes, want_codes, "codes {lv:?} eps {eps} radius {radius}");
                    let want_bits: Vec<u64> = want_recon.iter().map(|f| f.to_bits()).collect();
                    let got_bits: Vec<u64> = recon.iter().map(|f| f.to_bits()).collect();
                    assert_eq!(got_bits, want_bits, "recon {lv:?} eps {eps} radius {radius}");
                }
            }
        }
    }

    #[test]
    fn vq_level_kernels_match_scalar_bit_for_bit() {
        let mu = 1.2345;
        let lambda = 0.037;
        let mut state = 0xBEEF_u64;
        let mut values: Vec<f64> = (0..513)
            .map(|k| {
                let r = lcg(&mut state);
                match r % 6 {
                    // Exact tie: d = μ + (m + 0.5)·λ.
                    0 => mu + ((k % 11) as f64 - 5.0 + 0.5) * lambda,
                    1 => f64::NAN,
                    2 => f64::INFINITY,
                    3 => -0.0,
                    _ => mu + ((r >> 16) as f64 / (1u64 << 32) as f64 - 0.5) * 1e4 * lambda,
                }
            })
            .collect();
        values.push(mu); // exact level 0
        let n = values.len();
        let mut want_lf = vec![0.0; n];
        let mut want_pred = vec![0.0; n];
        vq_levels_tail(mu, lambda, &values, &mut want_lf, &mut want_pred);
        for &lv in &runnable_levels() {
            let mut lf = vec![0.0; n];
            let mut pred = vec![0.0; n];
            vq_levels(mu, lambda, &values, &mut lf, &mut pred, lv);
            for i in 0..n {
                assert_eq!(
                    lf[i].to_bits(),
                    want_lf[i].to_bits(),
                    "lf {lv:?} lane {i}: value {:?} got {:?} want {:?}",
                    values[i],
                    lf[i],
                    want_lf[i]
                );
                assert_eq!(
                    pred[i].to_bits(),
                    want_pred[i].to_bits(),
                    "pred {lv:?} lane {i}: value {:?} got {:?} want {:?}",
                    values[i],
                    pred[i],
                    want_pred[i]
                );
            }
        }
    }

    #[test]
    fn rounding_correction_handles_all_tie_signs() {
        // Distilled from the design analysis: round() vs roundeven() on the
        // half-integers, driven through the full kernel.
        let quant = LinearQuantizer::new(0.5, 512); // inv_step = 1, step2 = 1
        let values = [0.5, 1.5, 2.5, -0.5, -1.5, -2.5, 3.5, -3.5];
        let preds = [0.0; 8];
        let mut want_codes = vec![0u32; 8];
        let mut want_recon = vec![0.0; 8];
        quantize_tail(&quant, &values, &preds, &mut want_codes, &mut want_recon);
        // Sanity-check the oracle itself: f64::round is half-away-from-zero.
        let q: Vec<i64> = want_codes.iter().map(|&c| i64::from(c) - 512).collect();
        assert_eq!(q, vec![1, 2, 3, -1, -2, -3, 4, -4]);
        for &lv in &runnable_levels() {
            let mut codes = Vec::new();
            let mut recon = vec![0.0; 8];
            quantize_predicted(&quant, &values, &preds, &mut codes, &mut recon, lv);
            assert_eq!(codes, want_codes, "{lv:?}");
            assert_eq!(recon, want_recon, "{lv:?}");
        }
    }

    #[test]
    fn negative_zero_prediction_reconstructs_identically() {
        let quant = LinearQuantizer::new(1e-3, 512);
        // diff rounds to q = 0 with pred = -0.0: scalar yields -0.0 + +0.0
        // = +0.0; an uncanonicalized kernel would produce -0.0.
        let values = [1e-5, -1e-5, 0.0, -0.0];
        let preds = [-0.0, -0.0, -0.0, -0.0];
        let mut want_codes = vec![0u32; 4];
        let mut want_recon = vec![0.0; 4];
        quantize_tail(&quant, &values, &preds, &mut want_codes, &mut want_recon);
        for &lv in &runnable_levels() {
            let mut codes = Vec::new();
            let mut recon = vec![0.0; 4];
            quantize_predicted(&quant, &values, &preds, &mut codes, &mut recon, lv);
            assert_eq!(codes, want_codes, "{lv:?}");
            let wb: Vec<u64> = want_recon.iter().map(|f| f.to_bits()).collect();
            let gb: Vec<u64> = recon.iter().map(|f| f.to_bits()).collect();
            assert_eq!(gb, wb, "{lv:?}");
        }
    }
}
