//! MDZ block container format.
//!
//! Each compressed buffer is a self-describing *block*:
//!
//! ```text
//! magic "MDZB" · version u8 · method u8 · flags u8
//! n_snapshots uvarint · n_values uvarint
//! eps f64 (LE) · radius uvarint
//! [mu f64 · lambda f64]            — if FLAG_GRID
//! payload_len uvarint · payload    — LZ77-compressed inner streams
//! ```
//!
//! The inner payload holds the Huffman-coded quantization codes (`B`), the
//! Huffman-coded level-index deltas (`J`, VQ-coded snapshots only), and the
//! escape list. Everything a decompressor needs is in the block except the
//! cross-buffer reference snapshot used by MT, which both endpoints derive
//! deterministically from the first block of the stream.

use crate::{MdzError, Result};
use mdz_entropy::{read_uvarint, write_uvarint};

/// Block magic bytes.
pub const MAGIC: [u8; 4] = *b"MDZB";
/// Format version of classic fixed-scale blocks.
pub const VERSION: u8 = 1;
/// Format version of blocks carrying [`FLAG_BIT_ADAPTIVE`].
///
/// Bit-adaptive blocks change the wire encoding of the `B` code stream
/// (per-chunk bit widths instead of one entropy-coded stream), so version-1
/// decoders must reject them outright rather than misparse the payload. The
/// version byte and the flag are redundant on purpose: each one
/// cross-checks the other, so a forged flag on a version-1 block (or a
/// stripped flag on a version-2 block) fails header validation instead of
/// reaching the payload parser.
pub const VERSION_BIT_ADAPTIVE: u8 = 2;

/// Byte offset of the flags byte within a serialized block: right after the
/// magic, the version byte, and the method byte. The `f32` tagging path
/// patches this byte in place, so it is part of the format contract.
pub const FLAGS_OFFSET: usize = MAGIC.len() + 2;

/// The level grid was detected and is serialized in the header.
pub const FLAG_GRID: u8 = 1 << 0;
/// Codes are Seq-2 (particle-major) interleaved.
pub const FLAG_SEQ2: u8 = 1 << 1;
/// The buffer's first snapshot was coded with in-snapshot Lorenzo
/// prediction (no grid / no reference snapshot available).
pub const FLAG_FIRST_LORENZO: u8 = 1 << 2;
/// Integer streams are range-coded instead of Huffman-coded.
pub const FLAG_RANGE_CODED: u8 = 1 << 3;
/// The source data was `f32`; decompress with
/// [`crate::Decompressor::decompress_block_f32`] to recover it.
pub const FLAG_F32: u8 = 1 << 4;
/// The `B` code stream is bit-adaptive: packed with per-chunk bit widths by
/// [`crate::BitAdaptiveQuantizer`] instead of entropy-coded over the fixed
/// `[1, 2·radius)` alphabet. Implies (and requires) the block version byte
/// [`VERSION_BIT_ADAPTIVE`].
pub const FLAG_BIT_ADAPTIVE: u8 = 1 << 5;

/// MDZ compression method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Method {
    /// Vector quantization on every snapshot (purely spatial).
    Vq,
    /// VQ on the buffer's first snapshot, time prediction for the rest.
    Vqt,
    /// Reference-snapshot prediction for the first snapshot, time
    /// prediction for the rest.
    Mt,
    /// Extension (not in the paper): like MT but with second-order (linear
    /// extrapolation) time prediction `2·x_{t−1} − x_{t−2}` from the third
    /// snapshot of each buffer on. Wins on coherently drifting particles
    /// (e.g. cosmology); see the `ablations` experiment.
    Mt2,
    /// Runtime selection among the concrete methods (the paper's ADP;
    /// default).
    #[default]
    Adaptive,
}

impl Method {
    /// Wire encoding. [`Method::Adaptive`] never appears on the wire — a
    /// block always records the concrete method that produced it.
    pub fn to_wire(self) -> u8 {
        match self {
            Method::Vq => 0,
            Method::Vqt => 1,
            Method::Mt => 2,
            Method::Mt2 => 3,
            Method::Adaptive => panic!("Adaptive is not a wire method"),
        }
    }

    /// Parses a wire method id.
    pub fn from_wire(v: u8) -> Result<Self> {
        match v {
            0 => Ok(Method::Vq),
            1 => Ok(Method::Vqt),
            2 => Ok(Method::Mt),
            3 => Ok(Method::Mt2),
            _ => Err(MdzError::BadHeader("unknown method id")),
        }
    }

    /// The three concrete candidates the paper's adaptive selector ranks.
    pub const CONCRETE: [Method; 3] = [Method::Vq, Method::Vqt, Method::Mt];

    /// Extended candidate set including the second-order predictor.
    pub const EXTENDED: [Method; 4] = [Method::Vq, Method::Vqt, Method::Mt, Method::Mt2];
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Method::Vq => "VQ",
            Method::Vqt => "VQT",
            Method::Mt => "MT",
            Method::Mt2 => "MT2",
            Method::Adaptive => "ADP",
        };
        write!(f, "{s}")
    }
}

/// Parsed block header.
#[derive(Debug, Clone, Copy)]
pub struct BlockHeader {
    /// Concrete method that produced the block.
    pub method: Method,
    /// Flag bits (`FLAG_*`).
    pub flags: u8,
    /// Snapshots in the block.
    pub n_snapshots: usize,
    /// Values per snapshot.
    pub n_values: usize,
    /// Absolute error bound the block was coded under.
    pub eps: f64,
    /// Quantization radius (half the quantization scale).
    pub radius: u32,
    /// `(mu, lambda)` when [`FLAG_GRID`] is set.
    pub grid: Option<(f64, f64)>,
}

impl BlockHeader {
    /// Serializes the header into `out`.
    pub fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&MAGIC);
        out.push(if self.flags & FLAG_BIT_ADAPTIVE != 0 { VERSION_BIT_ADAPTIVE } else { VERSION });
        out.push(self.method.to_wire());
        out.push(self.flags);
        write_uvarint(out, self.n_snapshots as u64);
        write_uvarint(out, self.n_values as u64);
        out.extend_from_slice(&self.eps.to_le_bytes());
        write_uvarint(out, u64::from(self.radius));
        if let Some((mu, lambda)) = self.grid {
            debug_assert!(self.flags & FLAG_GRID != 0);
            out.extend_from_slice(&mu.to_le_bytes());
            out.extend_from_slice(&lambda.to_le_bytes());
        } else {
            debug_assert!(self.flags & FLAG_GRID == 0);
        }
    }

    /// Parses a header from `data` at `*pos`, advancing past it.
    pub fn read(data: &[u8], pos: &mut usize) -> Result<Self> {
        let magic = data.get(*pos..*pos + 4).ok_or(MdzError::BadHeader("truncated magic"))?;
        if magic != MAGIC {
            return Err(MdzError::BadHeader("not an MDZ block"));
        }
        *pos += 4;
        let version = *data.get(*pos).ok_or(MdzError::BadHeader("truncated version"))?;
        *pos += 1;
        if version != VERSION && version != VERSION_BIT_ADAPTIVE {
            return Err(MdzError::BadHeader("unsupported version"));
        }
        let method =
            Method::from_wire(*data.get(*pos).ok_or(MdzError::BadHeader("truncated method"))?)?;
        *pos += 1;
        let flags = *data.get(*pos).ok_or(MdzError::BadHeader("truncated flags"))?;
        *pos += 1;
        // The version byte and the bit-adaptive flag must agree; a mismatch
        // means the block was tampered with or mis-assembled.
        let expect_ba = version == VERSION_BIT_ADAPTIVE;
        if (flags & FLAG_BIT_ADAPTIVE != 0) != expect_ba {
            return Err(MdzError::BadHeader("version/flag mismatch for bit-adaptive stream"));
        }
        let n_snapshots = read_uvarint(data, pos)? as usize;
        let n_values = read_uvarint(data, pos)? as usize;
        if n_snapshots == 0 || n_values == 0 {
            return Err(MdzError::BadHeader("empty block dimensions"));
        }
        if n_snapshots.checked_mul(n_values).is_none() || n_snapshots * n_values > (1usize << 34) {
            return Err(MdzError::BadHeader("implausible block dimensions"));
        }
        let eps_bytes = data.get(*pos..*pos + 8).ok_or(MdzError::BadHeader("truncated eps"))?;
        *pos += 8;
        let eps = f64::from_le_bytes(eps_bytes.try_into().unwrap());
        if !(eps > 0.0 && eps.is_finite()) {
            return Err(MdzError::BadHeader("invalid eps"));
        }
        let radius64 = read_uvarint(data, pos)?;
        if !(2..=(1 << 24)).contains(&radius64) {
            return Err(MdzError::BadHeader("invalid radius"));
        }
        let radius = radius64 as u32;
        let grid = if flags & FLAG_GRID != 0 {
            let mu_b = data.get(*pos..*pos + 8).ok_or(MdzError::BadHeader("truncated grid"))?;
            *pos += 8;
            let la_b = data.get(*pos..*pos + 8).ok_or(MdzError::BadHeader("truncated grid"))?;
            *pos += 8;
            let mu = f64::from_le_bytes(mu_b.try_into().unwrap());
            let lambda = f64::from_le_bytes(la_b.try_into().unwrap());
            if !(lambda > 0.0 && lambda.is_finite() && mu.is_finite()) {
                return Err(MdzError::BadHeader("invalid grid"));
            }
            Some((mu, lambda))
        } else {
            None
        };
        Ok(Self { method, flags, n_snapshots, n_values, eps, radius, grid })
    }
}

// ---------------------------------------------------------------------------
// Checksummed frame layer
// ---------------------------------------------------------------------------

/// Frame magic bytes (distinct from the block magic so a frame scanner never
/// locks onto an inner block header).
pub const FRAME_MAGIC: [u8; 4] = *b"MDZF";
/// Current frame-layer version. Independent of the block [`VERSION`]: frames
/// are an opt-in outer wrapper, and unframed version-1 blocks (the golden
/// fixtures) remain decodable forever.
pub const FRAME_VERSION: u8 = 1;
/// Fixed size of a frame header: magic · version u8 · payload_len u32 LE ·
/// crc32 u32 LE.
pub const FRAME_HEADER_LEN: usize = FRAME_MAGIC.len() + 1 + 4 + 4;

// The CRC-32 implementation lives in the shared checksum module; it stays
// re-exported here because the frame layer is where it entered the format
// contract.
pub use crate::checksum::{crc32, Crc32};

/// Wraps `payload` in a checksummed, self-delimiting frame appended to
/// `out`.
///
/// Layout: `FRAME_MAGIC · version u8 · payload_len u32 LE · crc32 u32 LE ·
/// payload`. The CRC covers the version byte, the length bytes, and the
/// payload, so a corrupted length field is detected rather than trusted.
pub fn write_frame(payload: &[u8], out: &mut Vec<u8>) -> Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| MdzError::BadInput("frame payload exceeds u32::MAX bytes"))?;
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(FRAME_VERSION);
    out.extend_from_slice(&len.to_le_bytes());
    let mut h = Crc32::new();
    h.update(&[FRAME_VERSION]);
    h.update(&len.to_le_bytes());
    h.update(payload);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

/// Parses one frame from `data` at `*pos`, advancing past it and returning
/// the verified payload.
///
/// Structural problems (wrong magic, unknown version, truncation) surface as
/// [`MdzError::BadHeader`]; a checksum mismatch — the frame is well-formed
/// but its bytes are damaged — surfaces as [`MdzError::Corrupt`]. The
/// declared length is checked against the remaining input *before* any use,
/// so a forged length cannot drive reads or allocations past the buffer.
pub fn read_frame<'a>(data: &'a [u8], pos: &mut usize) -> Result<&'a [u8]> {
    let magic = data.get(*pos..*pos + 4).ok_or(MdzError::BadHeader("truncated frame magic"))?;
    if magic != FRAME_MAGIC {
        return Err(MdzError::BadHeader("not an MDZ frame"));
    }
    let version = *data.get(*pos + 4).ok_or(MdzError::BadHeader("truncated frame version"))?;
    if version != FRAME_VERSION {
        return Err(MdzError::BadHeader("unsupported frame version"));
    }
    let len_bytes =
        data.get(*pos + 5..*pos + 9).ok_or(MdzError::BadHeader("truncated frame length"))?;
    let payload_len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
    let crc_bytes =
        data.get(*pos + 9..*pos + 13).ok_or(MdzError::BadHeader("truncated frame checksum"))?;
    let stored_crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    let start = *pos + FRAME_HEADER_LEN;
    let payload = start
        .checked_add(payload_len)
        .and_then(|end| data.get(start..end))
        .ok_or(MdzError::BadHeader("truncated frame payload"))?;
    let mut h = Crc32::new();
    h.update(&[version]);
    h.update(len_bytes);
    h.update(payload);
    if h.finish() != stored_crc {
        return Err(MdzError::Corrupt { what: "frame checksum mismatch" });
    }
    *pos = start + payload_len;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> BlockHeader {
        BlockHeader {
            method: Method::Vqt,
            flags: FLAG_GRID | FLAG_SEQ2,
            n_snapshots: 10,
            n_values: 1037,
            eps: 1e-3,
            radius: 512,
            grid: Some((-3.5, 2.25)),
        }
    }

    #[test]
    fn flags_offset_matches_serialized_layout() {
        for flags in [0u8, FLAG_GRID | FLAG_SEQ2, FLAG_F32, 0xFF] {
            let h = BlockHeader {
                flags,
                grid: (flags & FLAG_GRID != 0).then_some((-3.5, 2.25)),
                ..sample_header()
            };
            let mut buf = Vec::new();
            h.write(&mut buf);
            assert_eq!(buf[FLAGS_OFFSET], flags);
        }
    }

    #[test]
    fn header_round_trip() {
        let h = sample_header();
        let mut buf = Vec::new();
        h.write(&mut buf);
        let mut pos = 0;
        let parsed = BlockHeader::read(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(parsed.method, h.method);
        assert_eq!(parsed.flags, h.flags);
        assert_eq!(parsed.n_snapshots, h.n_snapshots);
        assert_eq!(parsed.n_values, h.n_values);
        assert_eq!(parsed.eps, h.eps);
        assert_eq!(parsed.radius, h.radius);
        assert_eq!(parsed.grid, h.grid);
    }

    #[test]
    fn header_without_grid() {
        let h = BlockHeader { flags: 0, grid: None, method: Method::Mt, ..sample_header() };
        let mut buf = Vec::new();
        h.write(&mut buf);
        let mut pos = 0;
        let parsed = BlockHeader::read(&buf, &mut pos).unwrap();
        assert_eq!(parsed.grid, None);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        sample_header().write(&mut buf);
        buf[0] = b'X';
        assert!(matches!(BlockHeader::read(&buf, &mut 0), Err(MdzError::BadHeader(_))));
    }

    #[test]
    fn truncations_rejected() {
        let mut buf = Vec::new();
        sample_header().write(&mut buf);
        for cut in 0..buf.len() {
            assert!(BlockHeader::read(&buf[..cut], &mut 0).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn invalid_fields_rejected() {
        let mut buf = Vec::new();
        sample_header().write(&mut buf);
        // Corrupt eps to NaN.
        let mut bad = buf.clone();
        let eps_off = 4 + 3 + 1 + 2; // magic+ver+method+flags, uvarint(10)=1, uvarint(1037)=2
        for b in &mut bad[eps_off..eps_off + 8] {
            *b = 0xFF;
        }
        assert!(BlockHeader::read(&bad, &mut 0).is_err());
    }

    #[test]
    fn bit_adaptive_header_uses_version_two() {
        let h = BlockHeader {
            flags: FLAG_BIT_ADAPTIVE | FLAG_SEQ2,
            grid: None,
            method: Method::Mt,
            ..sample_header()
        };
        let mut buf = Vec::new();
        h.write(&mut buf);
        assert_eq!(buf[4], VERSION_BIT_ADAPTIVE);
        let mut pos = 0;
        let parsed = BlockHeader::read(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(parsed.flags, h.flags);
    }

    #[test]
    fn version_flag_mismatch_rejected_both_ways() {
        // Forged flag on a version-1 block.
        let mut buf = Vec::new();
        BlockHeader { flags: 0, grid: None, method: Method::Mt, ..sample_header() }.write(&mut buf);
        buf[FLAGS_OFFSET] |= FLAG_BIT_ADAPTIVE;
        assert_eq!(
            BlockHeader::read(&buf, &mut 0).map(|h| h.flags).unwrap_err(),
            MdzError::BadHeader("version/flag mismatch for bit-adaptive stream")
        );
        // Stripped flag on a version-2 block.
        let mut buf = Vec::new();
        BlockHeader { flags: FLAG_BIT_ADAPTIVE, grid: None, method: Method::Mt, ..sample_header() }
            .write(&mut buf);
        buf[FLAGS_OFFSET] &= !FLAG_BIT_ADAPTIVE;
        assert!(BlockHeader::read(&buf, &mut 0).is_err());
        // Unknown future versions stay rejected.
        let mut buf = Vec::new();
        sample_header().write(&mut buf);
        buf[4] = 3;
        assert_eq!(
            BlockHeader::read(&buf, &mut 0).map(|h| h.flags).unwrap_err(),
            MdzError::BadHeader("unsupported version")
        );
    }

    #[test]
    fn wire_method_round_trip() {
        for m in Method::CONCRETE {
            assert_eq!(Method::from_wire(m.to_wire()).unwrap(), m);
        }
        assert!(Method::from_wire(9).is_err());
    }

    #[test]
    #[should_panic(expected = "not a wire method")]
    fn adaptive_has_no_wire_form() {
        let _ = Method::Adaptive.to_wire();
    }

    #[test]
    fn frame_round_trip() {
        for payload in [&b""[..], b"x", b"hello frame", &[0u8; 1000]] {
            let mut buf = Vec::new();
            write_frame(payload, &mut buf).unwrap();
            assert_eq!(buf.len(), FRAME_HEADER_LEN + payload.len());
            let mut pos = 0;
            assert_eq!(read_frame(&buf, &mut pos).unwrap(), payload);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn frames_concatenate() {
        let mut buf = Vec::new();
        write_frame(b"first", &mut buf).unwrap();
        write_frame(b"second", &mut buf).unwrap();
        let mut pos = 0;
        assert_eq!(read_frame(&buf, &mut pos).unwrap(), b"first");
        assert_eq!(read_frame(&buf, &mut pos).unwrap(), b"second");
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        // The CRC covers version, length, and payload: flipping any byte of
        // the frame must surface as an error (magic/version/truncation as
        // BadHeader, everything else as a checksum mismatch).
        let mut buf = Vec::new();
        write_frame(b"some block payload bytes", &mut buf).unwrap();
        for i in 0..buf.len() {
            buf[i] ^= 0xA5;
            assert!(read_frame(&buf, &mut 0).is_err(), "flip at {i} undetected");
            buf[i] ^= 0xA5;
        }
        assert!(read_frame(&buf, &mut 0).is_ok());
    }

    #[test]
    fn frame_truncations_rejected() {
        let mut buf = Vec::new();
        write_frame(b"payload", &mut buf).unwrap();
        for cut in 0..buf.len() {
            assert!(
                matches!(read_frame(&buf[..cut], &mut 0), Err(MdzError::BadHeader(_))),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn forged_frame_length_rejected_before_read() {
        let mut buf = Vec::new();
        write_frame(b"payload", &mut buf).unwrap();
        // Forge a giant length; must fail as truncation, not a huge slice.
        buf[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(read_frame(&buf, &mut 0), Err(MdzError::BadHeader(_))));
    }

    #[test]
    fn checksum_mismatch_is_corrupt_not_bad_header() {
        let mut buf = Vec::new();
        write_frame(b"payload", &mut buf).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 1;
        assert_eq!(
            read_frame(&buf, &mut 0),
            Err(MdzError::Corrupt { what: "frame checksum mismatch" })
        );
    }
}
