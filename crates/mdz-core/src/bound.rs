//! Error-bound specifications.
//!
//! The paper reports results with *value-range-based* bounds `ε` (absolute
//! bound `= ε · (max − min)` of the data being compressed) as is conventional
//! in the SZ literature; an absolute bound is also supported directly.

use crate::{MdzError, Result};

/// How much each reconstructed value may deviate from the original.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBound {
    /// Absolute bound: `|d − d'| ≤ eps`.
    Absolute(f64),
    /// Relative to the value range of the buffer being compressed:
    /// `|d − d'| ≤ eps · (max − min)`.
    ValueRangeRelative(f64),
}

impl ErrorBound {
    /// Resolves to an absolute bound for a concrete buffer.
    ///
    /// A value-range bound on constant data (range 0) degenerates to a tiny
    /// positive epsilon so quantization stays well-defined (and trivially
    /// satisfied, since the data is constant).
    pub fn absolute_for(&self, data: &[f64]) -> f64 {
        match *self {
            ErrorBound::Absolute(e) => e,
            ErrorBound::ValueRangeRelative(r) => {
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                for &v in data {
                    if v < min {
                        min = v;
                    }
                    if v > max {
                        max = v;
                    }
                }
                let range = max - min;
                if range > 0.0 && range.is_finite() {
                    r * range
                } else {
                    f64::MIN_POSITIVE.max(1e-300)
                }
            }
        }
    }

    /// Checks the bound is positive and finite.
    pub fn validate(&self) -> Result<()> {
        let e = match *self {
            ErrorBound::Absolute(e) | ErrorBound::ValueRangeRelative(e) => e,
        };
        if e > 0.0 && e.is_finite() {
            Ok(())
        } else {
            Err(MdzError::BadConfig("error bound must be positive and finite"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_passthrough() {
        assert_eq!(ErrorBound::Absolute(0.5).absolute_for(&[1.0, 100.0]), 0.5);
    }

    #[test]
    fn relative_scales_with_range() {
        let b = ErrorBound::ValueRangeRelative(1e-3);
        assert!((b.absolute_for(&[0.0, 10.0]) - 0.01).abs() < 1e-15);
        assert!((b.absolute_for(&[-5.0, 5.0]) - 0.01).abs() < 1e-15);
    }

    #[test]
    fn relative_on_constant_data_is_positive() {
        let b = ErrorBound::ValueRangeRelative(1e-3);
        assert!(b.absolute_for(&[7.0, 7.0, 7.0]) > 0.0);
    }

    #[test]
    fn validation() {
        assert!(ErrorBound::Absolute(1e-6).validate().is_ok());
        assert!(ErrorBound::Absolute(0.0).validate().is_err());
        assert!(ErrorBound::Absolute(-1.0).validate().is_err());
        assert!(ErrorBound::ValueRangeRelative(f64::NAN).validate().is_err());
        assert!(ErrorBound::ValueRangeRelative(f64::INFINITY).validate().is_err());
    }
}
