//! Cross-cutting determinism guarantees for the parallel block engine.
//!
//! The contract under test: for every codec, every precision, and every
//! worker count, the parallel entry points emit streams **byte-identical**
//! to the serial loop — parallelism is an encoder implementation detail,
//! never a format variable. The corruption tests additionally pin the
//! error behaviour to the serial path's, replaying hostile inputs from the
//! repository `corpus/`.

use std::path::{Path, PathBuf};

use mdz_core::traj::TrajectoryDecompressor;
use mdz_core::{
    Compressor, ErrorBound, Frame, MdzConfig, Method, ParallelOptions,
    ParallelTrajectoryDecompressor, TrajReader, TrajWriter,
};

const METHODS: &[(&str, Method)] =
    &[("ADP", Method::Adaptive), ("VQ", Method::Vq), ("VQT", Method::Vqt), ("MT", Method::Mt)];

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..").join("corpus")
}

fn corpus_seed(name: &str) -> Vec<u8> {
    let path = corpus_dir().join(name);
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "corpus seed {} unreadable ({e}); regenerate with \
             MDZ_BLESS_CORPUS=1 cargo test -p mdz-fuzz --test corpus_regressions",
            path.display()
        )
    })
}

/// Deterministic lattice-plus-noise snapshots, distinct per buffer index.
fn snapshots(buffer: usize, m: usize, n: usize) -> Vec<Vec<f64>> {
    let mut s = 0x5eed ^ (buffer as u64).wrapping_mul(0x9e3779b97f4a7c15);
    (0..m)
        .map(|t| {
            (0..n)
                .map(|i| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let u = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                    (i % 11) as f64 * 2.5 + u * 0.02 + (t + buffer) as f64 * 1e-4
                })
                .collect()
        })
        .collect()
}

/// A config with a short adaptive interval so an 8-buffer batch crosses
/// several trial boundaries (the hard case for deferral bookkeeping).
fn config(method: Method) -> MdzConfig {
    let mut cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(method);
    cfg.adapt_interval = 2;
    cfg
}

#[test]
fn workers_4_byte_identical_to_serial_f64() {
    for &(name, method) in METHODS {
        let buffers: Vec<Vec<Vec<f64>>> = (0..8).map(|k| snapshots(k, 5, 160)).collect();
        let refs: Vec<&[Vec<f64>]> = buffers.iter().map(Vec::as_slice).collect();

        let mut serial = Compressor::new(config(method));
        let expected: Vec<Vec<u8>> =
            refs.iter().map(|b| serial.compress_buffer(b).unwrap()).collect();

        let mut par = Compressor::new(config(method));
        let got = par.compress_buffers_parallel(&refs, &ParallelOptions::with_workers(4)).unwrap();
        assert_eq!(got, expected, "{name}: parallel f64 stream diverged from serial");
    }
}

#[test]
fn workers_4_byte_identical_to_serial_f32() {
    for &(name, method) in METHODS {
        let buffers: Vec<Vec<Vec<f32>>> = (0..8)
            .map(|k| {
                snapshots(k, 5, 160)
                    .into_iter()
                    .map(|s| s.into_iter().map(|v| v as f32).collect())
                    .collect()
            })
            .collect();
        let refs: Vec<&[Vec<f32>]> = buffers.iter().map(Vec::as_slice).collect();

        let mut serial = Compressor::new(config(method));
        let expected: Vec<Vec<u8>> =
            refs.iter().map(|b| serial.compress_buffer_f32(b).unwrap()).collect();

        let mut par = Compressor::new(config(method));
        let got =
            par.compress_buffers_f32_parallel(&refs, &ParallelOptions::with_workers(4)).unwrap();
        assert_eq!(got, expected, "{name}: parallel f32 stream diverged from serial");
    }
}

fn frames(buffer: usize, n: usize, t: usize) -> Vec<Frame> {
    let axes = snapshots(buffer, 3 * t, n);
    (0..t)
        .map(|s| Frame::new(axes[3 * s].clone(), axes[3 * s + 1].clone(), axes[3 * s + 2].clone()))
        .collect()
}

/// A framed stream with corpus-crafted garbage spliced between valid
/// frames must decode concurrently exactly as it does serially: the
/// reader skips the damage, and every intact buffer round-trips.
#[test]
fn concurrent_reader_recovers_around_corpus_garbage() {
    let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(Method::Vq);
    let buffers: Vec<Vec<Frame>> = (0..4).map(|k| frames(k, 90, 4)).collect();

    let mut writer =
        TrajWriter::new(Vec::new(), cfg).with_parallelism(ParallelOptions::with_workers(4));
    let mut ends = Vec::new();
    let mut offset = 0;
    for buf in &buffers {
        offset += writer.write_buffer(buf).unwrap();
        ends.push(offset);
    }
    let bytes = writer.into_inner();

    // frame_bad_crc.bin is a complete frame whose checksum is broken; the
    // reader must reject it and resynchronise on the next magic.
    let bad_crc = corpus_seed("frame_bad_crc.bin");
    let mut stream = Vec::new();
    stream.extend_from_slice(&bytes[..ends[1]]);
    stream.extend_from_slice(&bad_crc);
    stream.extend_from_slice(&bytes[ends[1]..]);
    stream.extend_from_slice(&bad_crc);

    let mut reader = TrajReader::new(&stream);
    let mut dec =
        ParallelTrajectoryDecompressor::new().with_parallelism(ParallelOptions::with_workers(4));
    let decoded = reader.decode_all_parallel(&mut dec).unwrap();

    assert!(reader.skipped() >= 1, "corrupt frame was not flagged as skipped");
    assert_eq!(decoded.len(), buffers.len(), "intact buffer lost during recovery");
    for (got, want) in decoded.iter().zip(&buffers) {
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            for (a, b) in g.x.iter().zip(&w.x) {
                assert!((a - b).abs() <= 1e-4);
            }
        }
    }
}

/// A hostile container from the corpus must be rejected by the parallel
/// batch decoder exactly like the serial decoder — typed error, no panic.
#[test]
fn parallel_decode_rejects_corpus_container_like_serial() {
    let hostile = corpus_seed("traj_truncated_axis.bin");

    let serial = TrajectoryDecompressor::new().decompress_buffer(&hostile);
    assert!(serial.is_err(), "corpus container unexpectedly decoded serially");

    let mut dec =
        ParallelTrajectoryDecompressor::new().with_parallelism(ParallelOptions::with_workers(4));
    let parallel = dec.decompress_buffers(&[hostile.as_slice()]);
    assert!(parallel.is_err(), "parallel decoder accepted a container the serial path rejects");
}
