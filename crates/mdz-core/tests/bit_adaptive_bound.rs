//! Error-bound differential tests for the bit-adaptive quantizer stage.
//!
//! For every method × chunk size, on a crystal-like corpus (matched to the
//! fixed scale) and a gas-like corpus (step magnitudes spanning decades,
//! plus injected escape-forcing outliers and non-finite values), the
//! bit-adaptive composition must reconstruct every finite value within the
//! bound and round-trip every non-finite value bitwise — exactly the
//! contract the linear composition honors on the same bytes of input.

use mdz_core::{Compressor, Decompressor, ErrorBound, MdzConfig, Method, QuantizerKind};

const EPS: f64 = 1e-3;

/// Deterministic LCG in [0, 1).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> f64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    fn gauss(&mut self) -> f64 {
        let u1 = self.next().max(1e-12);
        let u2 = self.next();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Crystal-like corpus: lattice sites plus small thermal noise.
fn crystal(m: usize, n: usize) -> Vec<Vec<f64>> {
    let mut rng = Lcg(0xBA_C0DE_0001);
    let sites: Vec<f64> = (0..n).map(|i| (i % 20) as f64 * 1.8075).collect();
    (0..m).map(|_| sites.iter().map(|s| s + rng.gauss() * 0.03).collect()).collect()
}

/// Gas-like corpus: random walk whose per-particle step size spans four
/// decades, with escape-forcing outliers (far beyond the bit-adaptive
/// 2^23 cap at this bound) and non-finite values injected.
fn gas(m: usize, n: usize) -> Vec<Vec<f64>> {
    let mut rng = Lcg(0xBA_C0DE_0002);
    let mut pos: Vec<f64> = (0..n).map(|_| rng.next() * 50.0).collect();
    let sigma: Vec<f64> = (0..n).map(|i| 10f64.powf(-3.0 + 4.0 * i as f64 / n as f64)).collect();
    let mut snapshots = Vec::new();
    for t in 0..m {
        let mut snap = pos.clone();
        // Outliers overflow even the widest 24-bit code: verbatim escapes.
        snap[(7 * t + 3) % n] = 1e9 * (t as f64 + 1.0);
        // Non-finite values must survive bitwise through the escape list.
        snap[(11 * t + 5) % n] = f64::NAN;
        snap[(13 * t + 9) % n] = f64::INFINITY;
        snap[(17 * t + 1) % n] = f64::NEG_INFINITY;
        snapshots.push(snap);
        for (p, s) in pos.iter_mut().zip(sigma.iter()) {
            *p += rng.gauss() * s;
        }
    }
    snapshots
}

/// Compresses and decompresses `snapshots` under `quantizer`, asserting
/// the per-value contract; returns the compressed size.
fn round_trip(method: Method, quantizer: QuantizerKind, snapshots: &[Vec<f64>]) -> usize {
    let cfg =
        MdzConfig::new(ErrorBound::Absolute(EPS)).with_method(method).with_quantizer(quantizer);
    let block = Compressor::new(cfg).compress_buffer(snapshots).expect("compress");
    let out = Decompressor::new().decompress_block(&block).expect("decompress");
    assert_eq!(out.len(), snapshots.len());
    for (orig, got) in snapshots.iter().zip(out.iter()) {
        assert_eq!(orig.len(), got.len());
        for (&a, &b) in orig.iter().zip(got.iter()) {
            if a.is_finite() {
                assert!(
                    (a - b).abs() <= EPS * (1.0 + 1e-9),
                    "{method:?}/{quantizer}: |{a} - {b}| > {EPS}"
                );
            } else {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{method:?}/{quantizer}: non-finite {a} did not round-trip bitwise"
                );
            }
        }
    }
    block.len()
}

#[test]
fn bit_adaptive_respects_bound_on_crystal_and_gas() {
    let corpora = [crystal(8, 300), gas(8, 300)];
    for snapshots in &corpora {
        for method in [Method::Vq, Method::Vqt, Method::Mt, Method::Mt2] {
            for chunk in [1usize, 7, 64] {
                round_trip(method, QuantizerKind::BitAdaptive { chunk }, snapshots);
            }
        }
    }
}

#[test]
fn bit_adaptive_and_linear_honor_the_same_contract() {
    // Differential: on identical inputs both stages obey the identical
    // per-value bound; neither composition is allowed to trade the escape
    // path (outliers, non-finite) for ratio.
    for snapshots in [crystal(8, 300), gas(8, 300)] {
        for method in [Method::Vqt, Method::Mt] {
            let linear = round_trip(method, QuantizerKind::Linear, &snapshots);
            let ba = round_trip(method, QuantizerKind::BIT_ADAPTIVE_DEFAULT, &snapshots);
            assert!(linear > 0 && ba > 0);
        }
    }
}

#[test]
fn gas_escapes_are_cheaper_under_bit_adaptive() {
    // On the decade-spanning corpus the fixed 512-code radius turns the
    // fast tail into 9-byte verbatim escapes; the bit-adaptive stage
    // covers the same residuals with wide codes and must come out
    // strictly smaller at the same bound.
    let snapshots = gas(8, 300);
    let linear = round_trip(Method::Mt, QuantizerKind::Linear, &snapshots);
    let ba = round_trip(Method::Mt, QuantizerKind::BIT_ADAPTIVE_DEFAULT, &snapshots);
    assert!(ba < linear, "bit-adaptive ({ba} B) not smaller than linear ({linear} B)");
}
