//! Differential SIMD-vs-scalar byte-identity tests.
//!
//! The scalar pipeline is the semantic oracle: every SIMD kernel behind the
//! runtime dispatch (fused predict/quantize, batched Huffman decode, LZ77
//! match probing) must produce *byte-identical* streams and *bit-identical*
//! reconstructions. These tests compress and decode every stream
//! configuration the golden fixtures pin — all codecs × f32/f64 ×
//! bit-adaptive — once with the auto-detected kernels and once under the
//! forced-scalar override, and compare the results exactly.
//!
//! On hosts without SIMD support both arms run the scalar path and the
//! comparison is trivially true; the dispatch tests in `mdz_entropy::kernel`
//! cover the detection logic itself.

use mdz_core::bound::ErrorBound;
use mdz_core::buffer::{Compressor, Decompressor};
use mdz_core::format::Method;
use mdz_core::kernel;
use mdz_core::{EntropyStage, MdzConfig, QuantizerKind};
use std::sync::Mutex;

const N_PARTICLES: usize = 240;
const SNAPSHOTS_PER_BUFFER: usize = 8;
const N_BUFFERS: usize = 3;

/// The force-scalar override is process-global; serialize every test that
/// toggles it so parallel test threads never observe each other's state.
static GATE: Mutex<()> = Mutex::new(());

/// Runs `f` with the scalar-oracle override set to `force`, restoring the
/// previous state afterwards.
fn with_force_scalar<T>(force: bool, f: impl FnOnce() -> T) -> T {
    let prev = kernel::force_scalar();
    kernel::set_force_scalar(force);
    let out = f();
    kernel::set_force_scalar(prev);
    out
}

/// Deterministic LCG in [0, 1) — same generators as `format_stability`, so
/// the streams here cover exactly the configurations the golden fixtures
/// pin.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> f64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    fn gauss(&mut self) -> f64 {
        let u1 = self.next().max(1e-12);
        let u2 = self.next();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

fn lattice_stream() -> Vec<Vec<Vec<f64>>> {
    let mut rng = Lcg(0x5EED_0001);
    let spacing = 1.8075;
    let sites: Vec<f64> = (0..N_PARTICLES).map(|i| (i % 24) as f64 * spacing).collect();
    let mut disp: Vec<f64> = (0..N_PARTICLES).map(|_| rng.gauss() * 0.04).collect();
    let mut buffers = Vec::new();
    for _ in 0..N_BUFFERS {
        let mut snapshots = Vec::new();
        for _ in 0..SNAPSHOTS_PER_BUFFER {
            let snap: Vec<f64> = sites.iter().zip(disp.iter()).map(|(s, d)| s + d).collect();
            snapshots.push(snap);
            for d in disp.iter_mut() {
                *d = *d * 0.9 + rng.gauss() * 0.02;
            }
        }
        buffers.push(snapshots);
    }
    buffers
}

fn smooth_stream() -> Vec<Vec<Vec<f64>>> {
    let mut rng = Lcg(0x5EED_0002);
    let mut pos: Vec<f64> = {
        let mut p = 0.0;
        (0..N_PARTICLES)
            .map(|_| {
                p += rng.gauss() * 0.7;
                p
            })
            .collect()
    };
    let mut buffers = Vec::new();
    for _ in 0..N_BUFFERS {
        let mut snapshots = Vec::new();
        for _ in 0..SNAPSHOTS_PER_BUFFER {
            snapshots.push(pos.clone());
            for p in pos.iter_mut() {
                *p += rng.gauss() * 0.01;
            }
        }
        buffers.push(snapshots);
    }
    buffers
}

fn spread_stream() -> Vec<Vec<Vec<f64>>> {
    let mut rng = Lcg(0x5EED_0003);
    let mut pos: Vec<f64> = (0..N_PARTICLES).map(|_| rng.next() * 100.0).collect();
    let sigma: Vec<f64> =
        (0..N_PARTICLES).map(|i| 10f64.powf(-3.0 + 4.0 * i as f64 / N_PARTICLES as f64)).collect();
    let mut buffers = Vec::new();
    for _ in 0..N_BUFFERS {
        let mut snapshots = Vec::new();
        for _ in 0..SNAPSHOTS_PER_BUFFER {
            snapshots.push(pos.clone());
            for (p, s) in pos.iter_mut().zip(sigma.iter()) {
                *p += rng.gauss() * s;
            }
        }
        buffers.push(snapshots);
    }
    buffers
}

/// Compresses a stream into length-framed blocks (matching the golden
/// fixture framing) with one stateful `Compressor`.
fn encode_stream(cfg: &MdzConfig, buffers: &[Vec<Vec<f64>>], narrow: bool) -> Vec<u8> {
    let mut comp = Compressor::new(cfg.clone());
    let mut out = Vec::new();
    for buf in buffers {
        let block = if narrow {
            let f32s: Vec<Vec<f32>> =
                buf.iter().map(|s| s.iter().map(|&v| v as f32).collect()).collect();
            comp.compress_buffer_f32(&f32s).expect("compress f32")
        } else {
            comp.compress_buffer(buf).expect("compress")
        };
        out.extend_from_slice(&(block.len() as u32).to_le_bytes());
        out.extend_from_slice(&block);
    }
    out
}

/// Decodes a length-framed stream to reconstruction bit patterns (f64 bits
/// widened from f32 for narrow blocks, so both widths compare exactly).
fn decode_stream_bits(bytes: &[u8]) -> Vec<Vec<Vec<u64>>> {
    let mut dec = Decompressor::new();
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        let block = &bytes[pos..pos + len];
        pos += len;
        let narrow = Decompressor::inspect(block).expect("inspect").source_f32;
        if narrow {
            let snaps = dec.decompress_block_f32(block).expect("decode f32");
            out.push(
                snaps.iter().map(|s| s.iter().map(|&v| u64::from(v.to_bits())).collect()).collect(),
            );
        } else {
            let snaps = dec.decompress_block(block).expect("decode");
            out.push(snaps.iter().map(|s| s.iter().map(|&v| v.to_bits()).collect()).collect());
        }
    }
    assert_eq!(pos, bytes.len());
    out
}

/// One differential arm: (name, config, buffered stream, narrow-f32 source?).
type FixtureArm = (&'static str, MdzConfig, Vec<Vec<Vec<f64>>>, bool);

/// Every (name, config, stream, f32?) arm the golden fixtures pin.
fn fixture_configs() -> Vec<FixtureArm> {
    let abs = |m: Method| MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(m);
    vec![
        ("vq_lattice", abs(Method::Vq), lattice_stream(), false),
        ("vqt_lattice", abs(Method::Vqt), lattice_stream(), false),
        ("mt_lattice", abs(Method::Mt), lattice_stream(), false),
        ("mt2_smooth", abs(Method::Mt2), smooth_stream(), false),
        ("vq_smooth", abs(Method::Vq), smooth_stream(), false),
        (
            "mt_lattice_range",
            abs(Method::Mt).with_entropy(EntropyStage::Range),
            lattice_stream(),
            false,
        ),
        ("adp_lattice", abs(Method::Adaptive), lattice_stream(), false),
        ("vq_lattice_f32", abs(Method::Vq), lattice_stream(), true),
        ("adp_lattice_f32", abs(Method::Adaptive), lattice_stream(), true),
        (
            "vqt_smooth_bit_adaptive",
            abs(Method::Vqt).with_quantizer(QuantizerKind::BitAdaptive { chunk: 16 }),
            smooth_stream(),
            false,
        ),
        (
            "adp_spread_bit_adaptive",
            MdzConfig::new(ErrorBound::Absolute(1e-3)).with_bit_adaptive_candidates(true),
            spread_stream(),
            false,
        ),
        (
            "vqt_lattice_noseq2_rel",
            MdzConfig::new(ErrorBound::ValueRangeRelative(1e-4))
                .with_method(Method::Vqt)
                .with_seq2(false),
            lattice_stream(),
            false,
        ),
    ]
}

#[test]
fn simd_and_scalar_encode_byte_identically_on_all_fixture_configs() {
    let _gate = GATE.lock().unwrap();
    for (name, cfg, buffers, narrow) in fixture_configs() {
        let auto = with_force_scalar(false, || encode_stream(&cfg, &buffers, narrow));
        let scalar = with_force_scalar(true, || encode_stream(&cfg, &buffers, narrow));
        assert_eq!(
            auto,
            scalar,
            "{name}: SIMD encode diverged from the scalar oracle \
             (detected backend: {})",
            kernel::detected_level().name()
        );
    }
}

#[test]
fn simd_and_scalar_decode_bit_identically_on_all_fixture_configs() {
    let _gate = GATE.lock().unwrap();
    for (name, cfg, buffers, narrow) in fixture_configs() {
        // One stream, decoded both ways: exercises batched Huffman decode
        // against the one-symbol-at-a-time oracle.
        let bytes = with_force_scalar(true, || encode_stream(&cfg, &buffers, narrow));
        let auto = with_force_scalar(false, || decode_stream_bits(&bytes));
        let scalar = with_force_scalar(true, || decode_stream_bits(&bytes));
        assert_eq!(auto, scalar, "{name}: SIMD decode diverged from the scalar oracle");
    }
}

#[test]
fn golden_fixtures_decode_bit_identically_both_ways() {
    let _gate = GATE.lock().unwrap();
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("golden fixture dir") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "bin") {
            continue;
        }
        let bytes = std::fs::read(&path).unwrap();
        let auto = with_force_scalar(false, || decode_stream_bits(&bytes));
        let scalar = with_force_scalar(true, || decode_stream_bits(&bytes));
        assert_eq!(auto, scalar, "{path:?}: SIMD decode diverged from the scalar oracle");
        checked += 1;
    }
    assert!(checked >= 12, "expected the full golden fixture set, found {checked}");
}
