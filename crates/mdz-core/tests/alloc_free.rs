//! Steady-state compression performs no heap allocation.
//!
//! The `Compressor` owns a scratch workspace (`pipeline::encode`'s
//! `EncodeScratch` plus the adaptive trial buffers), so once stream state
//! (level grid, MT reference) and buffer capacities are warmed up, repeated
//! `compress_buffer_into` calls must not touch the allocator at all.
//!
//! A counting global allocator makes that claim testable: compress the same
//! buffer three times — the first call establishes stream state, the second
//! grows every scratch buffer to its steady-state capacity — and assert the
//! third call allocates nothing. The third call's output is also compared
//! byte-for-byte against the second's, so the zero-allocation claim is made
//! about a call doing provably identical work.
//!
//! One test function only: the global allocator is process-wide, and a
//! second concurrently-running test would perturb the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use mdz_core::{Compressor, ErrorBound, MdzConfig, Method};

/// Lattice-plus-drift data: detectable levels for VQ, smooth in time for MT.
fn lattice(m: usize, n: usize) -> Vec<Vec<f64>> {
    (0..m)
        .map(|t| {
            (0..n)
                .map(|i| (i % 10) as f64 * 2.5 + (i as f64 * 0.37).sin() * 0.01 + t as f64 * 1e-4)
                .collect()
        })
        .collect()
}

#[test]
fn steady_state_compression_allocates_nothing() {
    let snaps = lattice(8, 300);
    for method in [Method::Vq, Method::Vqt, Method::Mt, Method::Mt2, Method::Adaptive] {
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(method);
        let mut comp = Compressor::new(cfg);
        let mut out = Vec::new();

        // Pass 1: establishes stream state (level grid, MT reference) and
        // runs any adaptive trials. Pass 2: every scratch buffer reaches its
        // steady-state capacity.
        comp.compress_buffer_into(&snaps, &mut out).unwrap();
        comp.compress_buffer_into(&snaps, &mut out).unwrap();
        let warm = out.clone();

        // Pass 3 does byte-identical work to pass 2, with warm scratch.
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        comp.compress_buffer_into(&snaps, &mut out).unwrap();
        let after = ALLOCATIONS.load(Ordering::Relaxed);

        assert_eq!(out, warm, "{method:?}: steady-state output changed");
        assert_eq!(
            after - before,
            0,
            "{method:?}: {} heap allocation(s) in a steady-state compress call",
            after - before
        );
    }
}
