//! Decoder robustness: malformed, truncated, and corrupted blocks must
//! produce `Err`, never a panic, an abort, or an implausible allocation.

use mdz_core::format::{FLAGS_OFFSET, MAGIC, VERSION};
use mdz_core::{Compressor, Decompressor, ErrorBound, MdzConfig, MdzError, Method};

fn lattice(m: usize, n: usize) -> Vec<Vec<f64>> {
    (0..m).map(|t| (0..n).map(|i| (i % 10) as f64 * 2.5 + t as f64 * 1e-4).collect()).collect()
}

fn block(method: Method) -> Vec<u8> {
    let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(method);
    Compressor::new(cfg).compress_buffer(&lattice(6, 200)).unwrap()
}

#[test]
fn every_truncated_prefix_errors() {
    let blob = block(Method::Vqt);
    for cut in 0..blob.len() {
        assert!(
            Decompressor::new().decompress_block(&blob[..cut]).is_err(),
            "prefix of {cut}/{} bytes decoded successfully",
            blob.len()
        );
    }
}

#[test]
fn single_byte_corruption_never_panics() {
    let blob = block(Method::Vq);
    for i in 0..blob.len() {
        for pattern in [0xFFu8, 0x01, 0x80] {
            let mut bad = blob.clone();
            bad[i] ^= pattern;
            // Any outcome but a panic is acceptable; most flips must fail,
            // but some (e.g. inside an escaped f64) decode to other values.
            let _ = Decompressor::new().decompress_block(&bad);
        }
    }
}

#[test]
fn wrong_magic_is_rejected() {
    let mut blob = block(Method::Vq);
    blob[0] = b'X';
    assert_eq!(
        Decompressor::new().decompress_block(&blob),
        Err(MdzError::BadHeader("not an MDZ block"))
    );
    assert!(!MAGIC.starts_with(b"X"));
}

#[test]
fn unknown_version_is_rejected() {
    let mut blob = block(Method::Vq);
    blob[MAGIC.len()] = VERSION + 1;
    assert_eq!(
        Decompressor::new().decompress_block(&blob),
        Err(MdzError::BadHeader("unsupported version"))
    );
}

#[test]
fn corrupt_flags_do_not_panic() {
    let blob = block(Method::Mt);
    for flags in 0..=u8::MAX {
        let mut bad = blob.clone();
        bad[FLAGS_OFFSET] = flags;
        let _ = Decompressor::new().decompress_block(&bad);
    }
}

#[test]
fn vq_blocks_decode_out_of_stream_order() {
    // VQ is purely spatial: the second block of a stream must decode with a
    // fresh decompressor that never saw the first.
    let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(Method::Vq);
    let mut comp = Compressor::new(cfg);
    let _first = comp.compress_buffer(&lattice(4, 150)).unwrap();
    let second = comp.compress_buffer(&lattice(4, 150)).unwrap();
    let out = Decompressor::new().decompress_block(&second).unwrap();
    assert_eq!(out.len(), 4);
}

#[test]
fn mid_stream_mt_block_errors_cleanly_without_reference() {
    // MT blocks after the first depend on the stream's reference snapshot; a
    // fresh decompressor must refuse them with an error, not misdecode.
    let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(Method::Mt);
    let mut comp = Compressor::new(cfg);
    let first = comp.compress_buffer(&lattice(4, 150)).unwrap();
    let second = comp.compress_buffer(&lattice(4, 150)).unwrap();

    assert!(Decompressor::new().decompress_block(&second).is_err());

    // In stream order the same block decodes fine.
    let mut dec = Decompressor::new();
    dec.decompress_block(&first).unwrap();
    let out = dec.decompress_block(&second).unwrap();
    assert_eq!(out.len(), 4);
}
