//! Decoder robustness: malformed, truncated, and corrupted blocks must
//! produce `Err`, never a panic, an abort, or an implausible allocation.

use mdz_core::format::{FLAGS_OFFSET, MAGIC, VERSION};
use mdz_core::{Compressor, DecodeLimits, Decompressor, ErrorBound, MdzConfig, MdzError, Method};

fn lattice(m: usize, n: usize) -> Vec<Vec<f64>> {
    (0..m).map(|t| (0..n).map(|i| (i % 10) as f64 * 2.5 + t as f64 * 1e-4).collect()).collect()
}

fn block(method: Method) -> Vec<u8> {
    let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(method);
    Compressor::new(cfg).compress_buffer(&lattice(6, 200)).unwrap()
}

#[test]
fn every_truncated_prefix_errors() {
    let blob = block(Method::Vqt);
    for cut in 0..blob.len() {
        assert!(
            Decompressor::new().decompress_block(&blob[..cut]).is_err(),
            "prefix of {cut}/{} bytes decoded successfully",
            blob.len()
        );
    }
}

#[test]
fn single_byte_corruption_never_panics() {
    let blob = block(Method::Vq);
    for i in 0..blob.len() {
        for pattern in [0xFFu8, 0x01, 0x80] {
            let mut bad = blob.clone();
            bad[i] ^= pattern;
            // Any outcome but a panic is acceptable; most flips must fail,
            // but some (e.g. inside an escaped f64) decode to other values.
            let _ = Decompressor::new().decompress_block(&bad);
        }
    }
}

#[test]
fn wrong_magic_is_rejected() {
    let mut blob = block(Method::Vq);
    blob[0] = b'X';
    assert_eq!(
        Decompressor::new().decompress_block(&blob),
        Err(MdzError::BadHeader("not an MDZ block"))
    );
    assert!(!MAGIC.starts_with(b"X"));
}

#[test]
fn unknown_version_is_rejected() {
    // Version 2 exists (bit-adaptive) but requires the matching flag, so a
    // re-stamped v1 block is a version/flag mismatch, not a silent decode.
    let mut blob = block(Method::Vq);
    blob[MAGIC.len()] = VERSION + 1;
    assert_eq!(
        Decompressor::new().decompress_block(&blob),
        Err(MdzError::BadHeader("version/flag mismatch for bit-adaptive stream"))
    );
    // Genuinely unknown versions stay rejected outright.
    let mut blob = block(Method::Vq);
    blob[MAGIC.len()] = VERSION + 2;
    assert_eq!(
        Decompressor::new().decompress_block(&blob),
        Err(MdzError::BadHeader("unsupported version"))
    );
}

#[test]
fn corrupt_flags_do_not_panic() {
    let blob = block(Method::Mt);
    for flags in 0..=u8::MAX {
        let mut bad = blob.clone();
        bad[FLAGS_OFFSET] = flags;
        let _ = Decompressor::new().decompress_block(&bad);
    }
}

fn f32_block() -> Vec<u8> {
    let snaps: Vec<Vec<f32>> = (0..6)
        .map(|t| (0..200).map(|i| (i % 10) as f32 * 2.5 + t as f32 * 1e-3).collect())
        .collect();
    let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(Method::Vq);
    Compressor::new(cfg).compress_buffer_f32(&snaps).unwrap()
}

#[test]
fn f32_and_f64_paths_report_identical_errors_on_corruption() {
    // The f32 decode path is the f64 path plus a flag gate, and corruption
    // must not break that equivalence: for every single-byte corruption of
    // an f32-sourced block, both paths fail (or succeed) identically. Only
    // the flags byte is exempt: flipping FLAG_F32 legitimately diverges the
    // gate.
    let blob = f32_block();
    for i in 0..blob.len() {
        for pattern in [0xFFu8, 0x01, 0x80] {
            if i == FLAGS_OFFSET {
                continue;
            }
            let mut bad = blob.clone();
            bad[i] ^= pattern;
            let wide = Decompressor::new().decompress_block(&bad).map(|_| ());
            let narrow = Decompressor::new().decompress_block_f32(&bad).map(|_| ());
            assert_eq!(
                wide, narrow,
                "byte {i} ^ {pattern:#04x}: f64 and f32 decode disagree on the same bytes"
            );
        }
    }
}

#[test]
fn f32_and_f64_paths_both_reject_every_truncation() {
    let blob = f32_block();
    for cut in 0..blob.len() {
        assert!(Decompressor::new().decompress_block(&blob[..cut]).is_err());
        assert!(Decompressor::new().decompress_block_f32(&blob[..cut]).is_err());
    }
}

#[test]
fn decode_limits_reject_oversized_headers() {
    let blob = block(Method::Vq);
    // The seed block is 6 snapshots × 200 values; a budget below either
    // dimension must reject it with `LimitExceeded`, not decode it.
    let cases = [
        DecodeLimits { max_snapshots: 5, ..DecodeLimits::default() },
        DecodeLimits { max_values_per_snapshot: 199, ..DecodeLimits::default() },
        DecodeLimits { max_total_values: 1199, ..DecodeLimits::default() },
    ];
    for limits in cases {
        match Decompressor::with_limits(limits).decompress_block(&blob) {
            Err(MdzError::LimitExceeded { .. }) => {}
            other => panic!("expected LimitExceeded, got {other:?}"),
        }
    }
    // At exactly the block's size the budget admits it.
    let exact = DecodeLimits {
        max_snapshots: 6,
        max_values_per_snapshot: 200,
        max_total_values: 1200,
        ..DecodeLimits::default()
    };
    assert!(Decompressor::with_limits(exact).decompress_block(&blob).is_ok());
}

#[test]
fn decode_limits_survive_codec_reset() {
    use mdz_core::{Codec, MdzCodec};
    let tight = DecodeLimits { max_snapshots: 5, ..DecodeLimits::default() };
    let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(Method::Vq);
    let mut codec = MdzCodec::from_config(cfg).with_decode_limits(tight);
    let blob = block(Method::Vq);
    assert!(codec.decompress_buffer(&blob).is_err());
    codec.reset();
    assert!(codec.decompress_buffer(&blob).is_err(), "reset dropped the decode budget");
}

#[test]
fn vq_blocks_decode_out_of_stream_order() {
    // VQ is purely spatial: the second block of a stream must decode with a
    // fresh decompressor that never saw the first.
    let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(Method::Vq);
    let mut comp = Compressor::new(cfg);
    let _first = comp.compress_buffer(&lattice(4, 150)).unwrap();
    let second = comp.compress_buffer(&lattice(4, 150)).unwrap();
    let out = Decompressor::new().decompress_block(&second).unwrap();
    assert_eq!(out.len(), 4);
}

#[test]
fn mid_stream_mt_block_errors_cleanly_without_reference() {
    // MT blocks after the first depend on the stream's reference snapshot; a
    // fresh decompressor must refuse them with an error, not misdecode.
    let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(Method::Mt);
    let mut comp = Compressor::new(cfg);
    let first = comp.compress_buffer(&lattice(4, 150)).unwrap();
    let second = comp.compress_buffer(&lattice(4, 150)).unwrap();

    assert!(Decompressor::new().decompress_block(&second).is_err());

    // In stream order the same block decodes fine.
    let mut dec = Decompressor::new();
    dec.decompress_block(&first).unwrap();
    let out = dec.decompress_block(&second).unwrap();
    assert_eq!(out.len(), 4);
}
