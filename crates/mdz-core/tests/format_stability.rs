//! Golden-fixture format-stability tests.
//!
//! The on-disk block format is a compatibility contract: refactors of the
//! encode pipeline must not change a single output byte for the fixed
//! methods. These tests compress deterministic multi-buffer streams and
//! compare the concatenated block bytes against fixtures checked into
//! `tests/golden/`.
//!
//! To regenerate the fixtures after an *intentional* format change:
//!
//! ```text
//! MDZ_BLESS=1 cargo test -p mdz-core --test format_stability
//! ```
//!
//! and commit the updated `tests/golden/*.bin` files together with the
//! format change and a version bump.

use mdz_core::bound::ErrorBound;
use mdz_core::buffer::{Compressor, Decompressor};
use mdz_core::format::Method;
use mdz_core::{EntropyStage, MdzConfig, QuantizerKind};
use std::path::PathBuf;

const N_PARTICLES: usize = 240;
const SNAPSHOTS_PER_BUFFER: usize = 8;
const N_BUFFERS: usize = 3;

/// Deterministic LCG in [0, 1).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> f64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    fn gauss(&mut self) -> f64 {
        let u1 = self.next().max(1e-12);
        let u2 = self.next();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Einstein-crystal-like stream: equally spaced levels + small correlated
/// thermal noise. Exercises grid detection (VQ), temporal smoothness (MT),
/// and the Seq-2 interleave.
fn lattice_stream() -> Vec<Vec<Vec<f64>>> {
    let mut rng = Lcg(0x5EED_0001);
    let spacing = 1.8075;
    let sites: Vec<f64> = (0..N_PARTICLES).map(|i| (i % 24) as f64 * spacing).collect();
    let mut disp: Vec<f64> = (0..N_PARTICLES).map(|_| rng.gauss() * 0.04).collect();
    let mut buffers = Vec::new();
    for _ in 0..N_BUFFERS {
        let mut snapshots = Vec::new();
        for _ in 0..SNAPSHOTS_PER_BUFFER {
            let snap: Vec<f64> = sites.iter().zip(disp.iter()).map(|(s, d)| s + d).collect();
            snapshots.push(snap);
            for d in disp.iter_mut() {
                *d = *d * 0.9 + rng.gauss() * 0.02;
            }
        }
        buffers.push(snapshots);
    }
    buffers
}

/// Unstructured smooth stream (protein-like): no level grid, slow drift.
fn smooth_stream() -> Vec<Vec<Vec<f64>>> {
    let mut rng = Lcg(0x5EED_0002);
    let mut pos: Vec<f64> = {
        let mut p = 0.0;
        (0..N_PARTICLES)
            .map(|_| {
                p += rng.gauss() * 0.7;
                p
            })
            .collect()
    };
    let mut buffers = Vec::new();
    for _ in 0..N_BUFFERS {
        let mut snapshots = Vec::new();
        for _ in 0..SNAPSHOTS_PER_BUFFER {
            snapshots.push(pos.clone());
            for p in pos.iter_mut() {
                *p += rng.gauss() * 0.01;
            }
        }
        buffers.push(snapshots);
    }
    buffers
}

/// Mixed-scale stream: per-particle step magnitudes span decades, so the
/// fixed 512-code linear scale escapes on the fast tail while the
/// bit-adaptive stage covers it with wide per-chunk codes. Exercises the
/// version-2 block path and the adaptive (method × quantizer) trial.
fn spread_stream() -> Vec<Vec<Vec<f64>>> {
    let mut rng = Lcg(0x5EED_0003);
    let mut pos: Vec<f64> = (0..N_PARTICLES).map(|_| rng.next() * 100.0).collect();
    let sigma: Vec<f64> =
        (0..N_PARTICLES).map(|i| 10f64.powf(-3.0 + 4.0 * i as f64 / N_PARTICLES as f64)).collect();
    let mut buffers = Vec::new();
    for _ in 0..N_BUFFERS {
        let mut snapshots = Vec::new();
        for _ in 0..SNAPSHOTS_PER_BUFFER {
            snapshots.push(pos.clone());
            for (p, s) in pos.iter_mut().zip(sigma.iter()) {
                *p += rng.gauss() * s;
            }
        }
        buffers.push(snapshots);
    }
    buffers
}

/// Compresses a whole stream with one `Compressor`, framing each block with
/// a little-endian u32 length so the fixture is self-delimiting.
fn stream_bytes(cfg: MdzConfig, buffers: &[Vec<Vec<f64>>]) -> Vec<u8> {
    let mut comp = Compressor::new(cfg);
    let mut out = Vec::new();
    for buf in buffers {
        let block = comp.compress_buffer(buf).expect("compress");
        out.extend_from_slice(&(block.len() as u32).to_le_bytes());
        out.extend_from_slice(&block);
    }
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.bin"))
}

fn check_golden(name: &str, bytes: &[u8]) {
    let path = golden_path(name);
    if std::env::var_os("MDZ_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, bytes).unwrap();
        return;
    }
    let golden = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {path:?}: {e}; run with MDZ_BLESS=1"));
    assert_eq!(
        golden,
        bytes,
        "{name}: block bytes diverged from the golden fixture — the on-disk \
         format changed (lengths {} vs {})",
        golden.len(),
        bytes.len()
    );
}

/// Every fixture must still decode to within the error bound — guards
/// against blessing corrupt fixtures.
fn check_decodes(bytes: &[u8], buffers: &[Vec<Vec<f64>>], eps: f64) {
    let mut dec = Decompressor::new();
    let mut pos = 0;
    for buf in buffers {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        let block = &bytes[pos..pos + len];
        let rec = dec.decompress_block(block).expect("decode");
        assert_eq!(rec.len(), buf.len());
        for (r, o) in rec.iter().zip(buf.iter()) {
            for (a, b) in r.iter().zip(o.iter()) {
                assert!((a - b).abs() <= eps * 1.000001, "bound violated: {a} vs {b}");
            }
        }
        pos += len;
    }
    assert_eq!(pos, bytes.len());
}

fn cfg(method: Method) -> MdzConfig {
    MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(method)
}

#[test]
fn golden_vq_lattice() {
    let buffers = lattice_stream();
    let bytes = stream_bytes(cfg(Method::Vq), &buffers);
    check_decodes(&bytes, &buffers, 1e-3);
    check_golden("vq_lattice", &bytes);
}

#[test]
fn golden_vqt_lattice() {
    let buffers = lattice_stream();
    let bytes = stream_bytes(cfg(Method::Vqt), &buffers);
    check_decodes(&bytes, &buffers, 1e-3);
    check_golden("vqt_lattice", &bytes);
}

#[test]
fn golden_mt_lattice() {
    let buffers = lattice_stream();
    let bytes = stream_bytes(cfg(Method::Mt), &buffers);
    check_decodes(&bytes, &buffers, 1e-3);
    check_golden("mt_lattice", &bytes);
}

#[test]
fn golden_mt2_smooth() {
    let buffers = smooth_stream();
    let bytes = stream_bytes(cfg(Method::Mt2), &buffers);
    check_decodes(&bytes, &buffers, 1e-3);
    check_golden("mt2_smooth", &bytes);
}

#[test]
fn golden_vq_smooth_no_grid() {
    // Smooth data has no level grid: exercises the Lorenzo fallback path.
    let buffers = smooth_stream();
    let bytes = stream_bytes(cfg(Method::Vq), &buffers);
    check_decodes(&bytes, &buffers, 1e-3);
    check_golden("vq_smooth", &bytes);
}

#[test]
fn golden_mt_range_coded() {
    let buffers = lattice_stream();
    let bytes = stream_bytes(cfg(Method::Mt).with_entropy(EntropyStage::Range), &buffers);
    check_decodes(&bytes, &buffers, 1e-3);
    check_golden("mt_lattice_range", &bytes);
}

/// f32 counterpart of [`stream_bytes`], feeding the narrow-input entry
/// point (`FLAG_F32` blocks).
fn stream_bytes_f32(cfg: MdzConfig, buffers: &[Vec<Vec<f64>>]) -> Vec<u8> {
    let mut comp = Compressor::new(cfg);
    let mut out = Vec::new();
    for buf in buffers {
        let narrow: Vec<Vec<f32>> =
            buf.iter().map(|s| s.iter().map(|&v| v as f32).collect()).collect();
        let block = comp.compress_buffer_f32(&narrow).expect("compress f32");
        out.extend_from_slice(&(block.len() as u32).to_le_bytes());
        out.extend_from_slice(&block);
    }
    out
}

#[test]
fn golden_adaptive_lattice() {
    // The full adaptive trial (method selection + winner reuse across the
    // stream) is part of the byte contract too.
    let buffers = lattice_stream();
    let bytes = stream_bytes(cfg(Method::Adaptive), &buffers);
    check_decodes(&bytes, &buffers, 1e-3);
    check_golden("adp_lattice", &bytes);
}

#[test]
fn golden_vq_lattice_f32() {
    let buffers = lattice_stream();
    let bytes = stream_bytes_f32(cfg(Method::Vq), &buffers);
    check_golden("vq_lattice_f32", &bytes);
}

#[test]
fn golden_adaptive_lattice_f32() {
    let buffers = lattice_stream();
    let bytes = stream_bytes_f32(cfg(Method::Adaptive), &buffers);
    check_golden("adp_lattice_f32", &bytes);
}

#[test]
fn golden_vqt_bit_adaptive() {
    // Forced bit-adaptive quantizer: every block is version 2 and carries
    // the per-region width table.
    let buffers = smooth_stream();
    let bytes = stream_bytes(
        cfg(Method::Vqt).with_quantizer(QuantizerKind::BitAdaptive { chunk: 16 }),
        &buffers,
    );
    check_decodes(&bytes, &buffers, 1e-3);
    check_golden("vqt_smooth_bit_adaptive", &bytes);
}

#[test]
fn golden_adaptive_bit_adaptive_candidates() {
    // Adaptive trial over the (method × quantizer) product space on the
    // mixed-scale stream: the winner must include the bit-adaptive stage,
    // pinning the enlarged candidate ordering byte for byte.
    let buffers = spread_stream();
    let config = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_bit_adaptive_candidates(true);
    let bytes = stream_bytes(config, &buffers);
    check_decodes(&bytes, &buffers, 1e-3);
    // At least one emitted block actually uses the version-2 format.
    let mut pos = 0;
    let mut ba_blocks = 0;
    while pos < bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        if Decompressor::inspect(&bytes[pos..pos + len]).unwrap().bit_adaptive {
            ba_blocks += 1;
        }
        pos += len;
    }
    assert!(ba_blocks > 0, "bit-adaptive candidate never won on the mixed-scale stream");
    check_golden("adp_spread_bit_adaptive", &bytes);
}

#[test]
fn golden_vqt_no_seq2_relative_bound() {
    // Value-range-relative bound resolves to a per-buffer absolute eps; the
    // resolved value is part of the header and must stay stable too.
    let buffers = lattice_stream();
    let cfg = MdzConfig::new(ErrorBound::ValueRangeRelative(1e-4))
        .with_method(Method::Vqt)
        .with_seq2(false);
    let bytes = stream_bytes(cfg, &buffers);
    check_golden("vqt_lattice_noseq2_rel", &bytes);
}
