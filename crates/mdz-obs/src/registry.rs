//! The built-in aggregating [`Recorder`]: in-memory counters, gauges, and
//! fixed-bucket histograms, snapshottable at any time.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};
use crate::Recorder;

/// Histogram bucket count. Buckets are powers of two of the observed value
/// in micro-units (`value × 1e6`), so 64 buckets span sub-microsecond
/// latencies up to ~5.8 million seconds — and, for unit-less observations
/// like job counts, values up to ~1.8e13.
const BUCKETS: usize = 64;

/// One fixed-bucket histogram: power-of-two micro-unit buckets plus exact
/// count/sum/min/max.
///
/// Percentiles are estimated from the bucket a rank falls into (geometric
/// bucket midpoint, clamped into `[min, max]`), so they carry at most a
/// factor-√2 relative error — plenty for p50/p99 latency reporting.
#[derive(Debug, Clone)]
struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; BUCKETS],
        }
    }
}

/// Bucket index for one observation (negative and non-finite values clamp
/// into the first / last bucket).
fn bucket_of(value: f64) -> usize {
    let micro = value * 1e6;
    if micro.is_nan() || micro < 1.0 {
        return 0;
    }
    if micro >= (1u64 << 63) as f64 {
        return BUCKETS - 1;
    }
    (micro as u64).ilog2().min(BUCKETS as u32 - 1) as usize
}

/// Geometric midpoint of a bucket, back in original units.
fn bucket_mid(index: usize) -> f64 {
    // Bucket `i` spans [2^i, 2^(i+1)) micro-units; 1.5·2^i is its midpoint.
    1.5 * (index as f64).exp2() / 1e6
}

impl Histogram {
    fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        self.buckets[bucket_of(value)] += 1;
    }

    /// Nearest-rank percentile estimate from the bucket counts.
    fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        // Same epsilon-guarded nearest rank the bench harness uses: an
        // exact product like 0.99 × 100 must not round up through ceil.
        let rank = (((p * self.count as f64) - 1e-9).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            p50: self.percentile(0.50),
            p99: self.percentile(0.99),
        }
    }
}

/// The built-in aggregating recorder.
///
/// Thread-safe and shareable (`Arc<Registry>`); every metric family sits
/// behind its own mutex, held only for the single map update — contention
/// is bounded by how often instrumented code records, which for MDZ is
/// per-buffer / per-request, not per-value.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, u64>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value of a counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.lock().unwrap().get(name).copied().unwrap_or(0)
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters =
            self.counters.lock().unwrap().iter().map(|(&k, &v)| (k.to_string(), v)).collect();
        let gauges =
            self.gauges.lock().unwrap().iter().map(|(&k, &v)| (k.to_string(), v)).collect();
        let histograms =
            self.histograms.lock().unwrap().iter().map(|(&k, h)| h.snapshot(k)).collect();
        MetricsSnapshot { counters, gauges, histograms }
    }
}

impl Recorder for Registry {
    fn incr(&self, name: &'static str, delta: u64) {
        *self.counters.lock().unwrap().entry(name).or_insert(0) += delta;
    }

    fn gauge(&self, name: &'static str, value: u64) {
        self.gauges.lock().unwrap().insert(name, value);
    }

    fn observe(&self, name: &'static str, value: f64) {
        self.histograms.lock().unwrap().entry(name).or_default().observe(value);
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("counters", &self.counters.lock().unwrap().len())
            .field("gauges", &self.gauges.lock().unwrap().len())
            .field("histograms", &self.histograms.lock().unwrap().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_monotonic_and_bounded() {
        let mut last = 0;
        for exp in -8..14 {
            let v = 10f64.powi(exp);
            let b = bucket_of(v);
            assert!(b >= last, "bucket of {v} went backwards");
            assert!(b < BUCKETS);
            last = b;
        }
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(-5.0), 0);
        assert_eq!(bucket_of(f64::NAN), 0);
        assert_eq!(bucket_of(f64::INFINITY), BUCKETS - 1);
    }

    #[test]
    fn histogram_percentiles_are_bracketed_by_min_max() {
        let mut h = Histogram::default();
        for i in 1..=100 {
            h.observe(i as f64 * 1e-3); // 1ms … 100ms
        }
        let s = h.snapshot("t");
        assert_eq!(s.count, 100);
        assert!((s.sum - 5.050).abs() < 1e-9);
        assert_eq!(s.min, 1e-3);
        assert_eq!(s.max, 0.1);
        assert!(s.min <= s.p50 && s.p50 <= s.p99 && s.p99 <= s.max, "{s:?}");
        // The p50 bucket estimate must land within √2 of the true median.
        assert!(s.p50 >= 0.050 / 1.5 && s.p50 <= 0.050 * 1.5, "p50 {}", s.p50);
    }

    #[test]
    fn single_observation_collapses_to_itself() {
        let mut h = Histogram::default();
        h.observe(0.007);
        let s = h.snapshot("t");
        assert_eq!((s.min, s.max), (0.007, 0.007));
        assert_eq!(s.p50, 0.007);
        assert_eq!(s.p99, 0.007);
    }

    #[test]
    fn empty_histogram_snapshots_to_zeros() {
        let s = Histogram::default().snapshot("t");
        assert_eq!(s.count, 0);
        assert_eq!((s.min, s.max, s.p50, s.p99), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn registry_snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.incr("b.two", 2);
        r.incr("a.one", 1);
        r.gauge("g", 7);
        r.observe("h", 1.0);
        let s = r.snapshot();
        assert_eq!(
            s.counters,
            vec![("a.one".to_string(), 1), ("b.two".to_string(), 2)],
            "counters sorted by name"
        );
        assert_eq!(s.gauges, vec![("g".to_string(), 7)]);
        assert_eq!(s.histograms.len(), 1);
        assert_eq!(r.counter("a.one"), 1);
        assert_eq!(r.counter("missing"), 0);
    }
}
