//! mdz-obs: a zero-dependency observability layer for the MDZ workspace.
//!
//! Instrumented code records three metric kinds through the [`Recorder`]
//! trait:
//!
//! * **counters** — monotonic event counts (`incr`);
//! * **gauges** — last-written values (`gauge`);
//! * **histograms** — value distributions with p50/p99 summaries
//!   (`observe`), used for latencies (`*_seconds` names) and any other
//!   per-event quantity (queue depths, per-worker job counts).
//!
//! The hot-path handle is [`Obs`]: a cheap, cloneable wrapper around an
//! optional `Arc<dyn Recorder>`. The default handle is a no-op — every
//! method compiles to a `None` check, and [`Obs::span`] does not even read
//! the clock — so instrumented code costs nothing when nobody is
//! listening. Attach a [`Registry`] (the built-in aggregating recorder) to
//! turn recording on, and snapshot it with [`Registry::snapshot`] into a
//! [`MetricsSnapshot`] that renders as text or JSON.
//!
//! Metric names are `&'static str` by design: instrumentation points name
//! their metrics statically (`"core.encode.entropy_seconds"`), which keeps
//! recording allocation-free and makes the full metric vocabulary
//! greppable. The vocabulary is catalogued in DESIGN.md §11; the
//! robustness families added with the crash-consistent store —
//! `store.recover.*` (recovery scans and truncated bytes),
//! `server.conn.*` / `server.drain.closed` (admission, shedding, deadline
//! kills, graceful drain), and `client.retries` — follow the same
//! additive-only rule as the rest: names are the API and are never
//! renamed or reused.
//!
//! # Example
//!
//! ```
//! use mdz_obs::{Obs, Registry};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(Registry::new());
//! let obs = Obs::new(registry.clone());
//! obs.incr("demo.events", 2);
//! {
//!     let _timer = obs.span("demo.work_seconds");
//!     // … timed work …
//! }
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("demo.events"), 2);
//! assert_eq!(snap.histogram("demo.work_seconds").unwrap().count, 1);
//! ```

#![deny(missing_docs)]

mod registry;
mod snapshot;

pub use registry::Registry;
pub use snapshot::{HistogramSnapshot, MetricsSnapshot, METRICS_SCHEMA};

use std::sync::Arc;
use std::time::Instant;

/// Sink for metric events.
///
/// Implementations must be cheap and non-blocking enough to sit on
/// compression hot paths; the built-in [`Registry`] aggregates in memory.
/// All methods take `&self` — recorders are shared across threads.
pub trait Recorder: Send + Sync {
    /// Adds `delta` to the named monotonic counter.
    fn incr(&self, name: &'static str, delta: u64);
    /// Sets the named gauge to `value` (last write wins).
    fn gauge(&self, name: &'static str, value: u64);
    /// Records one observation of `value` into the named histogram.
    ///
    /// Latency metrics observe seconds and end in `_seconds`; other
    /// quantities (queue depths, job counts) observe their natural unit.
    fn observe(&self, name: &'static str, value: f64);
}

/// A cheap handle instrumented code holds: either a live recorder or a
/// no-op.
///
/// Cloning is an `Option<Arc>` clone. The [`Default`] handle records
/// nothing, so types that embed an `Obs` keep their `Default` semantics.
#[derive(Clone, Default)]
pub struct Obs {
    recorder: Option<Arc<dyn Recorder>>,
}

impl Obs {
    /// A handle that records nothing (the default).
    pub const fn noop() -> Self {
        Self { recorder: None }
    }

    /// A handle that forwards every event to `recorder`.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        Self { recorder: Some(recorder) }
    }

    /// Whether a recorder is attached. Instrumentation may use this to
    /// skip work that only feeds metrics (the built-in helpers already
    /// do).
    pub fn enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// Adds `delta` to a counter (no-op when disabled).
    #[inline]
    pub fn incr(&self, name: &'static str, delta: u64) {
        if let Some(r) = &self.recorder {
            r.incr(name, delta);
        }
    }

    /// Sets a gauge (no-op when disabled).
    #[inline]
    pub fn gauge(&self, name: &'static str, value: u64) {
        if let Some(r) = &self.recorder {
            r.gauge(name, value);
        }
    }

    /// Records a histogram observation (no-op when disabled).
    #[inline]
    pub fn observe(&self, name: &'static str, value: f64) {
        if let Some(r) = &self.recorder {
            r.observe(name, value);
        }
    }

    /// Starts a span timer that records its elapsed seconds into the named
    /// histogram when dropped.
    ///
    /// When the handle is disabled the clock is never read — a span on a
    /// disabled handle is two branches, start and drop.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span { obs: self, name, start: self.recorder.is_some().then(Instant::now) }
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs").field("enabled", &self.enabled()).finish()
    }
}

/// A live span timer from [`Obs::span`]; records elapsed seconds on drop.
#[must_use = "a span records its timing when dropped; binding it to _ drops it immediately"]
pub struct Span<'a> {
    obs: &'a Obs,
    name: &'static str,
    start: Option<Instant>,
}

impl Span<'_> {
    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.obs.observe(self.name, start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_records_nothing_and_skips_the_clock() {
        let obs = Obs::noop();
        assert!(!obs.enabled());
        obs.incr("x", 1);
        obs.gauge("g", 2);
        obs.observe("h", 3.0);
        let span = obs.span("s");
        assert!(span.start.is_none(), "disabled span must not read the clock");
        span.finish();
    }

    #[test]
    fn live_handle_feeds_the_registry() {
        let reg = Arc::new(Registry::new());
        let obs = Obs::new(reg.clone());
        assert!(obs.enabled());
        obs.incr("c", 3);
        obs.incr("c", 4);
        obs.gauge("g", 9);
        obs.gauge("g", 5);
        obs.observe("h", 0.25);
        obs.span("t_seconds").finish();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), 7);
        assert_eq!(snap.gauge("g"), Some(5));
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        let t = snap.histogram("t_seconds").unwrap();
        assert_eq!(t.count, 1);
        assert!(t.max >= 0.0);
    }

    #[test]
    fn clones_share_the_recorder() {
        let reg = Arc::new(Registry::new());
        let obs = Obs::new(reg.clone());
        let clone = obs.clone();
        obs.incr("shared", 1);
        clone.incr("shared", 1);
        assert_eq!(reg.snapshot().counter("shared"), 2);
    }

    #[test]
    fn debug_shows_enabled_state() {
        assert_eq!(format!("{:?}", Obs::noop()), "Obs { enabled: false }");
    }
}
