//! Point-in-time metric snapshots and their text / JSON renderings.

/// Summary of one histogram at snapshot time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value (0 when empty).
    pub min: f64,
    /// Largest observed value (0 when empty).
    pub max: f64,
    /// Nearest-rank 50th percentile estimate.
    pub p50: f64,
    /// Nearest-rank 99th percentile estimate.
    pub p99: f64,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A point-in-time copy of every metric in a
/// [`Registry`](crate::Registry), sorted by name within each family.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters as `(name, value)` pairs.
    pub counters: Vec<(String, u64)>,
    /// Gauges as `(name, last value)` pairs.
    pub gauges: Vec<(String, u64)>,
    /// Histogram summaries.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Schema identifier embedded in [`MetricsSnapshot::to_json`] output.
pub const METRICS_SCHEMA: &str = "mdz-metrics-v1";

impl MetricsSnapshot {
    /// Value of a counter (0 when absent — counters start at zero).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0)
    }

    /// Value of a gauge, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Summary of a histogram, if it has any observations.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Human-readable table: one metric per line, aligned, families
    /// separated by headers (the `mdz stats --metrics` output).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.histograms.iter().map(|h| h.name.len()))
            .max()
            .unwrap_or(0);
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name:<width$}  {value}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, value) in &self.gauges {
                out.push_str(&format!("  {name:<width$}  {value}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for h in &self.histograms {
                out.push_str(&format!(
                    "  {:<width$}  count {}  p50 {}  p99 {}  min {}  max {}\n",
                    h.name,
                    h.count,
                    Sci(h.p50),
                    Sci(h.p99),
                    Sci(h.min),
                    Sci(h.max),
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// Renders the snapshot as a JSON document (schema
    /// [`METRICS_SCHEMA`]): counters and gauges as objects, histograms as
    /// an array of objects with `count`/`sum`/`min`/`max`/`p50`/`p99`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{METRICS_SCHEMA}\",\n"));
        out.push_str("  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!("    {}: {value}", json_str(name)));
        }
        out.push_str(if self.counters.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!("    {}: {value}", json_str(name)));
        }
        out.push_str(if self.gauges.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"name\": {}, \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p99\": {}}}",
                json_str(&h.name),
                h.count,
                json_num(h.sum),
                json_num(h.min),
                json_num(h.max),
                json_num(h.p50),
                json_num(h.p99),
            ));
        }
        out.push_str(if self.histograms.is_empty() { "]\n" } else { "\n  ]\n" });
        out.push_str("}\n");
        out
    }
}

/// Compact scientific-ish display for histogram values in the text table.
struct Sci(f64);

impl std::fmt::Display for Sci {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let v = self.0;
        if v == 0.0 {
            write!(f, "0")
        } else if (1e-3..1e6).contains(&v.abs()) {
            write!(f, "{v:.6}")
        } else {
            write!(f, "{v:.3e}")
        }
    }
}

/// Escapes a metric name as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an `f64` as a JSON number; non-finite values (which valid
/// metrics never produce) degrade to 0 rather than emitting invalid JSON.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![("a.requests".into(), 3), ("b.errors".into(), 0)],
            gauges: vec![("queue_depth".into(), 5)],
            histograms: vec![HistogramSnapshot {
                name: "req_seconds".into(),
                count: 10,
                sum: 0.5,
                min: 0.01,
                max: 0.09,
                p50: 0.05,
                p99: 0.09,
            }],
        }
    }

    #[test]
    fn lookups_find_metrics() {
        let s = sample();
        assert_eq!(s.counter("a.requests"), 3);
        assert_eq!(s.counter("missing"), 0);
        assert_eq!(s.gauge("queue_depth"), Some(5));
        assert_eq!(s.gauge("missing"), None);
        assert_eq!(s.histogram("req_seconds").unwrap().count, 10);
        assert!((s.histogram("req_seconds").unwrap().mean() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn text_rendering_lists_every_family() {
        let text = sample().render_text();
        assert!(text.contains("counters:"));
        assert!(text.contains("a.requests"));
        assert!(text.contains("gauges:"));
        assert!(text.contains("histograms:"));
        assert!(text.contains("p99"));
        assert_eq!(MetricsSnapshot::default().render_text(), "(no metrics recorded)\n");
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let json = sample().to_json();
        assert!(json.contains("\"schema\": \"mdz-metrics-v1\""));
        assert!(json.contains("\"a.requests\": 3"));
        assert!(json.contains("\"req_seconds\""));
        // Balanced braces / brackets (cheap structural sanity; the bench
        // crate's real JSON parser validates this artifact in CI).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let empty = MetricsSnapshot::default().to_json();
        assert!(empty.contains("\"counters\": {}"));
        assert!(empty.contains("\"histograms\": []"));
    }

    #[test]
    fn json_numbers_stay_valid() {
        assert_eq!(json_num(0.5), "0.5");
        assert_eq!(json_num(f64::NAN), "0");
        assert_eq!(json_num(f64::INFINITY), "0");
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }
}
