//! Entropy-coding primitives for the MDZ compression pipeline.
//!
//! The MDZ paper builds on the SZ framework whose last two stages are Huffman
//! coding of quantization codes followed by a dictionary coder. This crate
//! provides the bit-level substrate those stages need:
//!
//! * [`bitio`] — MSB-first bit readers and writers over byte buffers,
//! * [`varint`] — LEB128 unsigned varints and zigzag-mapped signed varints,
//! * [`huffman`] — canonical, length-limited Huffman coding over `u32`
//!   symbol alphabets with a compact serialized code table,
//! * [`kernel`] — runtime SIMD dispatch (feature detection + the
//!   `MDZ_FORCE_SCALAR` scalar-oracle override) shared by every crate with
//!   vectorized hot paths.
//!
//! All decoders treat their input as untrusted: truncated or corrupted
//! streams produce [`EntropyError`] values, never panics.

#![deny(missing_docs)]

pub mod bitio;
pub mod huffman;
pub mod kernel;
pub mod range;
pub mod varint;

pub use bitio::{BitReader, BitWriter};
pub use huffman::{
    huffman_decode, huffman_decode_at_limited, huffman_encode, huffman_encode_into, HuffmanDecoder,
    HuffmanEncoder, HuffmanScratch,
};
pub use range::{range_decode, range_decode_at_limited, range_encode, RangeScratch};
pub use varint::{
    read_ivarint, read_uvarint, write_ivarint, write_uvarint, zigzag_decode, zigzag_encode,
};

/// Errors produced while decoding entropy-coded streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntropyError {
    /// The input ended before the decoder finished.
    UnexpectedEof,
    /// The stream violates a structural invariant of its format.
    Corrupt(&'static str),
    /// A declared output size exceeded the caller's [`StreamLimits`] budget.
    LimitExceeded {
        /// Which declared quantity blew the budget.
        what: &'static str,
        /// The budget that was in force.
        limit: usize,
    },
}

impl std::fmt::Display for EntropyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EntropyError::UnexpectedEof => write!(f, "unexpected end of input"),
            EntropyError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
            EntropyError::LimitExceeded { what, limit } => {
                write!(f, "decode budget exceeded: {what} > {limit}")
            }
        }
    }
}

/// Decode-side resource budget threaded through every decoder whose output
/// size is driven by an untrusted count.
///
/// Entropy streams are self-describing: the symbol count, alphabet size, and
/// payload length all come from the (potentially hostile) input. Structural
/// checks reject counts the input could never satisfy — e.g. a table larger
/// than its own encoding — but some formats legitimately expand (a
/// one-symbol Huffman stream or a single RLE run can declare an output
/// million-fold larger than the input), so expansion can only be bounded by
/// a caller-supplied budget. Counts above `max_items` fail with
/// [`EntropyError::LimitExceeded`] *before* any proportional allocation.
///
/// The default budget equals the crate's historic plausibility cap (2³⁴
/// items), so the non-`_limited` entry points behave as before; callers that
/// know their real output size (e.g. a block decoder that has parsed `M·N`
/// from a validated header) should pass a tight budget instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamLimits {
    /// Maximum number of output items (symbols or bytes) one stream may
    /// declare.
    pub max_items: usize,
}

impl Default for StreamLimits {
    fn default() -> Self {
        Self { max_items: 1 << 34 }
    }
}

impl StreamLimits {
    /// A budget allowing at most `max_items` output items.
    pub const fn with_max_items(max_items: usize) -> Self {
        Self { max_items }
    }

    /// Checks a declared item count against the budget.
    pub fn check_items(&self, count: usize, what: &'static str) -> Result<()> {
        if count > self.max_items {
            return Err(EntropyError::LimitExceeded { what, limit: self.max_items });
        }
        Ok(())
    }
}

impl std::error::Error for EntropyError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, EntropyError>;
