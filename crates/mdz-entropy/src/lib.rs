//! Entropy-coding primitives for the MDZ compression pipeline.
//!
//! The MDZ paper builds on the SZ framework whose last two stages are Huffman
//! coding of quantization codes followed by a dictionary coder. This crate
//! provides the bit-level substrate those stages need:
//!
//! * [`bitio`] — MSB-first bit readers and writers over byte buffers,
//! * [`varint`] — LEB128 unsigned varints and zigzag-mapped signed varints,
//! * [`huffman`] — canonical, length-limited Huffman coding over `u32`
//!   symbol alphabets with a compact serialized code table.
//!
//! All decoders treat their input as untrusted: truncated or corrupted
//! streams produce [`EntropyError`] values, never panics.

pub mod bitio;
pub mod huffman;
pub mod range;
pub mod varint;

pub use bitio::{BitReader, BitWriter};
pub use huffman::{
    huffman_decode, huffman_encode, huffman_encode_into, HuffmanDecoder, HuffmanEncoder,
    HuffmanScratch,
};
pub use range::{range_decode, range_encode, RangeScratch};
pub use varint::{
    read_ivarint, read_uvarint, write_ivarint, write_uvarint, zigzag_decode, zigzag_encode,
};

/// Errors produced while decoding entropy-coded streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntropyError {
    /// The input ended before the decoder finished.
    UnexpectedEof,
    /// The stream violates a structural invariant of its format.
    Corrupt(&'static str),
}

impl std::fmt::Display for EntropyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EntropyError::UnexpectedEof => write!(f, "unexpected end of input"),
            EntropyError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
        }
    }
}

impl std::error::Error for EntropyError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, EntropyError>;
