//! Runtime SIMD kernel dispatch shared by the whole pipeline.
//!
//! Hot-path stages (fused predict/quantize, batched Huffman decode, LZ77
//! match probing) ship both a scalar implementation and one or more
//! vectorized kernels built on `core::arch` intrinsics. Which one runs is
//! decided here, once, from runtime CPU-feature detection — never from
//! compile-time flags — so a single binary is correct everywhere and fast
//! where the hardware allows.
//!
//! Two invariants govern every kernel behind this dispatcher:
//!
//! 1. **Format-invisible:** the vector path produces byte-identical output
//!    to the scalar path, including escape decisions and reconstruction
//!    values. The scalar path is the *differential oracle*, not a fallback
//!    of convenience.
//! 2. **Switchable:** setting the `MDZ_FORCE_SCALAR` environment variable
//!    (to anything but `0` or the empty string) — or calling
//!    [`set_force_scalar`] — pins every stage to the scalar oracle, so
//!    tests and fuzz campaigns can replay both paths and compare.
//!
//! The selection is cached in an atomic after first use; [`set_force_scalar`]
//! updates it for subsequent kernel invocations. Kernels read the level once
//! per call, so a concurrent toggle never changes strategy mid-buffer.

use std::sync::atomic::{AtomicU8, Ordering};

/// The instruction-set level a kernel dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar code — the differential oracle.
    Scalar,
    /// x86_64 SSE4.1 (128-bit lanes).
    Sse41,
    /// x86_64 AVX2 (256-bit lanes).
    Avx2,
    /// aarch64 NEON (128-bit lanes).
    Neon,
}

impl SimdLevel {
    /// Short lowercase name, stable for logs and benchmark JSON.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse41 => "sse4.1",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Neon => "neon",
        }
    }
}

/// Cached dispatch state: 0 = uninitialized, 1 = forced scalar, 2 = auto.
static FORCE_STATE: AtomicU8 = AtomicU8::new(0);

const STATE_UNINIT: u8 = 0;
const STATE_FORCED: u8 = 1;
const STATE_AUTO: u8 = 2;

fn force_state() -> u8 {
    let s = FORCE_STATE.load(Ordering::Acquire);
    if s != STATE_UNINIT {
        return s;
    }
    let forced = match std::env::var("MDZ_FORCE_SCALAR") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    };
    let s = if forced { STATE_FORCED } else { STATE_AUTO };
    // Racing initializers compute the same value; last store wins harmlessly.
    FORCE_STATE.store(s, Ordering::Release);
    s
}

/// Programmatically pins (or unpins) every kernel to the scalar oracle.
///
/// Overrides whatever `MDZ_FORCE_SCALAR` said at first use. Takes effect for
/// kernel invocations that *begin* after the call; an in-flight kernel keeps
/// the level it read at entry.
pub fn set_force_scalar(force: bool) {
    FORCE_STATE.store(if force { STATE_FORCED } else { STATE_AUTO }, Ordering::Release);
}

/// True when the scalar oracle is pinned (via env var or [`set_force_scalar`]).
pub fn force_scalar() -> bool {
    force_state() == STATE_FORCED
}

/// The best instruction-set level this host supports, ignoring any
/// force-scalar override.
pub fn detected_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
        if std::arch::is_x86_feature_detected!("sse4.1") {
            return SimdLevel::Sse41;
        }
        SimdLevel::Scalar
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is part of the aarch64 baseline.
        SimdLevel::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        SimdLevel::Scalar
    }
}

/// The level kernels should dispatch to right now: [`detected_level`] unless
/// the scalar oracle is pinned.
///
/// Kernels must call this once per invocation and branch on the captured
/// value, so a concurrent [`set_force_scalar`] cannot split one buffer
/// across strategies.
pub fn active_level() -> SimdLevel {
    if force_scalar() {
        SimdLevel::Scalar
    } else {
        detected_level()
    }
}

/// True when the active level is anything above the scalar oracle.
pub fn accelerated() -> bool {
    active_level() != SimdLevel::Scalar
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_scalar_round_trip() {
        // Capture whatever state the process started in and restore it, so
        // this test composes with differential tests in the same binary.
        let was_forced = force_scalar();
        set_force_scalar(true);
        assert_eq!(active_level(), SimdLevel::Scalar);
        assert!(!accelerated());
        set_force_scalar(false);
        assert_eq!(active_level(), detected_level());
        set_force_scalar(was_forced);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(SimdLevel::Scalar.name(), "scalar");
        assert_eq!(SimdLevel::Sse41.name(), "sse4.1");
        assert_eq!(SimdLevel::Avx2.name(), "avx2");
        assert_eq!(SimdLevel::Neon.name(), "neon");
    }

    #[test]
    fn detection_is_consistent() {
        // detected_level is a pure function of the host; two calls agree.
        assert_eq!(detected_level(), detected_level());
    }
}
