//! Canonical, length-limited Huffman coding over `u32` symbol alphabets.
//!
//! The SZ framework (which MDZ follows) Huffman-codes two integer streams per
//! buffer: the quantization codes and, for the VQ predictor, the level-index
//! deltas. Both alphabets are data-dependent, so the encoder serializes a
//! compact canonical code table (sorted symbols as delta varints plus one
//! length byte each) ahead of the bit-packed payload.
//!
//! Codes are length-limited to [`MAX_CODE_LEN`] bits by frequency rescaling,
//! which keeps decode state machine-word sized. Decoding uses a one-level
//! lookup table for codes up to `LUT_BITS` bits and a canonical
//! first-code scan for longer ones.

use crate::bitio::{BitReader, BitWriter};
use crate::varint::{read_uvarint, write_uvarint};
use crate::{EntropyError, Result, StreamLimits};
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// Upper bound on code lengths after limiting.
pub const MAX_CODE_LEN: u32 = 32;
/// Width of the fast decode lookup table.
const LUT_BITS: u32 = 11;
/// Symbol-to-code maps switch from a dense vector to a hash map above this.
const DENSE_LIMIT: u64 = 1 << 20;

/// One canonical code: `len` low bits of `code`, MSB-first on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Code {
    code: u32,
    len: u8,
}

/// Builds Huffman code lengths from symbol frequencies.
///
/// Returns `lengths[i]` for each `(symbol, freq)` input pair. Frequencies are
/// rescaled and the tree rebuilt until the maximum depth fits
/// [`MAX_CODE_LEN`].
fn code_lengths(freqs: &[u64]) -> Vec<u8> {
    assert!(freqs.len() >= 2, "need at least two symbols for a code");
    let mut scaled: Vec<u64> = freqs.to_vec();
    loop {
        let lengths = tree_depths(&scaled);
        if lengths.iter().all(|&l| u32::from(l) <= MAX_CODE_LEN) {
            return lengths;
        }
        // Halving (with a +1 floor) compresses the frequency range, which
        // bounds the depth of the rebuilt tree; this terminates because the
        // range eventually collapses to all-equal frequencies.
        for f in &mut scaled {
            *f = (*f >> 1) + 1;
        }
    }
}

/// Heap entry for the Huffman tree construction.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Node {
    freq: u64,
    id: usize,
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on (freq, id); id tiebreak keeps construction deterministic.
        other.freq.cmp(&self.freq).then(other.id.cmp(&self.id))
    }
}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Computes tree depths for each entry of `freqs` with a standard two-queue
/// Huffman construction over a binary heap.
fn tree_depths(freqs: &[u64]) -> Vec<u8> {
    let mut parent = Vec::new();
    let mut heap = BinaryHeap::new();
    let mut depth = Vec::new();
    let mut out = Vec::new();
    tree_depths_into(freqs, &mut parent, &mut heap, &mut depth, &mut out);
    out
}

/// [`tree_depths`] writing into caller-owned buffers (no allocation once the
/// buffers have grown to the working size).
fn tree_depths_into(
    freqs: &[u64],
    parent: &mut Vec<usize>,
    heap: &mut BinaryHeap<Node>,
    depth: &mut Vec<u8>,
    out: &mut Vec<u8>,
) {
    let n = freqs.len();
    // parent[i] for 2n-1 tree nodes; leaves are 0..n.
    parent.clear();
    parent.resize(2 * n - 1, usize::MAX);
    heap.clear();
    heap.extend(freqs.iter().enumerate().map(|(id, &freq)| Node { freq: freq.max(1), id }));
    let mut next_id = n;
    while heap.len() > 1 {
        let a = heap.pop().unwrap();
        let b = heap.pop().unwrap();
        parent[a.id] = next_id;
        parent[b.id] = next_id;
        heap.push(Node { freq: a.freq + b.freq, id: next_id });
        next_id += 1;
    }
    let root = next_id - 1;
    depth.clear();
    depth.resize(2 * n - 1, 0u8);
    // Parents always have larger ids, so a reverse sweep resolves depths.
    for id in (0..2 * n - 1).rev() {
        if id != root {
            depth[id] = depth[parent[id]].saturating_add(1);
        }
    }
    out.clear();
    out.extend_from_slice(&depth[..n]);
}

/// Assigns canonical codes to `(symbol, len)` pairs sorted by `(len, symbol)`.
fn assign_canonical(sorted: &[(u32, u8)]) -> Vec<Code> {
    let mut codes = Vec::with_capacity(sorted.len());
    let mut code = 0u32;
    let mut prev_len = 0u8;
    for &(_, len) in sorted {
        code <<= len - prev_len;
        codes.push(Code { code, len });
        code += 1;
        prev_len = len;
    }
    codes
}

/// Symbol-to-code map used while encoding.
enum CodeMap {
    Dense(Vec<Code>),
    Sparse(HashMap<u32, Code>),
}

impl CodeMap {
    #[inline]
    fn get(&self, symbol: u32) -> Option<Code> {
        match self {
            CodeMap::Dense(v) => {
                let c = *v.get(symbol as usize)?;
                (c.len > 0).then_some(c)
            }
            CodeMap::Sparse(m) => m.get(&symbol).copied(),
        }
    }
}

/// A reusable Huffman encoder built from symbol frequencies.
pub struct HuffmanEncoder {
    /// Distinct symbols with lengths, sorted by `(len, symbol)`.
    table: Vec<(u32, u8)>,
    map: CodeMap,
}

impl HuffmanEncoder {
    /// Builds an encoder from the symbols that will be encoded.
    pub fn from_symbols(symbols: &[u32]) -> Self {
        // Dense counting for compact alphabets (quantization codes, level
        // deltas) — hashing every symbol dominates encoder setup otherwise.
        let max = symbols.iter().copied().max().unwrap_or(0);
        if u64::from(max) < DENSE_LIMIT {
            let mut counts = vec![0u64; max as usize + 1];
            for &s in symbols {
                counts[s as usize] += 1;
            }
            let entries: Vec<(u32, u64)> = counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(s, &c)| (s as u32, c))
                .collect();
            return Self::from_sorted_entries(entries);
        }
        let mut freq: HashMap<u32, u64> = HashMap::new();
        for &s in symbols {
            *freq.entry(s).or_insert(0) += 1;
        }
        Self::from_frequencies(&freq)
    }

    /// Builds an encoder from an explicit frequency map.
    pub fn from_frequencies(freq: &HashMap<u32, u64>) -> Self {
        let mut entries: Vec<(u32, u64)> = freq.iter().map(|(&s, &f)| (s, f)).collect();
        entries.sort_unstable_by_key(|&(s, _)| s);
        Self::from_sorted_entries(entries)
    }

    /// Builds an encoder from `(symbol, count)` entries sorted by symbol.
    fn from_sorted_entries(entries: Vec<(u32, u64)>) -> Self {
        let mut table: Vec<(u32, u8)>;
        match entries.len() {
            0 => table = Vec::new(),
            1 => table = vec![(entries[0].0, 1)],
            _ => {
                let freqs: Vec<u64> = entries.iter().map(|&(_, f)| f).collect();
                let lens = code_lengths(&freqs);
                table = entries.iter().zip(lens.iter()).map(|(&(s, _), &l)| (s, l)).collect();
                table.sort_unstable_by_key(|&(s, l)| (l, s));
            }
        }
        let codes = assign_canonical(&table);
        let max_sym = table.iter().map(|&(s, _)| u64::from(s)).max().unwrap_or(0);
        let map = if max_sym < DENSE_LIMIT {
            let mut dense = vec![Code { code: 0, len: 0 }; (max_sym + 1) as usize];
            for (&(s, _), &c) in table.iter().zip(codes.iter()) {
                dense[s as usize] = c;
            }
            CodeMap::Dense(dense)
        } else {
            CodeMap::Sparse(table.iter().zip(codes.iter()).map(|(&(s, _), &c)| (s, c)).collect())
        };
        Self { table, map }
    }

    /// Number of distinct symbols in the code.
    pub fn alphabet_size(&self) -> usize {
        self.table.len()
    }

    /// Serializes the canonical table: distinct count, then delta-coded
    /// sorted symbols and one length byte each.
    fn write_table(&self, out: &mut Vec<u8>) {
        write_uvarint(out, self.table.len() as u64);
        // Symbols sorted ascending for tight delta coding.
        let mut sorted: Vec<(u32, u8)> = self.table.clone();
        sorted.sort_unstable_by_key(|&(s, _)| s);
        let mut prev = 0u32;
        for (i, &(s, l)) in sorted.iter().enumerate() {
            let delta = if i == 0 { u64::from(s) } else { u64::from(s - prev) };
            write_uvarint(out, delta);
            out.push(l);
            prev = s;
        }
    }

    /// Encodes `symbols` (all of which must have appeared in the frequency
    /// set) into a self-contained byte stream.
    pub fn encode(&self, symbols: &[u32]) -> Vec<u8> {
        let mut out = Vec::new();
        write_uvarint(&mut out, symbols.len() as u64);
        self.write_table(&mut out);
        if self.table.len() <= 1 {
            // Zero- and one-symbol alphabets need no payload bits.
            return out;
        }
        let mut bits = BitWriter::with_capacity(symbols.len() / 2);
        for &s in symbols {
            let c = self.map.get(s).expect("symbol not present in encoder frequency set");
            bits.write_bits(u64::from(c.code), u32::from(c.len));
        }
        let payload = bits.finish();
        write_uvarint(&mut out, payload.len() as u64);
        out.extend_from_slice(&payload);
        out
    }
}

/// Decoder state rebuilt from a serialized canonical table.
pub struct HuffmanDecoder {
    /// Symbols sorted by `(len, symbol)` — canonical order.
    symbols: Vec<u32>,
    /// `first_code[l]`/`first_index[l]`: canonical ranges per length.
    first_code: [u32; (MAX_CODE_LEN + 2) as usize],
    first_index: [u32; (MAX_CODE_LEN + 2) as usize],
    count: [u32; (MAX_CODE_LEN + 2) as usize],
    /// LUT over the next `LUT_BITS` bits: `(symbol, len)` or `len == 0` for slow path.
    lut: Vec<(u32, u8)>,
    max_len: u32,
}

impl HuffmanDecoder {
    /// Reads a canonical table from `data` at `*pos`.
    fn read_table(data: &[u8], pos: &mut usize) -> Result<Self> {
        let distinct = read_uvarint(data, pos)? as usize;
        // Each serialized entry costs at least two bytes (delta varint +
        // length byte), so an alphabet larger than half the remaining input
        // is structurally impossible — reject before `with_capacity`.
        if distinct > data.len().saturating_sub(*pos) / 2 {
            return Err(EntropyError::Corrupt("alphabet larger than its encoding"));
        }
        let mut pairs: Vec<(u32, u8)> = Vec::with_capacity(distinct);
        let mut prev = 0u64;
        for i in 0..distinct {
            let delta = read_uvarint(data, pos)?;
            if i > 0 && delta == 0 {
                // Sorted-ascending symbols delta-code with strictly positive
                // gaps; a zero delta means a duplicate symbol, which would
                // silently shadow one of its two codes.
                return Err(EntropyError::Corrupt("duplicate symbol in code table"));
            }
            // `checked_add`: a forged delta near u64::MAX must not overflow.
            let sym = if i == 0 { Some(delta) } else { prev.checked_add(delta) }
                .filter(|&s| s <= u64::from(u32::MAX))
                .ok_or(EntropyError::Corrupt("symbol exceeds u32"))?;
            let len = *data.get(*pos).ok_or(EntropyError::UnexpectedEof)?;
            *pos += 1;
            if distinct > 1 && (len == 0 || u32::from(len) > MAX_CODE_LEN) {
                return Err(EntropyError::Corrupt("invalid code length"));
            }
            pairs.push((sym as u32, len));
            prev = sym;
        }
        pairs.sort_unstable_by_key(|&(s, l)| (l, s));
        Self::from_canonical(pairs)
    }

    fn from_canonical(pairs: Vec<(u32, u8)>) -> Result<Self> {
        let mut dec = Self {
            symbols: pairs.iter().map(|&(s, _)| s).collect(),
            first_code: [0; (MAX_CODE_LEN + 2) as usize],
            first_index: [0; (MAX_CODE_LEN + 2) as usize],
            count: [0; (MAX_CODE_LEN + 2) as usize],
            lut: Vec::new(),
            max_len: 0,
        };
        if pairs.len() <= 1 {
            return Ok(dec);
        }
        for &(_, l) in &pairs {
            dec.count[l as usize] += 1;
            dec.max_len = dec.max_len.max(u32::from(l));
        }
        // Canonical ranges and Kraft check.
        let mut code = 0u64;
        let mut index = 0u32;
        for l in 1..=dec.max_len {
            dec.first_code[l as usize] = code as u32;
            dec.first_index[l as usize] = index;
            code += u64::from(dec.count[l as usize]);
            index += dec.count[l as usize];
            if code > (1u64 << l) {
                return Err(EntropyError::Corrupt("code table violates Kraft inequality"));
            }
            code <<= 1;
        }
        // Completeness: after processing the deepest level, the next free
        // code must sit exactly at 2^(max_len+1). Anything less leaves bit
        // patterns that match no symbol — a decoder fed such a table would
        // report "bit pattern matches no code" only when (and if) the hole
        // is hit; reject the table up front instead.
        if code != 1u64 << (dec.max_len + 1) {
            return Err(EntropyError::Corrupt("incomplete code table"));
        }
        // Fast LUT for short codes.
        let lut_len = 1usize << LUT_BITS;
        dec.lut = vec![(0, 0); lut_len];
        let codes = assign_canonical(&pairs);
        for (&(sym, len), &c) in pairs.iter().zip(codes.iter()) {
            let len32 = u32::from(len);
            if len32 <= LUT_BITS {
                let shift = LUT_BITS - len32;
                let base = (c.code as usize) << shift;
                for fill in 0..(1usize << shift) {
                    dec.lut[base | fill] = (sym, len);
                }
            }
        }
        Ok(dec)
    }

    /// Decodes one symbol from `bits`.
    #[inline]
    fn decode_symbol(&self, bits: &mut BitReader<'_>) -> Result<u32> {
        // Fast path: peek LUT_BITS bits if available.
        let avail = bits.remaining();
        if avail >= u64::from(LUT_BITS) {
            let mut probe = bits.clone();
            let peek = probe.read_bits(LUT_BITS)? as usize;
            let (sym, len) = self.lut[peek];
            if len != 0 {
                bits.read_bits(u32::from(len))?;
                return Ok(sym);
            }
        }
        // Canonical scan: extend the code one bit at a time.
        let mut code = 0u32;
        for l in 1..=self.max_len {
            code = (code << 1) | bits.read_bit()? as u32;
            let cnt = self.count[l as usize];
            if cnt > 0 {
                let first = self.first_code[l as usize];
                if code >= first && code < first + cnt {
                    let idx = self.first_index[l as usize] + (code - first);
                    return Ok(self.symbols[idx as usize]);
                }
            }
        }
        Err(EntropyError::Corrupt("bit pattern matches no code"))
    }

    /// Decodes `count` symbols with a wide-window refill: one 64-bit peek
    /// serves several LUT lookups before the cursor is advanced once.
    ///
    /// Byte- and error-identical to `count` calls of
    /// [`Self::decode_symbol`]: whenever [`BitReader::peek64`] succeeds, at
    /// least 57 real stream bits remain, so every LUT probe here sees
    /// exactly the bits the scalar path would peek; codes longer than
    /// `LUT_BITS` and the sub-8-byte stream tail are delegated to
    /// [`Self::decode_symbol`] itself.
    fn decode_batched(
        &self,
        bits: &mut BitReader<'_>,
        count: usize,
        out: &mut Vec<u32>,
    ) -> Result<()> {
        let mut left = count;
        'refill: while left > 0 {
            let Some(window) = bits.peek64() else { break };
            let mut used: u64 = 0;
            while left > 0 && used + u64::from(LUT_BITS) <= 57 {
                let idx = ((window << used) >> (64 - LUT_BITS)) as usize;
                let (sym, len) = self.lut[idx];
                if len == 0 {
                    // Long code: commit what the window already decoded and
                    // take the canonical scan for this one symbol.
                    bits.advance(used);
                    out.push(self.decode_symbol(bits)?);
                    left -= 1;
                    continue 'refill;
                }
                out.push(sym);
                used += u64::from(len);
                left -= 1;
            }
            bits.advance(used);
        }
        for _ in 0..left {
            out.push(self.decode_symbol(bits)?);
        }
        Ok(())
    }
}

/// Encodes `symbols` into a self-contained Huffman stream.
pub fn huffman_encode(symbols: &[u32]) -> Vec<u8> {
    HuffmanEncoder::from_symbols(symbols).encode(symbols)
}

/// Reusable workspace for [`huffman_encode_into`].
///
/// Holds every intermediate buffer of the encode path (symbol counts, tree
/// arrays, canonical table, bit accumulator) so a steady-state caller
/// performs no heap allocation once the buffers have grown to the working
/// set size.
#[derive(Debug, Clone, Default)]
pub struct HuffmanScratch {
    counts: Vec<u64>,
    entries: Vec<(u32, u64)>,
    freqs: Vec<u64>,
    lens: Vec<u8>,
    parent: Vec<usize>,
    depth: Vec<u8>,
    heap: BinaryHeap<Node>,
    table: Vec<(u32, u8)>,
    codes: Vec<Code>,
    dense: Vec<Code>,
    sorted: Vec<(u32, u8)>,
    bits: BitWriter,
}

/// Appends the stream [`huffman_encode`] would produce for `symbols` to
/// `out`, reusing `scratch` for all intermediate state.
///
/// Output bytes are identical to [`huffman_encode`]. Allocation-free after
/// warm-up for alphabets below the dense-counting limit (the case for
/// quantization codes); the rare huge-alphabet path falls back to the
/// allocating encoder.
pub fn huffman_encode_into(symbols: &[u32], out: &mut Vec<u8>, scratch: &mut HuffmanScratch) {
    let max = symbols.iter().copied().max().unwrap_or(0);
    if u64::from(max) >= DENSE_LIMIT {
        // Sparse-alphabet path: rare (symbols here are quantization codes,
        // bounded by the radius); reuse the allocating hash-map encoder.
        out.extend_from_slice(&huffman_encode(symbols));
        return;
    }
    let HuffmanScratch {
        counts,
        entries,
        freqs,
        lens,
        parent,
        depth,
        heap,
        table,
        codes,
        dense,
        sorted,
        bits,
    } = scratch;

    // Dense count, mirroring `HuffmanEncoder::from_symbols`.
    counts.clear();
    counts.resize(max as usize + 1, 0);
    for &s in symbols {
        counts[s as usize] += 1;
    }
    entries.clear();
    entries.extend(counts.iter().enumerate().filter(|&(_, &c)| c > 0).map(|(s, &c)| (s as u32, c)));

    // Table construction, mirroring `from_sorted_entries`.
    table.clear();
    match entries.len() {
        0 => {}
        1 => table.push((entries[0].0, 1)),
        _ => {
            freqs.clear();
            freqs.extend(entries.iter().map(|&(_, f)| f));
            loop {
                tree_depths_into(freqs, parent, heap, depth, lens);
                if lens.iter().all(|&l| u32::from(l) <= MAX_CODE_LEN) {
                    break;
                }
                for f in freqs.iter_mut() {
                    *f = (*f >> 1) + 1;
                }
            }
            table.extend(entries.iter().zip(lens.iter()).map(|(&(s, _), &l)| (s, l)));
            table.sort_unstable_by_key(|&(s, l)| (l, s));
        }
    }

    // Canonical codes and a dense symbol→code map (max < DENSE_LIMIT here).
    codes.clear();
    {
        let mut code = 0u32;
        let mut prev_len = 0u8;
        for &(_, len) in table.iter() {
            code <<= len - prev_len;
            codes.push(Code { code, len });
            code += 1;
            prev_len = len;
        }
    }
    dense.clear();
    dense.resize(max as usize + 1, Code { code: 0, len: 0 });
    for (&(s, _), &c) in table.iter().zip(codes.iter()) {
        dense[s as usize] = c;
    }

    // Stream layout identical to `HuffmanEncoder::encode`.
    write_uvarint(out, symbols.len() as u64);
    write_uvarint(out, table.len() as u64);
    sorted.clear();
    sorted.extend_from_slice(table);
    sorted.sort_unstable_by_key(|&(s, _)| s);
    let mut prev = 0u32;
    for (i, &(s, l)) in sorted.iter().enumerate() {
        let delta = if i == 0 { u64::from(s) } else { u64::from(s - prev) };
        write_uvarint(out, delta);
        out.push(l);
        prev = s;
    }
    if table.len() <= 1 {
        return;
    }
    bits.clear();
    for &s in symbols {
        let c = dense[s as usize];
        debug_assert!(c.len > 0, "symbol not present in encoder frequency set");
        bits.write_bits(u64::from(c.code), u32::from(c.len));
    }
    let payload = bits.flush();
    write_uvarint(out, payload.len() as u64);
    out.extend_from_slice(payload);
}

/// Decodes a stream produced by [`huffman_encode`], starting at `*pos` and
/// advancing it past the stream.
pub fn huffman_decode_at(data: &[u8], pos: &mut usize) -> Result<Vec<u32>> {
    huffman_decode_at_limited(data, pos, &StreamLimits::default())
}

/// [`huffman_decode_at`] with a caller-supplied decode budget.
pub fn huffman_decode_at_limited(
    data: &[u8],
    pos: &mut usize,
    limits: &StreamLimits,
) -> Result<Vec<u32>> {
    let mut out = Vec::new();
    huffman_decode_at_into_limited(data, pos, &mut out, limits)?;
    Ok(out)
}

/// [`huffman_decode_at`] writing the symbols into a caller-owned vector
/// (cleared first), so a streaming decoder can reuse the allocation.
pub fn huffman_decode_at_into(data: &[u8], pos: &mut usize, out: &mut Vec<u32>) -> Result<()> {
    huffman_decode_at_into_limited(data, pos, out, &StreamLimits::default())
}

/// [`huffman_decode_at_into`] with a caller-supplied decode budget.
///
/// The declared symbol count is checked against `limits` before any
/// count-proportional allocation. The multi-symbol path additionally bounds
/// the count by the payload's bit capacity (every symbol costs at least one
/// bit when the alphabet has two or more entries); the single-symbol path
/// carries no payload, so it can only be bounded by the budget.
pub fn huffman_decode_at_into_limited(
    data: &[u8],
    pos: &mut usize,
    out: &mut Vec<u32>,
    limits: &StreamLimits,
) -> Result<()> {
    out.clear();
    let count = read_uvarint(data, pos)? as usize;
    limits.check_items(count, "huffman symbol count")?;
    let dec = HuffmanDecoder::read_table(data, pos)?;
    match dec.symbols.len() {
        0 => {
            if count != 0 {
                return Err(EntropyError::Corrupt("nonzero count with empty alphabet"));
            }
            Ok(())
        }
        1 => {
            out.resize(count, dec.symbols[0]);
            Ok(())
        }
        _ => {
            let payload_len = read_uvarint(data, pos)? as usize;
            let end = pos
                .checked_add(payload_len)
                .filter(|&e| e <= data.len())
                .ok_or(EntropyError::UnexpectedEof)?;
            // With two or more symbols every code is at least one bit, so a
            // count beyond the payload's bit capacity is a forged header.
            if count > payload_len.saturating_mul(8) {
                return Err(EntropyError::Corrupt("symbol count exceeds payload bits"));
            }
            let mut bits = BitReader::new(&data[*pos..end]);
            // Cap eager allocation: `count` is untrusted until the payload
            // actually yields that many symbols (a forged header must not
            // OOM us).
            out.reserve(count.min(1 << 20));
            if crate::kernel::accelerated() {
                dec.decode_batched(&mut bits, count, out)?;
            } else {
                // Scalar oracle: one LUT peek (or canonical scan) per symbol.
                for _ in 0..count {
                    out.push(dec.decode_symbol(&mut bits)?);
                }
            }
            *pos = end;
            Ok(())
        }
    }
}

/// Decodes a stream produced by [`huffman_encode`].
pub fn huffman_decode(data: &[u8]) -> Result<Vec<u32>> {
    let mut pos = 0;
    let out = huffman_decode_at(data, &mut pos)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(symbols: &[u32]) {
        let enc = huffman_encode(symbols);
        let dec = huffman_decode(&enc).expect("decode");
        assert_eq!(dec, symbols);
    }

    #[test]
    fn empty_input() {
        round_trip(&[]);
    }

    #[test]
    fn single_distinct_symbol() {
        round_trip(&[42; 1000]);
        // One-symbol streams carry no payload bits at all.
        let enc = huffman_encode(&[7u32; 100000]);
        assert!(enc.len() < 16, "degenerate stream should be tiny, got {}", enc.len());
    }

    #[test]
    fn two_symbols() {
        let mut v = vec![0u32; 100];
        v.extend(vec![1u32; 3]);
        round_trip(&v);
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 90% zeros → well under 1 byte/symbol.
        let mut v = Vec::new();
        for i in 0..10_000u32 {
            v.push(if i % 10 == 0 { i % 7 + 1 } else { 0 });
        }
        let enc = huffman_encode(&v);
        assert!(enc.len() < v.len(), "{} vs {}", enc.len(), v.len());
        round_trip(&v);
    }

    #[test]
    fn large_sparse_alphabet() {
        let v: Vec<u32> =
            (0..4000).map(|i| (i * 2_654_435_761u64 % 1_000_000_007) as u32).collect();
        round_trip(&v);
    }

    #[test]
    fn quantization_like_distribution() {
        // Geometric-ish distribution centred at 512, like SZ quantization codes.
        let mut v = Vec::new();
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..50_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let r = (state >> 40) as f64 / (1u64 << 24) as f64;
            let mag = (-r.max(1e-9).ln() * 3.0) as i64;
            let sign = if state & 1 == 0 { 1 } else { -1 };
            v.push((512 + sign * mag) as u32);
        }
        let enc = huffman_encode(&v);
        // Entropy is a few bits/symbol; 4 bytes/symbol raw.
        assert!(enc.len() < v.len() * 2);
        round_trip(&v);
    }

    /// Decodes `enc` through both the batched wide-window path and the
    /// per-symbol scalar oracle and asserts identical results (symbols or
    /// error), regardless of what the ambient kernel level is.
    fn assert_batched_matches_scalar(enc: &[u8]) {
        let limits = StreamLimits::default();
        let decode_with = |batched: bool| -> Result<Vec<u32>> {
            let mut pos = 0;
            let mut out = Vec::new();
            let count = read_uvarint(enc, &mut pos)? as usize;
            limits.check_items(count, "huffman symbol count")?;
            let dec = HuffmanDecoder::read_table(enc, &mut pos)?;
            match dec.symbols.len() {
                0 | 1 => {
                    // Degenerate streams have no batched path; exercise the
                    // public entry point for coverage and return its result.
                    let mut p = 0;
                    huffman_decode_at_into_limited(enc, &mut p, &mut out, &limits)?;
                    Ok(out)
                }
                _ => {
                    let payload_len = read_uvarint(enc, &mut pos)? as usize;
                    let end = pos
                        .checked_add(payload_len)
                        .filter(|&e| e <= enc.len())
                        .ok_or(EntropyError::UnexpectedEof)?;
                    if count > payload_len.saturating_mul(8) {
                        return Err(EntropyError::Corrupt("symbol count exceeds payload bits"));
                    }
                    let mut bits = BitReader::new(&enc[pos..end]);
                    if batched {
                        dec.decode_batched(&mut bits, count, &mut out)?;
                    } else {
                        for _ in 0..count {
                            out.push(dec.decode_symbol(&mut bits)?);
                        }
                    }
                    Ok(out)
                }
            }
        };
        assert_eq!(decode_with(true), decode_with(false));
    }

    #[test]
    fn batched_decode_matches_scalar_on_clean_streams() {
        // Short codes only (LUT hits), including a tail shorter than the
        // 8-byte window.
        let mut skewed = Vec::new();
        for i in 0..10_000u32 {
            skewed.push(if i % 10 == 0 { i % 7 + 1 } else { 0 });
        }
        // Large sparse alphabet: codes longer than LUT_BITS force the
        // canonical-scan handoff mid-window.
        let sparse: Vec<u32> =
            (0..4000).map(|i| (i * 2_654_435_761u64 % 1_000_000_007) as u32).collect();
        // Tiny stream: the whole payload is below the window size.
        let tiny = [3u32, 1, 4, 1, 5, 9, 2, 6];
        for symbols in [&skewed[..], &sparse[..], &tiny[..], &[][..], &[42; 17][..]] {
            let enc = huffman_encode(symbols);
            assert_batched_matches_scalar(&enc);
            let mut pos = 0;
            let mut out = Vec::new();
            huffman_decode_at_into_limited(&enc, &mut pos, &mut out, &StreamLimits::default())
                .expect("decode");
            assert_eq!(out, symbols);
        }
    }

    #[test]
    fn batched_decode_matches_scalar_on_corrupt_streams() {
        let mut symbols = Vec::new();
        for i in 0..2000u32 {
            symbols.push(i % 97);
        }
        let enc = huffman_encode(&symbols);
        // Truncations cut codes mid-stream; bit flips forge invalid codes.
        for cut in [enc.len() - 1, enc.len() - 7, enc.len() - 9, enc.len() / 2] {
            assert_batched_matches_scalar(&enc[..cut]);
        }
        let mut state = 0x5EED_1234_u64;
        for _ in 0..64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let mut bad = enc.clone();
            let idx = (state >> 33) as usize % bad.len();
            bad[idx] ^= 1 << ((state >> 29) & 7);
            assert_batched_matches_scalar(&bad);
        }
    }

    #[test]
    fn pathological_fibonacci_frequencies_are_length_limited() {
        // Fibonacci frequencies make maximally deep trees; the limiter must cope.
        let mut v = Vec::new();
        let (mut a, mut b) = (1u64, 1u64);
        for s in 0..48u32 {
            for _ in 0..a.min(100_000) {
                v.push(s);
            }
            let c = a + b;
            a = b;
            b = c;
        }
        round_trip(&v);
    }

    #[test]
    fn truncated_stream_errors() {
        let v: Vec<u32> = (0..1000).map(|i| i % 17).collect();
        let enc = huffman_encode(&v);
        for cut in [0, 1, enc.len() / 2, enc.len() - 1] {
            assert!(huffman_decode(&enc[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupted_table_errors_not_panics() {
        let v: Vec<u32> = (0..200).map(|i| i % 5).collect();
        let mut enc = huffman_encode(&v);
        // Flip every byte one at a time; decode must never panic.
        for i in 0..enc.len() {
            enc[i] ^= 0xFF;
            let _ = huffman_decode(&enc);
            enc[i] ^= 0xFF;
        }
    }

    #[test]
    fn decode_at_advances_past_stream() {
        let a: Vec<u32> = (0..100).map(|i| i % 3).collect();
        let b: Vec<u32> = (0..50).map(|i| i % 7 + 100).collect();
        let mut buf = huffman_encode(&a);
        buf.extend(huffman_encode(&b));
        let mut pos = 0;
        assert_eq!(huffman_decode_at(&buf, &mut pos).unwrap(), a);
        assert_eq!(huffman_decode_at(&buf, &mut pos).unwrap(), b);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn encode_into_is_byte_identical() {
        let inputs: Vec<Vec<u32>> = vec![
            vec![],
            vec![42; 1000],
            (0..1000u32).map(|i| i % 17).collect(),
            (0..4000u32).map(|i| (i as u64 * 2_654_435_761 % 1_000_000_007) as u32).collect(),
            {
                let mut v = vec![0u32; 100];
                v.extend(vec![1u32; 3]);
                v
            },
            {
                // Fibonacci frequencies exercise the length limiter.
                let mut v = Vec::new();
                let (mut a, mut b) = (1u64, 1u64);
                for s in 0..48u32 {
                    for _ in 0..a.min(10_000) {
                        v.push(s);
                    }
                    let c = a + b;
                    a = b;
                    b = c;
                }
                v
            },
        ];
        let mut scratch = HuffmanScratch::default();
        let mut out = Vec::new();
        for v in &inputs {
            // Reuse the same scratch across inputs: state must not leak.
            out.clear();
            huffman_encode_into(v, &mut out, &mut scratch);
            assert_eq!(out, huffman_encode(v), "{} symbols", v.len());
        }
    }

    #[test]
    fn decode_at_into_reuses_buffer() {
        let a: Vec<u32> = (0..100).map(|i| i % 3).collect();
        let b: Vec<u32> = (0..50).map(|i| i % 7 + 100).collect();
        let mut buf = huffman_encode(&a);
        buf.extend(huffman_encode(&b));
        let mut pos = 0;
        let mut out = Vec::new();
        huffman_decode_at_into(&buf, &mut pos, &mut out).unwrap();
        assert_eq!(out, a);
        huffman_decode_at_into(&buf, &mut pos, &mut out).unwrap();
        assert_eq!(out, b);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn oversubscribed_table_rejected() {
        // Three symbols all claiming one-bit codes violate Kraft: only two
        // one-bit codes exist. Layout: count=0, distinct=3, then
        // (delta, len) entries (0,1) (1,1) (1,1).
        let data = [0u8, 3, 0, 1, 1, 1, 1, 1];
        assert_eq!(
            huffman_decode(&data),
            Err(EntropyError::Corrupt("code table violates Kraft inequality"))
        );
    }

    #[test]
    fn incomplete_table_rejected() {
        // Two symbols with two-bit codes leave half of the two-bit code
        // space unassigned — a decoder would hit "matches no code" only on
        // unlucky payloads; the table itself must be rejected.
        let data = [0u8, 2, 0, 2, 1, 2];
        assert_eq!(huffman_decode(&data), Err(EntropyError::Corrupt("incomplete code table")));
    }

    #[test]
    fn duplicate_symbol_rejected() {
        // delta = 0 for the second entry repeats symbol 5.
        let data = [0u8, 2, 5, 1, 0, 1];
        assert_eq!(
            huffman_decode(&data),
            Err(EntropyError::Corrupt("duplicate symbol in code table"))
        );
    }

    #[test]
    fn alphabet_larger_than_input_rejected() {
        // distinct = 2^28 with almost no bytes behind it.
        let mut data = vec![0u8];
        write_uvarint(&mut data, 1 << 28);
        data.extend_from_slice(&[0, 1]);
        assert_eq!(
            huffman_decode(&data),
            Err(EntropyError::Corrupt("alphabet larger than its encoding"))
        );
    }

    #[test]
    fn count_beyond_payload_bits_rejected() {
        // A complete 2-symbol table with a 1-byte payload cannot yield 1000
        // symbols (each costs at least one bit).
        let mut data = Vec::new();
        write_uvarint(&mut data, 1000); // forged count
        data.extend_from_slice(&[2, 0, 1, 1, 1]); // table: {0:1, 1:1}
        data.extend_from_slice(&[1, 0]); // payload_len=1, payload
        assert_eq!(
            huffman_decode(&data),
            Err(EntropyError::Corrupt("symbol count exceeds payload bits"))
        );
    }

    #[test]
    fn degenerate_count_bounded_by_limits() {
        // Single-symbol streams carry no payload, so a forged count can only
        // be caught by the caller's budget.
        let enc = huffman_encode(&[7u32; 1000]);
        let limits = StreamLimits::with_max_items(100);
        let mut pos = 0;
        assert_eq!(
            huffman_decode_at_limited(&enc, &mut pos, &limits),
            Err(EntropyError::LimitExceeded { what: "huffman symbol count", limit: 100 })
        );
        // The same stream passes under a budget that admits it.
        let mut pos = 0;
        let out =
            huffman_decode_at_limited(&enc, &mut pos, &StreamLimits::with_max_items(1000)).unwrap();
        assert_eq!(out, vec![7u32; 1000]);
    }

    #[test]
    fn encoder_reuse_across_batches() {
        let batch1: Vec<u32> = (0..500).map(|i| i % 11).collect();
        let batch2: Vec<u32> = (0..300).map(|i| (i + 3) % 11).collect();
        let mut freq = HashMap::new();
        for &s in batch1.iter().chain(batch2.iter()) {
            *freq.entry(s).or_insert(0u64) += 1;
        }
        let enc = HuffmanEncoder::from_frequencies(&freq);
        assert_eq!(huffman_decode(&enc.encode(&batch1)).unwrap(), batch1);
        assert_eq!(huffman_decode(&enc.encode(&batch2)).unwrap(), batch2);
    }
}
