//! Static range (arithmetic) coding over `u32` symbol alphabets.
//!
//! Huffman coding loses up to one bit per symbol to code-length rounding;
//! arithmetic coding is the classic remedy and the SZ line of work has
//! explored it as a drop-in for the entropy stage. This module provides a
//! carry-less 64-bit range coder with *static* per-stream frequencies, using
//! the same serialized-table + self-contained-stream conventions as
//! [`crate::huffman`], so the two stages are interchangeable in the MDZ
//! pipeline (and ablatable against each other).
//!
//! Frequencies are rescaled to a ≤ 2¹⁶ total, which with a ≥ 2⁴⁸
//! renormalization floor keeps `range / total` exact and the coder lossless.

use crate::varint::{read_uvarint, write_uvarint};
use crate::{EntropyError, Result, StreamLimits};

/// Upper bound on the rescaled frequency total (16-bit).
const TOTAL_BITS: u32 = 16;
const MAX_TOTAL: u64 = 1 << TOTAL_BITS;
/// Renormalization floor for the range.
const RANGE_FLOOR: u64 = 1 << 48;
/// Top byte extraction shift.
const SHIFT: u32 = 56;

/// Cumulative-frequency model shared by encoder and decoder.
#[derive(Debug, Clone, Default)]
struct Model {
    /// Distinct symbols, ascending.
    symbols: Vec<u32>,
    /// `cum[i]..cum[i+1]` is symbol `i`'s slot; `cum.len() == symbols.len()+1`.
    cum: Vec<u32>,
}

impl Model {
    /// Rebuilds the model in place from `(symbol, count)` pairs sorted by
    /// symbol, rescaling counts so they sum to ≤ [`MAX_TOTAL`] with every
    /// count ≥ 1. `freqs` is a caller-owned scratch buffer.
    fn rebuild(&mut self, entries: &[(u32, u64)], freqs: &mut Vec<u32>) {
        let total: u64 = entries.iter().map(|&(_, c)| c).sum::<u64>().max(1);
        let n = entries.len() as u64;
        freqs.clear();
        freqs.extend(entries.iter().map(|&(_, c)| {
            // Proportional share of (MAX_TOTAL − n), plus 1 so no symbol
            // gets a zero slot.
            let scaled = c * (MAX_TOTAL - n) / total;
            (scaled + 1) as u32
        }));
        // Rounding can overshoot; shave the largest entries down.
        let mut sum: u64 = freqs.iter().map(|&f| u64::from(f)).sum();
        while sum > MAX_TOTAL {
            let i = freqs
                .iter()
                .enumerate()
                .max_by_key(|&(_, &f)| f)
                .map(|(i, _)| i)
                .expect("non-empty");
            freqs[i] -= 1;
            sum -= 1;
        }
        self.cum.clear();
        self.cum.reserve(entries.len() + 1);
        let mut acc = 0u32;
        self.cum.push(0);
        for &f in freqs.iter() {
            acc += f;
            self.cum.push(acc);
        }
        self.symbols.clear();
        self.symbols.extend(entries.iter().map(|&(s, _)| s));
    }

    fn total(&self) -> u32 {
        *self.cum.last().unwrap()
    }

    /// Index of `symbol` in the model.
    fn index_of(&self, symbol: u32) -> Option<usize> {
        self.symbols.binary_search(&symbol).ok()
    }

    /// Symbol index whose slot contains `value` (< total).
    fn slot_of(&self, value: u32) -> usize {
        // partition_point: first i with cum[i] > value, minus one.
        self.cum.partition_point(|&c| c <= value) - 1
    }

    /// Serializes as (count, then per symbol: delta varint, freq varint).
    fn write(&self, out: &mut Vec<u8>) {
        write_uvarint(out, self.symbols.len() as u64);
        let mut prev = 0u32;
        for (i, &s) in self.symbols.iter().enumerate() {
            let delta = if i == 0 { u64::from(s) } else { u64::from(s - prev) };
            write_uvarint(out, delta);
            write_uvarint(out, u64::from(self.cum[i + 1] - self.cum[i]));
            prev = s;
        }
    }

    fn read(data: &[u8], pos: &mut usize) -> Result<Self> {
        let n = read_uvarint(data, pos)? as usize;
        // Each serialized entry costs at least two bytes (delta varint +
        // frequency varint), so a model larger than half the remaining input
        // is structurally impossible — reject before `with_capacity`.
        if n > data.len().saturating_sub(*pos) / 2 {
            return Err(EntropyError::Corrupt("model larger than its encoding"));
        }
        let mut symbols = Vec::with_capacity(n);
        let mut cum = Vec::with_capacity(n + 1);
        cum.push(0u32);
        let mut prev = 0u64;
        let mut acc = 0u64;
        for i in 0..n {
            let delta = read_uvarint(data, pos)?;
            if i > 0 && delta == 0 {
                // Sorted-ascending symbols delta-code with strictly positive
                // gaps; a zero delta means a duplicate symbol, which breaks
                // the binary search used by the encoder side and silently
                // shadows a slot on decode.
                return Err(EntropyError::Corrupt("duplicate symbol in model"));
            }
            // `checked_add`: a forged delta near u64::MAX must not overflow.
            let sym = if i == 0 { Some(delta) } else { prev.checked_add(delta) }
                .filter(|&s| s <= u64::from(u32::MAX))
                .ok_or(EntropyError::Corrupt("symbol exceeds u32"))?;
            let freq = read_uvarint(data, pos)?;
            if freq == 0 || freq > MAX_TOTAL {
                return Err(EntropyError::Corrupt("invalid frequency"));
            }
            acc += freq;
            if acc > MAX_TOTAL {
                return Err(EntropyError::Corrupt("frequency total overflow"));
            }
            symbols.push(sym as u32);
            cum.push(acc as u32);
            prev = sym;
        }
        Ok(Self { symbols, cum })
    }
}

/// Carry-less range encoder (64-bit low, 56-bit emission).
struct RangeEncoder {
    low: u128,
    range: u64,
    out: Vec<u8>,
}

impl RangeEncoder {
    /// Starts an encoder that appends to `buf` (cleared first), so a caller
    /// can recycle the payload allocation across streams.
    fn with_buffer(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Self { low: 0, range: u64::MAX, out: buf }
    }

    #[inline]
    fn encode(&mut self, cum: u32, freq: u32, total: u32) {
        let r = self.range / u64::from(total);
        self.low += u128::from(r) * u128::from(cum);
        self.range = r * u64::from(freq);
        self.normalize();
    }

    #[inline]
    fn normalize(&mut self) {
        // Emit top bytes while the interval's top byte is settled, or force
        // range reduction when it gets too small to subdivide.
        loop {
            let low = self.low as u64; // carry folded into byte emission below
            if (low ^ low.wrapping_add(self.range)) < RANGE_FLOOR {
                // top byte settled
            } else if self.range < (1 << 32) {
                // Carry-less truncation: clamp range to the current byte
                // boundary so the top byte settles.
                self.range = low.wrapping_neg() & ((1 << 32) - 1);
                if self.range == 0 {
                    self.range = 1 << 32;
                }
            } else {
                break;
            }
            self.emit();
        }
    }

    #[inline]
    fn emit(&mut self) {
        // Propagate carry out of the 64-bit window first.
        let carry = (self.low >> 64) as u8;
        if carry != 0 {
            // Ripple the carry into already-emitted bytes.
            for b in self.out.iter_mut().rev() {
                let (nb, overflow) = b.overflowing_add(1);
                *b = nb;
                if !overflow {
                    break;
                }
            }
            self.low &= (1u128 << 64) - 1;
        }
        self.out.push(((self.low as u64) >> SHIFT) as u8);
        self.low = (self.low << 8) & ((1u128 << 64) - 1);
        self.range <<= 8;
    }

    fn finish(mut self) -> Vec<u8> {
        for _ in 0..8 {
            self.emit();
        }
        self.out
    }
}

/// Mirror-image decoder.
struct RangeDecoder<'a> {
    code: u64,
    low: u64,
    range: u64,
    data: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    fn new(data: &'a [u8]) -> Self {
        let mut d = Self { code: 0, low: 0, range: u64::MAX, data, pos: 0 };
        for _ in 0..8 {
            d.code = (d.code << 8) | d.next_byte();
        }
        d
    }

    #[inline]
    fn next_byte(&mut self) -> u64 {
        let b = self.data.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        u64::from(b)
    }

    /// Returns the scaled value in `[0, total)` identifying the next slot.
    #[inline]
    fn decode_value(&mut self, total: u32) -> u32 {
        let r = self.range / u64::from(total);
        let v = (self.code.wrapping_sub(self.low)) / r;
        v.min(u64::from(total) - 1) as u32
    }

    /// Commits the decoded slot.
    #[inline]
    fn consume(&mut self, cum: u32, freq: u32, total: u32) {
        let r = self.range / u64::from(total);
        self.low = self.low.wrapping_add(r.wrapping_mul(u64::from(cum)));
        self.range = r * u64::from(freq);
        loop {
            if (self.low ^ self.low.wrapping_add(self.range)) < RANGE_FLOOR {
                // settled
            } else if self.range < (1 << 32) {
                self.range = self.low.wrapping_neg() & ((1 << 32) - 1);
                if self.range == 0 {
                    self.range = 1 << 32;
                }
            } else {
                break;
            }
            self.code = (self.code << 8) | self.next_byte();
            self.low = self.low.wrapping_shl(8);
            self.range <<= 8;
        }
    }
}

/// Reusable workspace for [`range_encode_into`].
#[derive(Debug, Clone, Default)]
pub struct RangeScratch {
    sorted: Vec<u32>,
    entries: Vec<(u32, u64)>,
    freqs: Vec<u32>,
    model: Model,
    payload: Vec<u8>,
}

/// Encodes `symbols` into a self-contained range-coded stream.
pub fn range_encode(symbols: &[u32]) -> Vec<u8> {
    let mut out = Vec::new();
    range_encode_into(symbols, &mut out, &mut RangeScratch::default());
    out
}

/// Appends the stream [`range_encode`] produces for `symbols` to `out`,
/// reusing `scratch` for the frequency model and payload buffer.
pub fn range_encode_into(symbols: &[u32], out: &mut Vec<u8>, scratch: &mut RangeScratch) {
    let RangeScratch { sorted, entries, freqs, model, payload } = scratch;
    write_uvarint(out, symbols.len() as u64);
    // Count frequencies via a sort + run scan (entries come out symbol-sorted).
    sorted.clear();
    sorted.extend_from_slice(symbols);
    sorted.sort_unstable();
    entries.clear();
    let mut i = 0;
    while i < sorted.len() {
        let s = sorted[i];
        let mut j = i;
        while j < sorted.len() && sorted[j] == s {
            j += 1;
        }
        entries.push((s, (j - i) as u64));
        i = j;
    }
    if entries.is_empty() {
        return;
    }
    if entries.len() == 1 {
        // Degenerate: store the symbol only.
        write_uvarint(out, 1);
        write_uvarint(out, u64::from(entries[0].0));
        return;
    }
    model.rebuild(entries, freqs);
    write_uvarint(out, 0); // tag: full model follows
    model.write(out);
    let total = model.total();
    let mut enc = RangeEncoder::with_buffer(std::mem::take(payload));
    for &s in symbols {
        let i = model.index_of(s).expect("symbol in model");
        enc.encode(model.cum[i], model.cum[i + 1] - model.cum[i], total);
    }
    *payload = enc.finish();
    write_uvarint(out, payload.len() as u64);
    out.extend_from_slice(payload);
}

/// Decodes a stream produced by [`range_encode`], advancing `*pos`.
pub fn range_decode_at(data: &[u8], pos: &mut usize) -> Result<Vec<u32>> {
    range_decode_at_limited(data, pos, &StreamLimits::default())
}

/// [`range_decode_at`] with a caller-supplied decode budget.
pub fn range_decode_at_limited(
    data: &[u8],
    pos: &mut usize,
    limits: &StreamLimits,
) -> Result<Vec<u32>> {
    let mut out = Vec::new();
    range_decode_at_into_limited(data, pos, &mut out, limits)?;
    Ok(out)
}

/// [`range_decode_at`] writing the symbols into a caller-owned vector
/// (cleared first), so a streaming decoder can reuse the allocation.
pub fn range_decode_at_into(data: &[u8], pos: &mut usize, out: &mut Vec<u32>) -> Result<()> {
    range_decode_at_into_limited(data, pos, out, &StreamLimits::default())
}

/// [`range_decode_at_into`] with a caller-supplied decode budget.
///
/// Unlike Huffman, a range-coded symbol can cost less than one bit, so the
/// declared count cannot be bounded by the payload size; the budget is the
/// only defense against a forged count (truncated payloads decode as
/// zero-padding here — the container's CRC frame is what detects them).
pub fn range_decode_at_into_limited(
    data: &[u8],
    pos: &mut usize,
    out: &mut Vec<u32>,
    limits: &StreamLimits,
) -> Result<()> {
    out.clear();
    let count = read_uvarint(data, pos)? as usize;
    limits.check_items(count, "range symbol count")?;
    if count == 0 {
        return Ok(());
    }
    let tag = read_uvarint(data, pos)?;
    if tag == 1 {
        let sym = read_uvarint(data, pos)?;
        if sym > u64::from(u32::MAX) {
            return Err(EntropyError::Corrupt("symbol exceeds u32"));
        }
        out.resize(count, sym as u32);
        return Ok(());
    }
    if tag != 0 {
        return Err(EntropyError::Corrupt("unknown stream tag"));
    }
    let model = Model::read(data, pos)?;
    if model.symbols.is_empty() {
        return Err(EntropyError::Corrupt("empty model with nonzero count"));
    }
    let payload_len = read_uvarint(data, pos)? as usize;
    let end = pos
        .checked_add(payload_len)
        .filter(|&e| e <= data.len())
        .ok_or(EntropyError::UnexpectedEof)?;
    let mut dec = RangeDecoder::new(&data[*pos..end]);
    let total = model.total();
    // Cap eager allocation: `count` is untrusted (forged headers must not
    // OOM us); the decode loop below grows organically.
    out.reserve(count.min(1 << 20));
    for _ in 0..count {
        let v = dec.decode_value(total);
        let i = model.slot_of(v);
        out.push(model.symbols[i]);
        dec.consume(model.cum[i], model.cum[i + 1] - model.cum[i], total);
    }
    *pos = end;
    Ok(())
}

/// Decodes a stream produced by [`range_encode`].
pub fn range_decode(data: &[u8]) -> Result<Vec<u32>> {
    let mut pos = 0;
    range_decode_at(data, &mut pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(symbols: &[u32]) -> usize {
        let enc = range_encode(symbols);
        assert_eq!(range_decode(&enc).expect("decode"), symbols);
        enc.len()
    }

    #[test]
    fn empty_and_degenerate() {
        round_trip(&[]);
        round_trip(&[7]);
        let size = round_trip(&[42; 100_000]);
        assert!(size < 16, "degenerate stream should be tiny: {size}");
    }

    #[test]
    fn two_symbol_skew() {
        let mut v = vec![0u32; 10_000];
        v.extend([1u32; 30]);
        let size = round_trip(&v);
        // Entropy ≈ 0.03 bits/symbol; arithmetic coding should get close.
        assert!(size < 400, "got {size}");
    }

    #[test]
    fn beats_or_matches_huffman_on_skewed_data() {
        // 97 % zeros: Huffman pays ≥1 bit/symbol, range coding ~0.2.
        let mut v = Vec::new();
        for i in 0..30_000u32 {
            v.push(if i % 33 == 0 { 1 + i % 4 } else { 0 });
        }
        let range_size = round_trip(&v);
        let huff_size = crate::huffman::huffman_encode(&v).len();
        assert!(range_size < huff_size, "range {range_size} should beat huffman {huff_size} here");
    }

    #[test]
    fn uniform_alphabet() {
        let v: Vec<u32> = (0..20_000).map(|i| i % 256).collect();
        let size = round_trip(&v);
        // 8 bits/symbol ideal → ~20 KB.
        assert!(size < 21_000, "got {size}");
    }

    #[test]
    fn sparse_large_symbols() {
        let v: Vec<u32> = (0..3000).map(|i| (i * 2_654_435_761u64 % 999_999_937) as u32).collect();
        round_trip(&v);
    }

    #[test]
    fn quantization_code_distribution() {
        let mut s = 0x12345678u64;
        let v: Vec<u32> = (0..50_000)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let r = (s >> 40) as f64 / (1u64 << 24) as f64;
                let mag = (-r.max(1e-9).ln() * 2.5) as i64;
                (512 + if s & 1 == 0 { mag } else { -mag }) as u32
            })
            .collect();
        round_trip(&v);
    }

    #[test]
    fn adversarial_long_carry_chains() {
        // Alternating extremes maximize carry propagation.
        let mut v = Vec::new();
        for i in 0..10_000u32 {
            v.push(if i % 2 == 0 { 0 } else { u32::MAX });
        }
        round_trip(&v);
    }

    #[test]
    fn truncated_streams_error_or_mismatch_not_panic() {
        let v: Vec<u32> = (0..2000).map(|i| i % 37).collect();
        let enc = range_encode(&v);
        for cut in [0, 1, enc.len() / 2] {
            // Truncation may be detected or decode to garbage, but must not
            // panic; header truncation must error.
            let _ = range_decode(&enc[..cut]);
        }
        assert!(range_decode(&enc[..2]).is_err());
    }

    #[test]
    fn garbage_never_panics() {
        let mut s = 1u64;
        for len in [0usize, 1, 7, 64, 300] {
            let data: Vec<u8> = (0..len)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    (s >> 32) as u8
                })
                .collect();
            let _ = range_decode(&data);
        }
    }

    #[test]
    fn encode_into_with_reused_scratch_is_byte_identical() {
        let inputs: Vec<Vec<u32>> = vec![
            vec![],
            vec![7],
            vec![42; 1000],
            (0..2000u32).map(|i| i % 37).collect(),
            (0..3000u32).map(|i| (i as u64 * 2_654_435_761 % 999_999_937) as u32).collect(),
        ];
        let mut scratch = RangeScratch::default();
        let mut out = Vec::new();
        for v in &inputs {
            out.clear();
            range_encode_into(v, &mut out, &mut scratch);
            // Fresh-scratch encode (the public wrapper) must agree byte for
            // byte: no state may leak between streams.
            assert_eq!(out, range_encode(v), "{} symbols", v.len());
            let mut pos = 0;
            let mut dec = Vec::new();
            range_decode_at_into(&out, &mut pos, &mut dec).unwrap();
            assert_eq!(&dec, v);
        }
    }

    #[test]
    fn model_larger_than_input_rejected() {
        // count=1, tag=0, then a model claiming 2^20 entries with no bytes
        // behind it: must fail before any proportional allocation.
        let mut data = Vec::new();
        write_uvarint(&mut data, 1); // count
        write_uvarint(&mut data, 0); // tag: model follows
        write_uvarint(&mut data, 1 << 20); // forged model size
        assert_eq!(
            range_decode(&data),
            Err(EntropyError::Corrupt("model larger than its encoding"))
        );
    }

    #[test]
    fn duplicate_model_symbol_rejected() {
        // Model entries (5, f=1) then (delta=0, f=1) repeat symbol 5.
        let mut data = Vec::new();
        write_uvarint(&mut data, 1); // count
        write_uvarint(&mut data, 0); // tag
        write_uvarint(&mut data, 2); // model size
        data.extend_from_slice(&[5, 1, 0, 1]);
        assert_eq!(range_decode(&data), Err(EntropyError::Corrupt("duplicate symbol in model")));
    }

    #[test]
    fn forged_count_bounded_by_limits() {
        // The degenerate single-symbol path has no payload to cross-check, so
        // the caller budget is the only bound on a forged count.
        let enc = range_encode(&[42u32; 100_000]);
        let limits = StreamLimits::with_max_items(1000);
        let mut pos = 0;
        assert_eq!(
            range_decode_at_limited(&enc, &mut pos, &limits),
            Err(EntropyError::LimitExceeded { what: "range symbol count", limit: 1000 })
        );
        // A full-model stream is budget-checked too.
        let v: Vec<u32> = (0..2000).map(|i| i % 37).collect();
        let enc = range_encode(&v);
        let mut pos = 0;
        assert_eq!(
            range_decode_at_limited(&enc, &mut pos, &limits),
            Err(EntropyError::LimitExceeded { what: "range symbol count", limit: 1000 })
        );
        let mut pos = 0;
        let out =
            range_decode_at_limited(&enc, &mut pos, &StreamLimits::with_max_items(2000)).unwrap();
        assert_eq!(out, v);
    }

    #[test]
    fn multiple_streams_concatenate() {
        let a: Vec<u32> = (0..500).map(|i| i % 5).collect();
        let b: Vec<u32> = (0..300).map(|i| 100 + i % 9).collect();
        let mut buf = range_encode(&a);
        buf.extend(range_encode(&b));
        let mut pos = 0;
        assert_eq!(range_decode_at(&buf, &mut pos).unwrap(), a);
        assert_eq!(range_decode_at(&buf, &mut pos).unwrap(), b);
        assert_eq!(pos, buf.len());
    }
}
