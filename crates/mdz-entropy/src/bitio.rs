//! MSB-first bit-level I/O over in-memory byte buffers.
//!
//! Canonical Huffman codes are naturally expressed MSB-first: the first bit
//! written is the most significant bit of the first byte. Both endpoints of
//! the pipeline (encoder in the compressor, decoder in the decompressor)
//! share these two types.

use crate::{EntropyError, Result};

/// Accumulates bits MSB-first into a growable byte buffer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits staged in `acc`, always < 8.
    nbits: u32,
    /// Wider than a byte so that shifting in a full 8-bit chunk cannot overflow.
    acc: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with room for `bytes` output bytes.
    pub fn with_capacity(bytes: usize) -> Self {
        Self { buf: Vec::with_capacity(bytes), nbits: 0, acc: 0 }
    }

    /// Appends a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.acc = (self.acc << 1) | bit as u32;
        self.nbits += 1;
        if self.nbits == 8 {
            self.buf.push(self.acc as u8);
            self.acc = 0;
            self.nbits = 0;
        }
    }

    /// Appends the `n` low bits of `value`, most significant first.
    ///
    /// `n` must be ≤ 64; `n == 0` is a no-op.
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64);
        let mut remaining = n;
        while remaining > 0 {
            let free = 8 - self.nbits;
            let take = free.min(remaining);
            let shift = remaining - take;
            let chunk = ((value >> shift) & ((1u64 << take) - 1)) as u32;
            self.acc = (self.acc << take) | chunk;
            self.nbits += take;
            remaining -= take;
            if self.nbits == 8 {
                self.buf.push(self.acc as u8);
                self.acc = 0;
                self.nbits = 0;
            }
        }
    }

    /// Number of whole bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.buf.len() as u64 * 8 + self.nbits as u64
    }

    /// Flushes any partial byte (zero-padded on the right) and returns the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        self.flush_partial();
        self.buf
    }

    /// Flushes any partial byte (zero-padded on the right) and returns the
    /// accumulated bytes without consuming the writer.
    ///
    /// The writer is left in a flushed state: further writes would start a
    /// new byte. Use [`BitWriter::clear`] to reuse the allocation for a
    /// fresh stream.
    pub fn flush(&mut self) -> &[u8] {
        self.flush_partial();
        &self.buf
    }

    /// Resets the writer to empty, keeping the buffer allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.nbits = 0;
        self.acc = 0;
    }

    fn flush_partial(&mut self) {
        if self.nbits > 0 {
            self.acc <<= 8 - self.nbits;
            self.buf.push(self.acc as u8);
            self.acc = 0;
            self.nbits = 0;
        }
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Absolute bit cursor from the start of `data`.
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Wraps `data`, starting at bit 0.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Total number of bits available from the start.
    pub fn bit_len(&self) -> u64 {
        self.data.len() as u64 * 8
    }

    /// Bits remaining to be read.
    pub fn remaining(&self) -> u64 {
        self.bit_len() - self.pos
    }

    /// Current absolute bit position.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Reads one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool> {
        if self.pos >= self.bit_len() {
            return Err(EntropyError::UnexpectedEof);
        }
        let byte = self.data[(self.pos / 8) as usize];
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Ok(bit == 1)
    }

    /// Peeks a 64-bit big-endian window whose top bit is the next unread
    /// bit, without consuming anything.
    ///
    /// Returns `None` when fewer than 8 whole bytes remain from the current
    /// byte boundary — callers fall back to bitwise reads for the stream
    /// tail. When it returns `Some`, at least `64 - 7 = 57` of the top bits
    /// are real stream bits (up to 7 may already have been consumed from the
    /// current byte and are shifted out).
    #[inline]
    pub fn peek64(&self) -> Option<u64> {
        let byte_idx = (self.pos / 8) as usize;
        let rest = self.data.get(byte_idx..byte_idx + 8)?;
        let word = u64::from_be_bytes(rest.try_into().expect("slice is 8 bytes"));
        Some(word << (self.pos % 8))
    }

    /// Advances the cursor by `n` bits without reading them.
    ///
    /// The caller must have validated availability (e.g. via [`Self::peek64`]);
    /// advancing past the end is a programming error checked in debug builds.
    #[inline]
    pub fn advance(&mut self, n: u64) {
        debug_assert!(n <= self.remaining());
        self.pos += n;
    }

    /// Reads `n` bits (≤ 64), most significant first.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u64> {
        debug_assert!(n <= 64);
        if self.remaining() < n as u64 {
            return Err(EntropyError::UnexpectedEof);
        }
        let mut out = 0u64;
        let mut remaining = n;
        while remaining > 0 {
            let byte_idx = (self.pos / 8) as usize;
            let bit_off = (self.pos % 8) as u32;
            let avail = 8 - bit_off;
            let take = avail.min(remaining);
            let byte = self.data[byte_idx] as u64;
            let chunk = (byte >> (avail - take)) & ((1u64 << take) - 1);
            out = (out << take) | chunk;
            self.pos += take as u64;
            remaining -= take;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_round_trip() {
        let bits = [true, false, true, true, false, false, true, false, true, true];
        let mut w = BitWriter::new();
        for &b in &bits {
            w.write_bit(b);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &b in &bits {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn multi_bit_round_trip_mixed_widths() {
        let values: Vec<(u64, u32)> =
            vec![(0b1, 1), (0b1011, 4), (0xDEADBEEF, 32), (0, 7), (u64::MAX, 64), (0x12345, 20)];
        let mut w = BitWriter::new();
        for &(v, n) in &values {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &values {
            assert_eq!(r.read_bits(n).unwrap(), v, "width {n}");
        }
    }

    #[test]
    fn zero_width_write_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(123, 0);
        assert_eq!(w.bit_len(), 0);
        assert!(w.finish().is_empty());
    }

    #[test]
    fn reader_eof_is_error() {
        let bytes = [0xAB];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8).unwrap(), 0xAB);
        assert_eq!(r.read_bit(), Err(EntropyError::UnexpectedEof));
        assert_eq!(r.read_bits(1), Err(EntropyError::UnexpectedEof));
    }

    #[test]
    fn partial_byte_is_zero_padded() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1010_0000]);
    }

    #[test]
    fn bit_len_tracks_writes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 13);
        assert_eq!(w.bit_len(), 13);
        w.write_bit(true);
        assert_eq!(w.bit_len(), 14);
    }

    #[test]
    fn peek64_matches_bitwise_reads() {
        let data: Vec<u8> = (0u16..64).map(|i| (i as u8).wrapping_mul(37).rotate_left(3)).collect();
        for start in 0..48u64 {
            let mut r = BitReader::new(&data);
            if start > 0 {
                r.read_bits(start as u32).unwrap();
            }
            let window = r.peek64().expect("plenty of bytes remain");
            // The top bits of the window must equal the next bits read
            // bitwise, for every prefix width up to the 57-bit guarantee.
            let mut probe = r.clone();
            for width in 1..=57u32 {
                let expect = probe.read_bit().unwrap();
                let got = (window >> (64 - width)) & 1 == 1;
                assert_eq!(got, expect, "start {start} width {width}");
            }
            // advance() must land exactly where read_bits() would.
            let mut a = r.clone();
            let mut b = r;
            a.advance(23);
            b.read_bits(23).unwrap();
            assert_eq!(a.position(), b.position());
        }
    }

    #[test]
    fn peek64_requires_eight_whole_bytes() {
        let data = [0u8; 8];
        let mut r = BitReader::new(&data);
        assert!(r.peek64().is_some());
        r.read_bits(7).unwrap();
        // Still inside byte 0: the window [byte0, byte8) still exists.
        assert!(r.peek64().is_some());
        r.read_bit().unwrap();
        // Now at byte 1: the window [byte1, byte9) is out of range.
        assert!(r.peek64().is_none());
        let data9 = [0u8; 9];
        let mut r = BitReader::new(&data9);
        r.read_bits(15).unwrap();
        assert!(r.peek64().is_some(), "still inside byte 1: bytes 1..9 exactly");
        r.read_bit().unwrap();
        assert!(r.peek64().is_none(), "at byte 2: bytes 2..10 out of range");
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bit(true); // becomes bit 7 of the first byte
        w.write_bits(0, 7);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1000_0000]);
    }
}
