//! LEB128 variable-length integers and zigzag mapping for signed values.
//!
//! Varints serialize the small headers of the MDZ container (lengths, symbol
//! tables, escape lists) and the integer streams of the HRTC/TNG baseline
//! compressors, where most values are near zero.

use crate::{EntropyError, Result};

/// Appends `value` to `out` as an unsigned LEB128 varint (1–10 bytes).
#[inline]
pub fn write_uvarint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint from `data` starting at `*pos`.
///
/// On success advances `*pos` past the varint.
#[inline]
pub fn read_uvarint(data: &[u8], pos: &mut usize) -> Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos).ok_or(EntropyError::UnexpectedEof)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(EntropyError::Corrupt("varint overflows u64"));
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(EntropyError::Corrupt("varint longer than 10 bytes"));
        }
    }
}

/// Maps a signed integer to an unsigned one so that small-magnitude values
/// (positive or negative) get small codes: 0, -1, 1, -2, 2 → 0, 1, 2, 3, 4.
#[inline]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends `value` as a zigzag-mapped varint.
#[inline]
pub fn write_ivarint(out: &mut Vec<u8>, value: i64) {
    write_uvarint(out, zigzag_encode(value));
}

/// Reads a zigzag-mapped varint.
#[inline]
pub fn read_ivarint(data: &[u8], pos: &mut usize) -> Result<i64> {
    Ok(zigzag_decode(read_uvarint(data, pos)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_round_trip_boundaries() {
        let cases = [0, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX];
        for &v in &cases {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_uvarint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn uvarint_encoding_lengths() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 127);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_uvarint(&mut buf, 128);
        assert_eq!(buf.len(), 2);
        buf.clear();
        write_uvarint(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn ivarint_round_trip() {
        for &v in &[0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 1 << 40, -(1 << 40)] {
            let mut buf = Vec::new();
            write_ivarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_ivarint(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_maps_small_magnitudes_to_small_codes() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        assert_eq!(zigzag_encode(2), 4);
    }

    #[test]
    fn truncated_varint_is_eof() {
        let buf = [0x80u8, 0x80];
        let mut pos = 0;
        assert_eq!(read_uvarint(&buf, &mut pos), Err(EntropyError::UnexpectedEof));
    }

    #[test]
    fn overlong_varint_is_corrupt() {
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert!(matches!(read_uvarint(&buf, &mut pos), Err(EntropyError::Corrupt(_))));
    }

    #[test]
    fn varint_sequences_advance_position() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 300);
        write_uvarint(&mut buf, 5);
        write_ivarint(&mut buf, -77);
        let mut pos = 0;
        assert_eq!(read_uvarint(&buf, &mut pos).unwrap(), 300);
        assert_eq!(read_uvarint(&buf, &mut pos).unwrap(), 5);
        assert_eq!(read_ivarint(&buf, &mut pos).unwrap(), -77);
        assert_eq!(pos, buf.len());
    }
}
