//! Failure-path regression tests for the serving layer: a poisoned block
//! must produce a typed error response — never a dead server — and
//! shutdown must work no matter which address the listener was bound to.

use mdz_core::{ErrorBound, Frame, MdzConfig};
use mdz_store::{
    write_store, Client, ClientError, Server, ServerConfig, Status, StoreOptions, StoreReader,
};

fn make_archive(n_frames: usize, n_atoms: usize) -> Vec<u8> {
    let frames: Vec<Frame> = (0..n_frames)
        .map(|t| {
            let axis = |off: f64| -> Vec<f64> {
                (0..n_atoms).map(|i| (i % 4) as f64 * 2.0 + t as f64 * 1e-3 + off).collect()
            };
            Frame::new(axis(0.0), axis(1.0), axis(2.0))
        })
        .collect();
    let mut opts = StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(1e-4)));
    opts.buffer_size = 4;
    opts.epoch_interval = 2;
    write_store(&frames, &[], &[], &opts).unwrap()
}

#[test]
fn corrupt_block_gets_an_error_response_and_the_server_keeps_serving() {
    let mut data = make_archive(24, 6);
    // Locate epoch 1's first block through a throwaway reader, then flip a
    // byte inside its record so its checksum no longer matches. Epoch 0
    // stays pristine.
    let poisoned_offset = {
        let probe = StoreReader::open(data.clone()).unwrap();
        let block = &probe.index().blocks[2];
        assert_eq!(block.epoch, 1);
        block.offset + 12
    };
    data[poisoned_offset] ^= 0xFF;

    let reader = StoreReader::open(data).unwrap();
    let stats_reader = reader.clone();
    let server = Server::bind(reader, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let join = std::thread::spawn(move || server.run().unwrap());

    let mut client = Client::connect(addr).unwrap();
    // Healthy epoch 0 serves fine.
    assert_eq!(client.get(0..8).unwrap().len(), 8);
    // The poisoned epoch yields a typed Corrupt error, not a hang or a
    // dropped connection.
    match client.get(8..12) {
        Err(ClientError::Server { status: Status::Corrupt, .. }) => {}
        other => panic!("expected Corrupt, got {other:?}"),
    }
    // Same connection keeps working afterwards…
    assert_eq!(client.get(4..8).unwrap().len(), 4);
    // …and so do fresh connections.
    let mut second = Client::connect(addr).unwrap();
    assert_eq!(second.get(16..24).unwrap().len(), 8);
    assert_eq!(stats_reader.stats().decode_errors, 1);

    drop(client);
    drop(second);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn shutdown_works_against_a_wildcard_bind() {
    // Binding 0.0.0.0 makes `local_addr()` report the wildcard address;
    // shutdown must still be able to poke the accept loop awake.
    let reader = StoreReader::open(make_archive(8, 4)).unwrap();
    let server = Server::bind(reader, "0.0.0.0:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    assert!(addr.ip().is_unspecified());
    let handle = server.handle().unwrap();
    let join = std::thread::spawn(move || server.run().unwrap());
    // Prove the server is actually serving before asking it to stop.
    let mut client = Client::connect(("127.0.0.1", addr.port())).unwrap();
    assert_eq!(client.info().unwrap().n_frames, 8);
    drop(client);
    handle.shutdown();
    join.join().unwrap();
}
