//! `Client::pipeline`: many requests written before any response is read,
//! replies returned in order with *typed per-response* outcomes — one
//! request's application error must not disturb its neighbours.

use std::time::Duration;

use mdz_core::{ErrorBound, Frame, MdzConfig};
use mdz_store::{
    create_store, AppendSink, Client, ClientError, Engine, MemIo, Precision, Reply, Request,
    Server, ServerConfig, Status, StoreIo, StoreOptions, StoreReader,
};

const N_FRAMES: usize = 12;

fn synth_frames(start: usize, count: usize) -> Vec<Frame> {
    (start..start + count)
        .map(|t| {
            let axis: Vec<f64> = (0..6).map(|i| i as f64 * 2.0 + t as f64 * 1e-3).collect();
            Frame::new(axis.clone(), axis.clone(), axis)
        })
        .collect()
}

fn store_opts() -> StoreOptions {
    let mut opts = StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(1e-3)));
    opts.buffer_size = 4;
    opts.epoch_interval = 2;
    opts
}

fn image() -> Vec<u8> {
    let mut io = MemIo::new(Vec::new());
    create_store(&mut io, &synth_frames(0, N_FRAMES), &[], &[], &store_opts()).unwrap();
    io.read_all().unwrap()
}

fn run_pipeline_contract(engine: Engine) {
    let image = image();
    let reader = StoreReader::open(image.clone()).unwrap();
    let cfg = ServerConfig { engine, threads: 2, ..ServerConfig::default() };
    let server = Server::bind(reader, "127.0.0.1:0", cfg)
        .unwrap()
        .with_append_sink(AppendSink::new(Box::new(MemIo::new(image)), store_opts()));
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let join = std::thread::spawn(move || server.run().unwrap());

    let mut client = Client::connect(addr).unwrap();
    client.set_timeouts(Some(Duration::from_secs(30)), Some(Duration::from_secs(30))).unwrap();
    let n = N_FRAMES as u64;
    let requests = vec![
        Request::Info,
        Request::Get { start: 0, end: 4 },
        // start > end → a typed BadRequest for this slot only
        Request::Get { start: 9, end: 2 },
        Request::Append { precision: Precision::F64, frames: synth_frames(N_FRAMES, 2) },
        // reads the frames the APPEND earlier in the same batch landed
        Request::Get { start: n, end: n + 2 },
        Request::Stats,
        Request::Metrics,
    ];
    let replies = client.pipeline(&requests).expect("transport must survive the batch");
    assert_eq!(replies.len(), requests.len());

    match &replies[0] {
        Ok(Reply::Info(info)) => assert_eq!(info.n_frames, n),
        other => panic!("slot 0: expected Info, got {other:?}"),
    }
    match &replies[1] {
        Ok(Reply::Frames { start, frames }) => {
            assert_eq!((*start, frames.len()), (0, 4));
        }
        other => panic!("slot 1: expected Frames, got {other:?}"),
    }
    match &replies[2] {
        Err(ClientError::Server { status: Status::BadRequest, .. }) => {}
        other => panic!("slot 2: expected a typed BadRequest, got {other:?}"),
    }
    match &replies[3] {
        Ok(Reply::Append(ack)) => assert_eq!(ack.n_frames, n + 2),
        other => panic!("slot 3: expected Append, got {other:?}"),
    }
    match &replies[4] {
        Ok(Reply::Frames { start, frames }) => {
            assert_eq!((*start, frames.len()), (n, 2));
        }
        other => panic!("slot 4: expected the appended tail, got {other:?}"),
    }
    match &replies[5] {
        Ok(Reply::Stats(stats)) => assert!(stats.requests >= 5),
        other => panic!("slot 5: expected Stats, got {other:?}"),
    }
    match &replies[6] {
        Ok(Reply::Metrics(snap)) => {
            assert!(snap.counter("server.requests.get") >= 3);
        }
        other => panic!("slot 6: expected Metrics, got {other:?}"),
    }

    drop(client);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn pipeline_returns_in_order_typed_replies_on_the_threaded_engine() {
    run_pipeline_contract(Engine::Threads);
}

#[test]
#[cfg(any(target_os = "linux", target_os = "macos"))]
fn pipeline_returns_in_order_typed_replies_on_the_epoll_engine() {
    run_pipeline_contract(Engine::Epoll);
}
