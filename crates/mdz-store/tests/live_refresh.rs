//! Live-archive invariants, adversarially exercised.
//!
//! 1. **Monotone bit-exact prefixes** — a reader that refreshes from the
//!    disk image at *every* storage operation of a multi-append sequence
//!    (every fault flavour included) only ever observes a monotonically
//!    growing frame count, and everything it can decode is a bit-exact
//!    prefix of the final fault-free archive. This is the contract that
//!    makes `StoreReader::refresh` safe to run against a file a writer is
//!    actively appending to.
//! 2. **Server-side append crashes are invisible** — an `mdzd` whose
//!    append sink dies mid-append answers the APPEND with an error, keeps
//!    serving the old state, and the surviving disk image recovers (the
//!    restart path) to exactly that same old state: no torn frames are
//!    ever served to followers.

use mdz_core::{ErrorBound, Frame, MdzConfig};
use mdz_store::{
    append_store, create_store, AppendSink, Client, ClientError, FaultIo, FaultMode, FaultPlan,
    MemIo, Precision, Server, ServerConfig, Status, StoreOptions, StoreReader,
};

const N_ATOMS: usize = 12;

fn synth_frames(start: usize, count: usize) -> Vec<Frame> {
    (start..start + count)
        .map(|t| {
            let gen = |axis: usize| -> Vec<f64> {
                (0..N_ATOMS)
                    .map(|i| {
                        let p = (i * 3 + axis) as f64;
                        p + (t as f64 * 0.41 + p * 0.13).sin() * 0.5
                    })
                    .collect()
            };
            Frame::new(gen(0), gen(1), gen(2))
        })
        .collect()
}

fn store_opts() -> StoreOptions {
    let mut opts = StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(1e-3)));
    opts.buffer_size = 4;
    opts.epoch_interval = 2;
    opts
}

fn decode_bits(reader: &StoreReader, n: usize) -> Vec<u64> {
    let mut bits = Vec::new();
    for f in &reader.read_frames(0..n).expect("decode") {
        for i in 0..f.len() {
            bits.push(f.x[i].to_bits());
            bits.push(f.y[i].to_bits());
            bits.push(f.z[i].to_bits());
        }
    }
    bits
}

/// Property: refreshing at every fault point of every append in a sequence
/// yields only monotonically growing, bit-exact prefixes of the final
/// archive.
#[test]
fn refresh_observes_only_monotone_bitexact_prefixes() {
    let opts = store_opts();
    let base = synth_frames(0, 8);
    let appends: Vec<Vec<Frame>> =
        vec![synth_frames(8, 8), synth_frames(16, 4), synth_frames(20, 8)];

    // The fault-free final archive is the reference all prefixes are
    // checked against.
    let mut io = MemIo::new(Vec::new());
    create_store(&mut io, &base, &[], &[], &opts).expect("create");
    let base_image = {
        use mdz_store::StoreIo;
        io.read_all().expect("base image")
    };
    let mut reference = FaultIo::new(base_image.clone());
    for seg in &appends {
        append_store(&mut reference, seg, &opts).expect("reference append");
    }
    let final_image = reference.disk_image();
    let final_reader = StoreReader::open(final_image).expect("final open");
    let final_n = final_reader.index().n_frames;
    let final_bits = decode_bits(&final_reader, final_n);
    let atom_words = N_ATOMS * 3;

    // One long-lived reader refreshes through the whole sequence,
    // observing the file *mid-append* at every storage operation.
    // `FailOp` at op k leaves exactly the first k operations applied —
    // the page-cache view a concurrent reader would get from a writer
    // that has made it that far — so sweeping k walks every intermediate
    // state of the linear history.
    let reader = StoreReader::open(base_image.clone()).expect("open base");
    let mut current = base_image;
    let mut last_seen = reader.index().n_frames;
    for seg in &appends {
        // How many ops does this append perform? (fault-free dry run)
        let mut dry = FaultIo::new(current.clone());
        append_store(&mut dry, seg, &opts).expect("dry append");
        let n_ops = dry.ops_performed();

        for fault_op in 0..n_ops {
            let label = format!("mid-append view at op {fault_op}");
            let mut io = FaultIo::new(current.clone());
            io.set_plan(FaultPlan {
                fault_op,
                mode: FaultMode::FailOp,
                seed: 0x6c69_7665 ^ fault_op as u64,
            });
            append_store(&mut io, seg, &opts)
                .expect_err(&format!("{label}: planned fault must surface"));

            // Refresh the live reader from the partial image. The footer
            // may be absent or half-written; refresh must settle on the
            // last durable footer, never regress, and serve a bit-exact
            // prefix of the final archive.
            let report = reader
                .refresh(io.disk_image())
                .unwrap_or_else(|e| panic!("{label}: refresh failed: {e}"));
            let n = report.n_frames;
            assert!(n >= last_seen, "{label}: view regressed {last_seen} -> {n}");
            assert!(n <= final_n, "{label}: view overshot the final archive");
            last_seen = n;
            let bits = decode_bits(&reader, n);
            assert_eq!(
                bits,
                final_bits[..n * atom_words],
                "{label}: decoded frames are not a bit-exact prefix"
            );
        }

        // The real (fault-free) append, then refresh to the new state.
        let mut io = MemIo::new(current);
        append_store(&mut io, seg, &opts).expect("append");
        current = {
            use mdz_store::StoreIo;
            io.read_all().expect("image")
        };
        // The very last mid-append view (everything but the final sync)
        // already exposed the full footer, so this refresh is a no-op for
        // the frame count — it must still succeed and stay monotone.
        let report = reader.refresh(current.clone()).expect("refresh after append");
        assert!(report.n_frames >= last_seen);
        last_seen = report.n_frames;
    }
    assert_eq!(last_seen, final_n);
    assert_eq!(decode_bits(&reader, final_n), final_bits);
}

/// Crash flavours branch the history: a reader that comes up *after* the
/// crash (the restarted server's) must see a bit-exact prefix of the
/// final archive for every surviving image, across every fault mode.
#[test]
fn every_crash_image_recovers_to_a_bitexact_prefix() {
    let opts = store_opts();
    let base = synth_frames(0, 8);
    let seg = synth_frames(8, 12);

    let mut io = MemIo::new(Vec::new());
    create_store(&mut io, &base, &[], &[], &opts).expect("create");
    let base_image = {
        use mdz_store::StoreIo;
        io.read_all().expect("base image")
    };
    let mut reference = FaultIo::new(base_image.clone());
    append_store(&mut reference, &seg, &opts).expect("reference append");
    let final_reader = StoreReader::open(reference.disk_image()).expect("final open");
    let final_n = final_reader.index().n_frames;
    let final_bits = decode_bits(&final_reader, final_n);
    let atom_words = N_ATOMS * 3;

    let n_ops = {
        let mut dry = FaultIo::new(base_image.clone());
        append_store(&mut dry, &seg, &opts).expect("dry append");
        dry.ops_performed()
    };
    let modes = [FaultMode::FailOp, FaultMode::DropUnsynced, FaultMode::TornWrite];
    for fault_op in 0..n_ops {
        for mode in modes {
            let label = format!("crash at op {fault_op} ({mode:?})");
            let mut io = FaultIo::new(base_image.clone());
            io.set_plan(FaultPlan { fault_op, mode, seed: 0x6372_6173 ^ fault_op as u64 });
            append_store(&mut io, &seg, &opts)
                .expect_err(&format!("{label}: planned fault must surface"));
            let (recovered, _) = StoreReader::recover(io.disk_image())
                .unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"));
            let n = recovered.index().n_frames;
            assert!(n == 8 || n == final_n, "{label}: {n} frames is neither pre nor post");
            assert_eq!(
                decode_bits(&recovered, n),
                final_bits[..n * atom_words],
                "{label}: recovered frames are not a bit-exact prefix"
            );
        }
    }
}

/// A server whose append sink crashes mid-append: the client gets an
/// error, readers keep seeing the old state, and the surviving disk image
/// recovers to exactly that state — the restart never exposes torn frames.
#[test]
fn crashed_server_append_is_invisible_to_followers() {
    let opts = store_opts();
    let base = synth_frames(0, 8);
    let extra = synth_frames(8, 8);

    let mut io = MemIo::new(Vec::new());
    create_store(&mut io, &base, &[], &[], &opts).expect("create");
    let base_image = {
        use mdz_store::StoreIo;
        io.read_all().expect("base image")
    };
    let pre_reader = StoreReader::open(base_image.clone()).expect("open");
    let pre_bits = decode_bits(&pre_reader, 8);

    // Sweep every storage op the append performs.
    let n_ops = {
        let mut dry = FaultIo::new(base_image.clone());
        append_store(&mut dry, &extra, &opts).expect("dry append");
        dry.ops_performed()
    };
    for fault_op in 0..n_ops {
        let label = format!("server append crashing at op {fault_op}");
        let mut fault = FaultIo::new(base_image.clone());
        fault.set_plan(FaultPlan {
            fault_op,
            mode: FaultMode::DropUnsynced,
            seed: 0x6d64_7a64 ^ fault_op as u64,
        });

        let reader = StoreReader::open(base_image.clone()).expect("open");
        let server =
            Server::bind(reader, "127.0.0.1:0", ServerConfig { threads: 2, ..Default::default() })
                .expect("bind")
                .with_append_sink(AppendSink::new(Box::new(fault), opts.clone()));
        let addr = server.local_addr().expect("local addr");
        let handle = server.handle().expect("handle");
        let join = std::thread::spawn(move || server.run().unwrap());

        // The append fails with a typed error; nothing hangs or panics.
        let mut producer = Client::connect(addr).expect("connect");
        match producer.append(&extra, Precision::F64) {
            Err(ClientError::Server { status: Status::Internal, .. }) => {}
            other => panic!("{label}: expected Internal, got {other:?}"),
        }

        // Followers still see exactly the pre-append archive.
        let mut follower = Client::connect(addr).expect("connect");
        let info = follower.info().expect("info");
        assert_eq!(info.n_frames, 8, "{label}: served frame count changed");
        let served = follower.get(0..8).expect("get");
        let mut served_bits = Vec::new();
        for f in &served {
            for i in 0..f.len() {
                served_bits.push(f.x[i].to_bits());
                served_bits.push(f.y[i].to_bits());
                served_bits.push(f.z[i].to_bits());
            }
        }
        assert_eq!(served_bits, pre_bits, "{label}: served frames diverged");
        handle.shutdown();
        join.join().expect("server thread");

        // The restart path: replay the identical fault (FaultIo is
        // deterministic, and the sink fails before any post-crash read, so
        // the twin's surviving image is byte-identical to the server's)
        // and reopen it through the recovery scan, exactly as a restarted
        // mdzd would. It must come back as the pre-append archive.
        let mut twin = FaultIo::new(base_image.clone());
        twin.set_plan(FaultPlan {
            fault_op,
            mode: FaultMode::DropUnsynced,
            seed: 0x6d64_7a64 ^ fault_op as u64,
        });
        append_store(&mut twin, &extra, &opts).expect_err("twin fault must surface");
        let (recovered, _) = StoreReader::recover(twin.disk_image())
            .unwrap_or_else(|e| panic!("{label}: restart recovery failed: {e}"));
        assert_eq!(recovered.index().n_frames, 8, "{label}: restart saw torn frames");
        assert_eq!(decode_bits(&recovered, 8), pre_bits, "{label}: restart state diverged");
    }
}
