//! Differential proof that the event-loop engine speaks exactly the
//! threaded engine's protocol: replaying one request script — every verb,
//! every error path, APPEND under a live sink — against both backends must
//! produce byte-identical responses and identical deterministic request
//! accounting. The threaded pool is the oracle; any divergence is a bug in
//! the event loop.
//!
//! METRICS responses are the one deliberate exception to the byte compare:
//! they embed wall-clock latency histograms. For those the test instead
//! checks the parsed deterministic counters.

#![cfg(any(target_os = "linux", target_os = "macos"))]

use std::net::TcpStream;
use std::time::Duration;

use mdz_core::{ErrorBound, Frame, MdzConfig};
use mdz_store::protocol::{parse_metrics, read_message, write_message, Request};
use mdz_store::{
    create_store, AppendSink, Engine, MemIo, Precision, Server, ServerConfig, StoreIo,
    StoreOptions, StoreReader,
};

const N_ATOMS: usize = 10;
const BASE_FRAMES: usize = 16;

fn synth_frames(start: usize, count: usize) -> Vec<Frame> {
    (start..start + count)
        .map(|t| {
            let gen = |axis: usize| -> Vec<f64> {
                (0..N_ATOMS)
                    .map(|i| {
                        let p = (i * 3 + axis) as f64;
                        p + (t as f64 * 0.37 + p * 0.11).sin() * 0.5
                    })
                    .collect()
            };
            Frame::new(gen(0), gen(1), gen(2))
        })
        .collect()
}

fn store_opts() -> StoreOptions {
    let mut opts = StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(1e-3)));
    opts.buffer_size = 4;
    opts.epoch_interval = 2;
    opts
}

fn base_image() -> Vec<u8> {
    let mut io = MemIo::new(Vec::new());
    create_store(&mut io, &synth_frames(0, BASE_FRAMES), &[], &[], &store_opts()).unwrap();
    io.read_all().unwrap()
}

/// The script: every verb, every typed error path, and a post-append read
/// so both engines prove they published the appended frames.
fn script() -> Vec<Vec<u8>> {
    let n = BASE_FRAMES as u64;
    vec![
        Request::Info.encode(),
        Request::Stats.encode(),
        Request::Get { start: 0, end: 8 }.encode(),
        Request::Get { start: 3, end: n }.encode(),
        // start > end → BadRequest
        Request::Get { start: 5, end: 3 }.encode(),
        // span ≤ cap but past the archive end → OutOfRange
        Request::Get { start: n, end: n + 4 }.encode(),
        // span > max_frames_per_request → LimitExceeded
        Request::Get { start: 0, end: n + 100 }.encode(),
        // unknown opcode → BadRequest (parse error path)
        vec![0xEE, 1, 2, 3],
        Request::Append { precision: Precision::F64, frames: synth_frames(BASE_FRAMES, 4) }
            .encode(),
        // the appended tail must be readable through the same connection
        Request::Get { start: n, end: n + 4 }.encode(),
        Request::Info.encode(),
        Request::Stats.encode(),
        // METRICS must come after the last STATS: its response length is
        // engine-specific (the event engine exposes extra server.net.*
        // families), and response lengths feed back into the bytes_out
        // counter that STATS reports. Everything up to here is provably
        // byte-identical; METRICS itself is compared counter-wise.
        Request::Metrics.encode(),
        Request::Metrics.encode(),
    ]
}

/// Counters whose values are fully determined by a sequential script on a
/// fresh server (no wall-clock content, no engine-specific vocabulary).
const DETERMINISTIC_COUNTERS: &[&str] = &[
    "server.requests.get",
    "server.requests.stats",
    "server.requests.info",
    "server.requests.metrics",
    "server.requests.append",
    "server.requests.bad",
    "server.status.ok",
    "server.status.bad_request",
    "server.status.out_of_range",
    "server.status.limit_exceeded",
    "server.status.busy",
    "server.append.frames",
    "server.append.blocks",
    "store.bytes_in",
    "server.conn.accepted",
];

struct Replay {
    responses: Vec<Vec<u8>>,
    counters: Vec<(&'static str, u64)>,
    request_seconds_count: u64,
}

/// Boots a fresh live server on `engine`, replays the script over one
/// connection with sequential round-trips, and snapshots the accounting.
fn replay(engine: Engine, reuseport: bool) -> Replay {
    let image = base_image();
    let reader = StoreReader::open(image.clone()).unwrap();
    let registry = reader.recorder();
    let cfg = ServerConfig {
        engine,
        threads: 3,
        reuseport,
        max_frames_per_request: BASE_FRAMES + 50,
        ..ServerConfig::default()
    };
    let server = Server::bind(reader, "127.0.0.1:0", cfg)
        .unwrap()
        .with_append_sink(AppendSink::new(Box::new(MemIo::new(image)), store_opts()));
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let join = std::thread::spawn(move || server.run().unwrap());

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut responses = Vec::new();
    for request in script() {
        write_message(&mut stream, &request).unwrap();
        let response = read_message(&mut stream, 1 << 28).unwrap().expect("response");
        responses.push(response);
    }
    drop(stream);

    handle.shutdown();
    join.join().unwrap();
    let snapshot = registry.snapshot();
    Replay {
        responses,
        counters: DETERMINISTIC_COUNTERS
            .iter()
            .map(|&name| (name, snapshot.counter(name)))
            .collect(),
        request_seconds_count: snapshot
            .histogram("server.request_seconds")
            .map(|h| h.count)
            .unwrap_or(0),
    }
}

fn assert_equivalent(oracle: &Replay, candidate: &Replay, label: &str) {
    let metrics_slots: Vec<usize> = script()
        .iter()
        .enumerate()
        .filter_map(|(i, req)| matches!(Request::parse(req), Ok(Request::Metrics)).then_some(i))
        .collect();
    assert_eq!(oracle.responses.len(), candidate.responses.len());
    for (i, (a, b)) in oracle.responses.iter().zip(&candidate.responses).enumerate() {
        if metrics_slots.contains(&i) {
            // METRICS bodies carry wall-clock histograms; require both to
            // parse and agree on the deterministic counters instead.
            assert_eq!(a.first(), b.first(), "[{label}] METRICS status diverged at slot {i}");
            let ma = parse_metrics(a).expect("oracle metrics");
            let mb = parse_metrics(b).expect("candidate metrics");
            for &name in DETERMINISTIC_COUNTERS {
                assert_eq!(
                    ma.counter(name),
                    mb.counter(name),
                    "[{label}] METRICS counter {name} diverged at slot {i}"
                );
            }
            continue;
        }
        assert_eq!(a, b, "[{label}] response {i} diverged (request {:02x?})", &script()[i]);
    }
    assert_eq!(oracle.counters, candidate.counters, "[{label}] final counters diverged");
    assert_eq!(
        oracle.request_seconds_count, candidate.request_seconds_count,
        "[{label}] request_seconds.count diverged"
    );
}

#[test]
fn epoll_responses_are_byte_identical_to_threaded() {
    let oracle = replay(Engine::Threads, false);
    // Every request that completed produced exactly one request_seconds
    // observation — the accounting bench-serve cross-checks later.
    assert_eq!(oracle.request_seconds_count, script().len() as u64);

    let dispatcher = replay(Engine::Epoll, false);
    assert_equivalent(&oracle, &dispatcher, "epoll/dispatcher");

    // The SO_REUSEPORT accept path must be wire-invisible too (on Linux it
    // actually builds a listener group; elsewhere it falls back).
    let grouped = replay(Engine::Epoll, true);
    assert_equivalent(&oracle, &grouped, "epoll/reuseport");
}

#[test]
fn epoll_pipelined_responses_match_sequential_order() {
    // Fire the whole script down the socket before reading anything: the
    // event engine must answer every request, in order, with the same
    // bytes it produces for sequential round-trips.
    let oracle = replay(Engine::Epoll, false);

    let image = base_image();
    let reader = StoreReader::open(image.clone()).unwrap();
    let cfg = ServerConfig {
        engine: Engine::Epoll,
        threads: 3,
        reuseport: false,
        max_frames_per_request: BASE_FRAMES + 50,
        ..ServerConfig::default()
    };
    let server = Server::bind(reader, "127.0.0.1:0", cfg)
        .unwrap()
        .with_append_sink(AppendSink::new(Box::new(MemIo::new(image)), store_opts()));
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let join = std::thread::spawn(move || server.run().unwrap());

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    for request in script() {
        write_message(&mut stream, &request).unwrap();
    }
    let mut responses = Vec::new();
    for _ in 0..script().len() {
        responses.push(read_message(&mut stream, 1 << 28).unwrap().expect("response"));
    }
    drop(stream);
    handle.shutdown();
    join.join().unwrap();

    let metrics_slots: Vec<usize> = script()
        .iter()
        .enumerate()
        .filter_map(|(i, req)| matches!(Request::parse(req), Ok(Request::Metrics)).then_some(i))
        .collect();
    for (i, (a, b)) in oracle.responses.iter().zip(&responses).enumerate() {
        if metrics_slots.contains(&i) {
            assert_eq!(a.first(), b.first(), "pipelined METRICS status diverged at slot {i}");
            continue;
        }
        assert_eq!(
            a,
            b,
            "pipelined response {i} diverged (stats: {:?} vs {:?})",
            mdz_store::protocol::parse_stats(a),
            mdz_store::protocol::parse_stats(b)
        );
    }
}
