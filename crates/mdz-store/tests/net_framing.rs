//! Incremental frame decoding over real sockets against the event engine:
//! a request trickled one byte at a time, many requests coalesced into one
//! TCP segment, and an oversized length prefix rejected with a typed error
//! before any body allocation.

#![cfg(any(target_os = "linux", target_os = "macos"))]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use mdz_core::{ErrorBound, Frame, MdzConfig};
use mdz_store::protocol::{read_message, write_message, Request, Status};
use mdz_store::{write_store, Engine, Server, ServerConfig, StoreOptions, StoreReader};

fn make_archive() -> Vec<u8> {
    let frames: Vec<Frame> = (0..16)
        .map(|t| {
            let axis: Vec<f64> = (0..8).map(|i| i as f64 + t as f64 * 1e-3).collect();
            Frame::new(axis.clone(), axis.clone(), axis)
        })
        .collect();
    let mut opts = StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(1e-3)));
    opts.buffer_size = 4;
    opts.epoch_interval = 2;
    write_store(&frames, &[], &[], &opts).unwrap()
}

fn spawn(
    cfg: ServerConfig,
) -> (std::net::SocketAddr, mdz_store::ServerHandle, std::thread::JoinHandle<()>) {
    let reader = StoreReader::open(make_archive()).unwrap();
    let server = Server::bind(reader, "127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let join = std::thread::spawn(move || server.run().unwrap());
    (addr, handle, join)
}

fn epoll_cfg() -> ServerConfig {
    ServerConfig { engine: Engine::Epoll, threads: 2, ..ServerConfig::default() }
}

#[test]
fn one_byte_trickle_is_reassembled_into_a_request() {
    let (addr, handle, join) = spawn(epoll_cfg());
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.set_nodelay(true).unwrap();

    let body = Request::Get { start: 2, end: 6 }.encode();
    let mut framed = Vec::new();
    framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
    framed.extend_from_slice(&body);
    // One byte per write, with a pause so each byte really is its own
    // segment arriving at the decoder.
    for &b in &framed {
        stream.write_all(&[b]).unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let response = read_message(&mut stream, 1 << 28).unwrap().expect("response");
    assert_eq!(response.first(), Some(&(Status::Ok as u8)));
    let (start, frames) = mdz_store::protocol::parse_frames(&response).unwrap();
    assert_eq!((start, frames.len()), (2, 4));

    drop(stream);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn coalesced_requests_in_one_segment_each_get_a_response() {
    let (addr, handle, join) = spawn(epoll_cfg());
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    // Many small requests in a single write: one TCP segment, many frames.
    let mut burst = Vec::new();
    let n = 32;
    for _ in 0..n {
        let body = Request::Info.encode();
        burst.extend_from_slice(&(body.len() as u32).to_le_bytes());
        burst.extend_from_slice(&body);
    }
    stream.write_all(&burst).unwrap();
    for _ in 0..n {
        let response = read_message(&mut stream, 1 << 28).unwrap().expect("response");
        assert_eq!(response.first(), Some(&(Status::Ok as u8)));
        let info = mdz_store::protocol::parse_info(&response).unwrap();
        assert_eq!(info.n_frames, 16);
    }

    drop(stream);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn oversized_length_prefix_gets_a_typed_error_then_the_connection_dies() {
    let reader = StoreReader::open(make_archive()).unwrap();
    let registry = reader.recorder();
    let server = Server::bind(reader, "127.0.0.1:0", epoll_cfg()).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let join = std::thread::spawn(move || server.run().unwrap());

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    // Announce a body far past any budget. The server must answer from the
    // prefix alone — no body follows, and none is ever allocated.
    stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
    let response = read_message(&mut stream, 1 << 28).unwrap().expect("error response");
    assert_eq!(response.first(), Some(&(Status::BadRequest as u8)));
    assert!(registry.counter("server.requests.bad") >= 1);
    assert!(registry.counter("server.status.bad_request") >= 1);

    // Resync is impossible: the connection must be closed by the server.
    let mut rest = Vec::new();
    let eof = stream.read_to_end(&mut rest);
    assert!(eof.is_ok() && rest.is_empty(), "expected EOF after the error response");

    drop(stream);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn truncated_frame_at_eof_is_answered_as_malformed() {
    let (addr, handle, join) = spawn(epoll_cfg());
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    // A healthy request, then a frame that dies mid-body.
    write_message(&mut stream, &Request::Stats.encode()).unwrap();
    let ok = read_message(&mut stream, 1 << 28).unwrap().expect("stats response");
    assert_eq!(ok.first(), Some(&(Status::Ok as u8)));
    stream.write_all(&10u32.to_le_bytes()).unwrap();
    stream.write_all(&[1, 2, 3]).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();

    let response = read_message(&mut stream, 1 << 28).unwrap().expect("error response");
    assert_eq!(response.first(), Some(&(Status::BadRequest as u8)));

    drop(stream);
    handle.shutdown();
    join.join().unwrap();
}
