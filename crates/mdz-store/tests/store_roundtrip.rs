//! Store-level correctness properties.
//!
//! The central contract: `StoreReader::read_frames(range)` is byte-identical
//! to slicing `range` out of a full sequential decode of the archive. The
//! sequential reference here is implemented from the wire format directly
//! (header scan, record walk, per-axis decompressors reset at epoch
//! boundaries) so it shares none of the footer/index/cache code under test.

use mdz_core::{Decompressor, ErrorBound, Frame, MdzConfig, Method};
use mdz_entropy::read_uvarint;
use mdz_store::{write_store, Precision, StoreOptions, StoreReader};

/// Deterministic pseudo-random walk: jittery but compressible coordinates.
fn make_frames(n_frames: usize, n_atoms: usize, seed: u64) -> Vec<Frame> {
    let mut state = seed | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let mut frames = Vec::with_capacity(n_frames);
    let mut base: Vec<(f64, f64, f64)> = (0..n_atoms)
        .map(|i| ((i % 9) as f64 * 2.0, (i % 7) as f64 * 3.0, (i % 5) as f64 * 1.5))
        .collect();
    for _ in 0..n_frames {
        for p in base.iter_mut() {
            p.0 += rnd() * 1e-2;
            p.1 += rnd() * 1e-2;
            p.2 += rnd() * 1e-2;
        }
        frames.push(Frame::new(
            base.iter().map(|p| p.0).collect(),
            base.iter().map(|p| p.1).collect(),
            base.iter().map(|p| p.2).collect(),
        ));
    }
    frames
}

/// Sequential reference decode straight off the wire format.
fn sequential_decode(data: &[u8]) -> Vec<Frame> {
    assert_eq!(&data[..4], b"MDZA");
    assert_eq!(data[4], 2, "reference decoder only speaks v2");
    let f32_source = data[5] & 1 != 0;
    let mut pos = 6;
    let n_atoms = read_uvarint(data, &mut pos).unwrap() as usize;
    let n_frames = read_uvarint(data, &mut pos).unwrap() as usize;
    let bs = read_uvarint(data, &mut pos).unwrap() as usize;
    let k = read_uvarint(data, &mut pos).unwrap() as usize;
    let meta_len = read_uvarint(data, &mut pos).unwrap() as usize;
    pos += meta_len;

    let n_blocks = n_frames.div_ceil(bs);
    let mut axes = [Decompressor::new(), Decompressor::new(), Decompressor::new()];
    let mut frames: Vec<Frame> = Vec::with_capacity(n_frames);
    for block_idx in 0..n_blocks {
        if block_idx > 0 && block_idx % k == 0 {
            // The writer re-anchored here; a sequential decoder must drop
            // its reference state or later MT buffers decode against stale
            // snapshots.
            for d in axes.iter_mut() {
                d.reset_stream();
            }
        }
        let len = read_uvarint(data, &mut pos).unwrap() as usize;
        pos += 8; // fnv1a checksum — the reference trusts the bytes
        let container = &data[pos..pos + len];
        pos += len;
        assert_eq!(&container[..4], b"MDZT");
        let mut cpos = 4;
        let mut per_axis: Vec<Vec<Vec<f64>>> = Vec::with_capacity(3);
        for axis in axes.iter_mut() {
            let blen = read_uvarint(container, &mut cpos).unwrap() as usize;
            let block = &container[cpos..cpos + blen];
            cpos += blen;
            let snaps = if f32_source {
                axis.decompress_block_f32(block)
                    .unwrap()
                    .into_iter()
                    .map(|s| s.into_iter().map(f64::from).collect())
                    .collect()
            } else {
                axis.decompress_block(block).unwrap()
            };
            per_axis.push(snaps);
        }
        let [x, y, z]: [Vec<Vec<f64>>; 3] = per_axis.try_into().unwrap();
        for ((sx, sy), sz) in x.into_iter().zip(y).zip(z) {
            assert_eq!(sx.len(), n_atoms);
            frames.push(Frame::new(sx, sy, sz));
        }
    }
    assert_eq!(frames.len(), n_frames);
    frames
}

#[test]
fn every_range_matches_sequential_decode_across_codecs() {
    let n_frames = 40;
    let frames = make_frames(n_frames, 16, 0x5eed);
    let methods = [Method::Adaptive, Method::Vq, Method::Vqt, Method::Mt];
    let precisions = [Precision::F64, Precision::F32];
    let intervals = [1usize, 4, 16];
    for method in methods {
        for precision in precisions {
            for k in intervals {
                let mut opts = StoreOptions::new(
                    MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(method),
                );
                opts.buffer_size = 4;
                opts.epoch_interval = k;
                opts.precision = precision;
                let data = write_store(&frames, &[], &[], &opts).unwrap();
                let reference = sequential_decode(&data);
                let reader = StoreReader::open(data).unwrap();
                let label = format!("{method:?}/{precision:?}/K={k}");
                // Every single-buffer range, plus straddling and full spans.
                let mut ranges: Vec<(usize, usize)> =
                    (0..n_frames / 4).map(|b| (b * 4, b * 4 + 4)).collect();
                ranges.extend([(0, n_frames), (3, 21), (15, 17), (39, 40), (0, 1), (6, 6)]);
                for (start, end) in ranges {
                    let got = reader.read_frames(start..end).unwrap();
                    assert_eq!(got, reference[start..end], "{label} range {start}..{end}");
                }
            }
        }
    }
}

#[test]
fn one_buffer_read_decodes_at_most_one_epoch() {
    // 64 buffers of 2 frames, 4 buffers per epoch → 16 epochs.
    let frames = make_frames(128, 8, 0xabcd);
    let mut opts = StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(1e-4)));
    opts.buffer_size = 2;
    opts.epoch_interval = 4;
    let data = write_store(&frames, &[], &[], &opts).unwrap();
    let reader = StoreReader::open(data).unwrap();
    assert_eq!(reader.index().blocks.len(), 64);
    assert_eq!(reader.index().n_epochs(), 16);

    // Buffer 37 holds frames 74..76 and lives in epoch 9 (buffers 36..40).
    let before = reader.stats().buffers_decoded;
    let got = reader.read_frames(74..76).unwrap();
    assert_eq!(got.len(), 2);
    let decoded = reader.stats().buffers_decoded - before;
    assert!(
        decoded <= opts.epoch_interval as u64,
        "single-buffer read decoded {decoded} buffers — more than one epoch"
    );
    // A re-read is pure cache: no further decoding at all.
    let before = reader.stats().buffers_decoded;
    reader.read_frames(74..76).unwrap();
    assert_eq!(reader.stats().buffers_decoded, before);
}

#[test]
fn v1_archives_open_as_a_single_epoch() {
    use mdz_core::checksum::fnv1a64;
    use mdz_core::traj::{TrajectoryCompressor, TrajectoryDecompressor};
    use mdz_entropy::write_uvarint;
    use mdz_lossless::lz77;

    // Hand-rolled v1 archive, matching the `mdz` crate's writer layout.
    let frames = make_frames(20, 6, 0x11);
    let bs = 4usize;
    let mut data = Vec::new();
    data.extend_from_slice(b"MDZA");
    data.push(1);
    write_uvarint(&mut data, 6);
    write_uvarint(&mut data, 20);
    write_uvarint(&mut data, bs as u64);
    let meta = lz77::compress(b"H O\n", lz77::Level::Default);
    write_uvarint(&mut data, meta.len() as u64);
    data.extend_from_slice(&meta);
    let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(Method::Mt);
    let mut comp = TrajectoryCompressor::new(cfg);
    for chunk in frames.chunks(bs) {
        let block = comp.compress_buffer(chunk).unwrap();
        write_uvarint(&mut data, block.len() as u64);
        data.extend_from_slice(&fnv1a64(&block).to_le_bytes());
        data.extend_from_slice(&block);
    }

    // Sequential reference via the stock trajectory decompressor.
    let mut reference = Vec::new();
    {
        let mut pos = 8; // magic (4) + version (1) + 3 single-byte uvarints
        let meta_len = read_uvarint(&data, &mut pos).unwrap() as usize;
        pos += meta_len;
        let mut dec = TrajectoryDecompressor::new();
        while pos < data.len() {
            let len = read_uvarint(&data, &mut pos).unwrap() as usize;
            pos += 8;
            reference.extend(dec.decompress_buffer(&data[pos..pos + len]).unwrap());
            pos += len;
        }
    }

    let reader = StoreReader::open(data).unwrap();
    let idx = reader.index();
    assert_eq!(idx.version, 1);
    assert_eq!(idx.epoch_interval, 5, "v1 archive must form one epoch");
    assert_eq!(idx.n_epochs(), 1);
    assert_eq!(idx.elements, vec!["H".to_string(), "O".to_string()]);
    for (start, end) in [(0, 20), (7, 13), (16, 20), (0, 4)] {
        assert_eq!(reader.read_frames(start..end).unwrap(), reference[start..end]);
    }
}

#[test]
fn f32_store_round_trips_within_bound() {
    let frames = make_frames(16, 8, 0x22);
    let eps = 1e-3;
    let mut opts = StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(eps)));
    opts.buffer_size = 4;
    opts.epoch_interval = 2;
    opts.precision = Precision::F32;
    let data = write_store(&frames, &[], &[], &opts).unwrap();
    let reader = StoreReader::open(data).unwrap();
    assert!(reader.index().f32_source);
    let got = reader.read_frames(0..16).unwrap();
    for (orig, dec) in frames.iter().zip(&got) {
        for axis in 0..3 {
            let (o, d): (&[f64], &[f64]) = match axis {
                0 => (&orig.x, &dec.x),
                1 => (&orig.y, &dec.y),
                _ => (&orig.z, &dec.z),
            };
            for (a, b) in o.iter().zip(d) {
                // Bound holds against the f32-narrowed source, so allow the
                // narrowing ulp on top of eps.
                let narrowed = *a as f32 as f64;
                assert!((narrowed - b).abs() <= eps * (1.0 + 1e-6), "{a} vs {b}");
            }
        }
    }
}
