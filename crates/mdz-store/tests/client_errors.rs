//! Client error-path coverage: connection refused, a connection dying
//! mid-response, a BUSY server, and a request deadline each surface a
//! *typed* error, and the retry policy retries exactly the transient ones.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mdz_store::protocol::{encode_error, read_message, write_message};
use mdz_store::{
    connect_with_retry, get_with_retry, Client, ClientError, Obs, Registry, RetryPolicy,
    RetryStage, Status,
};

fn test_policy(max_retries: u32, retry_busy: bool) -> RetryPolicy {
    RetryPolicy {
        max_retries,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(5),
        retry_busy,
        seed: 0xc11e47,
    }
}

/// A single-purpose fake server: accepts connections, reads one framed
/// request per connection, and lets `respond` write whatever bytes it
/// wants before closing. Returns the address and a shared accept counter.
fn fake_server(
    connections: usize,
    respond: impl Fn(&mut TcpStream) + Send + 'static,
) -> (std::net::SocketAddr, Arc<AtomicUsize>, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let accepts = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&accepts);
    let join = std::thread::spawn(move || {
        for _ in 0..connections {
            let Ok((mut stream, _)) = listener.accept() else { return };
            counter.fetch_add(1, Ordering::SeqCst);
            // Consume the request so the eventual close is a clean FIN and
            // the client reliably sees our response bytes.
            let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
            let _ = read_message(&mut stream, 64);
            respond(&mut stream);
        }
    });
    (addr, accepts, join)
}

#[test]
fn connection_refused_is_io_and_retried_at_connect_stage() {
    // Bind then immediately drop: nothing listens on this port.
    let addr = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    match Client::connect(addr).map(|_| ()) {
        Err(ClientError::Io(_)) => {}
        other => panic!("expected Io, got {other:?}"),
    }

    // The same failure through the retry layer: connect errors are
    // transient, so every allowed retry is spent (and counted).
    let registry = Arc::new(Registry::new());
    let obs = Obs::new(Arc::clone(&registry) as Arc<dyn mdz_obs::Recorder>);
    let policy = test_policy(2, true);
    match connect_with_retry(addr, &policy, &obs) {
        Err(ClientError::Io(_)) => {}
        other => panic!("expected Io after retries, got {:?}", other.err()),
    }
    assert_eq!(registry.counter("client.retries"), 2);

    // The identical error at the Request stage must NOT be retried: the
    // request may already have executed server-side.
    let io_err = ClientError::Io("broken pipe".into());
    assert!(policy.should_retry(&io_err, RetryStage::Connect));
    assert!(!policy.should_retry(&io_err, RetryStage::Request));
}

#[test]
fn mid_response_disconnect_is_io_and_never_retried() {
    // The server advertises a 100-byte response, sends 10, and hangs up.
    let (addr, accepts, join) = fake_server(1, |stream| {
        let _ = stream.write_all(&100u32.to_le_bytes());
        let _ = stream.write_all(&[0u8; 10]);
    });

    let err = get_with_retry(addr, 0..4, &test_policy(3, true), &Obs::noop())
        .expect_err("truncated response must fail");
    match err {
        ClientError::Io(_) => {}
        other => panic!("expected Io, got {other:?}"),
    }
    // One accept: a connection dying mid-response is not transient — the
    // request may have half-executed — so the policy must not retry it.
    assert_eq!(accepts.load(Ordering::SeqCst), 1);
    join.join().unwrap();
}

#[test]
fn busy_response_is_typed_and_retried_only_when_the_policy_allows() {
    let busy = |stream: &mut TcpStream| {
        let _ = write_message(stream, &encode_error(Status::Busy, "shed"));
    };

    // retry_busy = false: exactly one attempt, typed BUSY error out.
    let (addr, accepts, join) = fake_server(1, busy);
    let err = get_with_retry(addr, 0..4, &test_policy(3, false), &Obs::noop())
        .expect_err("BUSY must surface");
    match &err {
        ClientError::Server { status: Status::Busy, .. } => {}
        other => panic!("expected BUSY, got {other:?}"),
    }
    assert_eq!(accepts.load(Ordering::SeqCst), 1);
    join.join().unwrap();

    // retry_busy = true: the policy spends every retry (1 + 2 attempts)
    // before giving up on a persistently busy server.
    let (addr, accepts, join) = fake_server(3, busy);
    let registry = Arc::new(Registry::new());
    let obs = Obs::new(Arc::clone(&registry) as Arc<dyn mdz_obs::Recorder>);
    let err = get_with_retry(addr, 0..4, &test_policy(2, true), &obs)
        .expect_err("still busy after retries");
    assert!(matches!(err, ClientError::Server { status: Status::Busy, .. }));
    assert_eq!(accepts.load(Ordering::SeqCst), 3);
    assert_eq!(registry.counter("client.retries"), 2);
    join.join().unwrap();
}

#[test]
fn request_deadline_surfaces_a_typed_timeout() {
    // A server that accepts, reads the request, and never answers.
    let (addr, _accepts, join) = fake_server(1, |stream| {
        // Hold the connection open until the client has timed out.
        let mut buf = [0u8; 1];
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.read(&mut buf);
    });

    let mut client = Client::connect(addr).unwrap();
    client
        .set_timeouts(Some(Duration::from_millis(100)), Some(Duration::from_millis(100)))
        .unwrap();
    let err = client.get(0..4).expect_err("no response must time out");
    match &err {
        ClientError::Timeout(_) => {}
        other => panic!("expected Timeout, got {other:?}"),
    }
    // Timeouts are transient at every stage: the policy may retry them.
    let policy = test_policy(1, false);
    assert!(policy.should_retry(&err, RetryStage::Connect));
    assert!(policy.should_retry(&err, RetryStage::Request));
    drop(client);
    join.join().unwrap();
}
