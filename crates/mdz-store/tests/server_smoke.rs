//! Loopback smoke tests for the `mdzd` serving layer: real sockets, real
//! worker pool, typed error statuses, counters, clean shutdown.

use mdz_core::{ErrorBound, Frame, MdzConfig};
use mdz_store::{
    write_store, Client, ClientError, Server, ServerConfig, Status, StoreOptions, StoreReader,
};

fn make_reader(n_frames: usize, n_atoms: usize) -> StoreReader {
    let frames: Vec<Frame> = (0..n_frames)
        .map(|t| {
            let axis = |off: f64| -> Vec<f64> {
                (0..n_atoms).map(|i| (i % 4) as f64 * 2.0 + t as f64 * 1e-3 + off).collect()
            };
            Frame::new(axis(0.0), axis(1.0), axis(2.0))
        })
        .collect();
    let mut opts = StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(1e-4)));
    opts.buffer_size = 4;
    opts.epoch_interval = 2;
    let data = write_store(&frames, &[], &[], &opts).unwrap();
    StoreReader::open(data).unwrap()
}

#[test]
fn loopback_get_stats_info_and_shutdown() {
    let reader = make_reader(24, 6);
    let local = reader.clone();
    let server = Server::bind(
        reader,
        "127.0.0.1:0",
        ServerConfig { threads: 2, max_frames_per_request: 16, ..Default::default() },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let join = std::thread::spawn(move || server.run().unwrap());

    let mut client = Client::connect(addr).unwrap();

    // INFO reflects the archive geometry.
    let info = client.info().unwrap();
    assert_eq!(info.version, 2);
    assert_eq!(info.n_frames, 24);
    assert_eq!(info.n_atoms, 6);
    assert_eq!(info.buffer_size, 4);
    assert_eq!(info.epoch_interval, 2);
    assert_eq!(info.n_blocks, 6);

    // GET returns exactly what a local read returns.
    let got = client.get(5..13).unwrap();
    assert_eq!(got, local.read_frames(5..13).unwrap());
    let single = client.get(23..24).unwrap();
    assert_eq!(single.len(), 1);

    // Typed errors: out of range, span budget, inverted range.
    match client.get(20..30) {
        Err(ClientError::Server { status: Status::OutOfRange, .. }) => {}
        other => panic!("expected OutOfRange, got {other:?}"),
    }
    match client.get(0..17) {
        Err(ClientError::Server { status: Status::LimitExceeded, .. }) => {}
        other => panic!("expected LimitExceeded, got {other:?}"),
    }

    // STATS counted every request (info + 2 ok gets + 2 failed gets + …).
    let stats = client.stats().unwrap();
    assert_eq!(stats.requests, 5);
    assert!(stats.bytes_out > 0);
    assert!(stats.cache_misses >= 1);

    drop(client);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn concurrent_clients_share_the_cache() {
    let reader = make_reader(32, 5);
    let server = Server::bind(reader, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let join = std::thread::spawn(move || server.run().unwrap());

    let expected: Vec<Vec<Frame>> = {
        let mut probe = Client::connect(addr).unwrap();
        (0..4).map(|i| probe.get(i * 8..i * 8 + 8).unwrap()).collect()
    };
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..3 {
                    let i = (w + round) % 4;
                    assert_eq!(client.get(i * 8..i * 8 + 8).unwrap(), expected[i]);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    // 4 probe reads + 12 worker reads (the in-flight STATS call is counted
    // after its snapshot is taken).
    assert_eq!(stats.requests, 16);
    // Every epoch was decoded at least once but the cache absorbed most
    // reads (4 epochs; races may decode an epoch twice).
    assert!(stats.cache_hits >= 8, "cache hits {}", stats.cache_hits);

    drop(client);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn malformed_frames_get_a_typed_error() {
    use mdz_store::protocol::{read_message, write_message, Status};
    use std::io::Write;
    use std::net::TcpStream;

    let reader = make_reader(8, 4);
    let server = Server::bind(reader, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let join = std::thread::spawn(move || server.run().unwrap());

    // Unknown opcode → BadRequest, connection stays usable.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        write_message(&mut s, &[0xEE]).unwrap();
        let body = read_message(&mut s, 1 << 16).unwrap().unwrap();
        assert_eq!(body[0], Status::BadRequest as u8);
    }
    // Oversized frame → BadRequest, then the server hangs up.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&(10_000u32).to_le_bytes()).unwrap();
        s.write_all(&[0u8; 10_000]).unwrap();
        let body = read_message(&mut s, 1 << 16).unwrap().unwrap();
        assert_eq!(body[0], Status::BadRequest as u8);
        assert!(read_message(&mut s, 1 << 16).unwrap().is_none());
    }

    handle.shutdown();
    join.join().unwrap();
}
