//! Crash-consistency sweep for the append/footer-flip protocol.
//!
//! For every storage operation an append performs, and for every fault
//! flavour (failed op, lost unsynced writes, torn write), inject a crash at
//! that point and prove that reopening the disk image through the recovery
//! scan yields *either* the pre-append archive *or* the post-append archive
//! — byte-for-byte identical decoded frames, never an error, never a mix —
//! and that `recover_store` truncates the tail to the published footer.

use mdz_core::{ErrorBound, Frame, MdzConfig, MdzError, Method};
use mdz_store::{
    append_store, create_store, recover_store, verify_archive, FaultIo, FaultMode, FaultPlan,
    MemIo, Precision, StoreOptions, StoreReader,
};

const BASE_FRAMES: usize = 16;
const APPEND_FRAMES: usize = 12;
const N_ATOMS: usize = 20;
const BUFFER_SIZE: usize = 4;

fn synth_frames(start: usize, count: usize) -> Vec<Frame> {
    (start..start + count)
        .map(|t| {
            let gen = |axis: usize| -> Vec<f64> {
                (0..N_ATOMS)
                    .map(|i| {
                        let p = (i * 3 + axis) as f64;
                        p + (t as f64 * 0.37 + p * 0.11).sin() * 0.5
                    })
                    .collect()
            };
            Frame::new(gen(0), gen(1), gen(2))
        })
        .collect()
}

fn opts_for(method: Method, precision: Precision, epoch_interval: usize) -> StoreOptions {
    let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(method);
    let mut opts = StoreOptions::new(cfg);
    opts.buffer_size = BUFFER_SIZE;
    opts.epoch_interval = epoch_interval;
    opts.precision = precision;
    opts
}

fn frames_bits(frames: &[Frame]) -> Vec<u64> {
    let mut bits = Vec::new();
    for f in frames {
        for i in 0..f.len() {
            bits.push(f.x[i].to_bits());
            bits.push(f.y[i].to_bits());
            bits.push(f.z[i].to_bits());
        }
    }
    bits
}

fn decoded_bits(data: Vec<u8>) -> (usize, Vec<u64>) {
    let reader = StoreReader::open(data).expect("clean archive must open");
    let n = reader.index().n_frames;
    let frames = reader.read_frames(0..n).expect("clean archive must decode");
    (n, frames_bits(&frames))
}

/// Runs the full fault sweep for one configuration.
fn sweep(method: Method, precision: Precision, epoch_interval: usize) {
    let opts = opts_for(method, precision, epoch_interval);
    let base = synth_frames(0, BASE_FRAMES);
    let extra = synth_frames(BASE_FRAMES, APPEND_FRAMES);

    // Reference images: pre-append and (fault-free) post-append.
    let mut io = FaultIo::new(Vec::new());
    create_store(&mut io, &base, &[], &[], &opts).expect("create");
    let pre_bytes = io.disk_image();

    let mut io = FaultIo::new(pre_bytes.clone());
    let report = append_store(&mut io, &extra, &opts).expect("fault-free append");
    assert_eq!(report.appended_frames, APPEND_FRAMES);
    assert_eq!(report.recovered_bytes, 0);
    assert_eq!(report.n_frames, BASE_FRAMES + APPEND_FRAMES);
    let post_bytes = io.disk_image();
    let n_ops = io.ops_performed();
    assert!(n_ops >= 3, "append must at least write data, sync, write footer");
    assert_eq!(&post_bytes[..pre_bytes.len()], &pre_bytes[..], "append must be pure extension");

    let (pre_n, pre_bits) = decoded_bits(pre_bytes.clone());
    let (post_n, post_bits) = decoded_bits(post_bytes.clone());
    assert_eq!(pre_n, BASE_FRAMES);
    assert_eq!(post_n, BASE_FRAMES + APPEND_FRAMES);

    let modes = [FaultMode::FailOp, FaultMode::DropUnsynced, FaultMode::TornWrite];
    for fault_op in 0..n_ops {
        for mode in modes {
            let label = format!(
                "{method:?}/{precision:?}/K={epoch_interval} fault at op {fault_op} ({mode:?})"
            );
            let mut io = FaultIo::new(pre_bytes.clone());
            io.set_plan(FaultPlan { fault_op, mode, seed: 0x4d445a00 ^ fault_op as u64 });
            let err = append_store(&mut io, &extra, &opts)
                .expect_err(&format!("{label}: planned fault must surface"));
            assert!(matches!(err, MdzError::Io { .. }), "{label}: fault must map to Io, got {err}");
            assert!(io.has_crashed(), "{label}: fault must have fired");

            // Whatever survived the crash must recover to exactly pre or post.
            let image = io.disk_image();
            let (reader, report) = StoreReader::recover(image.clone())
                .unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"));
            let n = reader.index().n_frames;
            assert!(
                n == pre_n || n == post_n,
                "{label}: recovered {n} frames, want {pre_n} or {post_n}"
            );
            let frames = reader
                .read_frames(0..n)
                .unwrap_or_else(|e| panic!("{label}: recovered archive must decode: {e}"));
            let bits = frames_bits(&frames);
            let want = if n == pre_n { &pre_bits } else { &post_bits };
            assert_eq!(&bits, want, "{label}: recovered frames are not bit-exact pre/post");
            assert_eq!(
                report.valid_len + report.truncated_bytes,
                image.len(),
                "{label}: recovery accounting"
            );

            // recover_store must truncate the image to a verify-clean file.
            let mut disk = MemIo::new(image);
            let rec = recover_store(&mut disk).unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(rec.valid_len, report.valid_len, "{label}: recover_store disagrees");
            let clean = disk.into_bytes();
            assert_eq!(clean.len(), rec.valid_len, "{label}: truncation length");
            let v = verify_archive(&clean)
                .unwrap_or_else(|f| panic!("{label}: recovered file fails verify: {f}"));
            assert_eq!(v.n_frames, n, "{label}: verify sees a different frame count");
            if n == pre_n {
                assert_eq!(clean, pre_bytes, "{label}: pre-state recovery must be byte-exact");
            } else {
                assert_eq!(clean, post_bytes, "{label}: post-state recovery must be byte-exact");
            }
        }
    }
}

#[test]
fn adaptive_f64_every_fault_point_recovers() {
    sweep(Method::Adaptive, Precision::F64, 1);
    sweep(Method::Adaptive, Precision::F64, 3);
}

#[test]
fn adaptive_f32_every_fault_point_recovers() {
    sweep(Method::Adaptive, Precision::F32, 3);
}

#[test]
fn vq_f64_every_fault_point_recovers() {
    sweep(Method::Vq, Precision::F64, 1);
    sweep(Method::Vq, Precision::F64, 3);
}

#[test]
fn vq_f32_every_fault_point_recovers() {
    sweep(Method::Vq, Precision::F32, 1);
}

/// A crash mid-`create_store` (before the first footer is durable) leaves a
/// file with no published state at all; recovery must report it
/// unrecoverable rather than inventing an archive.
#[test]
fn crash_before_first_footer_is_unrecoverable() {
    let opts = opts_for(Method::Adaptive, Precision::F64, 2);
    let base = synth_frames(0, 8);
    let mut io = FaultIo::new(Vec::new());
    io.set_plan(FaultPlan { fault_op: 2, mode: FaultMode::DropUnsynced, seed: 1 });
    create_store(&mut io, &base, &[], &[], &opts).expect_err("planned fault");
    let image = io.disk_image();
    assert!(StoreReader::recover(image).is_err(), "no footer was ever durable");
}

/// Two stacked appends: a crash during the second append must recover to
/// the first-append state (the newest durable footer), not all the way back
/// to the original archive.
#[test]
fn crash_in_second_append_recovers_to_first_append() {
    let opts = opts_for(Method::Adaptive, Precision::F64, 2);
    let base = synth_frames(0, 8);
    let mid = synth_frames(8, 4);
    let tail = synth_frames(12, 4);

    let mut io = FaultIo::new(Vec::new());
    create_store(&mut io, &base, &[], &[], &opts).expect("create");
    let mut io = FaultIo::new(io.disk_image());
    append_store(&mut io, &mid, &opts).expect("first append");
    let after_first = io.disk_image();

    // Crash at the very first storage op of the second append.
    let mut io = FaultIo::new(after_first.clone());
    io.set_plan(FaultPlan { fault_op: 0, mode: FaultMode::TornWrite, seed: 7 });
    append_store(&mut io, &tail, &opts).expect_err("planned fault");
    let (reader, _) = StoreReader::recover(io.disk_image()).expect("recoverable");
    assert_eq!(reader.index().n_frames, 12, "must land on the first-append footer");
}
