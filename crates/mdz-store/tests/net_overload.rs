//! PR 7's overload-hardening contract, replayed against the event-loop
//! engine: the BUSY shed above the connection cap, the write-deadline kill
//! of stalled readers (now via explicit backpressure accounting), the idle
//! reap, and the <5 s stop-flag drain all must survive the engine swap.

#![cfg(any(target_os = "linux", target_os = "macos"))]

use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mdz_core::{ErrorBound, Frame, MdzConfig};
use mdz_store::{
    write_store, Client, ClientError, Engine, Registry, RetryPolicy, Server, ServerConfig,
    ServerHandle, Status, StoreOptions, StoreReader,
};

fn make_archive(n_frames: usize, n_atoms: usize) -> Vec<u8> {
    let frames: Vec<Frame> = (0..n_frames)
        .map(|t| {
            let axis = |off: f64| -> Vec<f64> {
                (0..n_atoms).map(|i| (i % 4) as f64 * 2.0 + t as f64 * 1e-3 + off).collect()
            };
            Frame::new(axis(0.0), axis(1.0), axis(2.0))
        })
        .collect();
    let mut opts = StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(1e-4)));
    opts.buffer_size = 8;
    opts.epoch_interval = 2;
    write_store(&frames, &[], &[], &opts).unwrap()
}

fn epoll_cfg() -> ServerConfig {
    ServerConfig { engine: Engine::Epoll, threads: 2, ..ServerConfig::default() }
}

fn spawn(
    cfg: ServerConfig,
    n_frames: usize,
    n_atoms: usize,
) -> (std::net::SocketAddr, ServerHandle, Arc<Registry>, std::thread::JoinHandle<()>) {
    let reader = StoreReader::open(make_archive(n_frames, n_atoms)).unwrap();
    let registry = reader.recorder();
    let server = Server::bind(reader, "127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let join = std::thread::spawn(move || server.run().unwrap());
    (addr, handle, registry, join)
}

/// Polls `registry` until `counter >= want` or the deadline passes.
fn wait_counter(registry: &Registry, counter: &str, want: u64, deadline: Duration) -> u64 {
    let start = Instant::now();
    loop {
        let got = registry.counter(counter);
        if got >= want || start.elapsed() > deadline {
            return got;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn connection_cap_sheds_busy_then_recovers_when_a_slot_frees() {
    let cfg = ServerConfig { max_connections: 1, ..epoll_cfg() };
    let (addr, handle, registry, join) = spawn(cfg, 16, 6);

    // Pin the only slot with a live connection.
    let mut pinned = Client::connect(addr).unwrap();
    assert_eq!(pinned.get(0..8).unwrap().len(), 8);

    // The next connection must be shed with a typed BUSY, not a hang.
    let mut overflow = Client::connect(addr).unwrap();
    match overflow.get(0..4) {
        Err(ClientError::Server { status: Status::Busy, .. }) => {}
        other => panic!("expected BUSY, got {other:?}"),
    }
    assert!(registry.counter("server.conn.rejected_busy") >= 1);
    assert!(registry.counter("server.status.busy") >= 1);

    // BUSY is retryable: once the pinned connection goes away, a
    // retry-enabled GET lands.
    drop(pinned);
    let policy = RetryPolicy {
        max_retries: 10,
        base: Duration::from_millis(20),
        cap: Duration::from_millis(200),
        retry_busy: true,
        seed: 42,
    };
    let frames = mdz_store::get_with_retry(addr, 0..8, &policy, &mdz_store::Obs::noop())
        .expect("retry must land once the slot frees");
    assert_eq!(frames.len(), 8);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn stalled_reader_is_disconnected_while_others_keep_serving() {
    let cfg = ServerConfig {
        write_timeout: Duration::from_millis(300),
        // A small queue cap so the flood demonstrably trips backpressure
        // before the write deadline kills the stalled peer.
        max_write_buffer: 1 << 20,
        ..epoll_cfg()
    };
    let (addr, handle, registry, join) = spawn(cfg, 64, 48);

    // A client that floods pipelined GETs and never drains its receive
    // side: the write queue hits the backpressure cap (the server stops
    // reading), the socket stays blocked, and the write deadline fires.
    let mut stalled = std::net::TcpStream::connect(addr).unwrap();
    let body = mdz_store::Request::Get { start: 0, end: 64 }.encode();
    let mut msg = Vec::new();
    msg.extend_from_slice(&(body.len() as u32).to_le_bytes());
    msg.extend_from_slice(&body);
    for _ in 0..400 {
        if stalled.write_all(&msg).is_err() {
            break; // server already killed us — that's the point
        }
    }

    let got = wait_counter(&registry, "server.conn.write_timeouts", 1, Duration::from_secs(20));
    assert!(got >= 1, "write deadline never fired for the stalled reader");
    assert!(
        registry.counter("server.net.backpressure_stalls") >= 1,
        "the flood must trip the write-buffer backpressure cap first"
    );

    // Other connections keep serving during and after the stall.
    let mut healthy = Client::connect(addr).unwrap();
    assert_eq!(healthy.get(0..16).unwrap().len(), 16);
    assert_eq!(healthy.get(32..64).unwrap().len(), 32);

    drop(stalled);
    drop(healthy);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn silent_connection_is_reaped_by_the_idle_deadline() {
    let cfg = ServerConfig { idle_timeout: Duration::from_millis(200), ..epoll_cfg() };
    let (addr, handle, registry, join) = spawn(cfg, 16, 6);

    let idle = std::net::TcpStream::connect(addr).unwrap();
    let got = wait_counter(&registry, "server.conn.idle_closed", 1, Duration::from_secs(10));
    assert!(got >= 1, "idle deadline never fired");

    // An active client is unaffected by the reaper.
    let mut live = Client::connect(addr).unwrap();
    assert_eq!(live.get(0..8).unwrap().len(), 8);

    drop(idle);
    drop(live);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn shutdown_drains_connected_idle_clients_promptly() {
    let (addr, handle, registry, join) = spawn(epoll_cfg(), 16, 6);

    // A connected client that will never speak: shutdown must not wait for
    // its (long) idle deadline.
    let mut lingering = Client::connect(addr).unwrap();
    assert_eq!(lingering.get(0..4).unwrap().len(), 4);

    let start = Instant::now();
    handle.shutdown();
    join.join().unwrap();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "drain took {:?}; must be bounded by the drain poll, not the idle deadline",
        start.elapsed()
    );
    assert!(registry.counter("server.drain.closed") >= 1);

    // The drained connection is really gone: the next request fails.
    assert!(lingering.get(0..4).is_err());
}

#[test]
fn dispatcher_mode_preserves_the_same_overload_contract() {
    // Without SO_REUSEPORT (shard 0 accepts and hands off round-robin) the
    // cap, shed, and drain behave identically.
    let cfg = ServerConfig { reuseport: false, max_connections: 1, ..epoll_cfg() };
    let (addr, handle, registry, join) = spawn(cfg, 16, 6);

    let mut pinned = Client::connect(addr).unwrap();
    assert_eq!(pinned.get(0..8).unwrap().len(), 8);
    let mut overflow = Client::connect(addr).unwrap();
    match overflow.get(0..4) {
        Err(ClientError::Server { status: Status::Busy, .. }) => {}
        other => panic!("expected BUSY, got {other:?}"),
    }
    assert!(registry.counter("server.conn.rejected_busy") >= 1);
    drop(pinned);
    drop(overflow);

    let start = Instant::now();
    handle.shutdown();
    join.join().unwrap();
    assert!(start.elapsed() < Duration::from_secs(5));
}
