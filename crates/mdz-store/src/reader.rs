//! Random-access reads over an indexed archive: epoch decoding, the LRU
//! cache of decoded epochs, live refresh of a growing archive, and the
//! shared metrics registry.

use std::collections::{BTreeMap, HashMap};
use std::ops::Range;
use std::sync::{Arc, Condvar, Mutex, RwLock};

use mdz_core::traj::split_container;
use mdz_core::{DecodeLimits, Decompressor, Frame, MdzError, Obs, Result};
use mdz_obs::{MetricsSnapshot, Registry};

use crate::archive::{record_at, recover_slice, ArchiveIndex, RecoverReport};

/// Tuning knobs for [`StoreReader`].
#[derive(Debug, Clone)]
pub struct ReaderOptions {
    /// Decoded epochs kept in the cache (LRU eviction). Each entry holds the
    /// epoch's frames in full precision, so size this against
    /// `epoch_interval × buffer_size × n_atoms × 24` bytes per entry.
    pub cache_epochs: usize,
    /// Decode budget applied to every block this reader decodes.
    pub limits: DecodeLimits,
}

impl Default for ReaderOptions {
    fn default() -> Self {
        Self { cache_epochs: 4, limits: DecodeLimits::default() }
    }
}

/// A point-in-time copy of the reader's core counters, derived from the
/// shared [`Registry`] (see [`StoreReader::metrics`] for the full
/// snapshot including server-side histograms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Requests served (incremented by the serving layer, not by local reads).
    pub requests: u64,
    /// Response payload bytes written by the serving layer.
    pub bytes_out: u64,
    /// Epoch lookups satisfied from the cache.
    pub cache_hits: u64,
    /// Epoch lookups that had to decode.
    pub cache_misses: u64,
    /// Decode attempts that failed (corrupt records, budget violations).
    pub decode_errors: u64,
    /// Buffers decoded since the reader was opened. The random-access
    /// guarantee is expressed against this counter: one `read_frames` call
    /// touching a single buffer grows it by at most one epoch's worth.
    pub buffers_decoded: u64,
}

/// Report returned by [`StoreReader::refresh`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshReport {
    /// Frames newly visible through this reader after the refresh.
    pub frames_added: usize,
    /// Block records newly visible after the refresh.
    pub blocks_added: usize,
    /// Total frames visible after the refresh.
    pub n_frames: usize,
    /// Garbage tail bytes ignored by the recovery scan inside the refresh
    /// (an in-flight append whose footer has not landed yet).
    pub truncated_bytes: usize,
}

struct CacheEntry {
    last_used: u64,
    frames: Arc<Vec<Frame>>,
}

/// One in-flight decode of a cold epoch, shared by every request that
/// arrives while the decode is running. The first requester (the leader)
/// decodes; the rest block on `done` and take the leader's result, so
/// concurrent readers of one cold epoch cost exactly one decode.
struct PendingSlot {
    state: Mutex<PendingState>,
    done: Condvar,
}

enum PendingState {
    /// The leader is still decoding.
    InFlight,
    /// The leader finished: `Some` carries the decoded frames; `None`
    /// means the decode failed and waiters must re-probe the cache (the
    /// first one back in becomes the new leader).
    Done(Option<Arc<Vec<Frame>>>),
}

impl Default for PendingSlot {
    fn default() -> Self {
        Self { state: Mutex::new(PendingState::InFlight), done: Condvar::new() }
    }
}

/// Decoded-epoch LRU cache plus the table of in-flight decodes.
///
/// Recency lives in `by_tick`, keyed by the strictly increasing `tick`
/// counter (so keys are unique and the smallest key is always the least
/// recently used). A touch is one `BTreeMap` remove + insert and eviction
/// pops the first entry — O(log n), never a scan over `map`.
#[derive(Default)]
struct EpochCache {
    map: HashMap<usize, CacheEntry>,
    /// Recency index: `last_used` tick → epoch, mirroring `map` exactly.
    by_tick: BTreeMap<u64, usize>,
    /// Cold epochs currently being decoded by a leader request.
    pending: HashMap<usize, Arc<PendingSlot>>,
    tick: u64,
}

impl EpochCache {
    /// Marks `epoch` used now and returns its frames if cached.
    fn touch(&mut self, epoch: usize) -> Option<Arc<Vec<Frame>>> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.map.get_mut(&epoch)?;
        self.by_tick.remove(&entry.last_used);
        entry.last_used = tick;
        self.by_tick.insert(tick, epoch);
        Some(Arc::clone(&entry.frames))
    }

    /// Inserts `epoch`, first evicting least-recently-used entries until
    /// the cache is below `cap`.
    fn insert(&mut self, epoch: usize, frames: Arc<Vec<Frame>>, cap: usize) {
        self.tick += 1;
        let tick = self.tick;
        while self.map.len() >= cap {
            let Some((_, oldest)) = self.by_tick.pop_first() else { break };
            self.map.remove(&oldest);
        }
        if let Some(prev) = self.map.insert(epoch, CacheEntry { last_used: tick, frames }) {
            self.by_tick.remove(&prev.last_used);
        }
        self.by_tick.insert(tick, epoch);
    }
}

/// The swappable part of the store: archive bytes plus the parsed index.
///
/// [`StoreReader::refresh`] replaces both atomically under the write lock;
/// readers snapshot the two `Arc`s once per call and never observe a torn
/// mix of old bytes with a new index.
struct ArchiveState {
    data: Arc<Vec<u8>>,
    index: Arc<ArchiveIndex>,
}

/// State every handle onto one archive shares: the swappable bytes/index
/// pair plus the metrics registry. The epoch cache deliberately lives
/// *outside* this struct so [`StoreReader::fork_cache`] can give an event
/// shard a private cache while still observing refreshes instantly.
struct Shared {
    state: RwLock<ArchiveState>,
    /// Shared metrics registry: the reader's `store.*` counters land here
    /// alongside whatever the serving layer and the core pipeline record.
    registry: Arc<Registry>,
    /// Recorder handle passed to the per-axis decompressors, so pipeline
    /// stage timings (`core.decode.*`) accrue to the same registry.
    obs: Obs,
}

/// A cheaply cloneable handle for random-access reads over one archive.
///
/// All clones share the archive bytes, the epoch cache, and the stats
/// counters, so a server can hand one clone to each worker thread. A live
/// archive (one still being appended to) is picked up via
/// [`refresh`](Self::refresh) — existing clones all observe the new frames.
/// A sharded server instead hands each shard a [`fork_cache`] handle: same
/// archive and counters, but a private epoch cache with no lock shared
/// across shards.
///
/// [`fork_cache`]: Self::fork_cache
#[derive(Clone)]
pub struct StoreReader {
    shared: Arc<Shared>,
    opts: ReaderOptions,
    cache: Arc<Mutex<EpochCache>>,
}

impl StoreReader {
    /// Parses `data` (a version-1 or version-2 archive) with default options.
    pub fn open(data: Vec<u8>) -> Result<Self> {
        Self::with_options(data, ReaderOptions::default())
    }

    /// Parses `data` with explicit cache and decode-budget options,
    /// recording into a fresh private [`Registry`].
    pub fn with_options(data: Vec<u8>, opts: ReaderOptions) -> Result<Self> {
        Self::with_registry(data, opts, Arc::new(Registry::new()))
    }

    /// Parses `data` recording into a caller-supplied [`Registry`] — use
    /// this to aggregate reader, server, and pipeline metrics in one place
    /// (the serving layer snapshots it for the METRICS verb).
    pub fn with_registry(
        data: Vec<u8>,
        opts: ReaderOptions,
        registry: Arc<Registry>,
    ) -> Result<Self> {
        let index = ArchiveIndex::parse(&data)?;
        let obs = Obs::new(Arc::clone(&registry) as Arc<dyn mdz_core::Recorder>);
        Ok(Self {
            shared: Arc::new(Shared {
                state: RwLock::new(ArchiveState { data: Arc::new(data), index: Arc::new(index) }),
                registry,
                obs,
            }),
            opts,
            cache: Arc::new(Mutex::new(EpochCache::default())),
        })
    }

    /// A handle over the same archive with a *private* epoch cache.
    ///
    /// The forked handle shares the archive bytes, the refresh state, and
    /// the metrics registry with `self` (so `store.*` counters still
    /// aggregate), but decoded epochs are cached per handle. The sharded
    /// event server forks one handle per shard, which removes the cache
    /// mutex from the cross-shard hot path; plain [`Clone`] keeps the
    /// shared-cache semantics the threaded server relies on.
    pub fn fork_cache(&self) -> StoreReader {
        StoreReader {
            shared: Arc::clone(&self.shared),
            opts: self.opts.clone(),
            cache: Arc::new(Mutex::new(EpochCache::default())),
        }
    }

    /// Opens `data` after a crash: scans back to the last valid footer,
    /// drops any garbage tail (a torn append), and reads the archive as of
    /// that footer. Equivalent to [`open`](Self::open) when the archive is
    /// cleanly closed. The in-memory copy is truncated; use
    /// [`crate::recover_store`] to repair the file itself.
    pub fn recover(data: Vec<u8>) -> Result<(Self, RecoverReport)> {
        Self::recover_with_registry(data, ReaderOptions::default(), Arc::new(Registry::new()))
    }

    /// [`recover`](Self::recover) with explicit options and a caller
    /// registry. Records `store.recover.count` and
    /// `store.recover.truncated_bytes` when a tail was dropped.
    pub fn recover_with_registry(
        mut data: Vec<u8>,
        opts: ReaderOptions,
        registry: Arc<Registry>,
    ) -> Result<(Self, RecoverReport)> {
        let (valid_len, _) = recover_slice(&data)?;
        let truncated_bytes = data.len() - valid_len;
        data.truncate(valid_len);
        let reader = Self::with_registry(data, opts, registry)?;
        if truncated_bytes > 0 {
            reader.shared.obs.incr("store.recover.count", 1);
            reader.shared.obs.incr("store.recover.truncated_bytes", truncated_bytes as u64);
        }
        Ok((reader, RecoverReport { valid_len, truncated_bytes }))
    }

    /// The parsed header and block index, as of the last successful
    /// [`refresh`](Self::refresh) (or open). The returned `Arc` is a
    /// consistent snapshot: a concurrent refresh swaps in a new index
    /// without mutating snapshots already handed out.
    pub fn index(&self) -> Arc<ArchiveIndex> {
        Arc::clone(&self.shared.state.read().unwrap().index)
    }

    /// Re-reads a (possibly grown) copy of the archive bytes and publishes
    /// any newly durable frames to every clone of this reader.
    ///
    /// `data` is the current on-disk image; the recovery scan inside drops
    /// any torn tail (an append whose footer has not landed yet), so it is
    /// always safe to call with bytes read mid-append. The refresh is
    /// accepted only when the new image is a *monotone extension* of the
    /// current state:
    ///
    /// * same geometry (atom count, buffer size, precision, version),
    /// * the frame count never shrinks,
    /// * every currently indexed block keeps its offset, and
    /// * every current epoch anchor is preserved.
    ///
    /// Those invariants are exactly what the footer-flip append protocol
    /// guarantees, and they are what make the epoch cache refresh-safe: a
    /// decoded epoch's block range never changes once a footer covering it
    /// lands, so cached entries stay valid and only the tail grows. A
    /// violation (the file was replaced, truncated, or rewritten in place)
    /// is rejected with [`MdzError::Corrupt`] and counted under
    /// `reader.refresh.rejected`; the reader keeps serving its current
    /// state.
    ///
    /// Records `reader.refresh.count` and `reader.refresh.frames_added`.
    pub fn refresh(&self, mut data: Vec<u8>) -> Result<RefreshReport> {
        let obs = &self.shared.obs;
        let (valid_len, new_index) = match recover_slice(&data) {
            Ok(ok) => ok,
            Err(e) => {
                obs.incr("reader.refresh.rejected", 1);
                return Err(e);
            }
        };
        let truncated_bytes = data.len() - valid_len;
        data.truncate(valid_len);

        let mut state = self.shared.state.write().unwrap();
        let old = &state.index;
        if let Err(what) = validate_monotone_extension(old, &new_index) {
            obs.incr("reader.refresh.rejected", 1);
            return Err(MdzError::Corrupt { what });
        }
        let frames_added = new_index.n_frames - old.n_frames;
        let blocks_added = new_index.blocks.len() - old.blocks.len();
        let n_frames = new_index.n_frames;
        state.data = Arc::new(data);
        state.index = Arc::new(new_index);
        drop(state);
        obs.incr("reader.refresh.count", 1);
        obs.incr("reader.refresh.frames_added", frames_added as u64);
        Ok(RefreshReport { frames_added, blocks_added, n_frames, truncated_bytes })
    }

    /// The shared metrics registry every clone of this reader records into.
    pub fn recorder(&self) -> Arc<Registry> {
        Arc::clone(&self.shared.registry)
    }

    /// A full point-in-time snapshot of every metric recorded against this
    /// reader's registry (counters, gauges, and latency histograms).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.registry.snapshot()
    }

    /// A point-in-time copy of the core counters.
    pub fn stats(&self) -> StatsSnapshot {
        let r = &self.shared.registry;
        StatsSnapshot {
            requests: r.counter("store.requests"),
            bytes_out: r.counter("store.bytes_out"),
            cache_hits: r.counter("store.cache.hits"),
            cache_misses: r.counter("store.cache.misses"),
            decode_errors: r.counter("store.decode_errors"),
            buffers_decoded: r.counter("store.buffers_decoded"),
        }
    }

    /// Records one served request and its response payload size. Called by
    /// the serving layer; local [`read_frames`](Self::read_frames) calls do
    /// not count as requests.
    pub fn record_request(&self, bytes_out: u64) {
        self.shared.obs.incr("store.requests", 1);
        self.shared.obs.incr("store.bytes_out", bytes_out);
    }

    /// Records a request that failed before a payload was produced.
    pub fn record_failed_request(&self) {
        self.shared.obs.incr("store.requests", 1);
    }

    /// Decodes the frames in `range` (end-exclusive), touching only the
    /// epochs that overlap it.
    ///
    /// Reads go through the shared epoch cache; a miss decodes the whole
    /// containing epoch with this reader's [`DecodeLimits`] and caches it.
    /// The result is byte-identical to slicing the same range out of a full
    /// sequential decompression of the archive.
    pub fn read_frames(&self, range: Range<usize>) -> Result<Vec<Frame>> {
        self.read_frames_limited(range, &self.opts.limits)
    }

    /// [`read_frames`](Self::read_frames) with a caller-supplied decode
    /// budget — the serving layer passes its per-connection limits here.
    /// Cache hits bypass the budget (the work was already done).
    pub fn read_frames_limited(
        &self,
        range: Range<usize>,
        limits: &DecodeLimits,
    ) -> Result<Vec<Frame>> {
        // One consistent snapshot per call: a concurrent refresh can land a
        // new index mid-read without this read observing mixed state.
        let snap = self.snapshot();
        let idx = &snap.index;
        if range.start > range.end || range.end > idx.n_frames {
            return Err(MdzError::BadInput("frame range out of bounds"));
        }
        if range.is_empty() {
            return Ok(Vec::new());
        }
        // Epoch boundaries are irregular after appends (each appended
        // segment anchors its own epochs), so map frames through the
        // index's epoch-start list rather than a fixed stride.
        let first_epoch = idx.epoch_of_frame(range.start);
        let last_epoch = idx.epoch_of_frame(range.end - 1);
        let mut out = Vec::new();
        for epoch in first_epoch..=last_epoch {
            let frames = self.epoch_frames(&snap, epoch, limits)?;
            let epoch_start = idx.epoch_frame_start(epoch);
            let lo = range.start.max(epoch_start) - epoch_start;
            let hi = (range.end - epoch_start).min(frames.len());
            out.extend(frames[lo..hi].iter().cloned());
        }
        Ok(out)
    }

    /// Clones the current `(data, index)` pair under the read lock.
    fn snapshot(&self) -> Snapshot {
        let state = self.shared.state.read().unwrap();
        Snapshot { data: Arc::clone(&state.data), index: Arc::clone(&state.index) }
    }

    /// Returns `epoch`'s decoded frames, from cache or by decoding.
    ///
    /// The cache is keyed by epoch number, which is stable across refreshes:
    /// appends only ever add epochs past the current tail, so an entry
    /// decoded from an older snapshot is still correct.
    ///
    /// Concurrent requests for the same cold epoch are deduplicated: the
    /// first one in installs a [`PendingSlot`] and becomes the decode
    /// leader; later arrivals block on the slot and share the leader's
    /// result. Each request counts exactly one of `store.cache.hits` /
    /// `store.cache.misses`, while `store.buffers_decoded` counts only the
    /// decode work actually performed.
    fn epoch_frames(
        &self,
        snap: &Snapshot,
        epoch: usize,
        limits: &DecodeLimits,
    ) -> Result<Arc<Vec<Frame>>> {
        enum Role {
            Leader(Arc<PendingSlot>),
            Waiter(Arc<PendingSlot>),
        }
        let obs = &self.shared.obs;
        let mut counted_miss = false;
        loop {
            // Probe the cache; on a miss, either join the in-flight decode
            // or install a slot and become the leader.
            let role = {
                let mut cache = self.cache.lock().unwrap();
                if let Some(frames) = cache.touch(epoch) {
                    if !counted_miss {
                        obs.incr("store.cache.hits", 1);
                    }
                    return Ok(frames);
                }
                if !counted_miss {
                    counted_miss = true;
                    obs.incr("store.cache.misses", 1);
                }
                match cache.pending.get(&epoch) {
                    Some(slot) => Role::Waiter(Arc::clone(slot)),
                    None => {
                        let slot = Arc::new(PendingSlot::default());
                        cache.pending.insert(epoch, Arc::clone(&slot));
                        Role::Leader(slot)
                    }
                }
            };
            match role {
                Role::Leader(slot) => {
                    // Decode outside the cache lock so other epochs stay
                    // readable while this one is in flight.
                    let result = self.decode_epoch(snap, epoch, limits).map(Arc::new);
                    let mut cache = self.cache.lock().unwrap();
                    cache.pending.remove(&epoch);
                    if let Ok(frames) = &result {
                        cache.insert(epoch, Arc::clone(frames), self.opts.cache_epochs.max(1));
                    } else {
                        obs.incr("store.decode_errors", 1);
                    }
                    drop(cache);
                    *slot.state.lock().unwrap() =
                        PendingState::Done(result.as_ref().ok().map(Arc::clone));
                    slot.done.notify_all();
                    return result;
                }
                Role::Waiter(slot) => {
                    let mut state = slot.state.lock().unwrap();
                    while matches!(*state, PendingState::InFlight) {
                        state = slot.done.wait(state).unwrap();
                    }
                    if let PendingState::Done(Some(frames)) = &*state {
                        return Ok(Arc::clone(frames));
                    }
                    // The leader failed; loop to re-probe the cache and
                    // possibly become the new leader. The miss was already
                    // counted for this request.
                }
            }
        }
    }

    /// Decodes every buffer of `epoch` with fresh per-axis decompressors.
    ///
    /// The writer re-anchored the compressor at the epoch's first buffer, so
    /// starting from empty stream state here reproduces the sequential
    /// decode exactly; within the epoch the axis decompressors carry their
    /// state from buffer to buffer as usual.
    fn decode_epoch(
        &self,
        snap: &Snapshot,
        epoch: usize,
        limits: &DecodeLimits,
    ) -> Result<Vec<Frame>> {
        let idx = &snap.index;
        let data = &snap.data;
        let blocks = idx.epoch_blocks(epoch);
        if blocks.is_empty() {
            return Err(MdzError::BadInput("epoch index out of bounds"));
        }
        let containers = idx.blocks[blocks.clone()]
            .iter()
            .map(|b| record_at(data, b.offset))
            .collect::<Result<Vec<&[u8]>>>()?;
        let expected_frames: usize = idx.blocks[blocks.clone()].iter().map(|b| b.n_frames).sum();

        // The three axis streams are independent; decode them concurrently.
        let decode_axis = |axis: usize| -> Result<Vec<Vec<f64>>> {
            let mut dec = Decompressor::with_limits(*limits);
            dec.set_obs(self.shared.obs.clone());
            let mut snapshots = Vec::new();
            for container in &containers {
                let parts = split_container(container)?;
                if idx.f32_source {
                    let narrow = dec.decompress_block_f32(parts[axis])?;
                    snapshots.extend(
                        narrow
                            .into_iter()
                            .map(|s| s.into_iter().map(f64::from).collect::<Vec<f64>>()),
                    );
                } else {
                    snapshots.extend(dec.decompress_block(parts[axis])?);
                }
            }
            Ok(snapshots)
        };
        let (x, y, z) = std::thread::scope(|s| {
            let hy = s.spawn(|| decode_axis(1));
            let hz = s.spawn(|| decode_axis(2));
            let x = decode_axis(0);
            (x, join_axis(hy.join()), join_axis(hz.join()))
        });
        let (x, y, z) = (x?, y?, z?);

        if x.len() != expected_frames || y.len() != expected_frames || z.len() != expected_frames {
            return Err(MdzError::Corrupt { what: "epoch frame count disagrees with index" });
        }
        let mut frames = Vec::with_capacity(expected_frames);
        for ((sx, sy), sz) in x.into_iter().zip(y).zip(z) {
            if sx.len() != idx.n_atoms || sy.len() != idx.n_atoms || sz.len() != idx.n_atoms {
                return Err(MdzError::Corrupt { what: "axis atom count disagrees with header" });
            }
            frames.push(Frame::new(sx, sy, sz));
        }
        self.shared.obs.incr("store.buffers_decoded", containers.len() as u64);
        Ok(frames)
    }
}

/// A consistent `(data, index)` pair taken once per read.
struct Snapshot {
    data: Arc<Vec<u8>>,
    index: Arc<ArchiveIndex>,
}

/// Checks that `new` extends `old` without rewriting anything a reader may
/// already have decoded or cached. Returns the violated invariant.
fn validate_monotone_extension(
    old: &ArchiveIndex,
    new: &ArchiveIndex,
) -> std::result::Result<(), &'static str> {
    if new.version != old.version
        || new.f32_source != old.f32_source
        || new.n_atoms != old.n_atoms
        || new.buffer_size != old.buffer_size
    {
        return Err("refresh: archive geometry changed");
    }
    if new.n_frames < old.n_frames {
        return Err("refresh: frame count went backwards");
    }
    if new.n_frames > old.n_frames && old.n_frames % old.buffer_size != 0 {
        return Err("refresh: a partial tail block was extended in place");
    }
    if new.blocks.len() < old.blocks.len()
        || old.blocks.iter().zip(&new.blocks).any(|(o, n)| o.offset != n.offset)
    {
        return Err("refresh: published block offsets changed");
    }
    if new.epoch_starts.len() < old.epoch_starts.len()
        || old.epoch_starts != new.epoch_starts[..old.epoch_starts.len()]
    {
        return Err("refresh: published epoch anchors changed");
    }
    Ok(())
}

/// Maps an axis-decode thread's join result into the reader's error type.
///
/// A panic on a worker thread must not take the whole process (and every
/// other connection a server is juggling) down with it: the panic payload
/// is dropped here and surfaces as a [`MdzError::Corrupt`] on this request
/// only, which the caller's decode-error accounting then counts like any
/// other failed decode.
fn join_axis<T>(joined: std::thread::Result<Result<T>>) -> Result<T> {
    match joined {
        Ok(r) => r,
        Err(_payload) => Err(MdzError::Corrupt { what: "axis decode thread panicked" }),
    }
}

impl std::fmt::Debug for StoreReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let idx = self.index();
        f.debug_struct("StoreReader")
            .field("n_frames", &idx.n_frames)
            .field("n_blocks", &idx.blocks.len())
            .field("epoch_interval", &idx.epoch_interval)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::{append_store, write_store, StoreOptions};
    use crate::io::MemIo;
    use mdz_core::{ErrorBound, MdzConfig};

    fn frames(n_frames: usize, n_atoms: usize) -> Vec<Frame> {
        (0..n_frames)
            .map(|t| {
                let coord = |axis: usize| {
                    (0..n_atoms)
                        .map(|i| (i % 5) as f64 * 1.5 + t as f64 * 1e-3 + axis as f64)
                        .collect::<Vec<f64>>()
                };
                Frame::new(coord(0), coord(1), coord(2))
            })
            .collect()
    }

    fn small_store() -> StoreReader {
        let mut opts = StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(1e-3)));
        opts.buffer_size = 4;
        opts.epoch_interval = 2;
        let data = write_store(&frames(20, 8), &[], &[], &opts).unwrap();
        StoreReader::open(data).unwrap()
    }

    #[test]
    fn read_matches_full_read_on_subranges() {
        let reader = small_store();
        let full = reader.read_frames(0..20).unwrap();
        for (start, end) in [(0, 20), (0, 1), (19, 20), (3, 9), (7, 8), (4, 16), (10, 10)] {
            let part = reader.read_frames(start..end).unwrap();
            assert_eq!(part, full[start..end], "range {start}..{end}");
        }
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)] // inverted range is the point
    fn out_of_bounds_ranges_error() {
        let reader = small_store();
        assert!(reader.read_frames(0..21).is_err());
        assert!(reader.read_frames(5..4).is_err());
        assert!(reader.read_frames(0..0).unwrap().is_empty());
    }

    #[test]
    fn cache_hits_and_misses_are_counted() {
        let reader = small_store();
        reader.read_frames(0..4).unwrap();
        let after_first = reader.stats();
        assert_eq!(after_first.cache_misses, 1);
        assert_eq!(after_first.cache_hits, 0);
        reader.read_frames(4..8).unwrap(); // same epoch (K=2, bs=4)
        let after_second = reader.stats();
        assert_eq!(after_second.cache_misses, 1);
        assert_eq!(after_second.cache_hits, 1);
        assert_eq!(after_second.buffers_decoded, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used_epoch() {
        let mut opts = StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(1e-3)));
        opts.buffer_size = 2;
        opts.epoch_interval = 1;
        let data = write_store(&frames(12, 4), &[], &[], &opts).unwrap();
        let reader = StoreReader::with_options(
            data,
            ReaderOptions { cache_epochs: 2, ..Default::default() },
        )
        .unwrap();
        reader.read_frames(0..2).unwrap(); // epoch 0: miss
        reader.read_frames(2..4).unwrap(); // epoch 1: miss
        reader.read_frames(0..2).unwrap(); // epoch 0: hit (now most recent)
        reader.read_frames(4..6).unwrap(); // epoch 2: miss, evicts epoch 1
        reader.read_frames(2..4).unwrap(); // epoch 1: miss again
        let s = reader.stats();
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 4);
    }

    #[test]
    fn eviction_pops_strictly_by_recency_order() {
        let mut cache = EpochCache::default();
        let f = Arc::new(Vec::new());
        for epoch in 0..3 {
            cache.insert(epoch, Arc::clone(&f), 3);
        }
        // Recency is now 0 < 1 < 2; touching 0 makes 1 the LRU.
        assert!(cache.touch(0).is_some());
        cache.insert(3, Arc::clone(&f), 3); // evicts 1
        assert!(cache.map.contains_key(&0));
        assert!(!cache.map.contains_key(&1));
        cache.insert(4, Arc::clone(&f), 3); // evicts 2
        assert!(!cache.map.contains_key(&2));
        cache.insert(5, Arc::clone(&f), 3); // evicts 0 (older than 3 and 4)
        assert!(!cache.map.contains_key(&0));
        assert_eq!(cache.map.len(), 3);
        // The recency index mirrors the map exactly: eviction pops the
        // smallest tick instead of scanning `map`.
        assert_eq!(cache.by_tick.len(), cache.map.len());
        let mut live: Vec<usize> = cache.by_tick.values().copied().collect();
        live.sort_unstable();
        assert_eq!(live, vec![3, 4, 5]);
        for (&tick, epoch) in &cache.by_tick {
            assert_eq!(cache.map[epoch].last_used, tick);
        }
    }

    #[test]
    fn racing_cold_readers_share_one_decode() {
        // Install a fake in-flight slot so every thread below registers its
        // miss and parks before any real decode can start; failing that
        // fake leader then releases them all at once, and exactly one
        // becomes the real leader while the rest share its result.
        let reader = small_store();
        let slot = Arc::new(PendingSlot::default());
        reader.cache.lock().unwrap().pending.insert(0, Arc::clone(&slot));

        const THREADS: usize = 4;
        let full = std::thread::scope(|s| {
            let handles: Vec<_> =
                (0..THREADS).map(|_| s.spawn(|| reader.read_frames(0..4).unwrap())).collect();
            // Misses are counted in the same critical section that joins
            // the pending slot, so once all are counted every thread holds
            // the fake slot as a waiter.
            while reader.stats().cache_misses < THREADS as u64 {
                std::thread::yield_now();
            }
            reader.cache.lock().unwrap().pending.remove(&0);
            *slot.state.lock().unwrap() = PendingState::Done(None);
            slot.done.notify_all();
            handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
        });
        for part in &full {
            assert_eq!(part, &full[0]);
        }
        let s = reader.stats();
        // Every request missed exactly once, and the epoch (2 buffers) was
        // decoded exactly once, no matter how the threads interleaved.
        assert_eq!(s.cache_misses, THREADS as u64);
        assert_eq!(s.cache_hits, 0);
        assert_eq!(s.buffers_decoded, 2);
        assert_eq!(s.decode_errors, 0);
    }

    #[test]
    fn tight_limits_are_enforced_and_counted() {
        let reader = {
            let mut opts = StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(1e-3)));
            opts.buffer_size = 4;
            opts.epoch_interval = 2;
            let data = write_store(&frames(8, 8), &[], &[], &opts).unwrap();
            StoreReader::open(data).unwrap()
        };
        let tight = DecodeLimits { max_snapshots: 1, ..Default::default() };
        let err = reader.read_frames_limited(0..4, &tight).unwrap_err();
        assert!(matches!(err, MdzError::LimitExceeded { .. }), "{err:?}");
        assert_eq!(reader.stats().decode_errors, 1);
    }

    #[test]
    fn panicked_axis_thread_maps_to_corrupt_error() {
        let joined = std::thread::scope(|s| {
            s.spawn(|| -> Result<Vec<Vec<f64>>> { panic!("injected axis panic") }).join()
        });
        let err = join_axis(joined).unwrap_err();
        assert_eq!(err, MdzError::Corrupt { what: "axis decode thread panicked" });
    }

    #[test]
    fn shared_registry_sees_reader_counters() {
        let mut opts = StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(1e-3)));
        opts.buffer_size = 4;
        opts.epoch_interval = 2;
        let data = write_store(&frames(8, 8), &[], &[], &opts).unwrap();
        let registry = Arc::new(Registry::new());
        let reader =
            StoreReader::with_registry(data, ReaderOptions::default(), Arc::clone(&registry))
                .unwrap();
        reader.read_frames(0..8).unwrap();
        assert_eq!(registry.counter("store.cache.misses"), 1);
        assert_eq!(registry.counter("store.buffers_decoded"), 2);
        // The axis decompressors record pipeline metrics into the same
        // registry: 3 axes × 2 buffers.
        assert_eq!(registry.counter("core.decode.blocks"), 6);
        assert!(reader.metrics().histogram("core.decode.reconstruct_seconds").is_some());
    }

    fn store_opts() -> StoreOptions {
        let mut opts = StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(1e-3)));
        opts.buffer_size = 4;
        opts.epoch_interval = 2;
        opts
    }

    #[test]
    fn refresh_publishes_appended_frames_to_existing_clones() {
        let all = frames(16, 6);
        let base = write_store(&all[..8], &[], &[], &store_opts()).unwrap();
        let reader = StoreReader::open(base.clone()).unwrap();
        let clone = reader.clone();
        assert_eq!(clone.index().n_frames, 8);

        let mut io = MemIo::new(base);
        append_store(&mut io, &all[8..], &store_opts()).unwrap();
        let grown = io.into_bytes();
        let report = reader.refresh(grown.clone()).unwrap();
        assert_eq!(report.frames_added, 8);
        assert_eq!(report.n_frames, 16);
        assert_eq!(report.truncated_bytes, 0);
        // The clone sees the new tail and it matches an offline decode.
        assert_eq!(clone.index().n_frames, 16);
        let offline = StoreReader::open(grown).unwrap().read_frames(0..16).unwrap();
        assert_eq!(clone.read_frames(0..16).unwrap(), offline);
        assert_eq!(reader.recorder().counter("reader.refresh.count"), 1);
        assert_eq!(reader.recorder().counter("reader.refresh.frames_added"), 8);
    }

    #[test]
    fn refresh_with_torn_tail_keeps_last_durable_footer() {
        let all = frames(16, 6);
        let base = write_store(&all[..8], &[], &[], &store_opts()).unwrap();
        let reader = StoreReader::open(base.clone()).unwrap();
        let mut io = MemIo::new(base.clone());
        append_store(&mut io, &all[8..], &store_opts()).unwrap();
        let mut torn = io.into_bytes();
        torn.extend_from_slice(b"in-flight append, footer not yet durable");
        let report = reader.refresh(torn).unwrap();
        assert_eq!(report.frames_added, 8);
        assert_eq!(report.truncated_bytes, 40);
        assert_eq!(reader.index().n_frames, 16);
    }

    #[test]
    fn refresh_rejects_non_monotone_images() {
        let all = frames(16, 6);
        let base = write_store(&all[..8], &[], &[], &store_opts()).unwrap();
        let mut io = MemIo::new(base.clone());
        append_store(&mut io, &all[8..], &store_opts()).unwrap();
        let grown = io.into_bytes();

        let reader = StoreReader::open(grown.clone()).unwrap();
        // Shrinking back to the base image must be rejected.
        let err = reader.refresh(base).unwrap_err();
        assert!(matches!(err, MdzError::Corrupt { .. }), "{err:?}");
        assert_eq!(reader.index().n_frames, 16);
        // A different archive with other geometry must be rejected too.
        let other = write_store(&frames(8, 5), &[], &[], &store_opts()).unwrap();
        assert!(reader.refresh(other).is_err());
        assert_eq!(reader.recorder().counter("reader.refresh.rejected"), 2);
        // The identical image is a no-op refresh (still counted).
        let report = reader.refresh(grown).unwrap();
        assert_eq!(report.frames_added, 0);
        assert_eq!(reader.recorder().counter("reader.refresh.count"), 1);
    }

    #[test]
    fn refresh_keeps_cached_epochs_valid() {
        let all = frames(16, 6);
        let base = write_store(&all[..8], &[], &[], &store_opts()).unwrap();
        let reader = StoreReader::open(base.clone()).unwrap();
        let before = reader.read_frames(0..8).unwrap(); // warms epoch 0
        let misses_before = reader.stats().cache_misses;

        let mut io = MemIo::new(base);
        append_store(&mut io, &all[8..], &store_opts()).unwrap();
        reader.refresh(io.into_bytes()).unwrap();
        // Re-reading the old range is served from cache, bit-exact.
        let after = reader.read_frames(0..8).unwrap();
        assert_eq!(before, after);
        assert_eq!(reader.stats().cache_misses, misses_before);
    }
}
