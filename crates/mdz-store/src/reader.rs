//! Random-access reads over an indexed archive: epoch decoding, the LRU
//! cache of decoded epochs, and the shared metrics registry.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::{Arc, Mutex};

use mdz_core::traj::split_container;
use mdz_core::{DecodeLimits, Decompressor, Frame, MdzError, Obs, Result};
use mdz_obs::{MetricsSnapshot, Registry};

use crate::archive::{record_at, recover_slice, ArchiveIndex, RecoverReport};

/// Tuning knobs for [`StoreReader`].
#[derive(Debug, Clone)]
pub struct ReaderOptions {
    /// Decoded epochs kept in the cache (LRU eviction). Each entry holds the
    /// epoch's frames in full precision, so size this against
    /// `epoch_interval × buffer_size × n_atoms × 24` bytes per entry.
    pub cache_epochs: usize,
    /// Decode budget applied to every block this reader decodes.
    pub limits: DecodeLimits,
}

impl Default for ReaderOptions {
    fn default() -> Self {
        Self { cache_epochs: 4, limits: DecodeLimits::default() }
    }
}

/// A point-in-time copy of the reader's core counters, derived from the
/// shared [`Registry`] (see [`StoreReader::metrics`] for the full
/// snapshot including server-side histograms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Requests served (incremented by the serving layer, not by local reads).
    pub requests: u64,
    /// Response payload bytes written by the serving layer.
    pub bytes_out: u64,
    /// Epoch lookups satisfied from the cache.
    pub cache_hits: u64,
    /// Epoch lookups that had to decode.
    pub cache_misses: u64,
    /// Decode attempts that failed (corrupt records, budget violations).
    pub decode_errors: u64,
    /// Buffers decoded since the reader was opened. The random-access
    /// guarantee is expressed against this counter: one `read_frames` call
    /// touching a single buffer grows it by at most one epoch's worth.
    pub buffers_decoded: u64,
}

struct CacheEntry {
    last_used: u64,
    frames: Arc<Vec<Frame>>,
}

#[derive(Default)]
struct EpochCache {
    map: HashMap<usize, CacheEntry>,
    tick: u64,
}

struct Store {
    data: Vec<u8>,
    index: ArchiveIndex,
    opts: ReaderOptions,
    cache: Mutex<EpochCache>,
    /// Shared metrics registry: the reader's `store.*` counters land here
    /// alongside whatever the serving layer and the core pipeline record.
    registry: Arc<Registry>,
    /// Recorder handle passed to the per-axis decompressors, so pipeline
    /// stage timings (`core.decode.*`) accrue to the same registry.
    obs: Obs,
}

/// A cheaply cloneable handle for random-access reads over one archive.
///
/// All clones share the archive bytes, the epoch cache, and the stats
/// counters, so a server can hand one clone to each worker thread.
#[derive(Clone)]
pub struct StoreReader {
    store: Arc<Store>,
}

impl StoreReader {
    /// Parses `data` (a version-1 or version-2 archive) with default options.
    pub fn open(data: Vec<u8>) -> Result<Self> {
        Self::with_options(data, ReaderOptions::default())
    }

    /// Parses `data` with explicit cache and decode-budget options,
    /// recording into a fresh private [`Registry`].
    pub fn with_options(data: Vec<u8>, opts: ReaderOptions) -> Result<Self> {
        Self::with_registry(data, opts, Arc::new(Registry::new()))
    }

    /// Parses `data` recording into a caller-supplied [`Registry`] — use
    /// this to aggregate reader, server, and pipeline metrics in one place
    /// (the serving layer snapshots it for the METRICS verb).
    pub fn with_registry(
        data: Vec<u8>,
        opts: ReaderOptions,
        registry: Arc<Registry>,
    ) -> Result<Self> {
        let index = ArchiveIndex::parse(&data)?;
        let obs = Obs::new(Arc::clone(&registry) as Arc<dyn mdz_core::Recorder>);
        Ok(Self {
            store: Arc::new(Store {
                data,
                index,
                opts,
                cache: Mutex::new(EpochCache::default()),
                registry,
                obs,
            }),
        })
    }

    /// Opens `data` after a crash: scans back to the last valid footer,
    /// drops any garbage tail (a torn append), and reads the archive as of
    /// that footer. Equivalent to [`open`](Self::open) when the archive is
    /// cleanly closed. The in-memory copy is truncated; use
    /// [`crate::recover_store`] to repair the file itself.
    pub fn recover(data: Vec<u8>) -> Result<(Self, RecoverReport)> {
        Self::recover_with_registry(data, ReaderOptions::default(), Arc::new(Registry::new()))
    }

    /// [`recover`](Self::recover) with explicit options and a caller
    /// registry. Records `store.recover.count` and
    /// `store.recover.truncated_bytes` when a tail was dropped.
    pub fn recover_with_registry(
        mut data: Vec<u8>,
        opts: ReaderOptions,
        registry: Arc<Registry>,
    ) -> Result<(Self, RecoverReport)> {
        let (valid_len, _) = recover_slice(&data)?;
        let truncated_bytes = data.len() - valid_len;
        data.truncate(valid_len);
        let reader = Self::with_registry(data, opts, registry)?;
        if truncated_bytes > 0 {
            reader.store.obs.incr("store.recover.count", 1);
            reader.store.obs.incr("store.recover.truncated_bytes", truncated_bytes as u64);
        }
        Ok((reader, RecoverReport { valid_len, truncated_bytes }))
    }

    /// The parsed header and block index.
    pub fn index(&self) -> &ArchiveIndex {
        &self.store.index
    }

    /// The shared metrics registry every clone of this reader records into.
    pub fn recorder(&self) -> Arc<Registry> {
        Arc::clone(&self.store.registry)
    }

    /// A full point-in-time snapshot of every metric recorded against this
    /// reader's registry (counters, gauges, and latency histograms).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.store.registry.snapshot()
    }

    /// A point-in-time copy of the core counters.
    pub fn stats(&self) -> StatsSnapshot {
        let r = &self.store.registry;
        StatsSnapshot {
            requests: r.counter("store.requests"),
            bytes_out: r.counter("store.bytes_out"),
            cache_hits: r.counter("store.cache.hits"),
            cache_misses: r.counter("store.cache.misses"),
            decode_errors: r.counter("store.decode_errors"),
            buffers_decoded: r.counter("store.buffers_decoded"),
        }
    }

    /// Records one served request and its response payload size. Called by
    /// the serving layer; local [`read_frames`](Self::read_frames) calls do
    /// not count as requests.
    pub fn record_request(&self, bytes_out: u64) {
        self.store.obs.incr("store.requests", 1);
        self.store.obs.incr("store.bytes_out", bytes_out);
    }

    /// Records a request that failed before a payload was produced.
    pub fn record_failed_request(&self) {
        self.store.obs.incr("store.requests", 1);
    }

    /// Decodes the frames in `range` (end-exclusive), touching only the
    /// epochs that overlap it.
    ///
    /// Reads go through the shared epoch cache; a miss decodes the whole
    /// containing epoch with this reader's [`DecodeLimits`] and caches it.
    /// The result is byte-identical to slicing the same range out of a full
    /// sequential decompression of the archive.
    pub fn read_frames(&self, range: Range<usize>) -> Result<Vec<Frame>> {
        self.read_frames_limited(range, &self.store.opts.limits)
    }

    /// [`read_frames`](Self::read_frames) with a caller-supplied decode
    /// budget — the serving layer passes its per-connection limits here.
    /// Cache hits bypass the budget (the work was already done).
    pub fn read_frames_limited(
        &self,
        range: Range<usize>,
        limits: &DecodeLimits,
    ) -> Result<Vec<Frame>> {
        let idx = &self.store.index;
        if range.start > range.end || range.end > idx.n_frames {
            return Err(MdzError::BadInput("frame range out of bounds"));
        }
        if range.is_empty() {
            return Ok(Vec::new());
        }
        // Epoch boundaries are irregular after appends (each appended
        // segment anchors its own epochs), so map frames through the
        // index's epoch-start list rather than a fixed stride.
        let first_epoch = idx.epoch_of_frame(range.start);
        let last_epoch = idx.epoch_of_frame(range.end - 1);
        let mut out = Vec::new();
        for epoch in first_epoch..=last_epoch {
            let frames = self.epoch_frames(epoch, limits)?;
            let epoch_start = idx.epoch_frame_start(epoch);
            let lo = range.start.max(epoch_start) - epoch_start;
            let hi = (range.end - epoch_start).min(frames.len());
            out.extend(frames[lo..hi].iter().cloned());
        }
        Ok(out)
    }

    /// Returns `epoch`'s decoded frames, from cache or by decoding.
    fn epoch_frames(&self, epoch: usize, limits: &DecodeLimits) -> Result<Arc<Vec<Frame>>> {
        let obs = &self.store.obs;
        {
            let mut cache = self.store.cache.lock().unwrap();
            cache.tick += 1;
            let tick = cache.tick;
            if let Some(entry) = cache.map.get_mut(&epoch) {
                entry.last_used = tick;
                obs.incr("store.cache.hits", 1);
                return Ok(Arc::clone(&entry.frames));
            }
        }
        // Decode outside the lock so other epochs stay readable. Two threads
        // racing on the same cold epoch may both decode it — the counters
        // report the work actually done, and the cache keeps one copy.
        obs.incr("store.cache.misses", 1);
        let frames = match self.decode_epoch(epoch, limits) {
            Ok(f) => Arc::new(f),
            Err(e) => {
                obs.incr("store.decode_errors", 1);
                return Err(e);
            }
        };
        let mut cache = self.store.cache.lock().unwrap();
        cache.tick += 1;
        let tick = cache.tick;
        while cache.map.len() >= self.store.opts.cache_epochs.max(1) {
            let Some((&oldest, _)) = cache.map.iter().min_by_key(|(_, entry)| entry.last_used)
            else {
                break;
            };
            cache.map.remove(&oldest);
        }
        cache.map.insert(epoch, CacheEntry { last_used: tick, frames: Arc::clone(&frames) });
        Ok(frames)
    }

    /// Decodes every buffer of `epoch` with fresh per-axis decompressors.
    ///
    /// The writer re-anchored the compressor at the epoch's first buffer, so
    /// starting from empty stream state here reproduces the sequential
    /// decode exactly; within the epoch the axis decompressors carry their
    /// state from buffer to buffer as usual.
    fn decode_epoch(&self, epoch: usize, limits: &DecodeLimits) -> Result<Vec<Frame>> {
        let store = &*self.store;
        let idx = &store.index;
        let blocks = idx.epoch_blocks(epoch);
        if blocks.is_empty() {
            return Err(MdzError::BadInput("epoch index out of bounds"));
        }
        let containers = idx.blocks[blocks.clone()]
            .iter()
            .map(|b| record_at(&store.data, b.offset))
            .collect::<Result<Vec<&[u8]>>>()?;
        let expected_frames: usize = idx.blocks[blocks.clone()].iter().map(|b| b.n_frames).sum();

        // The three axis streams are independent; decode them concurrently.
        let decode_axis = |axis: usize| -> Result<Vec<Vec<f64>>> {
            let mut dec = Decompressor::with_limits(*limits);
            dec.set_obs(self.store.obs.clone());
            let mut snapshots = Vec::new();
            for container in &containers {
                let parts = split_container(container)?;
                if idx.f32_source {
                    let narrow = dec.decompress_block_f32(parts[axis])?;
                    snapshots.extend(
                        narrow
                            .into_iter()
                            .map(|s| s.into_iter().map(f64::from).collect::<Vec<f64>>()),
                    );
                } else {
                    snapshots.extend(dec.decompress_block(parts[axis])?);
                }
            }
            Ok(snapshots)
        };
        let (x, y, z) = std::thread::scope(|s| {
            let hy = s.spawn(|| decode_axis(1));
            let hz = s.spawn(|| decode_axis(2));
            let x = decode_axis(0);
            (x, join_axis(hy.join()), join_axis(hz.join()))
        });
        let (x, y, z) = (x?, y?, z?);

        if x.len() != expected_frames || y.len() != expected_frames || z.len() != expected_frames {
            return Err(MdzError::Corrupt { what: "epoch frame count disagrees with index" });
        }
        let mut frames = Vec::with_capacity(expected_frames);
        for ((sx, sy), sz) in x.into_iter().zip(y).zip(z) {
            if sx.len() != idx.n_atoms || sy.len() != idx.n_atoms || sz.len() != idx.n_atoms {
                return Err(MdzError::Corrupt { what: "axis atom count disagrees with header" });
            }
            frames.push(Frame::new(sx, sy, sz));
        }
        self.store.obs.incr("store.buffers_decoded", containers.len() as u64);
        Ok(frames)
    }
}

/// Maps an axis-decode thread's join result into the reader's error type.
///
/// A panic on a worker thread must not take the whole process (and every
/// other connection a server is juggling) down with it: the panic payload
/// is dropped here and surfaces as a [`MdzError::Corrupt`] on this request
/// only, which the caller's decode-error accounting then counts like any
/// other failed decode.
fn join_axis<T>(joined: std::thread::Result<Result<T>>) -> Result<T> {
    match joined {
        Ok(r) => r,
        Err(_payload) => Err(MdzError::Corrupt { what: "axis decode thread panicked" }),
    }
}

impl std::fmt::Debug for StoreReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreReader")
            .field("n_frames", &self.store.index.n_frames)
            .field("n_blocks", &self.store.index.blocks.len())
            .field("epoch_interval", &self.store.index.epoch_interval)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::{write_store, StoreOptions};
    use mdz_core::{ErrorBound, MdzConfig};

    fn frames(n_frames: usize, n_atoms: usize) -> Vec<Frame> {
        (0..n_frames)
            .map(|t| {
                let coord = |axis: usize| {
                    (0..n_atoms)
                        .map(|i| (i % 5) as f64 * 1.5 + t as f64 * 1e-3 + axis as f64)
                        .collect::<Vec<f64>>()
                };
                Frame::new(coord(0), coord(1), coord(2))
            })
            .collect()
    }

    fn small_store() -> StoreReader {
        let mut opts = StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(1e-3)));
        opts.buffer_size = 4;
        opts.epoch_interval = 2;
        let data = write_store(&frames(20, 8), &[], &[], &opts).unwrap();
        StoreReader::open(data).unwrap()
    }

    #[test]
    fn read_matches_full_read_on_subranges() {
        let reader = small_store();
        let full = reader.read_frames(0..20).unwrap();
        for (start, end) in [(0, 20), (0, 1), (19, 20), (3, 9), (7, 8), (4, 16), (10, 10)] {
            let part = reader.read_frames(start..end).unwrap();
            assert_eq!(part, full[start..end], "range {start}..{end}");
        }
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)] // inverted range is the point
    fn out_of_bounds_ranges_error() {
        let reader = small_store();
        assert!(reader.read_frames(0..21).is_err());
        assert!(reader.read_frames(5..4).is_err());
        assert!(reader.read_frames(0..0).unwrap().is_empty());
    }

    #[test]
    fn cache_hits_and_misses_are_counted() {
        let reader = small_store();
        reader.read_frames(0..4).unwrap();
        let after_first = reader.stats();
        assert_eq!(after_first.cache_misses, 1);
        assert_eq!(after_first.cache_hits, 0);
        reader.read_frames(4..8).unwrap(); // same epoch (K=2, bs=4)
        let after_second = reader.stats();
        assert_eq!(after_second.cache_misses, 1);
        assert_eq!(after_second.cache_hits, 1);
        assert_eq!(after_second.buffers_decoded, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used_epoch() {
        let mut opts = StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(1e-3)));
        opts.buffer_size = 2;
        opts.epoch_interval = 1;
        let data = write_store(&frames(12, 4), &[], &[], &opts).unwrap();
        let reader = StoreReader::with_options(
            data,
            ReaderOptions { cache_epochs: 2, ..Default::default() },
        )
        .unwrap();
        reader.read_frames(0..2).unwrap(); // epoch 0: miss
        reader.read_frames(2..4).unwrap(); // epoch 1: miss
        reader.read_frames(0..2).unwrap(); // epoch 0: hit (now most recent)
        reader.read_frames(4..6).unwrap(); // epoch 2: miss, evicts epoch 1
        reader.read_frames(2..4).unwrap(); // epoch 1: miss again
        let s = reader.stats();
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 4);
    }

    #[test]
    fn tight_limits_are_enforced_and_counted() {
        let reader = {
            let mut opts = StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(1e-3)));
            opts.buffer_size = 4;
            opts.epoch_interval = 2;
            let data = write_store(&frames(8, 8), &[], &[], &opts).unwrap();
            StoreReader::open(data).unwrap()
        };
        let tight = DecodeLimits { max_snapshots: 1, ..Default::default() };
        let err = reader.read_frames_limited(0..4, &tight).unwrap_err();
        assert!(matches!(err, MdzError::LimitExceeded { .. }), "{err:?}");
        assert_eq!(reader.stats().decode_errors, 1);
    }

    #[test]
    fn panicked_axis_thread_maps_to_corrupt_error() {
        let joined = std::thread::scope(|s| {
            s.spawn(|| -> Result<Vec<Vec<f64>>> { panic!("injected axis panic") }).join()
        });
        let err = join_axis(joined).unwrap_err();
        assert_eq!(err, MdzError::Corrupt { what: "axis decode thread panicked" });
    }

    #[test]
    fn shared_registry_sees_reader_counters() {
        let mut opts = StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(1e-3)));
        opts.buffer_size = 4;
        opts.epoch_interval = 2;
        let data = write_store(&frames(8, 8), &[], &[], &opts).unwrap();
        let registry = Arc::new(Registry::new());
        let reader =
            StoreReader::with_registry(data, ReaderOptions::default(), Arc::clone(&registry))
                .unwrap();
        reader.read_frames(0..8).unwrap();
        assert_eq!(registry.counter("store.cache.misses"), 1);
        assert_eq!(registry.counter("store.buffers_decoded"), 2);
        // The axis decompressors record pipeline metrics into the same
        // registry: 3 axes × 2 buffers.
        assert_eq!(registry.counter("core.decode.blocks"), 6);
        assert!(reader.metrics().histogram("core.decode.reconstruct_seconds").is_some());
    }
}
