//! mdz-store: a random-access indexed trajectory store and query server for
//! MDZ archives.
//!
//! The MDZ pipeline is stream-oriented: VQT/MT predictors chain each buffer
//! to its predecessors, so a plain archive only decodes front to back. This
//! crate makes stored trajectories *seekable* and *servable*:
//!
//! * **Indexed archives** ([`archive`]) — container version 2 re-anchors the
//!   compressor every `epoch_interval` buffers and appends a checksummed
//!   footer index of block offsets, so reading any frame costs one epoch of
//!   decoding instead of the whole prefix. Version-1 archives still open
//!   (as a single epoch).
//! * **Random-access reads** ([`reader`]) — [`StoreReader::read_frames`]
//!   maps a frame range to its epochs, decodes through an LRU cache of
//!   decoded epochs, and records into a shared metrics [`Registry`]
//!   (core counters also surface as a [`StatsSnapshot`]).
//! * **Serving** ([`server`], [`client`], [`protocol`]) — `mdzd` answers
//!   GET/STATS/INFO/METRICS requests over a length-prefixed binary
//!   protocol on TCP, with per-connection decode budgets; built entirely
//!   on `std`. METRICS returns the full registry snapshot
//!   ([`MetricsSnapshot`]): request/cache/error counters plus per-request
//!   latency histograms.
//! * **Live ingest** ([`AppendSink`], [`StoreReader::refresh`],
//!   [`Follower`]) — a server started with an append sink also answers
//!   APPEND: frames are compressed server-side under the footer-flip
//!   protocol and acknowledged only once durable, the shared reader
//!   refreshes in place (cached epochs stay valid), and clients tail the
//!   growing archive with [`Client::follow`].
//! * **Crash consistency** ([`io`], [`append_store`], [`recover_store`]) —
//!   archives are appendable under a footer-flip protocol (new blocks, data
//!   sync, new footer, footer sync), all storage flows through the
//!   [`StoreIo`] trait, and a deterministic fault injector ([`FaultIo`])
//!   proves that a crash at any write leaves the archive readable as either
//!   the pre-append or post-append state. [`StoreReader::recover`] and
//!   [`verify_archive`] expose the recovery scan and a full integrity walk.
//!
//! # Example
//!
//! ```
//! use mdz_core::{ErrorBound, Frame, MdzConfig};
//! use mdz_store::{write_store, StoreOptions, StoreReader};
//!
//! let frames: Vec<Frame> = (0..32)
//!     .map(|t| {
//!         let axis: Vec<f64> = (0..10).map(|i| i as f64 + t as f64 * 1e-3).collect();
//!         Frame::new(axis.clone(), axis.clone(), axis)
//!     })
//!     .collect();
//! let mut opts = StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(1e-3)));
//! opts.buffer_size = 4;
//! opts.epoch_interval = 2;
//! let archive = write_store(&frames, &[], &[], &opts).unwrap();
//! let reader = StoreReader::open(archive).unwrap();
//! let middle = reader.read_frames(10..14).unwrap();
//! assert_eq!(middle.len(), 4);
//! ```

#![deny(missing_docs)]

pub mod archive;
pub mod client;
pub mod io;
#[cfg(any(target_os = "linux", target_os = "macos"))]
pub(crate) mod net;
pub mod protocol;
pub mod reader;
pub mod server;

pub use archive::{
    append_store, create_store, recover_slice, recover_store, verify_archive, write_store,
    AppendReport, ArchiveIndex, BlockEntry, Precision, RecoverReport, StoreOptions, VerifyFault,
    VerifyReport,
};
pub use client::{
    connect_with_retry, get_with_retry, with_retry, Client, ClientError, Follower, Reply,
    RetryPolicy, RetryStage,
};
pub use io::{FaultIo, FaultMode, FaultPlan, FileIo, MemIo, StoreIo};
pub use mdz_obs::{HistogramSnapshot, MetricsSnapshot, Obs, Registry};
pub use protocol::{AppendAck, FrameDecoder, FrameError, Request, Status, StoreInfo};
pub use reader::{ReaderOptions, RefreshReport, StatsSnapshot, StoreReader};
pub use server::{AppendSink, Engine, Server, ServerConfig, ServerHandle};
