//! A blocking client for the `mdzd` protocol, with an optional
//! retry-with-backoff policy for transient failures and a tail-following
//! reader for live archives.
//!
//! Error classification drives retries: connect failures and I/O timeouts
//! are transient (the request may simply never have reached the server);
//! BUSY is the server shedding load and is retryable after a backoff;
//! every other application error (bad range, corrupt archive, protocol
//! violations, a connection dying mid-response) is *not* retried — the
//! failure is real, or retrying could observe a half-processed request.
//!
//! [`Client::follow`] turns a connection into a [`Follower`] that polls the
//! server's INFO frame count and streams newly durable frames as they land,
//! transparently reconnecting across server restarts (INFO and GET are
//! idempotent, so a retried poll can never double-deliver).

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::ops::Range;
use std::time::Duration;

use mdz_core::Frame;
use mdz_obs::{MetricsSnapshot, Obs};

use crate::archive::Precision;
use crate::protocol::{
    parse_append_ack, parse_frames, parse_info, parse_metrics, parse_stats, read_message,
    write_message, AppendAck, Request, Status, StoreInfo,
};
use crate::reader::StatsSnapshot;

/// Errors a [`Client`] can surface.
///
/// # Examples
///
/// ```
/// use mdz_store::{ClientError, Status};
///
/// let err = ClientError::Server { status: Status::OutOfRange, message: "gone".into() };
/// assert!(err.to_string().contains("OutOfRange"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The TCP connection failed; carries the rendered [`std::io::Error`].
    Io(String),
    /// An I/O operation exceeded its deadline (`TimedOut`/`WouldBlock`).
    /// Split from [`ClientError::Io`] so retry policies can treat timeouts
    /// as transient.
    Timeout(String),
    /// The server answered with a non-OK status.
    Server {
        /// The wire status code.
        status: Status,
        /// The server's human-readable message.
        message: String,
    },
    /// The server's bytes violated the protocol.
    Protocol(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Timeout(e) => write!(f, "i/o timeout: {e}"),
            ClientError::Server { status, message } => {
                write!(f, "server error ({status:?}): {message}")
            }
            ClientError::Protocol(w) => write!(f, "protocol violation: {w}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                ClientError::Timeout(e.to_string())
            }
            _ => ClientError::Io(e.to_string()),
        }
    }
}

/// Retry policy with decorrelated-jitter backoff.
///
/// Sleep durations follow the decorrelated-jitter scheme: each sleep is
/// drawn uniformly from `base ..= min(cap, prev * 3)`, which spreads
/// retrying clients apart instead of letting them thunder in lockstep.
/// Only transient errors are retried — see [`RetryPolicy::should_retry`].
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use mdz_store::RetryPolicy;
///
/// let policy = RetryPolicy { max_retries: 5, base: Duration::from_millis(10), ..Default::default() };
/// assert_eq!(policy.max_retries, 5);
/// ```
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (0 disables retrying).
    pub max_retries: u32,
    /// Minimum (and first) backoff sleep.
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
    /// Whether a [`Status::Busy`] response is retried (default true — the
    /// server shed load, backing off is exactly what it asked for).
    pub retry_busy: bool,
    /// Seed for the jitter PRNG, making backoff sequences reproducible in
    /// tests. [`RetryPolicy::default`] derives one from the process.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // Seed from process identity + wall clock: distinct across client
        // processes so their jitter decorrelates, without any extra deps.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64)
            .unwrap_or(0);
        Self {
            max_retries: 3,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(1),
            retry_busy: true,
            seed: (u64::from(std::process::id()) << 32) ^ nanos,
        }
    }
}

/// Which stage of a request an error surfaced in; connect-stage I/O errors
/// are transient (nothing was sent), request-stage ones may not be.
///
/// # Examples
///
/// ```
/// use mdz_store::{ClientError, RetryPolicy, RetryStage};
///
/// let io = ClientError::Io("refused".into());
/// let policy = RetryPolicy::default();
/// assert!(policy.should_retry(&io, RetryStage::Connect));
/// assert!(!policy.should_retry(&io, RetryStage::Request));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryStage {
    /// Establishing the TCP connection.
    Connect,
    /// Sending the request / reading the response.
    Request,
}

impl RetryPolicy {
    /// A policy that never retries.
    ///
    /// # Examples
    ///
    /// ```
    /// use mdz_store::RetryPolicy;
    ///
    /// assert_eq!(RetryPolicy::none().max_retries, 0);
    /// ```
    pub fn none() -> Self {
        RetryPolicy { max_retries: 0, ..Default::default() }
    }

    /// Whether `err`, surfaced at `stage`, is worth retrying.
    ///
    /// Retryable: any connect-stage I/O error, timeouts at either stage,
    /// and BUSY (if `retry_busy`). Never retried: application errors
    /// (`Server` with any other status), protocol violations, and
    /// request-stage I/O errors such as a mid-response disconnect — the
    /// server may have already acted on the request.
    ///
    /// # Examples
    ///
    /// ```
    /// use mdz_store::{ClientError, RetryPolicy, RetryStage, Status};
    ///
    /// let policy = RetryPolicy::default();
    /// let busy = ClientError::Server { status: Status::Busy, message: String::new() };
    /// assert!(policy.should_retry(&busy, RetryStage::Request));
    /// assert!(!policy.should_retry(&ClientError::Protocol("x"), RetryStage::Request));
    /// ```
    pub fn should_retry(&self, err: &ClientError, stage: RetryStage) -> bool {
        match err {
            ClientError::Timeout(_) => true,
            ClientError::Io(_) => stage == RetryStage::Connect,
            ClientError::Server { status: Status::Busy, .. } => self.retry_busy,
            ClientError::Server { .. } | ClientError::Protocol(_) => false,
        }
    }
}

/// splitmix64: the tiny deterministic PRNG behind the backoff jitter.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Decorrelated-jitter state: yields each backoff sleep in turn.
struct Backoff {
    policy_base: Duration,
    policy_cap: Duration,
    prev: Duration,
    rng: u64,
}

impl Backoff {
    fn new(policy: &RetryPolicy) -> Self {
        let base = policy.base.max(Duration::from_millis(1));
        Backoff {
            policy_base: base,
            policy_cap: policy.cap.max(base),
            prev: base,
            rng: policy.seed,
        }
    }

    fn next_sleep(&mut self) -> Duration {
        let lo = self.policy_base.as_nanos() as u64;
        let hi = (self.prev.as_nanos() as u64).saturating_mul(3).max(lo + 1);
        let span = hi - lo;
        let nanos = lo + splitmix64(&mut self.rng) % span;
        let sleep = Duration::from_nanos(nanos).min(self.policy_cap);
        self.prev = sleep;
        sleep
    }
}

/// Runs `attempt` under `policy`, sleeping with decorrelated jitter between
/// retries. Each attempt reports errors tagged with the [`RetryStage`] they
/// surfaced in; non-retryable errors propagate immediately. Retries are
/// counted on `obs` as `client.retries`.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use mdz_store::{with_retry, ClientError, Obs, RetryPolicy, RetryStage};
///
/// let policy = RetryPolicy { max_retries: 3, base: Duration::from_millis(1), ..Default::default() };
/// let mut calls = 0;
/// let out = with_retry(&policy, &Obs::noop(), || {
///     calls += 1;
///     if calls < 2 { Err((RetryStage::Connect, ClientError::Timeout("slow".into()))) } else { Ok(calls) }
/// });
/// assert_eq!(out.unwrap(), 2);
/// ```
pub fn with_retry<T>(
    policy: &RetryPolicy,
    obs: &Obs,
    mut attempt: impl FnMut() -> Result<T, (RetryStage, ClientError)>,
) -> Result<T, ClientError> {
    let mut backoff = Backoff::new(policy);
    let mut tries_left = policy.max_retries;
    loop {
        match attempt() {
            Ok(v) => return Ok(v),
            Err((stage, err)) => {
                if tries_left == 0 || !policy.should_retry(&err, stage) {
                    return Err(err);
                }
                tries_left -= 1;
                obs.incr("client.retries", 1);
                std::thread::sleep(backoff.next_sleep());
            }
        }
    }
}

/// Connects under `policy`, retrying transient connect failures.
///
/// # Examples
///
/// ```no_run
/// use mdz_store::{connect_with_retry, Obs, RetryPolicy};
///
/// let client = connect_with_retry("127.0.0.1:7979", &RetryPolicy::default(), &Obs::noop())?;
/// # Ok::<(), mdz_store::ClientError>(())
/// ```
pub fn connect_with_retry(
    addr: impl ToSocketAddrs,
    policy: &RetryPolicy,
    obs: &Obs,
) -> Result<Client, ClientError> {
    with_retry(policy, obs, || Client::connect(&addr).map_err(|e| (RetryStage::Connect, e)))
}

/// Fetches `range` under `policy`, opening a fresh connection per attempt
/// (GET is idempotent, and a failed connection cannot be reused). Retries
/// connect errors, timeouts, and BUSY per the policy; application errors
/// and mid-response disconnects propagate immediately.
///
/// # Examples
///
/// ```no_run
/// use mdz_store::{get_with_retry, Obs, RetryPolicy};
///
/// let frames = get_with_retry("127.0.0.1:7979", 0..10, &RetryPolicy::default(), &Obs::noop())?;
/// assert_eq!(frames.len(), 10);
/// # Ok::<(), mdz_store::ClientError>(())
/// ```
pub fn get_with_retry(
    addr: impl ToSocketAddrs,
    range: Range<usize>,
    policy: &RetryPolicy,
    obs: &Obs,
) -> Result<Vec<Frame>, ClientError> {
    with_retry(policy, obs, || {
        let mut client = Client::connect(&addr).map_err(|e| (RetryStage::Connect, e))?;
        client.get(range.clone()).map_err(|e| (RetryStage::Request, e))
    })
}

/// One successfully parsed response from [`Client::pipeline`], tagged with
/// the verb it answers.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// A GET response: the starting frame index and the decoded frames.
    Frames {
        /// Index of the first returned frame.
        start: u64,
        /// The decoded frames, in request order.
        frames: Vec<Frame>,
    },
    /// A STATS response.
    Stats(StatsSnapshot),
    /// An INFO response.
    Info(StoreInfo),
    /// A METRICS response.
    Metrics(MetricsSnapshot),
    /// An APPEND durability acknowledgment.
    Append(AppendAck),
}

/// A connected `mdzd` client. One request is in flight at a time; reconnect
/// by constructing a new client.
///
/// # Examples
///
/// ```no_run
/// use mdz_store::Client;
///
/// let mut client = Client::connect("127.0.0.1:7979")?;
/// let info = client.info()?;
/// let tail = client.get(info.n_frames as usize - 1..info.n_frames as usize)?;
/// assert_eq!(tail.len(), 1);
/// # Ok::<(), mdz_store::ClientError>(())
/// ```
pub struct Client {
    stream: TcpStream,
    max_response_bytes: usize,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use mdz_store::Client;
    ///
    /// let client = Client::connect("127.0.0.1:7979")?;
    /// # Ok::<(), mdz_store::ClientError>(())
    /// ```
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Ok(Client { stream: TcpStream::connect(addr)?, max_response_bytes: 1 << 28 })
    }

    /// Caps how large a response body this client will read (default 256 MiB).
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use mdz_store::Client;
    ///
    /// let client = Client::connect("127.0.0.1:7979")?.with_max_response_bytes(1 << 20);
    /// # Ok::<(), mdz_store::ClientError>(())
    /// ```
    pub fn with_max_response_bytes(mut self, max: usize) -> Client {
        self.max_response_bytes = max;
        self
    }

    /// Applies read/write deadlines to the underlying socket, so a stalled
    /// server surfaces as [`ClientError::Timeout`] instead of hanging.
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use std::time::Duration;
    /// use mdz_store::Client;
    ///
    /// let client = Client::connect("127.0.0.1:7979")?;
    /// client.set_timeouts(Some(Duration::from_secs(5)), Some(Duration::from_secs(5)))?;
    /// # Ok::<(), mdz_store::ClientError>(())
    /// ```
    pub fn set_timeouts(
        &self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> Result<(), ClientError> {
        self.stream.set_read_timeout(read)?;
        self.stream.set_write_timeout(write)?;
        Ok(())
    }

    fn round_trip(&mut self, req: &Request) -> Result<Vec<u8>, ClientError> {
        write_message(&mut self.stream, &req.encode())?;
        let body = read_message(&mut self.stream, self.max_response_bytes)?
            .ok_or(ClientError::Protocol("server closed the connection mid-request"))?;
        match body.first().copied().and_then(Status::from_byte) {
            Some(Status::Ok) => Ok(body),
            Some(status) => Err(ClientError::Server {
                status,
                message: String::from_utf8_lossy(&body[1..]).into_owned(),
            }),
            None => Err(ClientError::Protocol("unknown response status")),
        }
    }

    /// Fetches the frames in `range` (end-exclusive).
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use mdz_store::Client;
    ///
    /// let mut client = Client::connect("127.0.0.1:7979")?;
    /// let frames = client.get(0..4)?;
    /// assert_eq!(frames.len(), 4);
    /// # Ok::<(), mdz_store::ClientError>(())
    /// ```
    pub fn get(&mut self, range: Range<usize>) -> Result<Vec<Frame>, ClientError> {
        let body =
            self.round_trip(&Request::Get { start: range.start as u64, end: range.end as u64 })?;
        let (start, frames) = parse_frames(&body).map_err(ClientError::Protocol)?;
        if start != range.start as u64 || frames.len() != range.len() {
            return Err(ClientError::Protocol("response range disagrees with request"));
        }
        Ok(frames)
    }

    /// Fetches the server's counters.
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use mdz_store::Client;
    ///
    /// let mut client = Client::connect("127.0.0.1:7979")?;
    /// println!("requests served: {}", client.stats()?.requests);
    /// # Ok::<(), mdz_store::ClientError>(())
    /// ```
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        let body = self.round_trip(&Request::Stats)?;
        parse_stats(&body).map_err(ClientError::Protocol)
    }

    /// Fetches the served archive's metadata.
    ///
    /// On a live archive the frame count grows between calls; poll this (or
    /// use [`follow`](Self::follow)) to watch for newly durable frames.
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use mdz_store::Client;
    ///
    /// let mut client = Client::connect("127.0.0.1:7979")?;
    /// let info = client.info()?;
    /// println!("{} frames x {} atoms", info.n_frames, info.n_atoms);
    /// # Ok::<(), mdz_store::ClientError>(())
    /// ```
    pub fn info(&mut self) -> Result<StoreInfo, ClientError> {
        let body = self.round_trip(&Request::Info)?;
        parse_info(&body).map_err(ClientError::Protocol)
    }

    /// Fetches a full metrics snapshot (counters, gauges, histograms).
    ///
    /// The snapshot is taken before the server accounts for the METRICS
    /// request itself, so the returned counters cover every *prior*
    /// request.
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use mdz_store::Client;
    ///
    /// let mut client = Client::connect("127.0.0.1:7979")?;
    /// let snap = client.metrics()?;
    /// println!("{}", snap.render_text());
    /// # Ok::<(), mdz_store::ClientError>(())
    /// ```
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ClientError> {
        let body = self.round_trip(&Request::Metrics)?;
        parse_metrics(&body).map_err(ClientError::Protocol)
    }

    /// Appends `frames` to the served archive (live servers only).
    ///
    /// `precision` selects the wire encoding — use [`Precision::F32`]
    /// against an archive created with `--f32` (the server rejects a
    /// mismatch). The returned [`AppendAck`] is a durability
    /// acknowledgment: the server replies only after the appended frames
    /// are synced under a fresh footer, so an acked frame survives a
    /// server crash. On error nothing may be assumed — the append either
    /// never happened or was recovered away; re-check [`info`](Self::info)
    /// before resending (APPEND is not idempotent).
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use mdz_core::Frame;
    /// use mdz_store::{Client, Precision};
    ///
    /// let mut client = Client::connect("127.0.0.1:7979")?;
    /// let frame = Frame::new(vec![1.0], vec![2.0], vec![3.0]);
    /// let ack = client.append(&[frame], Precision::F64)?;
    /// println!("archive now holds {} frames", ack.n_frames);
    /// # Ok::<(), mdz_store::ClientError>(())
    /// ```
    pub fn append(
        &mut self,
        frames: &[Frame],
        precision: Precision,
    ) -> Result<AppendAck, ClientError> {
        let body = self.round_trip(&Request::Append { precision, frames: frames.to_vec() })?;
        parse_append_ack(&body).map_err(ClientError::Protocol)
    }

    /// Sends every request before reading any response, then returns the
    /// responses in request order — one round-trip's latency for the whole
    /// batch instead of one per request.
    ///
    /// The outer `Err` is transport death (the socket failed or the server
    /// closed mid-batch): any replies not yet read are lost and their
    /// requests' effects unknown. Each inner `Result` is that request's own
    /// typed outcome — a non-OK status or a malformed payload for one
    /// request does not disturb the others, because the server keeps
    /// serving a connection after application errors (it only hangs up on
    /// framing violations).
    ///
    /// Responses buffer in the client's socket until the batch is written,
    /// so keep the pipelined response volume below the socket buffers —
    /// a batch whose responses overflow them deadlocks against the
    /// server's write-side backpressure until a timeout fires.
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use mdz_store::{Client, Reply, Request};
    ///
    /// let mut client = Client::connect("127.0.0.1:7979")?;
    /// let replies = client.pipeline(&[
    ///     Request::Info,
    ///     Request::Get { start: 0, end: 4 },
    ///     Request::Stats,
    /// ])?;
    /// for reply in replies {
    ///     match reply? {
    ///         Reply::Info(info) => println!("{} frames", info.n_frames),
    ///         Reply::Frames { frames, .. } => println!("got {}", frames.len()),
    ///         Reply::Stats(stats) => println!("{} requests", stats.requests),
    ///         _ => {}
    ///     }
    /// }
    /// # Ok::<(), mdz_store::ClientError>(())
    /// ```
    pub fn pipeline(
        &mut self,
        requests: &[Request],
    ) -> Result<Vec<Result<Reply, ClientError>>, ClientError> {
        for request in requests {
            write_message(&mut self.stream, &request.encode())?;
        }
        let mut replies = Vec::with_capacity(requests.len());
        for request in requests {
            let body = read_message(&mut self.stream, self.max_response_bytes)?
                .ok_or(ClientError::Protocol("server closed the connection mid-request"))?;
            replies.push(parse_reply(request, &body));
        }
        Ok(replies)
    }

    /// Turns this connection into a [`Follower`] that streams frames from
    /// `from_frame` onward, polling for newly durable frames as the
    /// archive grows.
    ///
    /// # Examples
    ///
    /// ```
    /// use mdz_core::{ErrorBound, Frame, MdzConfig};
    /// use mdz_store::{
    ///     write_store, AppendSink, Client, MemIo, Precision, Server, ServerConfig,
    ///     StoreOptions, StoreReader,
    /// };
    ///
    /// let frames: Vec<Frame> = (0..8)
    ///     .map(|t| {
    ///         let axis: Vec<f64> = (0..4).map(|i| i as f64 + t as f64 * 1e-3).collect();
    ///         Frame::new(axis.clone(), axis.clone(), axis)
    ///     })
    ///     .collect();
    /// let mut opts = StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(1e-3)));
    /// opts.buffer_size = 4;
    /// opts.epoch_interval = 2;
    /// let archive = write_store(&frames[..4], &[], &[], &opts).unwrap();
    ///
    /// // A live server: the sink is a MemIo copy of the served archive.
    /// let reader = StoreReader::open(archive.clone()).unwrap();
    /// let server = Server::bind(reader, "127.0.0.1:0", ServerConfig::default())
    ///     .unwrap()
    ///     .with_append_sink(AppendSink::new(Box::new(MemIo::new(archive)), opts));
    /// let addr = server.local_addr().unwrap();
    /// let handle = server.handle().unwrap();
    /// let serving = std::thread::spawn(move || server.run());
    ///
    /// // Appended frames become visible to a follower started at frame 0.
    /// let mut producer = Client::connect(addr).unwrap();
    /// producer.append(&frames[4..], Precision::F64).unwrap();
    /// let mut follower = Client::connect(addr).unwrap().follow(0).unwrap();
    /// let mut seen = Vec::new();
    /// while seen.len() < 8 {
    ///     seen.extend(follower.next_batch().unwrap());
    /// }
    /// assert_eq!(follower.position(), 8);
    ///
    /// handle.shutdown();
    /// serving.join().unwrap().unwrap();
    /// ```
    pub fn follow(self, from_frame: usize) -> Result<Follower, ClientError> {
        let addr = self.stream.peer_addr()?;
        Ok(Follower {
            addr,
            conn: Some(self),
            next: from_frame,
            poll_interval: Duration::from_millis(100),
            max_batch: 1 << 12,
            obs: Obs::noop(),
        })
    }
}

/// Types one pipelined response body by the request it answers.
fn parse_reply(request: &Request, body: &[u8]) -> Result<Reply, ClientError> {
    match body.first().copied().and_then(Status::from_byte) {
        Some(Status::Ok) => {}
        Some(status) => {
            return Err(ClientError::Server {
                status,
                message: String::from_utf8_lossy(&body[1..]).into_owned(),
            })
        }
        None => return Err(ClientError::Protocol("unknown response status")),
    }
    match request {
        Request::Get { .. } => {
            let (start, frames) = parse_frames(body).map_err(ClientError::Protocol)?;
            Ok(Reply::Frames { start, frames })
        }
        Request::Stats => parse_stats(body).map(Reply::Stats).map_err(ClientError::Protocol),
        Request::Info => parse_info(body).map(Reply::Info).map_err(ClientError::Protocol),
        Request::Metrics => parse_metrics(body).map(Reply::Metrics).map_err(ClientError::Protocol),
        Request::Append { .. } => {
            parse_append_ack(body).map(Reply::Append).map_err(ClientError::Protocol)
        }
    }
}

/// A tail-following reader over a live archive: repeatedly polls the
/// server's frame count and fetches whatever landed past its position.
///
/// Followers only ever observe durable frames — the server publishes a
/// frame only once its footer is synced — so the stream a follower emits is
/// a monotonically growing, bit-exact prefix of the archive's offline
/// decode, across server crashes and restarts included. Transient failures
/// (connection refused while the server restarts, timeouts, BUSY shedding)
/// are absorbed by reconnecting and re-polling; real application errors
/// propagate.
///
/// Construct with [`Client::follow`]; see there for a runnable example.
pub struct Follower {
    addr: SocketAddr,
    conn: Option<Client>,
    next: usize,
    poll_interval: Duration,
    max_batch: usize,
    obs: Obs,
}

impl Follower {
    /// Sets how long [`next_batch`](Self::next_batch) sleeps between polls
    /// when no new frames are available (default 100 ms).
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use std::time::Duration;
    /// use mdz_store::Client;
    ///
    /// let follower = Client::connect("127.0.0.1:7979")?
    ///     .follow(0)?
    ///     .with_poll_interval(Duration::from_millis(250));
    /// # Ok::<(), mdz_store::ClientError>(())
    /// ```
    pub fn with_poll_interval(mut self, interval: Duration) -> Follower {
        self.poll_interval = interval.max(Duration::from_millis(1));
        self
    }

    /// Caps how many frames one [`next_batch`](Self::next_batch) call
    /// fetches (default 4096), bounding response sizes against the
    /// server's per-request limits.
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use mdz_store::Client;
    ///
    /// let follower = Client::connect("127.0.0.1:7979")?.follow(0)?.with_max_batch(128);
    /// # Ok::<(), mdz_store::ClientError>(())
    /// ```
    pub fn with_max_batch(mut self, max_batch: usize) -> Follower {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Attaches a recorder: polls, reconnects, and delivered frames are
    /// counted as `client.follow.*`.
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use mdz_store::{Client, Obs};
    ///
    /// let follower = Client::connect("127.0.0.1:7979")?.follow(0)?.with_obs(Obs::noop());
    /// # Ok::<(), mdz_store::ClientError>(())
    /// ```
    pub fn with_obs(mut self, obs: Obs) -> Follower {
        self.obs = obs;
        self
    }

    /// The index of the next frame this follower will deliver: everything
    /// before it has already been returned by
    /// [`next_batch`](Self::next_batch).
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use mdz_store::Client;
    ///
    /// let follower = Client::connect("127.0.0.1:7979")?.follow(42)?;
    /// assert_eq!(follower.position(), 42);
    /// # Ok::<(), mdz_store::ClientError>(())
    /// ```
    pub fn position(&self) -> usize {
        self.next
    }

    /// Blocks until new durable frames are available past
    /// [`position`](Self::position), then returns them (at most
    /// `max_batch`) and advances.
    ///
    /// Transient errors — the server restarting, timeouts, BUSY — are
    /// retried indefinitely at the poll cadence (the follower is a tailing
    /// process; callers bound it by frame count or by dropping it). Fatal
    /// errors (corrupt archive, protocol violations) propagate.
    pub fn next_batch(&mut self) -> Result<Vec<Frame>, ClientError> {
        loop {
            match self.try_advance() {
                Ok(Some(frames)) => {
                    self.obs.incr("client.follow.frames", frames.len() as u64);
                    return Ok(frames);
                }
                Ok(None) => {
                    self.obs.incr("client.follow.polls_empty", 1);
                    std::thread::sleep(self.poll_interval);
                }
                Err(e) if is_transient_for_follow(&e) => {
                    self.conn = None;
                    self.obs.incr("client.follow.reconnects", 1);
                    std::thread::sleep(self.poll_interval);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One poll step: INFO, then a GET if the archive has grown. `None`
    /// means no new frames yet. INFO and GET are idempotent, so a failure
    /// here can be retried without double-delivering.
    fn try_advance(&mut self) -> Result<Option<Vec<Frame>>, ClientError> {
        if self.conn.is_none() {
            self.conn = Some(Client::connect(self.addr)?);
        }
        let client = self.conn.as_mut().unwrap();
        let available = client.info()?.n_frames as usize;
        if available <= self.next {
            return Ok(None);
        }
        let end = available.min(self.next + self.max_batch);
        let frames = client.get(self.next..end)?;
        self.next = end;
        Ok(Some(frames))
    }
}

/// Whether a follower should absorb `err` by reconnecting: its requests are
/// idempotent reads, so even a mid-response disconnect (the server was
/// killed) is safe to retry — unlike the general client policy.
fn is_transient_for_follow(err: &ClientError) -> bool {
    match err {
        ClientError::Io(_) | ClientError::Timeout(_) => true,
        ClientError::Server { status: Status::Busy, .. } => true,
        ClientError::Protocol(msg) => *msg == "server closed the connection mid-request",
        ClientError::Server { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_errors_classify_timeouts() {
        let t: ClientError = std::io::Error::new(std::io::ErrorKind::TimedOut, "slow").into();
        assert!(matches!(t, ClientError::Timeout(_)));
        let io: ClientError =
            std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "no").into();
        assert!(matches!(io, ClientError::Io(_)));
    }

    #[test]
    fn retry_classification_matches_policy() {
        let policy = RetryPolicy::default();
        let timeout = ClientError::Timeout("t".into());
        let io = ClientError::Io("i".into());
        let busy = ClientError::Server { status: Status::Busy, message: String::new() };
        let corrupt = ClientError::Server { status: Status::Corrupt, message: String::new() };
        assert!(policy.should_retry(&timeout, RetryStage::Connect));
        assert!(policy.should_retry(&timeout, RetryStage::Request));
        assert!(policy.should_retry(&io, RetryStage::Connect));
        assert!(!policy.should_retry(&io, RetryStage::Request));
        assert!(policy.should_retry(&busy, RetryStage::Request));
        assert!(!policy.should_retry(&corrupt, RetryStage::Request));
        assert!(!policy.should_retry(&ClientError::Protocol("x"), RetryStage::Request));
        let no_busy = RetryPolicy { retry_busy: false, ..RetryPolicy::default() };
        assert!(!no_busy.should_retry(&busy, RetryStage::Request));
    }

    #[test]
    fn follower_transient_classification_covers_restarts() {
        // Everything a dying-and-restarting server can throw at a follower
        // is absorbed; real application errors are not.
        assert!(is_transient_for_follow(&ClientError::Io("refused".into())));
        assert!(is_transient_for_follow(&ClientError::Timeout("t".into())));
        assert!(is_transient_for_follow(&ClientError::Server {
            status: Status::Busy,
            message: String::new()
        }));
        assert!(is_transient_for_follow(&ClientError::Protocol(
            "server closed the connection mid-request"
        )));
        assert!(!is_transient_for_follow(&ClientError::Protocol("unknown response status")));
        assert!(!is_transient_for_follow(&ClientError::Server {
            status: Status::Corrupt,
            message: String::new()
        }));
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_decorrelated() {
        let policy = RetryPolicy {
            max_retries: 8,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(50),
            retry_busy: true,
            seed: 0x6d64_7a00,
        };
        let sleeps: Vec<Duration> = {
            let mut b = Backoff::new(&policy);
            (0..8).map(|_| b.next_sleep()).collect()
        };
        let again: Vec<Duration> = {
            let mut b = Backoff::new(&policy);
            (0..8).map(|_| b.next_sleep()).collect()
        };
        assert_eq!(sleeps, again, "same seed, same schedule");
        for s in &sleeps {
            assert!(*s >= policy.base && *s <= policy.cap, "{s:?} out of bounds");
        }
        // A different seed must produce a different schedule.
        let other = Backoff::new(&RetryPolicy { seed: 1, ..policy.clone() });
        let other: Vec<Duration> = {
            let mut b = other;
            (0..8).map(|_| b.next_sleep()).collect()
        };
        assert_ne!(sleeps, other, "seeds decorrelate schedules");
    }

    #[test]
    fn with_retry_stops_on_fatal_and_counts_retries() {
        let registry = std::sync::Arc::new(mdz_obs::Registry::new());
        let obs =
            Obs::new(std::sync::Arc::clone(&registry) as std::sync::Arc<dyn mdz_obs::Recorder>);
        let policy = RetryPolicy {
            max_retries: 5,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            retry_busy: true,
            seed: 7,
        };
        // Two transient failures, then success.
        let mut calls = 0;
        let out = with_retry(&policy, &obs, || {
            calls += 1;
            if calls < 3 {
                Err((RetryStage::Connect, ClientError::Timeout("t".into())))
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out.unwrap(), 3);
        assert_eq!(registry.counter("client.retries"), 2);
        // A fatal error stops immediately.
        let mut calls = 0;
        let out: Result<(), _> = with_retry(&policy, &obs, || {
            calls += 1;
            Err((RetryStage::Request, ClientError::Protocol("broken")))
        });
        assert!(matches!(out, Err(ClientError::Protocol(_))));
        assert_eq!(calls, 1);
        assert_eq!(registry.counter("client.retries"), 2, "fatal errors are not retried");
    }
}
