//! A blocking client for the `mdzd` protocol.

use std::net::{TcpStream, ToSocketAddrs};
use std::ops::Range;

use mdz_core::Frame;
use mdz_obs::MetricsSnapshot;

use crate::protocol::{
    parse_frames, parse_info, parse_metrics, parse_stats, read_message, write_message, Request,
    Status, StoreInfo,
};
use crate::reader::StatsSnapshot;

/// Errors a [`Client`] can surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The TCP connection failed; carries the rendered [`std::io::Error`].
    Io(String),
    /// The server answered with a non-OK status.
    Server {
        /// The wire status code.
        status: Status,
        /// The server's human-readable message.
        message: String,
    },
    /// The server's bytes violated the protocol.
    Protocol(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Server { status, message } => {
                write!(f, "server error ({status:?}): {message}")
            }
            ClientError::Protocol(w) => write!(f, "protocol violation: {w}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e.to_string())
    }
}

/// A connected `mdzd` client. One request is in flight at a time; reconnect
/// by constructing a new client.
pub struct Client {
    stream: TcpStream,
    max_response_bytes: usize,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Ok(Client { stream: TcpStream::connect(addr)?, max_response_bytes: 1 << 28 })
    }

    /// Caps how large a response body this client will read (default 256 MiB).
    pub fn with_max_response_bytes(mut self, max: usize) -> Client {
        self.max_response_bytes = max;
        self
    }

    fn round_trip(&mut self, req: Request) -> Result<Vec<u8>, ClientError> {
        write_message(&mut self.stream, &req.encode())?;
        let body = read_message(&mut self.stream, self.max_response_bytes)?
            .ok_or(ClientError::Protocol("server closed the connection mid-request"))?;
        match body.first().copied().and_then(Status::from_byte) {
            Some(Status::Ok) => Ok(body),
            Some(status) => Err(ClientError::Server {
                status,
                message: String::from_utf8_lossy(&body[1..]).into_owned(),
            }),
            None => Err(ClientError::Protocol("unknown response status")),
        }
    }

    /// Fetches the frames in `range` (end-exclusive).
    pub fn get(&mut self, range: Range<usize>) -> Result<Vec<Frame>, ClientError> {
        let body =
            self.round_trip(Request::Get { start: range.start as u64, end: range.end as u64 })?;
        let (start, frames) = parse_frames(&body).map_err(ClientError::Protocol)?;
        if start != range.start as u64 || frames.len() != range.len() {
            return Err(ClientError::Protocol("response range disagrees with request"));
        }
        Ok(frames)
    }

    /// Fetches the server's counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        let body = self.round_trip(Request::Stats)?;
        parse_stats(&body).map_err(ClientError::Protocol)
    }

    /// Fetches the served archive's metadata.
    pub fn info(&mut self) -> Result<StoreInfo, ClientError> {
        let body = self.round_trip(Request::Info)?;
        parse_info(&body).map_err(ClientError::Protocol)
    }

    /// Fetches a full metrics snapshot (counters, gauges, histograms).
    ///
    /// The snapshot is taken before the server accounts for the METRICS
    /// request itself, so the returned counters cover every *prior*
    /// request.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ClientError> {
        let body = self.round_trip(Request::Metrics)?;
        parse_metrics(&body).map_err(ClientError::Protocol)
    }
}
