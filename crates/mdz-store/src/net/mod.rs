//! The event-loop serving engine (`--engine epoll`): a raw-syscall
//! epoll/kqueue reactor sharded across `cfg.threads` threads, speaking the
//! exact wire protocol of the threaded engine through the shared
//! [`serve_request`](crate::server) response path.
//!
//! Layout: [`sys`] holds the zero-dependency syscall bindings (poller,
//! wake pipe, `SO_REUSEPORT` groups), [`conn`] the per-connection state
//! machine, and [`shard`] the event loop, accept/dispatch, APPEND
//! migration, and shutdown choreography. See `DESIGN.md` §15 for the
//! architecture rationale.

mod conn;
mod shard;
pub(crate) mod sys;

pub(crate) use shard::run;
