//! Minimal raw-syscall bindings for the event engine: an epoll (Linux) /
//! kqueue (macOS) poller, a self-pipe wakeup, and `SO_REUSEPORT` listener
//! groups.
//!
//! `std` already links the platform C library, so plain `extern "C"`
//! declarations are enough — the crate stays zero-dependency. Everything
//! here wraps file descriptors in [`std::os::fd::OwnedFd`] so close
//! discipline is by construction, and every return code goes through
//! [`std::io::Error::last_os_error`] on failure.

use std::io;
use std::os::fd::RawFd;

/// One readiness notification out of [`Poller::wait`]. The token is the
/// registered file descriptor (fds are unique while open, which is exactly
/// the lifetime of a registration).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// The fd this event fired for.
    pub fd: RawFd,
    /// The fd is readable (includes peer hangup: read to observe EOF).
    pub readable: bool,
    /// The fd accepts writes again.
    pub writable: bool,
}

/// Maps a negative C return into `last_os_error`.
fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{cvt, Event};
    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::time::Duration;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// The kernel's `struct epoll_event`: packed on x86-64 (the historic
    /// ABI), naturally aligned elsewhere.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    }

    /// A level-triggered epoll instance.
    pub(crate) struct Poller {
        epfd: OwnedFd,
    }

    impl Poller {
        pub(crate) fn new() -> io::Result<Poller> {
            let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller { epfd: unsafe { OwnedFd::from_raw_fd(fd) } })
        }

        fn ctl(&self, op: i32, fd: RawFd, read: bool, write: bool) -> io::Result<()> {
            let mut events = EPOLLRDHUP;
            if read {
                events |= EPOLLIN;
            }
            if write {
                events |= EPOLLOUT;
            }
            let mut ev = EpollEvent { events, data: fd as u64 };
            cvt(unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) }).map(|_| ())
        }

        /// Registers `fd` with the given interest set.
        pub(crate) fn add(&self, fd: RawFd, read: bool, write: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, read, write)
        }

        /// Replaces `fd`'s interest set.
        pub(crate) fn modify(&self, fd: RawFd, read: bool, write: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, read, write)
        }

        /// Deregisters `fd`. Safe to call for fds about to be closed.
        pub(crate) fn remove(&self, fd: RawFd) -> io::Result<()> {
            // A non-null event pointer keeps pre-2.6.9 kernel semantics.
            self.ctl(EPOLL_CTL_DEL, fd, false, false)
        }

        /// Blocks up to `timeout` for readiness, filling `out`.
        pub(crate) fn wait(&self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            const MAX_EVENTS: usize = 1024;
            let mut raw = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            let ms = timeout.as_millis().min(i32::MAX as u128).max(1) as i32;
            let n = loop {
                let ret = unsafe {
                    epoll_wait(self.epfd.as_raw_fd(), raw.as_mut_ptr(), MAX_EVENTS as i32, ms)
                };
                match cvt(ret) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            out.clear();
            for ev in raw.iter().take(n) {
                // Field copies, not references: the struct may be packed.
                let events = ev.events;
                let data = ev.data;
                out.push(Event {
                    fd: data as RawFd,
                    // Errors and hangups surface as readability so the owner
                    // observes the EOF / io error on its next read.
                    readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                    writable: events & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(target_os = "macos")]
mod imp {
    use super::{cvt, Event};
    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::time::Duration;

    const EVFILT_READ: i16 = -1;
    const EVFILT_WRITE: i16 = -2;
    const EV_ADD: u16 = 0x0001;
    const EV_DELETE: u16 = 0x0002;
    const EV_ERROR: u16 = 0x4000;

    /// `struct kevent` as declared in `<sys/event.h>`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Kevent {
        ident: usize,
        filter: i16,
        flags: u16,
        fflags: u32,
        data: isize,
        udata: *mut std::ffi::c_void,
    }

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    extern "C" {
        fn kqueue() -> i32;
        fn kevent(
            kq: i32,
            changelist: *const Kevent,
            nchanges: i32,
            eventlist: *mut Kevent,
            nevents: i32,
            timeout: *const Timespec,
        ) -> i32;
    }

    /// A level-triggered kqueue instance presenting the same API as the
    /// Linux epoll poller.
    pub(crate) struct Poller {
        kq: OwnedFd,
    }

    impl Poller {
        pub(crate) fn new() -> io::Result<Poller> {
            let fd = cvt(unsafe { kqueue() })?;
            Ok(Poller { kq: unsafe { OwnedFd::from_raw_fd(fd) } })
        }

        fn change(&self, fd: RawFd, filter: i16, flags: u16) -> io::Result<()> {
            let change = Kevent {
                ident: fd as usize,
                filter,
                flags,
                fflags: 0,
                data: 0,
                udata: std::ptr::null_mut(),
            };
            cvt(unsafe {
                kevent(self.kq.as_raw_fd(), &change, 1, std::ptr::null_mut(), 0, std::ptr::null())
            })
            .map(|_| ())
        }

        fn set(&self, fd: RawFd, read: bool, write: bool) -> io::Result<()> {
            // Deleting an absent filter is fine (ENOENT ignored); adding is
            // idempotent, so "modify" and "add" are the same operation.
            for (filter, wanted) in [(EVFILT_READ, read), (EVFILT_WRITE, write)] {
                if wanted {
                    self.change(fd, filter, EV_ADD)?;
                } else {
                    let _ = self.change(fd, filter, EV_DELETE);
                }
            }
            Ok(())
        }

        /// Registers `fd` with the given interest set.
        pub(crate) fn add(&self, fd: RawFd, read: bool, write: bool) -> io::Result<()> {
            self.set(fd, read, write)
        }

        /// Replaces `fd`'s interest set.
        pub(crate) fn modify(&self, fd: RawFd, read: bool, write: bool) -> io::Result<()> {
            self.set(fd, read, write)
        }

        /// Deregisters `fd`.
        pub(crate) fn remove(&self, fd: RawFd) -> io::Result<()> {
            self.set(fd, false, false)
        }

        /// Blocks up to `timeout` for readiness, filling `out`.
        pub(crate) fn wait(&self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            const MAX_EVENTS: usize = 1024;
            let mut raw = [Kevent {
                ident: 0,
                filter: 0,
                flags: 0,
                fflags: 0,
                data: 0,
                udata: std::ptr::null_mut(),
            }; MAX_EVENTS];
            let ts = Timespec {
                tv_sec: timeout.as_secs().min(i64::MAX as u64) as i64,
                tv_nsec: i64::from(timeout.subsec_nanos()),
            };
            let n = loop {
                let ret = unsafe {
                    kevent(
                        self.kq.as_raw_fd(),
                        std::ptr::null(),
                        0,
                        raw.as_mut_ptr(),
                        MAX_EVENTS as i32,
                        &ts,
                    )
                };
                match cvt(ret) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            out.clear();
            for ev in raw.iter().take(n) {
                let error = ev.flags & EV_ERROR != 0;
                out.push(Event {
                    fd: ev.ident as RawFd,
                    readable: ev.filter == EVFILT_READ || error,
                    writable: ev.filter == EVFILT_WRITE || error,
                });
            }
            Ok(())
        }
    }
}

pub(crate) use imp::Poller;

extern "C" {
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

/// A non-blocking self-pipe: other shards write a byte to interrupt this
/// shard's [`Poller::wait`] (inbox handoffs, shutdown nudges).
pub(crate) struct WakePipe {
    rx: std::os::fd::OwnedFd,
    tx: std::os::fd::OwnedFd,
}

impl WakePipe {
    /// Creates the pipe with both ends non-blocking and close-on-exec.
    pub(crate) fn new() -> io::Result<WakePipe> {
        use std::os::fd::FromRawFd;
        let mut fds = [0i32; 2];
        #[cfg(target_os = "linux")]
        {
            const O_NONBLOCK: i32 = 0o4000;
            const O_CLOEXEC: i32 = 0o2000000;
            extern "C" {
                fn pipe2(fds: *mut i32, flags: i32) -> i32;
            }
            cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
        }
        #[cfg(not(target_os = "linux"))]
        {
            const F_SETFL: i32 = 4;
            const O_NONBLOCK: i32 = 0x0004;
            extern "C" {
                fn pipe(fds: *mut i32) -> i32;
                fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
            }
            cvt(unsafe { pipe(fds.as_mut_ptr()) })?;
            for fd in fds {
                cvt(unsafe { fcntl(fd, F_SETFL, O_NONBLOCK) })?;
            }
        }
        Ok(WakePipe {
            rx: unsafe { std::os::fd::OwnedFd::from_raw_fd(fds[0]) },
            tx: unsafe { std::os::fd::OwnedFd::from_raw_fd(fds[1]) },
        })
    }

    /// The readable end, for poller registration.
    pub(crate) fn read_fd(&self) -> RawFd {
        use std::os::fd::AsRawFd;
        self.rx.as_raw_fd()
    }

    /// Nudges the owning shard. A full pipe already guarantees a pending
    /// wakeup, so a short write is success.
    pub(crate) fn wake(&self) {
        use std::os::fd::AsRawFd;
        let byte = 1u8;
        unsafe { write(self.tx.as_raw_fd(), &byte, 1) };
    }

    /// Swallows all pending wakeup bytes.
    pub(crate) fn drain(&self) {
        use std::os::fd::AsRawFd;
        let mut buf = [0u8; 64];
        while unsafe { read(self.rx.as_raw_fd(), buf.as_mut_ptr(), buf.len()) } > 0 {}
    }
}

/// Binds `n` `SO_REUSEPORT` listeners on `addr` so the kernel spreads
/// incoming connections across per-shard accept queues. The first bind
/// resolves an ephemeral port; the rest join the same group.
#[cfg(target_os = "linux")]
pub(crate) fn reuseport_group(
    addr: std::net::SocketAddr,
    n: usize,
) -> io::Result<Vec<std::net::TcpListener>> {
    let mut out = Vec::with_capacity(n);
    let mut bound = addr;
    for i in 0..n.max(1) {
        let listener = bind_reuseport(bound)?;
        if i == 0 {
            bound.set_port(listener.local_addr()?.port());
        }
        out.push(listener);
    }
    Ok(out)
}

/// One `SO_REUSEPORT` listener: the flag must be set between `socket` and
/// `bind`, which `std` offers no hook for — hence the raw construction.
#[cfg(target_os = "linux")]
fn bind_reuseport(addr: std::net::SocketAddr) -> io::Result<std::net::TcpListener> {
    use std::net::SocketAddr;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd};

    const AF_INET: i32 = 2;
    const AF_INET6: i32 = 10;
    const SOCK_STREAM: i32 = 1;
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    const SO_REUSEPORT: i32 = 15;

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const u8, optlen: u32) -> i32;
        fn bind(fd: i32, addr: *const u8, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
    }

    // Marshal the kernel sockaddr by hand: sa_family is host-endian,
    // port and address are network-endian.
    let (domain, sa, sa_len) = match addr {
        SocketAddr::V4(v4) => {
            let mut sa = [0u8; 16];
            sa[0..2].copy_from_slice(&(AF_INET as u16).to_ne_bytes());
            sa[2..4].copy_from_slice(&v4.port().to_be_bytes());
            sa[4..8].copy_from_slice(&v4.ip().octets());
            (AF_INET, sa.to_vec(), 16u32)
        }
        SocketAddr::V6(v6) => {
            let mut sa = [0u8; 28];
            sa[0..2].copy_from_slice(&(AF_INET6 as u16).to_ne_bytes());
            sa[2..4].copy_from_slice(&v6.port().to_be_bytes());
            sa[4..8].copy_from_slice(&v6.flowinfo().to_ne_bytes());
            sa[8..24].copy_from_slice(&v6.ip().octets());
            sa[24..28].copy_from_slice(&v6.scope_id().to_ne_bytes());
            (AF_INET6, sa.to_vec(), 28u32)
        }
    };
    let fd = cvt(unsafe { socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0) })?;
    let fd = unsafe { OwnedFd::from_raw_fd(fd) };
    let one: i32 = 1;
    for opt in [SO_REUSEADDR, SO_REUSEPORT] {
        cvt(unsafe {
            setsockopt(fd.as_raw_fd(), SOL_SOCKET, opt, (&one as *const i32).cast(), 4)
        })?;
    }
    cvt(unsafe { bind(fd.as_raw_fd(), sa.as_ptr(), sa_len) })?;
    cvt(unsafe { listen(fd.as_raw_fd(), 1024) })?;
    Ok(std::net::TcpListener::from(fd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    #[test]
    fn poller_reports_readability_and_writability() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = std::net::TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), true, true).unwrap();
        let mut events = Vec::new();
        // A fresh socket with empty send buffer is writable but not readable.
        poller.wait(&mut events, Duration::from_millis(200)).unwrap();
        let ev = events.iter().find(|e| e.fd == server.as_raw_fd()).expect("event");
        assert!(ev.writable && !ev.readable);

        client.write_all(b"ping").unwrap();
        poller.modify(server.as_raw_fd(), true, false).unwrap();
        poller.wait(&mut events, Duration::from_millis(1000)).unwrap();
        let ev = events.iter().find(|e| e.fd == server.as_raw_fd()).expect("event");
        assert!(ev.readable);
        let mut buf = [0u8; 8];
        let mut server_ref = &server;
        assert_eq!(server_ref.read(&mut buf).unwrap(), 4);

        poller.remove(server.as_raw_fd()).unwrap();
        client.write_all(b"more").unwrap();
        poller.wait(&mut events, Duration::from_millis(50)).unwrap();
        assert!(events.iter().all(|e| e.fd != server.as_raw_fd()), "removed fd must be silent");
    }

    #[test]
    fn wake_pipe_interrupts_a_wait() {
        let pipe = WakePipe::new().unwrap();
        let poller = Poller::new().unwrap();
        poller.add(pipe.read_fd(), true, false).unwrap();
        let mut events = Vec::new();
        // Without a wake the wait times out empty.
        poller.wait(&mut events, Duration::from_millis(20)).unwrap();
        assert!(events.is_empty());
        pipe.wake();
        pipe.wake(); // coalesces, never blocks
        poller.wait(&mut events, Duration::from_millis(1000)).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].fd, pipe.read_fd());
        pipe.drain();
        poller.wait(&mut events, Duration::from_millis(20)).unwrap();
        assert!(events.is_empty(), "drained pipe goes quiet");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn reuseport_group_shares_one_port() {
        let group = reuseport_group("127.0.0.1:0".parse().unwrap(), 3).unwrap();
        assert_eq!(group.len(), 3);
        let port = group[0].local_addr().unwrap().port();
        for l in &group {
            assert_eq!(l.local_addr().unwrap().port(), port);
        }
        // A connection lands on exactly one member's accept queue.
        let _client = std::net::TcpStream::connect(("127.0.0.1", port)).unwrap();
        for l in &group {
            l.set_nonblocking(true).unwrap();
        }
        std::thread::sleep(Duration::from_millis(50));
        let accepted: usize = group.iter().map(|l| usize::from(l.accept().is_ok())).sum();
        assert_eq!(accepted, 1);
    }
}
