//! The sharded event loop behind [`Engine::Epoll`](crate::server::Engine).
//!
//! # Shard ownership
//!
//! `cfg.threads` shards each run their own poller, connection map, and
//! forked epoch cache ([`StoreReader::fork_cache`]) — no lock is shared on
//! the read path. A connection is owned by exactly one shard for its whole
//! life, with one exception: the first APPEND frame decoded on shard *i ≠ 0*
//! migrates the entire connection to shard 0 through its inbox, so live
//! writes always execute on a single owning shard (and the sink's write
//! lock is only ever contended by migration races, never steady state).
//!
//! # Accept modes
//!
//! With an `SO_REUSEPORT` listener group (Linux), shard *i* owns listener
//! *i* and the kernel spreads connections. Otherwise shard 0 owns the only
//! listener and dispatches accepted streams round-robin over everyone's
//! inboxes (including its own share). Admission control is global either
//! way: `admitted` is a process-wide counter, and connections over
//! `max_connections` are shed with a framed BUSY answer by the accepting
//! shard, exactly like the threaded engine.
//!
//! # Backpressure invariant
//!
//! A connection's decoded-but-unsent output is bounded by
//! `max_write_buffer`: past the cap the shard stops **reading** (and
//! decoding) that connection until a flush drains the queue below half the
//! cap. A peer that never drains is killed by `write_timeout`. Memory per
//! connection is therefore `O(max_write_buffer + one frame)` by
//! construction.
//!
//! # Shutdown
//!
//! On the stop flag each shard closes its listener (decrementing the global
//! `accepting` count), stops decoding new work, closes idle connections
//! (`server.drain.closed`), and lets in-flight requests finish under the
//! read/write deadlines. Shards exit when `accepting == 0` and they have no
//! connections or queued handoffs; shard 0 — the migration target — exits
//! last, after every other shard has, so a handoff can never be stranded.

use std::collections::{HashMap, VecDeque};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use mdz_obs::Obs;

use crate::protocol::{encode_error, Status, OP_APPEND};
use crate::reader::StoreReader;
use crate::server::{serve_request, status_counter, AppendSink, Server, ServerConfig};

use super::conn::{Conn, ReadOutcome};
use super::sys::{Event, Poller, WakePipe};

/// Per-shard connection gauges are static names (mdz-obs requires
/// `&'static str`); shards beyond the table share the last entry.
const SHARD_CONN_GAUGES: [&str; 8] = [
    "server.net.shard0.connections",
    "server.net.shard1.connections",
    "server.net.shard2.connections",
    "server.net.shard3.connections",
    "server.net.shard4.connections",
    "server.net.shard5.connections",
    "server.net.shard6.connections",
    "server.net.shard7.connections",
];

fn conn_gauge(id: usize) -> &'static str {
    SHARD_CONN_GAUGES[id.min(SHARD_CONN_GAUGES.len() - 1)]
}

/// Work pushed into a shard's inbox by another shard.
enum Handoff {
    /// A freshly accepted, already-admitted connection (dispatcher mode).
    New(TcpStream),
    /// A connection mid-APPEND moving to shard 0 with its whole state.
    Migrated(Box<Conn>),
}

/// State shared by every shard of one server.
struct SharedState {
    stop: Arc<AtomicBool>,
    /// Admitted connections across all shards (the `max_connections` cap).
    admitted: AtomicUsize,
    /// Round-robin cursor for dispatcher handoffs.
    next_shard: AtomicUsize,
    /// Shards still owning an open listener; 0 means no new connection can
    /// ever be admitted or handed off, which gates shard exit.
    accepting: AtomicUsize,
    /// Shards that have finished; shard 0 exits only once this reaches
    /// `shards - 1`, so migrations always find it alive.
    exited: AtomicUsize,
    inboxes: Vec<Mutex<VecDeque<Handoff>>>,
    wakes: Vec<WakePipe>,
}

/// Runs a [`Server`] on the event engine until shutdown. Entry point for
/// [`Server::run`] under [`Engine::Epoll`](crate::server::Engine::Epoll).
pub(crate) fn run(server: Server) -> std::io::Result<()> {
    let Server { listener, shard_listeners, reader, cfg, stop, sink } = server;
    let shards = cfg.threads.max(1);
    // A full reuseport group means shard i owns listener i; anything else
    // (including a partial group, which bind() never produces) degrades to
    // the dispatcher.
    let reuseport = shards > 1 && shard_listeners.len() == shards - 1;
    let mut listeners: Vec<Option<TcpListener>> = Vec::with_capacity(shards);
    listeners.push(Some(listener));
    if reuseport {
        listeners.extend(shard_listeners.into_iter().map(Some));
    } else {
        listeners.extend((1..shards).map(|_| None));
    }
    let accepting = listeners.iter().filter(|l| l.is_some()).count();
    let mut wakes = Vec::with_capacity(shards);
    let mut inboxes = Vec::with_capacity(shards);
    for _ in 0..shards {
        wakes.push(WakePipe::new()?);
        inboxes.push(Mutex::new(VecDeque::new()));
    }
    let shared = SharedState {
        stop,
        admitted: AtomicUsize::new(0),
        next_shard: AtomicUsize::new(0),
        accepting: AtomicUsize::new(accepting),
        exited: AtomicUsize::new(0),
        inboxes,
        wakes,
    };
    let shared = &shared;
    let cfg = &cfg;
    let sink = sink.as_deref();
    let dispatcher = !reuseport && shards > 1;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(shards);
        for (id, listener) in listeners.into_iter().enumerate() {
            let reader = reader.fork_cache();
            let handle = scope.spawn(move || {
                let had_listener = listener.is_some();
                let result =
                    match Shard::new(id, shards, dispatcher, listener, reader, cfg, sink, shared) {
                        Ok(mut shard) => {
                            let r = shard.run();
                            if shard.listener.is_some() {
                                // Error exit before the drain path closed it.
                                shared.accepting.fetch_sub(1, Ordering::SeqCst);
                            }
                            r
                        }
                        Err(e) => {
                            if had_listener {
                                shared.accepting.fetch_sub(1, Ordering::SeqCst);
                            }
                            Err(e)
                        }
                    };
                if result.is_err() {
                    // One shard dying takes the server down gracefully:
                    // everyone else sees the stop flag and drains.
                    shared.stop.store(true, Ordering::SeqCst);
                }
                shared.exited.fetch_add(1, Ordering::SeqCst);
                for wake in &shared.wakes {
                    wake.wake();
                }
                result
            });
            handles.push(handle);
        }
        let mut first_err = Ok(());
        for handle in handles {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    if first_err.is_ok() {
                        first_err = Err(e);
                    }
                }
                Err(_) => {
                    if first_err.is_ok() {
                        first_err = Err(std::io::Error::other("shard thread panicked"));
                    }
                }
            }
        }
        first_err
    })
}

/// What the deadline sweep decided for one connection.
enum SweepAction {
    /// Close now, bumping the given counter (None = silent).
    Close(RawFd, Option<&'static str>),
    /// A shed connection never sent its request: answer BUSY anyway (the
    /// threaded engine's shed handshake also replies after `read_timeout`).
    ShedReply(RawFd),
}

struct Shard<'a> {
    id: usize,
    shards: usize,
    dispatcher: bool,
    listener: Option<TcpListener>,
    reader: StoreReader,
    cfg: &'a ServerConfig,
    sink: Option<&'a AppendSink>,
    shared: &'a SharedState,
    obs: Obs,
    poller: Poller,
    conns: HashMap<RawFd, Conn>,
    scratch: Vec<u8>,
    body_budget: usize,
    draining: bool,
}

#[allow(clippy::too_many_arguments)]
impl<'a> Shard<'a> {
    fn new(
        id: usize,
        shards: usize,
        dispatcher: bool,
        listener: Option<TcpListener>,
        reader: StoreReader,
        cfg: &'a ServerConfig,
        sink: Option<&'a AppendSink>,
        shared: &'a SharedState,
    ) -> std::io::Result<Shard<'a>> {
        let poller = Poller::new()?;
        if let Some(l) = &listener {
            l.set_nonblocking(true)?;
            poller.add(l.as_raw_fd(), true, false)?;
        }
        poller.add(shared.wakes[id].read_fd(), true, false)?;
        let obs = Obs::new(reader.recorder());
        let body_budget = cfg.body_budget(sink.is_some());
        Ok(Shard {
            id,
            shards,
            dispatcher,
            listener,
            reader,
            cfg,
            sink,
            shared,
            obs,
            poller,
            conns: HashMap::new(),
            scratch: vec![0u8; 64 << 10],
            body_budget,
            draining: false,
        })
    }

    fn run(&mut self) -> std::io::Result<()> {
        let mut events: Vec<Event> = Vec::new();
        let wake_fd = self.shared.wakes[self.id].read_fd();
        loop {
            self.poller.wait(&mut events, self.cfg.drain_poll_clamped())?;
            if !events.is_empty() {
                self.obs.observe("server.net.ready_events", events.len() as f64);
            }
            if !self.draining && self.shared.stop.load(Ordering::SeqCst) {
                self.start_drain();
            }
            self.drain_inbox();
            let listener_fd = self.listener.as_ref().map(|l| l.as_raw_fd());
            for &ev in &events {
                if ev.fd == wake_fd {
                    self.shared.wakes[self.id].drain();
                } else if Some(ev.fd) == listener_fd {
                    self.accept_ready();
                } else {
                    self.conn_event(ev);
                }
            }
            self.sweep();
            for conn in self.conns.values_mut() {
                conn.sync_interest(&self.poller);
            }
            self.obs.gauge(conn_gauge(self.id), self.conns.len() as u64);
            if self.draining && self.ready_to_exit() {
                return Ok(());
            }
        }
    }

    /// Stops accepting: closes the listener and gives up the accepting
    /// slot. Runs once, on the first tick that observes the stop flag.
    fn start_drain(&mut self) {
        self.draining = true;
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.remove(listener.as_raw_fd());
            drop(listener);
            self.shared.accepting.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Exit test while draining. The `accepting` load must come first: once
    /// it reads 0 no shard can push another handoff, so a subsequent empty
    /// inbox is conclusively empty.
    fn ready_to_exit(&self) -> bool {
        if self.shared.accepting.load(Ordering::SeqCst) != 0 {
            return false;
        }
        if !self.conns.is_empty() {
            return false;
        }
        if !self.shared.inboxes[self.id].lock().unwrap().is_empty() {
            return false;
        }
        // Shard 0 is the migration target: it outlives everyone else.
        self.id != 0 || self.shared.exited.load(Ordering::SeqCst) >= self.shards - 1
    }

    fn drain_inbox(&mut self) {
        loop {
            let handoff = self.shared.inboxes[self.id].lock().unwrap().pop_front();
            match handoff {
                None => return,
                Some(Handoff::New(stream)) => self.install(stream, true),
                Some(Handoff::Migrated(conn)) => self.install_migrated(*conn),
            }
        }
    }

    /// Accepts until the queue is empty, admitting or shedding each stream.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else { return };
            match listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Transient accept errors (peer reset mid-handshake, fd
                // pressure) should not take the shard down.
                Err(_) => return,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        if self.shared.admitted.load(Ordering::SeqCst) >= self.cfg.max_connections.max(1) {
            // Shed with a typed response instead of piling up unanswered;
            // the shed connection is handled locally (it never counts
            // against admission and dies after one BUSY answer).
            self.obs.incr("server.conn.rejected_busy", 1);
            self.obs.incr(status_counter(Status::Busy as u8), 1);
            self.install(stream, false);
            return;
        }
        self.shared.admitted.fetch_add(1, Ordering::SeqCst);
        self.obs.incr("server.conn.accepted", 1);
        if self.dispatcher {
            let target = self.shared.next_shard.fetch_add(1, Ordering::SeqCst) % self.shards;
            if target != self.id {
                self.shared.inboxes[target].lock().unwrap().push_back(Handoff::New(stream));
                self.shared.wakes[target].wake();
                return;
            }
        }
        self.install(stream, true);
    }

    fn install(&mut self, stream: TcpStream, admitted: bool) {
        match Conn::new(stream, self.body_budget, admitted) {
            Ok(conn) => {
                let fd = conn.fd();
                if self.poller.add(fd, true, false).is_ok() {
                    self.conns.insert(fd, conn);
                    // The peer may have sent its request before we
                    // registered; treat the install as a readable event.
                    self.conn_event(Event { fd, readable: true, writable: false });
                } else if admitted {
                    self.shared.admitted.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(_) => {
                if admitted {
                    self.shared.admitted.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }
    }

    /// Adopts a connection migrated from another shard: re-registers it,
    /// serves the APPEND frame it travelled with, then pumps whatever else
    /// its decoder already holds.
    fn install_migrated(&mut self, mut conn: Conn) {
        let fd = conn.fd();
        let (read, write) = conn.wanted_interest();
        if self.poller.add(fd, read, write).is_err() {
            if conn.admitted {
                self.shared.admitted.fetch_sub(1, Ordering::SeqCst);
            }
            return;
        }
        conn.set_registered(read, write);
        let frame = conn.migrated_frame.take();
        self.conns.insert(fd, conn);
        if let Some(body) = frame {
            let response = serve_request(&body, &self.reader, self.cfg, self.sink, &self.obs);
            if let Some(conn) = self.conns.get_mut(&fd) {
                conn.enqueue(response);
            }
        }
        self.pump(fd);
        self.flush_conn(fd);
    }

    fn conn_event(&mut self, ev: Event) {
        if ev.writable {
            self.flush_conn(ev.fd);
        }
        if ev.readable {
            self.read_conn(ev.fd);
        }
    }

    fn flush_conn(&mut self, fd: RawFd) {
        loop {
            let Some(conn) = self.conns.get_mut(&fd) else { return };
            if conn.flush().is_err() {
                self.close(fd, None);
                return;
            }
            let conn = self.conns.get_mut(&fd).expect("present: close not taken");
            if conn.queue_empty() {
                if conn.close_after_flush {
                    if conn.discard_input && !conn.peer_eof {
                        // Let the error response reach the peer before the
                        // FIN: half-close and linger (bounded) for their EOF.
                        conn.start_dying();
                    } else {
                        self.close(fd, None);
                    }
                    return;
                }
                if conn.peer_eof && conn.decoder.buffered() == 0 {
                    self.close(fd, None);
                    return;
                }
            }
            if conn.reading_paused && conn.queued_bytes <= self.cfg.max_write_buffer / 2 {
                conn.reading_paused = false;
                // Frames decoded before the pause may still be buffered; the
                // socket won't re-signal for them, so pump — and loop to
                // flush what the pump enqueued, otherwise a full kernel
                // buffer would leave the new output unattempted and the
                // write-stall clock unarmed.
                self.pump(fd);
                continue;
            }
            return;
        }
    }

    fn read_conn(&mut self, fd: RawFd) {
        let outcome = {
            let Some(conn) = self.conns.get_mut(&fd) else { return };
            if conn.reading_paused {
                return;
            }
            conn.read_some(&mut self.scratch)
        };
        match outcome {
            Err(_) => self.close(fd, None),
            Ok(ReadOutcome::Blocked) => {}
            Ok(ReadOutcome::Progress) => {
                self.pump(fd);
                self.flush_conn(fd);
            }
            Ok(ReadOutcome::Eof) => {
                {
                    let Some(conn) = self.conns.get_mut(&fd) else { return };
                    conn.peer_eof = true;
                }
                // The pump decides what the EOF means: frames already
                // buffered still get served (and answered — the peer may
                // have half-closed), a truncated tail becomes a malformed
                // close, and flush_conn closes once everything drains.
                self.pump(fd);
                self.flush_conn(fd);
                if let Some(conn) = self.conns.get_mut(&fd) {
                    if conn.queue_empty()
                        && conn.decoder.buffered() == 0
                        && !conn.close_after_flush
                        && conn.dying_since.is_none()
                    {
                        self.close(fd, None);
                    }
                }
            }
        }
    }

    /// Decodes and serves every complete frame the connection has buffered,
    /// stopping at backpressure, shed/close transitions, or migration.
    fn pump(&mut self, fd: RawFd) {
        let mut served = 0u64;
        // Arm the read deadline only when the decoder is genuinely stuck
        // mid-frame waiting on the peer. A pause (backpressure) or a
        // pending close also leaves bytes buffered, but that stall is ours,
        // not the peer's.
        let mut wants_more_bytes = false;
        loop {
            let frame = {
                let Some(conn) = self.conns.get_mut(&fd) else { return };
                if conn.discard_input || conn.close_after_flush || conn.reading_paused {
                    break;
                }
                conn.decoder.next_frame()
            };
            match frame {
                Ok(None) => {
                    wants_more_bytes = true;
                    break;
                }
                Err(_) => {
                    self.malformed(fd);
                    break;
                }
                Ok(Some(body)) => {
                    let (shed, migrate) = {
                        let conn = self.conns.get_mut(&fd).expect("checked above");
                        conn.last_activity = Instant::now();
                        let migrate = self.id != 0
                            && !self.draining
                            && self.sink.is_some()
                            && body.first() == Some(&OP_APPEND);
                        (conn.shed, migrate)
                    };
                    if shed {
                        self.shed_reply(fd);
                        break;
                    }
                    if migrate {
                        self.migrate(fd, body);
                        return;
                    }
                    let response =
                        serve_request(&body, &self.reader, self.cfg, self.sink, &self.obs);
                    served += 1;
                    let conn = self.conns.get_mut(&fd).expect("checked above");
                    conn.enqueue(response);
                    if conn.queued_bytes >= self.cfg.max_write_buffer.max(1) && !conn.reading_paused
                    {
                        conn.reading_paused = true;
                        self.obs.incr("server.net.backpressure_stalls", 1);
                    }
                }
            }
        }
        if served > 0 {
            self.obs.observe("server.net.pipeline_depth", served as f64);
        }
        let mut truncated_at_eof = false;
        if let Some(conn) = self.conns.get_mut(&fd) {
            if wants_more_bytes && conn.decoder.has_partial() {
                if conn.peer_eof {
                    // Nothing more will ever complete this frame.
                    truncated_at_eof = true;
                } else if conn.partial_since.is_none() {
                    conn.partial_since = Some(Instant::now());
                }
            } else {
                conn.partial_since = None;
            }
        }
        if truncated_at_eof {
            self.malformed(fd);
        }
    }

    /// Answers BUSY on a shed connection and schedules its close. The BUSY
    /// status counters were already bumped at accept time (threaded
    /// parity), so this only delivers the response.
    fn shed_reply(&mut self, fd: RawFd) {
        if let Some(conn) = self.conns.get_mut(&fd) {
            conn.enqueue(encode_error(Status::Busy, "server at connection capacity"));
            conn.close_after_flush = true;
            conn.partial_since = None;
        }
    }

    /// Handles broken framing (oversized prefix or truncation): count it,
    /// answer BadRequest if the socket still writes, then close — resync
    /// is impossible. Mirrors the threaded engine's Malformed arm,
    /// including the bounded post-error input drain.
    fn malformed(&mut self, fd: RawFd) {
        self.reader.record_failed_request();
        self.obs.incr("server.requests.bad", 1);
        self.obs.incr(status_counter(Status::BadRequest as u8), 1);
        if let Some(conn) = self.conns.get_mut(&fd) {
            conn.enqueue(encode_error(Status::BadRequest, "malformed frame"));
            conn.close_after_flush = true;
            conn.discard_input = true;
            conn.reading_paused = false;
            conn.partial_since = None;
        }
    }

    /// Moves a connection mid-APPEND to shard 0 with its whole state.
    fn migrate(&mut self, fd: RawFd, body: Vec<u8>) {
        let Some(mut conn) = self.conns.remove(&fd) else { return };
        let _ = self.poller.remove(fd);
        conn.migrated_frame = Some(body);
        self.obs.incr("server.net.migrations", 1);
        self.shared.inboxes[0].lock().unwrap().push_back(Handoff::Migrated(Box::new(conn)));
        self.shared.wakes[0].wake();
    }

    /// The per-tick deadline sweep: write stalls, post-error lingers,
    /// mid-frame read stalls, shed handshakes, idle reap, and drain.
    fn sweep(&mut self) {
        let now = Instant::now();
        let mut actions = Vec::new();
        for (&fd, conn) in &self.conns {
            if let Some(t) = conn.write_blocked_since {
                if now.duration_since(t) >= self.cfg.write_timeout {
                    actions.push(SweepAction::Close(fd, Some("server.conn.write_timeouts")));
                    continue;
                }
            }
            if let Some(t) = conn.dying_since {
                if now.duration_since(t) >= self.cfg.read_timeout {
                    actions.push(SweepAction::Close(fd, None));
                    continue;
                }
            }
            if conn.shed {
                // A shed connection that never completed a request still
                // gets its BUSY answer after the read deadline, exactly
                // like the threaded shed handshake.
                if !conn.close_after_flush
                    && now.duration_since(conn.opened_at) >= self.cfg.read_timeout
                {
                    actions.push(SweepAction::ShedReply(fd));
                }
                continue;
            }
            if let Some(t) = conn.partial_since {
                if now.duration_since(t) >= self.cfg.read_timeout {
                    // The request never finished arriving; no response can
                    // be framed reliably, so just cut the connection.
                    actions.push(SweepAction::Close(fd, Some("server.conn.read_timeouts")));
                    continue;
                }
            }
            let idle = !conn.decoder.has_partial() && conn.queue_empty() && !conn.close_after_flush;
            if idle && self.draining {
                actions.push(SweepAction::Close(fd, Some("server.drain.closed")));
                continue;
            }
            if idle && now.duration_since(conn.last_activity) >= self.cfg.idle_timeout {
                actions.push(SweepAction::Close(fd, Some("server.conn.idle_closed")));
            }
        }
        for action in actions {
            match action {
                SweepAction::Close(fd, counter) => self.close(fd, counter),
                SweepAction::ShedReply(fd) => {
                    self.shed_reply(fd);
                    self.flush_conn(fd);
                }
            }
        }
    }

    fn close(&mut self, fd: RawFd, counter: Option<&'static str>) {
        if let Some(conn) = self.conns.remove(&fd) {
            let _ = self.poller.remove(fd);
            if let Some(name) = counter {
                self.obs.incr(name, 1);
            }
            if conn.admitted {
                self.shared.admitted.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}
