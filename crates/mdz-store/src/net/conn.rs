//! Per-connection state for the event engine: a non-blocking socket, the
//! incremental [`FrameDecoder`], a bounded write queue, and the timestamps
//! the deadline sweep runs against.
//!
//! A `Conn` is owned by exactly one shard at a time. The only way it moves
//! is APPEND migration, where the whole struct (decoder backlog, write
//! queue, deadlines) is boxed and handed to shard 0 through its inbox, so
//! ownership stays single-threaded by construction.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Instant;

use crate::protocol::FrameDecoder;

use super::sys::Poller;

/// Per-read scratch cap: one `read` call per slot, bounded so a firehose
/// peer cannot monopolize a shard tick (level-triggered polling re-arms).
const MAX_READS_PER_TICK: usize = 16;

/// What a read pass against the socket produced.
pub(crate) enum ReadOutcome {
    /// Bytes arrived (frames may now be decodable).
    Progress,
    /// The peer half-closed; no more input will ever arrive.
    Eof,
    /// The socket had nothing for us.
    Blocked,
}

/// One live connection on a shard.
pub(crate) struct Conn {
    stream: TcpStream,
    /// Reassembles length-prefixed requests from arbitrary read chunks.
    pub(crate) decoder: FrameDecoder,
    /// Pending output chunks (length prefixes and response bodies
    /// interleaved), written front-first.
    queue: VecDeque<Vec<u8>>,
    /// Bytes of the front chunk already written.
    front_written: usize,
    /// Total unsent bytes across `queue` (the backpressure quantity).
    pub(crate) queued_bytes: usize,
    /// Whether this connection holds an admission slot (shed connections
    /// do not; they only exist to deliver a BUSY response).
    pub(crate) admitted: bool,
    /// Shed at accept time: answer BUSY to the first request, then close.
    pub(crate) shed: bool,
    /// Close once the write queue drains (BUSY shed, malformed framing).
    pub(crate) close_after_flush: bool,
    /// Input is read and discarded instead of decoded — the bounded drain
    /// that lets an error response reach a peer mid-send without an RST.
    pub(crate) discard_input: bool,
    /// The peer sent EOF; flush what is queued, then close.
    pub(crate) peer_eof: bool,
    /// Backpressure: reads are suspended until the queue drains below half
    /// of `max_write_buffer`.
    pub(crate) reading_paused: bool,
    /// The APPEND body travelling with a migration handoff.
    pub(crate) migrated_frame: Option<Vec<u8>>,
    /// When the connection was accepted (shed-reply deadline).
    pub(crate) opened_at: Instant,
    /// Last time bytes arrived (idle deadline).
    pub(crate) last_activity: Instant,
    /// Since when the decoder has held an incomplete frame (read deadline).
    pub(crate) partial_since: Option<Instant>,
    /// Since when a flush has made no progress (write deadline).
    pub(crate) write_blocked_since: Option<Instant>,
    /// Since when the connection has been lingering after `shutdown(Write)`
    /// waiting for the peer's EOF (bounded by the read deadline).
    pub(crate) dying_since: Option<Instant>,
    registered_read: bool,
    registered_write: bool,
}

impl Conn {
    /// Wraps an accepted stream; the socket is switched to non-blocking.
    /// New connections are registered read-only, matching
    /// (`registered_read`, `registered_write`) = (true, false).
    pub(crate) fn new(stream: TcpStream, max_body: usize, admitted: bool) -> std::io::Result<Conn> {
        stream.set_nonblocking(true)?;
        // Responses are written whole; Nagle + delayed ACK would park small
        // replies for ~40 ms under pipelining. Best-effort like the
        // threaded engine's socket tuning.
        let _ = stream.set_nodelay(true);
        let now = Instant::now();
        Ok(Conn {
            stream,
            decoder: FrameDecoder::new(max_body),
            queue: VecDeque::new(),
            front_written: 0,
            queued_bytes: 0,
            admitted,
            shed: !admitted,
            close_after_flush: false,
            discard_input: false,
            peer_eof: false,
            reading_paused: false,
            migrated_frame: None,
            opened_at: now,
            last_activity: now,
            partial_since: None,
            write_blocked_since: None,
            dying_since: None,
            registered_read: true,
            registered_write: false,
        })
    }

    /// The socket's fd — the poller token for this connection.
    pub(crate) fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// True when nothing is waiting to be written.
    pub(crate) fn queue_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Queues one framed response (4-byte little-endian length prefix, then
    /// the body) without copying the body.
    pub(crate) fn enqueue(&mut self, body: Vec<u8>) {
        let prefix = (body.len() as u32).to_le_bytes().to_vec();
        self.queued_bytes += prefix.len() + body.len();
        self.queue.push_back(prefix);
        if !body.is_empty() {
            self.queue.push_back(body);
        }
    }

    /// Half-closes the write side and starts the bounded EOF linger.
    pub(crate) fn start_dying(&mut self) {
        if self.dying_since.is_none() {
            let _ = self.stream.shutdown(std::net::Shutdown::Write);
            self.dying_since = Some(Instant::now());
        }
    }

    /// Writes queued chunks until the socket blocks or the queue empties.
    /// Progress clears the write-blocked clock; a block with bytes still
    /// queued starts it (the shard's sweep kills stalled readers from it).
    /// `Err` means the socket is dead.
    pub(crate) fn flush(&mut self) -> std::io::Result<()> {
        loop {
            let remaining = match self.queue.front() {
                None => {
                    self.write_blocked_since = None;
                    return Ok(());
                }
                Some(front) => front.len() - self.front_written,
            };
            if remaining == 0 {
                self.queue.pop_front();
                self.front_written = 0;
                continue;
            }
            let res = {
                let front = self.queue.front().expect("checked above");
                self.stream.write(&front[self.front_written..])
            };
            match res {
                Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.front_written += n;
                    self.queued_bytes -= n;
                    self.write_blocked_since = None;
                    if n == remaining {
                        self.queue.pop_front();
                        self.front_written = 0;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if self.write_blocked_since.is_none() {
                        self.write_blocked_since = Some(Instant::now());
                    }
                    return Ok(());
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Pulls available bytes off the socket into the decoder (or the void,
    /// under `discard_input`), bounded per tick. `Err` means the socket is
    /// dead; `Eof` may still leave decodable frames behind.
    pub(crate) fn read_some(&mut self, scratch: &mut [u8]) -> std::io::Result<ReadOutcome> {
        let mut any = false;
        for _ in 0..MAX_READS_PER_TICK {
            match self.stream.read(scratch) {
                Ok(0) => return Ok(ReadOutcome::Eof),
                Ok(n) => {
                    any = true;
                    self.last_activity = Instant::now();
                    if !self.discard_input {
                        self.decoder.push(&scratch[..n]);
                    }
                    if n < scratch.len() {
                        break; // short read: the kernel buffer is drained
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(if any { ReadOutcome::Progress } else { ReadOutcome::Blocked })
    }

    /// The interest set this connection currently needs.
    pub(crate) fn wanted_interest(&self) -> (bool, bool) {
        (!self.reading_paused, !self.queue.is_empty())
    }

    /// Reconciles the poller registration with the wanted interest set
    /// (no-op when unchanged — the common case).
    pub(crate) fn sync_interest(&mut self, poller: &Poller) {
        let (read, write) = self.wanted_interest();
        if (read != self.registered_read || write != self.registered_write)
            && poller.modify(self.fd(), read, write).is_ok()
        {
            self.registered_read = read;
            self.registered_write = write;
        }
    }

    /// Records the interest set a fresh `poller.add` registered (used when
    /// a migrated connection is re-registered on its new shard).
    pub(crate) fn set_registered(&mut self, read: bool, write: bool) {
        self.registered_read = read;
        self.registered_write = write;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn enqueue_and_flush_frame_a_response() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(server, 1 << 20, true).unwrap();
        conn.enqueue(vec![7u8; 10]);
        assert_eq!(conn.queued_bytes, 14);
        conn.flush().unwrap();
        assert!(conn.queue_empty());
        assert_eq!(conn.queued_bytes, 0);
        let mut got = [0u8; 14];
        client.read_exact(&mut got).unwrap();
        assert_eq!(&got[..4], &10u32.to_le_bytes());
        assert_eq!(&got[4..], &[7u8; 10]);
    }

    #[test]
    fn blocked_write_starts_the_stall_clock_and_progress_clears_it() {
        let (client, server) = pair();
        let mut conn = Conn::new(server, 1 << 20, true).unwrap();
        // Overwhelm the kernel buffers: the peer never reads.
        for _ in 0..64 {
            conn.enqueue(vec![0u8; 1 << 20]);
        }
        conn.flush().unwrap();
        assert!(conn.write_blocked_since.is_some(), "full socket must block");
        assert!(!conn.queue_empty());
        // Drain the peer side; the next flush makes progress again.
        drop(std::thread::spawn(move || {
            let mut sink = std::io::sink();
            let mut client = client;
            let _ = std::io::copy(&mut client, &mut sink);
        }));
        loop {
            conn.flush().unwrap();
            if conn.queue_empty() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(conn.write_blocked_since.is_none());
    }

    #[test]
    fn discard_input_reads_without_feeding_the_decoder() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(server, 1 << 20, true).unwrap();
        conn.discard_input = true;
        client.write_all(&[1u8; 256]).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut scratch = vec![0u8; 64];
        assert!(matches!(conn.read_some(&mut scratch), Ok(ReadOutcome::Progress)));
        assert_eq!(conn.decoder.buffered(), 0);
        drop(client);
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(matches!(conn.read_some(&mut scratch), Ok(ReadOutcome::Eof)));
    }
}
