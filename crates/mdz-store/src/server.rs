//! The `mdzd` serving layer: a TCP accept loop feeding a fixed worker pool,
//! one [`StoreReader`] clone per connection handler.
//!
//! The server is built only on `std::net` / `std::thread`. Each worker owns
//! a per-connection [`DecodeLimits`] (from [`ServerConfig`]); a request that
//! would decode past that budget is refused with [`Status::LimitExceeded`]
//! rather than letting one client monopolize memory. The epoch cache inside
//! the shared [`StoreReader`] makes concurrent overlapping reads cheap:
//! whichever connection decodes an epoch first populates it for the rest.

use std::io::Write;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use mdz_core::DecodeLimits;
use mdz_obs::Obs;

use crate::protocol::{
    encode_error, encode_frames, encode_info, encode_metrics, encode_stats, read_message,
    write_message, Request, Status, StoreInfo, MAX_REQUEST_BODY,
};
use crate::reader::StoreReader;

/// Serving-side budgets and sizing.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections.
    pub threads: usize,
    /// Largest frame count a single GET may request.
    pub max_frames_per_request: usize,
    /// Decode budget each connection's reads run under.
    pub limits: DecodeLimits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self { threads: 4, max_frames_per_request: 1 << 20, limits: DecodeLimits::default() }
    }
}

/// A bound (but not yet running) store server.
pub struct Server {
    listener: TcpListener,
    reader: StoreReader,
    cfg: ServerConfig,
    stop: Arc<AtomicBool>,
}

/// Shutdown handle for a running [`Server`]; cheap to clone across threads.
#[derive(Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Asks the accept loop to exit. Idempotent; safe from any thread.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept`; poke it awake with a throwaway
        // connection so it observes the flag without waiting for a client.
        // A wildcard bind (0.0.0.0 / ::) reports the wildcard as its local
        // address, which is not connectable — substitute loopback.
        let mut target = self.addr;
        if target.ip().is_unspecified() {
            target.set_ip(match target.ip() {
                IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(target);
    }
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(
        reader: StoreReader,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server { listener, reader, cfg, stop: Arc::new(AtomicBool::new(false)) })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop [`run`](Self::run) from another thread.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle { stop: Arc::clone(&self.stop), addr: self.local_addr()? })
    }

    /// Accepts connections until [`ServerHandle::shutdown`] is called,
    /// dispatching each to the worker pool. Returns once every queued
    /// connection has drained and the workers have joined.
    pub fn run(self) -> std::io::Result<()> {
        let Server { listener, reader, cfg, stop } = self;
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = cfg.threads.max(1);
        std::thread::scope(|s| {
            for _ in 0..workers {
                let rx = Arc::clone(&rx);
                let reader = reader.clone();
                let cfg = cfg.clone();
                s.spawn(move || loop {
                    let conn = rx.lock().unwrap().recv();
                    match conn {
                        Ok(stream) => handle_connection(stream, &reader, &cfg),
                        Err(_) => break, // accept loop gone, queue drained
                    }
                });
            }
            for conn in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    // Transient accept errors (peer reset mid-handshake, fd
                    // pressure) should not take the server down.
                    Err(_) => continue,
                }
            }
            drop(tx);
        });
        Ok(())
    }
}

/// Serves one connection until the peer closes it or framing breaks.
///
/// All per-request metrics (opcode and status counters, latency
/// histograms, `store.requests`) are recorded *after* [`respond`] returns,
/// so a METRICS response reflects every request except the in-flight one
/// that produced it.
fn handle_connection(mut stream: TcpStream, reader: &StoreReader, cfg: &ServerConfig) {
    let obs = Obs::new(reader.recorder());
    loop {
        let body = match read_message(&mut stream, MAX_REQUEST_BODY) {
            Ok(Some(body)) => body,
            Ok(None) => return, // clean close between requests
            Err(_) => {
                // Oversized or truncated frame: answer if the socket still
                // writes, then drop the connection — resync is impossible.
                reader.record_failed_request();
                obs.incr("server.requests.bad", 1);
                obs.incr(status_counter(Status::BadRequest as u8), 1);
                let resp = encode_error(Status::BadRequest, "malformed frame");
                let _ = write_message(&mut stream, &resp);
                // Drain (bounded) what the peer already sent before closing,
                // otherwise the kernel RSTs the error response off the wire.
                let _ = stream.shutdown(std::net::Shutdown::Write);
                let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(5)));
                let _ = std::io::copy(
                    &mut std::io::Read::take(&mut stream, 1 << 20),
                    &mut std::io::sink(),
                );
                return;
            }
        };
        let parsed = Request::parse(&body);
        let request_timer = obs.span("server.request_seconds");
        let response = match parsed {
            Ok(req) => {
                let get_timer =
                    matches!(req, Request::Get { .. }).then(|| obs.span("server.get_seconds"));
                let r = respond(req, reader, cfg);
                if let Some(t) = get_timer {
                    t.finish();
                }
                r
            }
            Err(msg) => encode_error(Status::BadRequest, msg),
        };
        request_timer.finish();
        obs.incr("store.bytes_in", body.len() as u64);
        obs.incr(opcode_counter(&parsed), 1);
        obs.incr(status_counter(response.first().copied().unwrap_or(Status::Internal as u8)), 1);
        reader.record_request(response.len() as u64);
        if write_message(&mut stream, &response).is_err() {
            return;
        }
        let _ = stream.flush();
    }
}

/// The per-opcode request counter a parsed (or unparseable) request bumps.
fn opcode_counter(parsed: &std::result::Result<Request, &'static str>) -> &'static str {
    match parsed {
        Ok(Request::Get { .. }) => "server.requests.get",
        Ok(Request::Stats) => "server.requests.stats",
        Ok(Request::Info) => "server.requests.info",
        Ok(Request::Metrics) => "server.requests.metrics",
        Err(_) => "server.requests.bad",
    }
}

/// The per-status counter for a response's leading status byte.
fn status_counter(byte: u8) -> &'static str {
    match Status::from_byte(byte) {
        Some(Status::Ok) => "server.status.ok",
        Some(Status::BadRequest) => "server.status.bad_request",
        Some(Status::OutOfRange) => "server.status.out_of_range",
        Some(Status::LimitExceeded) => "server.status.limit_exceeded",
        Some(Status::Corrupt) => "server.status.corrupt",
        Some(Status::Internal) | None => "server.status.internal",
    }
}

/// Computes the response body for one parsed request.
fn respond(req: Request, reader: &StoreReader, cfg: &ServerConfig) -> Vec<u8> {
    match req {
        Request::Get { start, end } => {
            if start > end {
                return encode_error(Status::BadRequest, "start exceeds end");
            }
            let span = end - start;
            if span > cfg.max_frames_per_request as u64 {
                return encode_error(
                    Status::LimitExceeded,
                    "requested span exceeds max_frames_per_request",
                );
            }
            let n_frames = reader.index().n_frames as u64;
            if end > n_frames {
                return encode_error(Status::OutOfRange, "frame range past end of archive");
            }
            match reader.read_frames_limited(start as usize..end as usize, &cfg.limits) {
                Ok(frames) => encode_frames(start, reader.index().n_atoms, &frames),
                Err(e) => encode_error(Status::from_error(&e), &e.to_string()),
            }
        }
        Request::Stats => encode_stats(&reader.stats()),
        Request::Metrics => encode_metrics(&reader.metrics()),
        Request::Info => {
            let idx = reader.index();
            encode_info(&StoreInfo {
                version: u64::from(idx.version),
                n_atoms: idx.n_atoms as u64,
                n_frames: idx.n_frames as u64,
                buffer_size: idx.buffer_size as u64,
                epoch_interval: idx.epoch_interval as u64,
                n_blocks: idx.blocks.len() as u64,
            })
        }
    }
}
