//! The `mdzd` serving layer: a TCP accept loop feeding a fixed worker pool,
//! one [`StoreReader`] clone per connection handler.
//!
//! The server is built only on `std::net` / `std::thread`. Each worker owns
//! a per-connection [`DecodeLimits`] (from [`ServerConfig`]); a request that
//! would decode past that budget is refused with [`Status::LimitExceeded`]
//! rather than letting one client monopolize memory. The epoch cache inside
//! the shared [`StoreReader`] makes concurrent overlapping reads cheap:
//! whichever connection decodes an epoch first populates it for the rest.
//!
//! # Degradation under hostile load
//!
//! Every per-connection budget is explicit in [`ServerConfig`]:
//!
//! * **Connection cap** — when `max_connections` handlers are already
//!   admitted, new connections get a framed [`Status::Busy`] response and
//!   are closed instead of piling up in the accept queue.
//! * **Idle deadline** — a connection that sends no request within
//!   `idle_timeout` is closed (`server.conn.idle_closed`).
//! * **Read deadline** — a request that starts arriving but stalls is cut
//!   off after `read_timeout` (`server.conn.read_timeouts`).
//! * **Write deadline** — a stalled reader (a peer that requests data and
//!   never drains its socket) is disconnected once a response write blocks
//!   for `write_timeout` (`server.conn.write_timeouts`), freeing the worker.
//! * **Bounded request bodies** — frame lengths are validated against
//!   `max_request_body` before any allocation (`max_append_body` when live
//!   appends are enabled, since APPEND carries raw coordinate payloads).
//!
//! Shutdown drains gracefully: the accept loop stops admitting, in-flight
//! requests finish (bounded by the read/write deadlines), and idle or queued
//! connections are closed at the next poll tick (`server.drain.closed`).
//!
//! # Live ingest
//!
//! A server built with [`Server::with_append_sink`] also answers APPEND:
//! frames are compressed server-side through [`crate::append_store`]'s
//! footer-flip protocol against the sink's [`StoreIo`], under the sink's
//! per-archive write lock (one append at a time; readers are never blocked).
//! The OK response is sent only after the second sync — it is a durability
//! acknowledgment — and the shared [`StoreReader`] is refreshed under the
//! same lock so followers observe the new frames immediately. Without a
//! sink, APPEND is answered with [`Status::BadRequest`] (read-only server).

use std::io::Write;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mdz_core::{DecodeLimits, Frame, MdzError};
use mdz_obs::Obs;

use crate::archive::{append_store, Precision, StoreOptions};
use crate::io::StoreIo;
use crate::protocol::{
    encode_append_ack, encode_error, encode_frames, encode_info, encode_metrics, encode_stats,
    read_message, write_message, AppendAck, Request, Status, StoreInfo, MAX_APPEND_BODY,
    MAX_REQUEST_BODY,
};
use crate::reader::StoreReader;

/// Which serving backend a [`Server`] runs.
///
/// Both engines speak the identical wire protocol and share the response
/// path (`respond`), so for the same request trace their responses are
/// byte-identical — the threaded engine doubles as the differential oracle
/// for the event-loop engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The blocking accept loop + fixed worker pool (one connection per
    /// worker at a time). Simple, portable, and the reference behavior.
    #[default]
    Threads,
    /// The sharded non-blocking event loop (the `net` module): epoll on
    /// Linux, kqueue on macOS. Thousands of concurrent connections with
    /// request pipelining; `threads` becomes the shard count.
    Epoll,
}

impl Engine {
    /// Parses a CLI engine name (`threads` or `epoll`).
    pub fn parse(name: &str) -> Option<Engine> {
        match name {
            "threads" => Some(Engine::Threads),
            "epoll" => Some(Engine::Epoll),
            _ => None,
        }
    }
}

/// Serving-side budgets and sizing.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Which backend serves connections (default [`Engine::Threads`]).
    pub engine: Engine,
    /// Worker threads handling connections ([`Engine::Threads`]), or event
    /// shards ([`Engine::Epoll`]). `mdzd` spells this `--threads` with
    /// `--shards` as an alias.
    pub threads: usize,
    /// Largest frame count a single GET may request.
    pub max_frames_per_request: usize,
    /// Decode budget each connection's reads run under.
    pub limits: DecodeLimits,
    /// Connections admitted concurrently; beyond this, new connections are
    /// shed with a framed [`Status::Busy`] response.
    pub max_connections: usize,
    /// Largest request body accepted, enforced before allocation.
    pub max_request_body: usize,
    /// Largest APPEND request body accepted when a sink is attached
    /// (APPEND bodies carry raw coordinates, so they dwarf the control
    /// verbs). Ignored on a read-only server.
    pub max_append_body: usize,
    /// Budget for a started request to finish arriving (also bounds the
    /// post-error drain that lets an error response reach the peer).
    pub read_timeout: Duration,
    /// Budget for a blocked response write before the connection is cut.
    pub write_timeout: Duration,
    /// How long a connection may sit between requests before it is closed.
    pub idle_timeout: Duration,
    /// How often blocked waits wake up to check the stop flag and soft
    /// deadlines: the threaded engine's poll-read cadence and the event
    /// loop's wait timeout. Bounds how stale a shutdown request can go
    /// unnoticed (CLI `--drain-poll-ms`, default 50 ms).
    pub drain_poll: Duration,
    /// Cap on a connection's queued-but-unsent response bytes on the event
    /// engine. Past the cap the server stops *reading* that connection
    /// (backpressure) until the peer drains its socket; a peer that never
    /// drains is killed by `write_timeout`. Ignored by the threaded
    /// engine, whose single in-flight response is bounded by construction.
    pub max_write_buffer: usize,
    /// Whether the event engine may build an `SO_REUSEPORT` listener group
    /// (one accept queue per shard, Linux only). When unavailable or
    /// disabled it falls back to a dispatcher: shard 0 accepts and hands
    /// connections round-robin to the other shards.
    pub reuseport: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            engine: Engine::Threads,
            threads: 4,
            max_frames_per_request: 1 << 20,
            limits: DecodeLimits::default(),
            max_connections: 256,
            max_request_body: MAX_REQUEST_BODY,
            max_append_body: MAX_APPEND_BODY,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(60),
            drain_poll: Duration::from_millis(50),
            max_write_buffer: 4 << 20,
            reuseport: true,
        }
    }
}

impl ServerConfig {
    /// The framing budget requests are read under: APPEND bodies carry raw
    /// coordinates, so the budget only widens when a sink is attached.
    pub(crate) fn body_budget(&self, has_sink: bool) -> usize {
        if has_sink {
            self.max_append_body.max(self.max_request_body)
        } else {
            self.max_request_body
        }
    }

    /// `drain_poll` clamped away from zero (a zero poll would spin).
    pub(crate) fn drain_poll_clamped(&self) -> Duration {
        self.drain_poll.max(Duration::from_millis(1))
    }
}

/// The writable side of a live archive: the storage the server appends to,
/// serialized by a per-archive write lock.
///
/// The lock covers the whole footer-flip append (recover → write blocks →
/// sync → footer → sync) *and* the subsequent [`StoreReader::refresh`], so
/// concurrent APPEND requests execute one at a time and the reader's
/// published state advances in footer order. Readers never take this lock —
/// they snapshot the reader's own state and are unaffected by an in-flight
/// append.
pub struct AppendSink {
    io: Mutex<Box<dyn StoreIo>>,
    opts: StoreOptions,
}

impl AppendSink {
    /// Wraps the storage backing the served archive. `opts` configures the
    /// server-side compressor (error bound, method, precision); the
    /// archive's own geometry (buffer size, epoch stride) wins over
    /// `opts.buffer_size`/`opts.epoch_interval` as in [`append_store`].
    pub fn new(io: Box<dyn StoreIo>, opts: StoreOptions) -> Self {
        Self { io: Mutex::new(io), opts }
    }

    /// Runs one locked append + refresh cycle. Returns only after the
    /// appended frames are durable (second sync done) and published to
    /// `reader`.
    pub(crate) fn append(
        &self,
        frames: &[Frame],
        precision: Precision,
        reader: &StoreReader,
    ) -> Result<AppendAck, MdzError> {
        let mut io = self.io.lock().unwrap();
        let mut opts = self.opts.clone();
        opts.precision = precision;
        let report = append_store(io.as_mut(), frames, &opts)?;
        // Publish to followers while still holding the write lock, so a
        // racing append cannot interleave an older image into refresh().
        let data = io.read_all()?;
        reader.refresh(data)?;
        Ok(AppendAck {
            start: (report.n_frames - report.appended_frames) as u64,
            n_frames: report.n_frames as u64,
            appended_blocks: report.appended_blocks as u64,
        })
    }
}

impl std::fmt::Debug for AppendSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppendSink").finish_non_exhaustive()
    }
}

/// A bound (but not yet running) store server.
pub struct Server {
    pub(crate) listener: TcpListener,
    /// Extra per-shard listeners when the event engine got an
    /// `SO_REUSEPORT` group at bind time (empty = dispatcher mode; always
    /// empty for the threaded engine).
    pub(crate) shard_listeners: Vec<TcpListener>,
    pub(crate) reader: StoreReader,
    pub(crate) cfg: ServerConfig,
    pub(crate) stop: Arc<AtomicBool>,
    pub(crate) sink: Option<Arc<AppendSink>>,
}

/// Shutdown handle for a running [`Server`]; cheap to clone across threads.
#[derive(Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Asks the accept loop to exit. Idempotent; safe from any thread.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept`; poke it awake with a throwaway
        // connection so it observes the flag without waiting for a client.
        // A wildcard bind (0.0.0.0 / ::) reports the wildcard as its local
        // address, which is not connectable — substitute loopback.
        let mut target = self.addr;
        if target.ip().is_unspecified() {
            target.set_ip(match target.ip() {
                IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(target);
    }
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    ///
    /// Under [`Engine::Epoll`] with `reuseport` enabled this tries to bind
    /// one `SO_REUSEPORT` listener per shard so the kernel spreads accepts
    /// across shards; if the platform refuses, it falls back to a single
    /// listener and the dispatcher accept mode. The choice is invisible on
    /// the wire.
    pub fn bind(
        reader: StoreReader,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let mut shard_listeners = Vec::new();
        let listener = if cfg.engine == Engine::Epoll && cfg.reuseport {
            match bind_reuseport_group(&addr, cfg.threads.max(1)) {
                Ok(mut group) => {
                    let primary = group.remove(0);
                    shard_listeners = group;
                    primary
                }
                Err(_) => TcpListener::bind(&addr)?,
            }
        } else {
            TcpListener::bind(&addr)?
        };
        Ok(Server {
            listener,
            shard_listeners,
            reader,
            cfg,
            stop: Arc::new(AtomicBool::new(false)),
            sink: None,
        })
    }

    /// Enables live ingest: the server will answer APPEND requests by
    /// compressing into `sink` and refreshing its reader. See the module
    /// docs for the locking and durability discipline.
    pub fn with_append_sink(mut self, sink: AppendSink) -> Server {
        self.sink = Some(Arc::new(sink));
        self
    }

    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop [`run`](Self::run) from another thread.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle { stop: Arc::clone(&self.stop), addr: self.local_addr()? })
    }

    /// Serves connections until [`ServerHandle::shutdown`] is called, on
    /// whichever [`Engine`] the config selects. Returns once in-flight
    /// requests have finished (deadline-bounded) and the workers or shards
    /// have joined.
    pub fn run(self) -> std::io::Result<()> {
        match self.cfg.engine {
            Engine::Threads => self.run_threaded(),
            #[cfg(any(target_os = "linux", target_os = "macos"))]
            Engine::Epoll => crate::net::run(self),
            #[cfg(not(any(target_os = "linux", target_os = "macos")))]
            Engine::Epoll => Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "the event-loop engine needs epoll (Linux) or kqueue (macOS); use --engine threads",
            )),
        }
    }

    /// The blocking accept loop + worker pool backend.
    fn run_threaded(self) -> std::io::Result<()> {
        let Server { listener, shard_listeners: _, reader, cfg, stop, sink } = self;
        let obs = Obs::new(reader.recorder());
        let body_budget = cfg.body_budget(sink.is_some());
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = cfg.threads.max(1);
        // Admitted-but-unfinished connections (queued + being served).
        let active = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..workers {
                let rx = Arc::clone(&rx);
                let reader = reader.clone();
                let cfg = cfg.clone();
                let stop = Arc::clone(&stop);
                let active = Arc::clone(&active);
                let sink = sink.clone();
                s.spawn(move || loop {
                    let conn = rx.lock().unwrap().recv();
                    match conn {
                        Ok(stream) => {
                            handle_connection(
                                stream,
                                &reader,
                                &cfg,
                                &stop,
                                sink.as_deref(),
                                body_budget,
                            );
                            active.fetch_sub(1, Ordering::AcqRel);
                        }
                        Err(_) => break, // accept loop gone, queue drained
                    }
                });
            }
            for conn in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(mut stream) => {
                        if active.load(Ordering::Acquire) >= cfg.max_connections.max(1) {
                            // Shed load with a typed response instead of
                            // letting connections pile up unanswered. The
                            // handshake (read one request, answer BUSY) runs
                            // on a throwaway thread so a slow peer cannot
                            // stall the accept loop; reading the request
                            // first means the close is a clean FIN — closing
                            // with unread bytes would RST the connection and
                            // the client could lose the BUSY response.
                            obs.incr("server.conn.rejected_busy", 1);
                            obs.incr(status_counter(Status::Busy as u8), 1);
                            let obs = obs.clone();
                            let read_timeout = cfg.read_timeout;
                            let write_timeout = cfg.write_timeout;
                            let max_body = body_budget;
                            std::thread::spawn(move || {
                                set_read_timeout(&stream, read_timeout, &obs);
                                set_write_timeout(&stream, write_timeout, &obs);
                                let _ = read_message(&mut stream, max_body);
                                let resp =
                                    encode_error(Status::Busy, "server at connection capacity");
                                let _ = write_message(&mut stream, &resp);
                            });
                            continue;
                        }
                        active.fetch_add(1, Ordering::AcqRel);
                        obs.incr("server.conn.accepted", 1);
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    // Transient accept errors (peer reset mid-handshake, fd
                    // pressure) should not take the server down.
                    Err(_) => continue,
                }
            }
            drop(tx);
        });
        Ok(())
    }
}

/// Binds `shards` listeners sharing one port via `SO_REUSEPORT` (Linux).
/// The first listener resolves an ephemeral port; the rest join its group.
/// Callers fall back to a single listener + dispatcher on any error.
fn bind_reuseport_group(
    addr: &impl ToSocketAddrs,
    shards: usize,
) -> std::io::Result<Vec<TcpListener>> {
    #[cfg(target_os = "linux")]
    {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "address resolved to nothing")
        })?;
        crate::net::sys::reuseport_group(addr, shards)
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = (addr, shards);
        // macOS SO_REUSEPORT does not load-balance accepts, so the
        // dispatcher is the honest mode everywhere but Linux.
        Err(std::io::Error::new(std::io::ErrorKind::Unsupported, "SO_REUSEPORT group unsupported"))
    }
}

/// Applies a read timeout, counting (rather than ignoring) sockopt failures.
fn set_read_timeout(stream: &TcpStream, timeout: Duration, obs: &Obs) {
    let timeout = timeout.max(Duration::from_millis(1));
    if stream.set_read_timeout(Some(timeout)).is_err() {
        obs.incr("server.sockopt_errors", 1);
    }
}

/// Applies a write timeout, counting (rather than ignoring) sockopt failures.
fn set_write_timeout(stream: &TcpStream, timeout: Duration, obs: &Obs) {
    let timeout = timeout.max(Duration::from_millis(1));
    if stream.set_write_timeout(Some(timeout)).is_err() {
        obs.incr("server.sockopt_errors", 1);
    }
}

/// Outcome of waiting for the next framed request on a connection.
enum NextRequest {
    /// A complete request body arrived.
    Body(Vec<u8>),
    /// The peer closed cleanly at a frame boundary.
    CleanClose,
    /// No request arrived within the idle deadline.
    IdleTimeout,
    /// The server is shutting down and no request was in flight.
    Draining,
    /// A request started arriving but stalled past the read deadline.
    SlowBody,
    /// Oversized frame length or a prefix truncated mid-frame.
    Malformed,
    /// Hard socket error; nothing more can be read or written.
    Gone,
}

/// Reads one framed request, polling so the idle deadline and the stop flag
/// are observed even while the peer is silent. The 4-byte length prefix is
/// accumulated across poll ticks; the body is then read under the full
/// `read_timeout`.
fn next_request(
    stream: &mut TcpStream,
    cfg: &ServerConfig,
    stop: &AtomicBool,
    obs: &Obs,
    body_budget: usize,
) -> NextRequest {
    use std::io::Read;
    let mut len_bytes = [0u8; 4];
    let mut filled = 0usize;
    set_read_timeout(stream, cfg.drain_poll_clamped().min(cfg.idle_timeout), obs);
    let idle_deadline = Instant::now() + cfg.idle_timeout;
    let mut started_at: Option<Instant> = None;
    while filled < 4 {
        if stop.load(Ordering::SeqCst) && filled == 0 {
            return NextRequest::Draining;
        }
        match stream.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return NextRequest::CleanClose,
            Ok(0) => return NextRequest::Malformed,
            Ok(n) => {
                filled += n;
                started_at.get_or_insert_with(Instant::now);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                match started_at {
                    // Mid-prefix stalls run against the read deadline.
                    Some(t) if t.elapsed() >= cfg.read_timeout => return NextRequest::SlowBody,
                    None if Instant::now() >= idle_deadline => return NextRequest::IdleTimeout,
                    _ => {}
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return NextRequest::Gone,
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > body_budget {
        return NextRequest::Malformed;
    }
    set_read_timeout(stream, cfg.read_timeout, obs);
    let mut body = vec![0u8; len];
    match stream.read_exact(&mut body) {
        Ok(()) => NextRequest::Body(body),
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            NextRequest::SlowBody
        }
        Err(_) => NextRequest::Gone,
    }
}

/// Serves one connection until the peer closes it, a deadline fires, or
/// framing breaks.
///
/// All per-request metrics (opcode and status counters, latency
/// histograms, `store.requests`) are recorded *after* [`respond`] returns,
/// so a METRICS response reflects every request except the in-flight one
/// that produced it.
fn handle_connection(
    mut stream: TcpStream,
    reader: &StoreReader,
    cfg: &ServerConfig,
    stop: &AtomicBool,
    sink: Option<&AppendSink>,
    body_budget: usize,
) {
    let obs = Obs::new(reader.recorder());
    set_write_timeout(&stream, cfg.write_timeout, &obs);
    // Responses are written whole; Nagle + delayed ACK would park small
    // replies for ~40 ms under client-side pipelining.
    let _ = stream.set_nodelay(true);
    loop {
        let body = match next_request(&mut stream, cfg, stop, &obs, body_budget) {
            NextRequest::Body(body) => body,
            NextRequest::CleanClose | NextRequest::Gone => return,
            NextRequest::Draining => {
                obs.incr("server.drain.closed", 1);
                return;
            }
            NextRequest::IdleTimeout => {
                obs.incr("server.conn.idle_closed", 1);
                return;
            }
            NextRequest::SlowBody => {
                // The request never finished arriving; no response can be
                // framed reliably, so just cut the connection.
                obs.incr("server.conn.read_timeouts", 1);
                return;
            }
            NextRequest::Malformed => {
                // Oversized or truncated frame: answer if the socket still
                // writes, then drop the connection — resync is impossible.
                reader.record_failed_request();
                obs.incr("server.requests.bad", 1);
                obs.incr(status_counter(Status::BadRequest as u8), 1);
                let resp = encode_error(Status::BadRequest, "malformed frame");
                let _ = write_message(&mut stream, &resp);
                // Drain (bounded) what the peer already sent before closing,
                // otherwise the kernel RSTs the error response off the wire.
                let _ = stream.shutdown(std::net::Shutdown::Write);
                set_read_timeout(&stream, cfg.read_timeout, &obs);
                let _ = std::io::copy(
                    &mut std::io::Read::take(&mut stream, 1 << 20),
                    &mut std::io::sink(),
                );
                return;
            }
        };
        let response = serve_request(&body, reader, cfg, sink, &obs);
        if let Err(e) = write_message(&mut stream, &response) {
            // A stalled reader shows up as a blocked write hitting the
            // write deadline; count it so operators can see shed peers.
            if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut) {
                obs.incr("server.conn.write_timeouts", 1);
            }
            return;
        }
        let _ = stream.flush();
    }
}

/// Serves one complete framed request body and returns the encoded
/// response, recording the full per-request metrics vocabulary (opcode and
/// status counters, latency histograms, `store.bytes_in`,
/// `store.requests`) in a fixed order.
///
/// Both engines call this for every well-framed request — it is the single
/// request-to-response path, which is what makes the threaded engine a
/// byte-exact (and counter-exact) differential oracle for the event loop.
pub(crate) fn serve_request(
    body: &[u8],
    reader: &StoreReader,
    cfg: &ServerConfig,
    sink: Option<&AppendSink>,
    obs: &Obs,
) -> Vec<u8> {
    let parsed = Request::parse(body);
    // Capture the per-opcode counter name before `respond` consumes the
    // parsed request (APPEND requests own their frame payload).
    let op_counter = opcode_counter(&parsed);
    let request_timer = obs.span("server.request_seconds");
    let response = match parsed {
        Ok(req) => {
            let get_timer =
                matches!(req, Request::Get { .. }).then(|| obs.span("server.get_seconds"));
            let append_timer = matches!(req, Request::Append { .. })
                .then(|| obs.span("server.append.append_seconds"));
            let r = respond(req, reader, cfg, sink, obs);
            if let Some(t) = get_timer {
                t.finish();
            }
            if let Some(t) = append_timer {
                t.finish();
            }
            r
        }
        Err(msg) => encode_error(Status::BadRequest, msg),
    };
    request_timer.finish();
    obs.incr("store.bytes_in", body.len() as u64);
    obs.incr(op_counter, 1);
    obs.incr(status_counter(response.first().copied().unwrap_or(Status::Internal as u8)), 1);
    reader.record_request(response.len() as u64);
    response
}

/// The per-opcode request counter a parsed (or unparseable) request bumps.
pub(crate) fn opcode_counter(parsed: &std::result::Result<Request, &'static str>) -> &'static str {
    match parsed {
        Ok(Request::Get { .. }) => "server.requests.get",
        Ok(Request::Stats) => "server.requests.stats",
        Ok(Request::Info) => "server.requests.info",
        Ok(Request::Metrics) => "server.requests.metrics",
        Ok(Request::Append { .. }) => "server.requests.append",
        Err(_) => "server.requests.bad",
    }
}

/// The per-status counter for a response's leading status byte.
pub(crate) fn status_counter(byte: u8) -> &'static str {
    match Status::from_byte(byte) {
        Some(Status::Ok) => "server.status.ok",
        Some(Status::BadRequest) => "server.status.bad_request",
        Some(Status::OutOfRange) => "server.status.out_of_range",
        Some(Status::LimitExceeded) => "server.status.limit_exceeded",
        Some(Status::Corrupt) => "server.status.corrupt",
        Some(Status::Busy) => "server.status.busy",
        Some(Status::Internal) | None => "server.status.internal",
    }
}

/// Computes the response body for one parsed request. Shared by both
/// engines — this function being the single response path is what makes
/// the threaded engine a byte-exact differential oracle for the event
/// loop.
pub(crate) fn respond(
    req: Request,
    reader: &StoreReader,
    cfg: &ServerConfig,
    sink: Option<&AppendSink>,
    obs: &Obs,
) -> Vec<u8> {
    match req {
        Request::Append { precision, frames } => {
            let Some(sink) = sink else {
                return encode_error(
                    Status::BadRequest,
                    "server is read-only (start mdzd with --live to enable APPEND)",
                );
            };
            match sink.append(&frames, precision, reader) {
                Ok(ack) => {
                    obs.incr("server.append.frames", ack.n_frames - ack.start);
                    obs.incr("server.append.blocks", ack.appended_blocks);
                    encode_append_ack(&ack)
                }
                Err(e) => {
                    obs.incr("server.append.errors", 1);
                    // Shape and configuration mismatches are the client's
                    // fault; everything else keeps the decode-path mapping
                    // (an injected storage fault surfaces as Internal).
                    let status = match &e {
                        MdzError::BadInput(_) | MdzError::BadConfig(_) => Status::BadRequest,
                        MdzError::Io { .. } => Status::Internal,
                        other => Status::from_error(other),
                    };
                    encode_error(status, &e.to_string())
                }
            }
        }
        Request::Get { start, end } => {
            if start > end {
                return encode_error(Status::BadRequest, "start exceeds end");
            }
            let span = end - start;
            if span > cfg.max_frames_per_request as u64 {
                return encode_error(
                    Status::LimitExceeded,
                    "requested span exceeds max_frames_per_request",
                );
            }
            let n_frames = reader.index().n_frames as u64;
            if end > n_frames {
                return encode_error(Status::OutOfRange, "frame range past end of archive");
            }
            match reader.read_frames_limited(start as usize..end as usize, &cfg.limits) {
                Ok(frames) => encode_frames(start, reader.index().n_atoms, &frames),
                Err(e) => encode_error(Status::from_error(&e), &e.to_string()),
            }
        }
        Request::Stats => encode_stats(&reader.stats()),
        Request::Metrics => encode_metrics(&reader.metrics()),
        Request::Info => {
            let idx = reader.index();
            encode_info(&StoreInfo {
                version: u64::from(idx.version),
                n_atoms: idx.n_atoms as u64,
                n_frames: idx.n_frames as u64,
                buffer_size: idx.buffer_size as u64,
                epoch_interval: idx.epoch_interval as u64,
                n_blocks: idx.blocks.len() as u64,
            })
        }
    }
}
