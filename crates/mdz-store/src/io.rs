//! Pluggable archive storage backends: the [`StoreIo`] trait, the real
//! file backend ([`FileIo`]), an in-memory backend ([`MemIo`]), and a
//! deterministic fault-injecting backend ([`FaultIo`]) used by the
//! crash-consistency tests.
//!
//! Every byte the archive writer persists flows through [`StoreIo`], so
//! durability is a property of the *call sequence* (`write_at` … `sync` …
//! `write_at` footer … `sync`) rather than of fsync calls scattered through
//! the writer. [`FaultIo`] exploits that: it counts mutating operations and
//! injects a crash at the Nth one, modelling a kernel that kept, dropped, or
//! tore the buffered writes — which lets tests sweep *every* crash point of
//! an append deterministically.

use mdz_core::{MdzError, Result};

/// Abstract random-access storage for a single archive.
///
/// Contract assumed by the writer and by [`FaultIo`]'s crash model:
///
/// * `write_at` buffers data; it is not durable until the next `sync`.
/// * `sync` makes everything written so far durable (fsync semantics).
/// * `truncate` discards bytes at the tail; like writes, the new length is
///   only durable after `sync`.
/// * After any error, the backend may refuse all further operations (a
///   crashed [`FaultIo`] does).
pub trait StoreIo: Send {
    /// Current length of the backing store in bytes.
    fn len(&mut self) -> Result<u64>;
    /// True when the backing store holds no bytes.
    fn is_empty(&mut self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
    /// Reads the entire backing store.
    fn read_all(&mut self) -> Result<Vec<u8>>;
    /// Writes `buf` at absolute `offset`, extending the store if needed.
    fn write_at(&mut self, offset: u64, buf: &[u8]) -> Result<()>;
    /// Truncates the store to `len` bytes.
    fn truncate(&mut self, len: u64) -> Result<()>;
    /// Makes all preceding writes durable (fsync).
    fn sync(&mut self) -> Result<()>;
}

/// [`StoreIo`] over a real file. `sync` maps to `File::sync_all`.
pub struct FileIo {
    file: std::fs::File,
}

impl FileIo {
    /// Opens (or creates) `path` for read/write archive access.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(FileIo { file })
    }
}

impl StoreIo for FileIo {
    fn len(&mut self) -> Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn read_all(&mut self) -> Result<Vec<u8>> {
        use std::io::{Read, Seek, SeekFrom};
        self.file.seek(SeekFrom::Start(0))?;
        let mut buf = Vec::new();
        self.file.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn write_at(&mut self, offset: u64, buf: &[u8]) -> Result<()> {
        use std::io::{Seek, SeekFrom, Write};
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(buf)?;
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> Result<()> {
        self.file.set_len(len)?;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_all()?;
        Ok(())
    }
}

/// [`StoreIo`] over an in-memory byte vector. `sync` is a no-op; useful for
/// tests and for building archives in memory ([`crate::write_store`]).
#[derive(Debug, Default, Clone)]
pub struct MemIo {
    bytes: Vec<u8>,
}

impl MemIo {
    /// Wraps `bytes` as an in-memory store.
    pub fn new(bytes: Vec<u8>) -> Self {
        MemIo { bytes }
    }

    /// Consumes the store and returns its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

fn write_at_vec(bytes: &mut Vec<u8>, offset: u64, buf: &[u8]) {
    let offset = offset as usize;
    let end = offset + buf.len();
    if bytes.len() < end {
        bytes.resize(end, 0);
    }
    bytes[offset..end].copy_from_slice(buf);
}

impl StoreIo for MemIo {
    fn len(&mut self) -> Result<u64> {
        Ok(self.bytes.len() as u64)
    }

    fn read_all(&mut self) -> Result<Vec<u8>> {
        Ok(self.bytes.clone())
    }

    fn write_at(&mut self, offset: u64, buf: &[u8]) -> Result<()> {
        write_at_vec(&mut self.bytes, offset, buf);
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> Result<()> {
        self.bytes.truncate(len as usize);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
}

/// What the simulated kernel does with in-flight data at the crash point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The operation fails before taking effect, but everything buffered so
    /// far happens to reach disk (the page cache survived the crash).
    FailOp,
    /// The crash loses every write since the last `sync`; only durable
    /// bytes survive (the page cache was lost).
    DropUnsynced,
    /// For a `write_at`, a seeded prefix of the buffer lands and the rest
    /// is lost (a torn write). For `sync`/`truncate` this degrades to
    /// [`FaultMode::FailOp`].
    TornWrite,
}

/// A deterministic crash plan: fail the `fault_op`-th mutating operation
/// (0-based, counting `write_at`/`truncate`/`sync`) in the given mode.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Index of the mutating operation to fail (0-based).
    pub fault_op: usize,
    /// Crash semantics at the fault point.
    pub mode: FaultMode,
    /// Seed for torn-write prefix lengths.
    pub seed: u64,
}

/// In-memory [`StoreIo`] that injects a crash at a planned operation.
///
/// Tracks two images: `durable` (bytes guaranteed on disk — as of the last
/// `sync`) and `current` (durable plus buffered writes). At the crash point
/// the plan's [`FaultMode`] decides which image — or which torn hybrid —
/// survives; [`FaultIo::disk_image`] returns it, simulating what a reader
/// would find after reboot. Every operation after the crash fails.
#[derive(Debug, Clone)]
pub struct FaultIo {
    durable: Vec<u8>,
    current: Vec<u8>,
    ops: usize,
    plan: Option<FaultPlan>,
    crashed: Option<Vec<u8>>,
}

impl FaultIo {
    /// Wraps `bytes` (treated as already durable) with no crash planned.
    pub fn new(bytes: Vec<u8>) -> Self {
        FaultIo { durable: bytes.clone(), current: bytes, ops: 0, plan: None, crashed: None }
    }

    /// Arms a crash plan. Call before driving writes.
    pub fn set_plan(&mut self, plan: FaultPlan) {
        self.plan = Some(plan);
    }

    /// Number of mutating operations performed so far (the crash point
    /// sweep bound: run once unplanned, then sweep `0..ops_performed()`).
    pub fn ops_performed(&self) -> usize {
        self.ops
    }

    /// True once the planned crash has fired.
    pub fn has_crashed(&self) -> bool {
        self.crashed.is_some()
    }

    /// The bytes a reader would find on disk after the crash (or the
    /// current image if no crash fired).
    pub fn disk_image(&self) -> Vec<u8> {
        match &self.crashed {
            Some(image) => image.clone(),
            None => self.current.clone(),
        }
    }

    /// Deterministic torn-write prefix length in `0..=len`.
    fn torn_len(&self, seed: u64, len: usize) -> usize {
        // splitmix64 over (seed, op index) — deterministic per crash point.
        let mut z = seed ^ (self.ops as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z % (len as u64 + 1)) as usize
    }

    /// Returns `Err` if this op is the planned crash (recording the disk
    /// image) or if a crash already fired. `partial` applies the torn
    /// prefix of a write before the image is captured.
    fn gate(&mut self, partial: Option<(u64, &[u8])>) -> Result<()> {
        if self.crashed.is_some() {
            return Err(MdzError::io(
                std::io::ErrorKind::NotConnected,
                "storage backend crashed by fault injection",
            ));
        }
        let Some(plan) = self.plan else {
            self.ops += 1;
            return Ok(());
        };
        if self.ops != plan.fault_op {
            self.ops += 1;
            return Ok(());
        }
        let image = match (plan.mode, partial) {
            (FaultMode::DropUnsynced, _) => self.durable.clone(),
            (FaultMode::TornWrite, Some((offset, buf))) => {
                let n = self.torn_len(plan.seed, buf.len());
                let mut image = self.current.clone();
                write_at_vec(&mut image, offset, &buf[..n]);
                image
            }
            // FailOp, and TornWrite on sync/truncate: nothing of this op
            // takes effect, but prior buffered writes survive.
            (FaultMode::FailOp | FaultMode::TornWrite, _) => self.current.clone(),
        };
        self.crashed = Some(image);
        Err(MdzError::io(std::io::ErrorKind::Other, "injected storage fault"))
    }
}

impl StoreIo for FaultIo {
    fn len(&mut self) -> Result<u64> {
        Ok(self.current.len() as u64)
    }

    fn read_all(&mut self) -> Result<Vec<u8>> {
        Ok(self.current.clone())
    }

    fn write_at(&mut self, offset: u64, buf: &[u8]) -> Result<()> {
        self.gate(Some((offset, buf)))?;
        write_at_vec(&mut self.current, offset, buf);
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> Result<()> {
        self.gate(None)?;
        self.current.truncate(len as usize);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.gate(None)?;
        self.durable = self.current.clone();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_io_roundtrip_and_extend() {
        let mut io = MemIo::new(vec![1, 2, 3]);
        io.write_at(2, &[9, 9]).unwrap();
        assert_eq!(io.read_all().unwrap(), vec![1, 2, 9, 9]);
        io.truncate(1).unwrap();
        assert_eq!(io.len().unwrap(), 1);
        io.write_at(3, &[7]).unwrap();
        assert_eq!(io.into_bytes(), vec![1, 0, 0, 7]);
    }

    #[test]
    fn fault_io_drop_unsynced_reverts_to_durable() {
        let mut io = FaultIo::new(vec![1, 2]);
        io.write_at(2, &[3]).unwrap(); // op 0
        io.sync().unwrap(); // op 1
        io.write_at(3, &[4]).unwrap(); // op 2
        io.set_plan(FaultPlan { fault_op: 3, mode: FaultMode::DropUnsynced, seed: 0 });
        assert!(io.sync().is_err()); // op 3 crashes
        assert!(io.has_crashed());
        assert_eq!(io.disk_image(), vec![1, 2, 3]); // durable as of op 1
        assert!(io.write_at(0, &[0]).is_err()); // dead after crash
    }

    #[test]
    fn fault_io_fail_op_keeps_buffered_writes() {
        let mut io = FaultIo::new(vec![]);
        io.set_plan(FaultPlan { fault_op: 1, mode: FaultMode::FailOp, seed: 0 });
        io.write_at(0, &[5, 6]).unwrap(); // op 0
        assert!(io.write_at(2, &[7]).is_err()); // op 1 crashes before effect
        assert_eq!(io.disk_image(), vec![5, 6]);
    }

    #[test]
    fn fault_io_torn_write_applies_prefix() {
        let buf = [1u8, 2, 3, 4, 5, 6, 7, 8];
        let mut any_torn = false;
        for seed in 0..32u64 {
            let mut io = FaultIo::new(vec![]);
            io.set_plan(FaultPlan { fault_op: 0, mode: FaultMode::TornWrite, seed });
            assert!(io.write_at(0, &buf).is_err());
            let image = io.disk_image();
            assert!(image.len() <= buf.len());
            assert_eq!(image[..], buf[..image.len()]);
            if !image.is_empty() && image.len() < buf.len() {
                any_torn = true;
            }
        }
        assert!(any_torn, "some seed must produce a strict prefix");
    }

    #[test]
    fn fault_io_unplanned_run_counts_ops() {
        let mut io = FaultIo::new(vec![]);
        io.write_at(0, &[1]).unwrap();
        io.sync().unwrap();
        io.truncate(0).unwrap();
        assert_eq!(io.ops_performed(), 3);
        assert!(!io.has_crashed());
    }
}
