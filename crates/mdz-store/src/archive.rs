//! The indexed `.mdz` archive (container version 2) and its index parser.
//!
//! Layout:
//!
//! ```text
//! magic "MDZA" · version u8 (= 2) · flags u8
//! uvarint n_atoms · uvarint n_frames · uvarint buffer_size · uvarint epoch_interval
//! uvarint meta_len · meta                  — LZ-compressed element + comment text
//! repeated: uvarint block_len · u64 fnv1a checksum (LE) · trajectory container
//! footer payload: uvarint n_blocks · per-block uvarint offset delta
//! footer trailer: crc32(payload) u32 LE · payload_len u64 LE · footer version u8 · "MDZI"
//! ```
//!
//! The body is byte-compatible with the version-1 archive except for two
//! additions:
//!
//! * **Epochs** — every `epoch_interval` buffers the compressor re-anchors
//!   its stream state ([`mdz_core::Compressor::reset_stream`]), so the first
//!   buffer of each epoch decodes standalone and a reader can start decoding
//!   at any epoch boundary instead of replaying from frame zero.
//! * **Footer index** — byte offsets of every block record, checksummed and
//!   framed from the *end* of the file so it can be located without scanning.
//!   Offsets in the payload are delta-coded (first entry absolute).
//!
//! Version-1 archives carry neither, but [`ArchiveIndex::parse`] still
//! accepts them by scanning the block records once: the whole archive is
//! treated as a single epoch, so seeks replay from the start — correct, just
//! not O(epoch).

use mdz_core::checksum::{crc32, fnv1a64};
use mdz_core::traj::assemble_container;
use mdz_core::{Compressor, Frame, MdzConfig, MdzError, Obs, Result};
use mdz_entropy::{read_uvarint, write_uvarint};
use mdz_lossless::lz77;
use mdz_lossless::StreamLimits;

/// Archive magic (shared with version 1).
pub const MAGIC: [u8; 4] = *b"MDZA";
/// Container version written by [`write_store`].
pub const VERSION_V2: u8 = 2;
/// Footer trailer magic, the last four bytes of a version-2 archive.
pub const FOOTER_MAGIC: [u8; 4] = *b"MDZI";
/// Version of the footer trailer layout.
pub const FOOTER_VERSION: u8 = 1;
/// Fixed trailer size: crc32 (4) + payload length (8) + version (1) + magic (4).
pub const FOOTER_TRAILER_LEN: usize = 17;
/// Header flag bit: coordinates were narrowed to `f32` before compression.
pub const STORE_FLAG_F32: u8 = 0b0000_0001;

/// Coordinate precision the store compresses at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full `f64` coordinates (default).
    #[default]
    F64,
    /// Narrow to `f32` before compression; decoded values are widened back.
    /// The error bound then holds relative to the narrowed values.
    F32,
}

/// Options for [`write_store`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Compressor configuration applied to each axis stream.
    pub cfg: MdzConfig,
    /// Frames per buffer (block).
    pub buffer_size: usize,
    /// Buffers per epoch: the compressor re-anchors every this many buffers.
    /// `1` makes every buffer standalone; larger values trade seek
    /// granularity for ratio (MT/VQT predictors keep their history longer).
    pub epoch_interval: usize,
    /// Coordinate precision.
    pub precision: Precision,
    /// Recorder attached to the per-axis compressors, so writing an
    /// archive surfaces pipeline metrics (`core.encode.*`, ADP winner
    /// counts) in a caller registry. No-op (free) by default.
    pub obs: Obs,
}

impl StoreOptions {
    /// Paper-style defaults: 128-frame buffers, 8-buffer epochs, `f64`.
    pub fn new(cfg: MdzConfig) -> Self {
        Self {
            cfg,
            buffer_size: 128,
            epoch_interval: 8,
            precision: Precision::F64,
            obs: Obs::noop(),
        }
    }
}

/// One block record in the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockEntry {
    /// Absolute byte offset of the record (its leading length uvarint).
    pub offset: usize,
    /// Index of the first frame stored in this block.
    pub frame_start: usize,
    /// Number of frames stored in this block.
    pub n_frames: usize,
    /// Epoch the block belongs to (`block index / epoch_interval`).
    pub epoch: usize,
}

/// Parsed archive header plus the block index.
#[derive(Debug, Clone)]
pub struct ArchiveIndex {
    /// Container version (1 or 2).
    pub version: u8,
    /// Whether coordinates were narrowed to `f32` before compression.
    pub f32_source: bool,
    /// Atoms per frame.
    pub n_atoms: usize,
    /// Total frames in the archive.
    pub n_frames: usize,
    /// Frames per buffer.
    pub buffer_size: usize,
    /// Buffers per epoch (for version 1: the whole archive is one epoch).
    pub epoch_interval: usize,
    /// Element symbols from the metadata block.
    pub elements: Vec<String>,
    /// Per-frame comment lines from the metadata block.
    pub comments: Vec<String>,
    /// One entry per block, in file order.
    pub blocks: Vec<BlockEntry>,
}

impl ArchiveIndex {
    /// Number of epochs the archive divides into.
    pub fn n_epochs(&self) -> usize {
        self.blocks.len().div_ceil(self.epoch_interval.max(1))
    }

    /// Block indices belonging to `epoch` (clamped to the block count).
    pub fn epoch_blocks(&self, epoch: usize) -> std::ops::Range<usize> {
        let start = epoch.saturating_mul(self.epoch_interval).min(self.blocks.len());
        let end = start.saturating_add(self.epoch_interval).min(self.blocks.len());
        start..end
    }

    /// First frame index covered by `epoch`.
    pub fn epoch_frame_start(&self, epoch: usize) -> usize {
        self.epoch_blocks(epoch).start * self.buffer_size
    }

    /// Parses a version-1 or version-2 archive into an index without
    /// decoding any frame data.
    pub fn parse(data: &[u8]) -> Result<Self> {
        let header = parse_store_header(data)?;
        let expected_blocks = header.n_frames.div_ceil(header.buffer_size);
        let (blocks, epoch_interval) = match header.version {
            VERSION_V2 => {
                let offsets = parse_footer(data, header.body_start, expected_blocks)?;
                (offsets, header.epoch_interval)
            }
            // Version 1: no footer — scan the record lengths once. The whole
            // archive forms a single epoch (no re-anchor points exist).
            _ => (scan_v1_records(data, header.body_start, expected_blocks)?, expected_blocks),
        };
        let entries = blocks
            .iter()
            .enumerate()
            .map(|(i, &offset)| BlockEntry {
                offset,
                frame_start: i * header.buffer_size,
                n_frames: header.buffer_size.min(header.n_frames - i * header.buffer_size),
                epoch: i / epoch_interval.max(1),
            })
            .collect();
        Ok(ArchiveIndex {
            version: header.version,
            f32_source: header.f32_source,
            n_atoms: header.n_atoms,
            n_frames: header.n_frames,
            buffer_size: header.buffer_size,
            epoch_interval: epoch_interval.max(1),
            elements: header.elements,
            comments: header.comments,
            blocks: entries,
        })
    }
}

/// Reads the block record at `offset`, verifying its FNV-1a checksum, and
/// returns the contained trajectory container bytes.
pub fn record_at(data: &[u8], offset: usize) -> Result<&[u8]> {
    let mut pos = offset;
    if pos >= data.len() {
        return Err(MdzError::Corrupt { what: "block offset past end of archive" });
    }
    let len = read_uvarint(data, &mut pos)? as usize;
    let sum_bytes =
        data.get(pos..pos + 8).ok_or(MdzError::Corrupt { what: "truncated block checksum" })?;
    pos += 8;
    let expected = u64::from_le_bytes(sum_bytes.try_into().unwrap());
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= data.len())
        .ok_or(MdzError::Corrupt { what: "truncated block record" })?;
    let block = &data[pos..end];
    if fnv1a64(block) != expected {
        return Err(MdzError::Corrupt { what: "block checksum mismatch" });
    }
    Ok(block)
}

/// Compresses a trajectory into an indexed version-2 archive.
///
/// `elements` and `comments` are stored losslessly (same metadata block as
/// version 1); pass empty slices when the source has none.
pub fn write_store(
    frames: &[Frame],
    elements: &[String],
    comments: &[String],
    opts: &StoreOptions,
) -> Result<Vec<u8>> {
    if frames.is_empty() {
        return Err(MdzError::BadInput("trajectory has no frames"));
    }
    let n_atoms = frames[0].len();
    if frames.iter().any(|f| f.len() != n_atoms || f.y.len() != n_atoms || f.z.len() != n_atoms) {
        return Err(MdzError::BadInput("ragged frames: atom counts differ"));
    }
    if opts.buffer_size == 0 {
        return Err(MdzError::BadConfig("buffer_size must be positive"));
    }
    if opts.epoch_interval == 0 {
        return Err(MdzError::BadConfig("epoch_interval must be positive"));
    }
    opts.cfg.validate()?;

    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.push(VERSION_V2);
    out.push(match opts.precision {
        Precision::F64 => 0,
        Precision::F32 => STORE_FLAG_F32,
    });
    write_uvarint(&mut out, n_atoms as u64);
    write_uvarint(&mut out, frames.len() as u64);
    write_uvarint(&mut out, opts.buffer_size as u64);
    write_uvarint(&mut out, opts.epoch_interval as u64);
    let mut meta = String::new();
    meta.push_str(&elements.join(" "));
    meta.push('\n');
    for c in comments {
        meta.push_str(c);
        meta.push('\n');
    }
    let meta_c = lz77::compress(meta.as_bytes(), lz77::Level::Default);
    write_uvarint(&mut out, meta_c.len() as u64);
    out.extend_from_slice(&meta_c);

    // One compressor per axis so the epoch re-anchor resets all three
    // streams together; `assemble_container` keeps the block layout
    // byte-compatible with `TrajectoryCompressor` output.
    let mut axes = [
        Compressor::new(opts.cfg.clone()),
        Compressor::new(opts.cfg.clone()),
        Compressor::new(opts.cfg.clone()),
    ];
    for c in axes.iter_mut() {
        c.set_obs(opts.obs.clone());
    }
    let mut offsets = Vec::new();
    for (i, chunk) in frames.chunks(opts.buffer_size).enumerate() {
        if i > 0 && i % opts.epoch_interval == 0 {
            for c in axes.iter_mut() {
                c.reset_stream();
            }
        }
        let blocks = compress_chunk(&mut axes, chunk, opts.precision)?;
        let container = assemble_container(&blocks);
        offsets.push(out.len());
        write_uvarint(&mut out, container.len() as u64);
        out.extend_from_slice(&fnv1a64(&container).to_le_bytes());
        out.extend_from_slice(&container);
    }

    // Footer: delta-coded offsets, CRC-framed from the end of the file.
    let mut payload = Vec::new();
    write_uvarint(&mut payload, offsets.len() as u64);
    let mut prev = 0usize;
    for &off in &offsets {
        write_uvarint(&mut payload, (off - prev) as u64);
        prev = off;
    }
    let crc = crc32(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.push(FOOTER_VERSION);
    out.extend_from_slice(&FOOTER_MAGIC);
    Ok(out)
}

fn compress_chunk(
    axes: &mut [Compressor; 3],
    chunk: &[Frame],
    precision: Precision,
) -> Result<[Vec<u8>; 3]> {
    let mut blocks: [Vec<u8>; 3] = Default::default();
    for (j, comp) in axes.iter_mut().enumerate() {
        fn pick(f: &Frame, axis: usize) -> &[f64] {
            match axis {
                0 => &f.x,
                1 => &f.y,
                _ => &f.z,
            }
        }
        blocks[j] = match precision {
            Precision::F64 => {
                let snaps: Vec<Vec<f64>> = chunk.iter().map(|f| pick(f, j).to_vec()).collect();
                comp.compress_buffer(&snaps)?
            }
            Precision::F32 => {
                let snaps: Vec<Vec<f32>> =
                    chunk.iter().map(|f| pick(f, j).iter().map(|&v| v as f32).collect()).collect();
                comp.compress_buffer_f32(&snaps)?
            }
        };
    }
    Ok(blocks)
}

struct StoreHeader {
    version: u8,
    f32_source: bool,
    n_atoms: usize,
    n_frames: usize,
    buffer_size: usize,
    epoch_interval: usize,
    elements: Vec<String>,
    comments: Vec<String>,
    /// Offset of the first block record.
    body_start: usize,
}

fn parse_store_header(data: &[u8]) -> Result<StoreHeader> {
    let magic = data.get(..4).ok_or(MdzError::BadHeader("truncated magic"))?;
    if magic != MAGIC {
        return Err(MdzError::BadHeader("not an MDZ archive"));
    }
    let version = *data.get(4).ok_or(MdzError::BadHeader("truncated version"))?;
    if version != 1 && version != VERSION_V2 {
        return Err(MdzError::BadHeader("unsupported archive version"));
    }
    let mut pos = 5;
    let mut f32_source = false;
    if version == VERSION_V2 {
        let flags = *data.get(5).ok_or(MdzError::BadHeader("truncated flags"))?;
        if flags & !STORE_FLAG_F32 != 0 {
            return Err(MdzError::BadHeader("unknown store flags"));
        }
        f32_source = flags & STORE_FLAG_F32 != 0;
        pos = 6;
    }
    let n_atoms = read_uvarint(data, &mut pos)? as usize;
    let n_frames = read_uvarint(data, &mut pos)? as usize;
    let buffer_size = read_uvarint(data, &mut pos)? as usize;
    let epoch_interval =
        if version == VERSION_V2 { read_uvarint(data, &mut pos)? as usize } else { 0 };
    if n_atoms == 0 || n_frames == 0 || buffer_size == 0 {
        return Err(MdzError::BadHeader("zero atom, frame, or buffer count"));
    }
    if version == VERSION_V2 && epoch_interval == 0 {
        return Err(MdzError::BadHeader("zero epoch interval"));
    }
    let meta_len = read_uvarint(data, &mut pos)? as usize;
    let meta_end = pos
        .checked_add(meta_len)
        .filter(|&e| e <= data.len())
        .ok_or(MdzError::BadHeader("truncated metadata"))?;
    // Bound the metadata expansion by a multiple of its compressed size so a
    // forged header cannot force a huge allocation before any checksum runs.
    let budget = meta_len.saturating_mul(64).clamp(1 << 12, 1 << 26);
    let mut meta = Vec::new();
    lz77::decompress_into_limited(
        &data[pos..meta_end],
        &mut meta,
        &StreamLimits::with_max_items(budget),
    )
    .map_err(|_| MdzError::BadHeader("metadata stream is corrupt"))?;
    let meta_text =
        String::from_utf8(meta).map_err(|_| MdzError::BadHeader("metadata is not UTF-8"))?;
    let mut meta_lines = meta_text.lines();
    let elements = meta_lines.next().unwrap_or("").split_whitespace().map(str::to_string).collect();
    let comments = meta_lines.map(str::to_string).collect();
    Ok(StoreHeader {
        version,
        f32_source,
        n_atoms,
        n_frames,
        buffer_size,
        epoch_interval,
        elements,
        comments,
        body_start: meta_end,
    })
}

/// Locates, checksums, and decodes the footer; returns absolute offsets.
fn parse_footer(data: &[u8], body_start: usize, expected_blocks: usize) -> Result<Vec<usize>> {
    let len = data.len();
    if len < body_start + FOOTER_TRAILER_LEN {
        return Err(MdzError::Corrupt { what: "archive too short for footer" });
    }
    if data[len - 4..] != FOOTER_MAGIC {
        return Err(MdzError::Corrupt { what: "footer magic missing" });
    }
    if data[len - 5] != FOOTER_VERSION {
        return Err(MdzError::Corrupt { what: "unsupported footer version" });
    }
    let payload_len = u64::from_le_bytes(data[len - 13..len - 5].try_into().unwrap()) as usize;
    let expected_crc = u32::from_le_bytes(data[len - 17..len - 13].try_into().unwrap());
    let payload_end = len - FOOTER_TRAILER_LEN;
    let payload_start = payload_end
        .checked_sub(payload_len)
        .filter(|&s| s >= body_start)
        .ok_or(MdzError::Corrupt { what: "footer length out of range" })?;
    let payload = &data[payload_start..payload_end];
    if crc32(payload) != expected_crc {
        return Err(MdzError::Corrupt { what: "footer checksum mismatch" });
    }
    let mut pos = 0;
    let n_blocks = read_uvarint(payload, &mut pos)
        .map_err(|_| MdzError::Corrupt { what: "footer block count is corrupt" })?
        as usize;
    if n_blocks != expected_blocks {
        return Err(MdzError::Corrupt { what: "footer block count disagrees with header" });
    }
    // Each delta is at least one payload byte, so the count is implicitly
    // bounded by the (already CRC-validated) payload size.
    if n_blocks > payload.len() {
        return Err(MdzError::Corrupt { what: "footer block count exceeds payload" });
    }
    let mut offsets = Vec::with_capacity(n_blocks);
    let mut prev = 0usize;
    for i in 0..n_blocks {
        let delta = read_uvarint(payload, &mut pos)
            .map_err(|_| MdzError::Corrupt { what: "footer offset is corrupt" })?
            as usize;
        if i > 0 && delta == 0 {
            return Err(MdzError::Corrupt { what: "footer offsets not increasing" });
        }
        let off = prev
            .checked_add(delta)
            .filter(|&o| o >= body_start && o < payload_start)
            .ok_or(MdzError::Corrupt { what: "footer offset out of range" })?;
        offsets.push(off);
        prev = off;
    }
    if pos != payload.len() {
        return Err(MdzError::Corrupt { what: "footer payload has trailing bytes" });
    }
    Ok(offsets)
}

/// Scans a version-1 body once, recording each record's start offset.
/// Checksums are deferred to decode time ([`record_at`]).
fn scan_v1_records(data: &[u8], body_start: usize, expected_blocks: usize) -> Result<Vec<usize>> {
    let mut offsets = Vec::new();
    let mut pos = body_start;
    while pos < data.len() && offsets.len() < expected_blocks {
        let start = pos;
        let len = read_uvarint(data, &mut pos)? as usize;
        let end = pos
            .checked_add(8)
            .and_then(|p| p.checked_add(len))
            .filter(|&e| e <= data.len())
            .ok_or(MdzError::Corrupt { what: "truncated v1 block record" })?;
        offsets.push(start);
        pos = end;
    }
    if offsets.len() != expected_blocks {
        return Err(MdzError::Corrupt { what: "v1 archive is missing blocks" });
    }
    Ok(offsets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdz_core::ErrorBound;

    fn frames(n_frames: usize, n_atoms: usize) -> Vec<Frame> {
        (0..n_frames)
            .map(|t| {
                let coord = |axis: usize| {
                    (0..n_atoms)
                        .map(|i| (i % 7) as f64 * 2.5 + t as f64 * 1e-3 + axis as f64)
                        .collect::<Vec<f64>>()
                };
                Frame::new(coord(0), coord(1), coord(2))
            })
            .collect()
    }

    fn opts() -> StoreOptions {
        let mut o = StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(1e-3)));
        o.buffer_size = 4;
        o.epoch_interval = 2;
        o
    }

    #[test]
    fn index_round_trips_header_fields() {
        let f = frames(19, 12);
        let data = write_store(&f, &["H".into(), "O".into()], &["c0".into()], &opts()).unwrap();
        let idx = ArchiveIndex::parse(&data).unwrap();
        assert_eq!(idx.version, VERSION_V2);
        assert_eq!(idx.n_atoms, 12);
        assert_eq!(idx.n_frames, 19);
        assert_eq!(idx.buffer_size, 4);
        assert_eq!(idx.epoch_interval, 2);
        assert_eq!(idx.blocks.len(), 5);
        assert_eq!(idx.n_epochs(), 3);
        assert_eq!(idx.elements, vec!["H".to_string(), "O".to_string()]);
        assert_eq!(idx.comments, vec!["c0".to_string()]);
        // Last block holds the 3 tail frames.
        assert_eq!(idx.blocks[4].n_frames, 3);
        assert_eq!(idx.blocks[4].epoch, 2);
        // Every offset must point at a checksummed record.
        for b in &idx.blocks {
            record_at(&data, b.offset).unwrap();
        }
    }

    #[test]
    fn footer_corruption_is_detected() {
        let data = write_store(&frames(10, 6), &[], &[], &opts()).unwrap();
        // Flip one payload byte: CRC mismatch.
        let mut bad = data.clone();
        let n = bad.len();
        bad[n - FOOTER_TRAILER_LEN - 1] ^= 0xff;
        assert!(matches!(ArchiveIndex::parse(&bad), Err(MdzError::Corrupt { .. })));
        // Damage the magic.
        let mut bad = data.clone();
        let n = bad.len();
        bad[n - 1] ^= 0x01;
        assert!(matches!(ArchiveIndex::parse(&bad), Err(MdzError::Corrupt { .. })));
        // Truncate the trailer.
        let short = &data[..data.len() - 3];
        assert!(ArchiveIndex::parse(short).is_err());
    }

    #[test]
    fn record_checksum_mismatch_is_detected() {
        let data = write_store(&frames(10, 6), &[], &[], &opts()).unwrap();
        let idx = ArchiveIndex::parse(&data).unwrap();
        let mut bad = data.clone();
        // Corrupt one byte inside the first block's container body.
        bad[idx.blocks[0].offset + 12] ^= 0x40;
        assert!(matches!(
            record_at(&bad, idx.blocks[0].offset),
            Err(MdzError::Corrupt { what: "block checksum mismatch" })
        ));
    }
}
